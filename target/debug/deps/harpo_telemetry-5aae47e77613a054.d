/root/repo/target/debug/deps/harpo_telemetry-5aae47e77613a054.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/harpo_telemetry-5aae47e77613a054: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/stream.rs:
crates/telemetry/src/trace.rs:
