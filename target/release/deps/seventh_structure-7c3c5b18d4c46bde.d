/root/repo/target/release/deps/seventh_structure-7c3c5b18d4c46bde.d: crates/bench/src/bin/seventh_structure.rs

/root/repo/target/release/deps/seventh_structure-7c3c5b18d4c46bde: crates/bench/src/bin/seventh_structure.rs

crates/bench/src/bin/seventh_structure.rs:
