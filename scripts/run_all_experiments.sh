#!/usr/bin/env bash
# Regenerates every table and figure of the paper at the given scale
# (default: reduced). Usage: scripts/run_all_experiments.sh [paper|reduced]
set -euo pipefail
SCALE="${1:-reduced}"
cd "$(dirname "$0")/.."
mkdir -p results/logs

BINS=(
  fig01_dppm
  fig04_arrays
  fig05_intfu
  fig06_fpfu
  table1_loopstep
  rate_comparison
  fig10_convergence
  fig11_detection
  detection_speed
  ablation_mutation
  ablation_l1d
  fault_model_study
  seventh_structure
)

cargo build --release -p harpo-bench
for bin in "${BINS[@]}"; do
  echo "==== $bin (scale: $SCALE) ===="
  cargo run --release -p harpo-bench --bin "$bin" -- --scale "$SCALE" \
    | tee "results/logs/$bin.txt"
done
echo "All experiments complete; CSVs in results/, logs in results/logs/."
