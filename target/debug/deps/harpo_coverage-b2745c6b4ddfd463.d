/root/repo/target/debug/deps/harpo_coverage-b2745c6b4ddfd463.d: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/debug/deps/harpo_coverage-b2745c6b4ddfd463: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

crates/coverage/src/lib.rs:
crates/coverage/src/ace.rs:
crates/coverage/src/ibr.rs:
crates/coverage/src/liveness.rs:
crates/coverage/src/objective.rs:
