//! 64-lane bit-parallel netlist evaluation with stuck-at fault injection.
//!
//! Every wire value is a `u64` whose bit *l* is the wire's logic value in
//! *lane l*. All 64 lanes share the same primary inputs (broadcast), but
//! each lane can carry a **different stuck-at fault** — so one topological
//! pass through the netlist grades 64 fault scenarios simultaneously.
//! This is the packed screening engine the fault injector uses to find
//! which gate faults *activate* (produce an output differing from the
//! fault-free lane) for a given operand pair.

use crate::netlist::{GateOp, Netlist, WireId};

/// A set of stuck-at faults, one per lane at most.
#[derive(Debug, Clone, Default)]
pub struct FaultSet {
    /// `(gate index, lane, stuck-at-one)` triples.
    entries: Vec<(u32, u8, bool)>,
}

impl FaultSet {
    /// The empty (fault-free) set.
    pub fn none() -> FaultSet {
        FaultSet::default()
    }

    /// A single fault applied to **all** lanes (used for single-fault
    /// replay, where only lane 0 is read back).
    pub fn single(gate: u32, stuck_one: bool) -> FaultSet {
        let mut s = FaultSet::default();
        for lane in 0..64 {
            s.entries.push((gate, lane, stuck_one));
        }
        s
    }

    /// Adds a fault on one lane.
    pub fn add(&mut self, gate: u32, lane: u8, stuck_one: bool) {
        assert!(lane < 64, "lane out of range");
        self.entries.push((gate, lane, stuck_one));
    }

    /// Builds a set grading up to 64 faults, fault `i` in lane `i`.
    pub fn lanes(faults: &[(u32, bool)]) -> FaultSet {
        assert!(faults.len() <= 64, "at most 64 faults per packed pass");
        let mut s = FaultSet::default();
        for (i, &(g, s1)) in faults.iter().enumerate() {
            s.add(g, i as u8, s1);
        }
        s
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Reusable evaluation scratch state for one netlist.
///
/// Keep one `Evaluator` per thread per circuit: the buffers are sized once
/// and reused across calls, keeping the hot path allocation-free.
#[derive(Debug)]
pub struct Evaluator {
    values: Vec<u64>,
    /// Per-gate force masks, rebuilt sparsely per call.
    force0: Vec<u64>,
    force1: Vec<u64>,
    touched: Vec<u32>,
}

impl Evaluator {
    /// Creates an evaluator sized for `net`.
    pub fn new(net: &Netlist) -> Evaluator {
        Evaluator {
            values: vec![0; net.wire_count()],
            force0: vec![0; net.gate_count()],
            force1: vec![0; net.gate_count()],
            touched: Vec::new(),
        }
    }

    /// Evaluates `net` with the given per-input broadcast bits and fault
    /// set. Input `i` of the netlist takes bit `i`'s value from the
    /// caller-provided closure.
    ///
    /// # Panics
    /// Panics if the evaluator was created for a different netlist shape.
    pub fn run(&mut self, net: &Netlist, input_bit: impl Fn(usize) -> bool, faults: &FaultSet) {
        assert_eq!(
            self.values.len(),
            net.wire_count(),
            "evaluator/netlist mismatch"
        );
        // Clear previous fault masks sparsely.
        for &g in &self.touched {
            self.force0[g as usize] = 0;
            self.force1[g as usize] = 0;
        }
        self.touched.clear();
        for &(g, lane, stuck_one) in &faults.entries {
            let gi = g as usize;
            assert!(gi < net.gate_count(), "fault on nonexistent gate");
            if self.force0[gi] == 0 && self.force1[gi] == 0 {
                self.touched.push(g);
            }
            if stuck_one {
                self.force1[gi] |= 1 << lane;
            } else {
                self.force0[gi] |= 1 << lane;
            }
        }

        self.values[0] = 0;
        self.values[1] = u64::MAX;
        let n_in = net.input_count();
        for i in 0..n_in {
            self.values[2 + i] = if input_bit(i) { u64::MAX } else { 0 };
        }
        for (g, gate) in net.gates().iter().enumerate() {
            let a = self.values[gate.a.index()];
            let b = self.values[gate.b.index()];
            let mut v = match gate.op {
                GateOp::And => a & b,
                GateOp::Or => a | b,
                GateOp::Xor => a ^ b,
                GateOp::Nand => !(a & b),
                GateOp::Nor => !(a | b),
                GateOp::Xnor => !(a ^ b),
                GateOp::Not => !a,
                GateOp::Mux => {
                    let s = self.values[gate.sel.index()];
                    (a & s) | (b & !s)
                }
            };
            v = (v | self.force1[g]) & !self.force0[g];
            self.values[2 + n_in + g] = v;
        }
    }

    /// Logic value of `wire` in `lane` after [`Evaluator::run`].
    #[inline]
    pub fn wire(&self, wire: WireId, lane: u8) -> bool {
        self.values[wire.index()] >> lane & 1 == 1
    }

    /// Collects a bus (LSB-first wire list) into an integer for `lane`.
    pub fn bus(&self, wires: &[WireId], lane: u8) -> u64 {
        assert!(wires.len() <= 64);
        let mut v = 0u64;
        for (i, w) in wires.iter().enumerate() {
            v |= (self.values[w.index()] >> lane & 1) << i;
        }
        v
    }

    /// Collects a bus across **all** lanes at once (transpose), writing
    /// one value per lane into `out`.
    pub fn bus_all_lanes(&self, wires: &[WireId], out: &mut [u64; 64]) {
        out.fill(0);
        for (i, w) in wires.iter().enumerate() {
            let col = self.values[w.index()];
            // Scatter column bit l into out[l] bit i.
            let mut rest = col;
            while rest != 0 {
                let l = rest.trailing_zeros() as usize;
                out[l] |= 1 << i;
                rest &= rest - 1;
            }
        }
    }
}

/// Convenience helpers to feed integer operands into input buses.
pub fn bit_of(v: u64, i: usize) -> bool {
    v >> i & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    /// A 2-bit adder built by hand: out = a + b (3 bits).
    fn tiny_adder() -> Netlist {
        let mut b = NetlistBuilder::new("tiny-add");
        let a0 = b.input();
        let a1 = b.input();
        let b0 = b.input();
        let b1 = b.input();
        let s0 = b.xor(a0, b0);
        let c0 = b.and(a0, b0);
        let x1 = b.xor(a1, b1);
        let s1 = b.xor(x1, c0);
        let c1a = b.and(a1, b1);
        let c1b = b.and(x1, c0);
        let c1 = b.or(c1a, c1b);
        b.finish(vec![s0, s1, c1])
    }

    #[test]
    fn adder_truth_table() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        for a in 0u64..4 {
            for bb in 0u64..4 {
                ev.run(
                    &net,
                    |i| match i {
                        0 => bit_of(a, 0),
                        1 => bit_of(a, 1),
                        2 => bit_of(bb, 0),
                        _ => bit_of(bb, 1),
                    },
                    &FaultSet::none(),
                );
                assert_eq!(ev.bus(net.outputs(), 0), a + bb, "{a}+{bb}");
            }
        }
    }

    #[test]
    fn per_lane_faults_are_independent() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        // Fault gate 0 (s0 xor) stuck-at-1 in lane 3 only; a=b=0 so the
        // fault forces sum bit 0 to 1 in lane 3.
        let mut fs = FaultSet::none();
        fs.add(0, 3, true);
        ev.run(&net, |_| false, &fs);
        assert_eq!(ev.bus(net.outputs(), 0), 0, "lane 0 fault-free");
        assert_eq!(ev.bus(net.outputs(), 3), 1, "lane 3 faulted");
        for lane in [1u8, 2, 4, 63] {
            assert_eq!(ev.bus(net.outputs(), lane), 0);
        }
    }

    #[test]
    fn stuck_at_zero_masks_ones() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        // a=1, b=0 → s0 = 1; stuck-at-0 on gate 0 flattens it in lane 5.
        let mut fs = FaultSet::none();
        fs.add(0, 5, false);
        ev.run(&net, |i| i == 0, &fs);
        assert_eq!(ev.bus(net.outputs(), 0), 1);
        assert_eq!(ev.bus(net.outputs(), 5), 0);
    }

    #[test]
    fn fault_masks_reset_between_runs() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        let mut fs = FaultSet::none();
        fs.add(0, 0, true);
        ev.run(&net, |_| false, &fs);
        assert_eq!(ev.bus(net.outputs(), 0), 1);
        ev.run(&net, |_| false, &FaultSet::none());
        assert_eq!(ev.bus(net.outputs(), 0), 0, "stale fault leaked");
    }

    #[test]
    fn bus_all_lanes_transposes() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        let fs = FaultSet::lanes(&[(0, true), (1, true)]);
        ev.run(&net, |_| false, &fs);
        let mut out = [0u64; 64];
        ev.bus_all_lanes(net.outputs(), &mut out);
        for lane in 0..64u8 {
            assert_eq!(
                out[lane as usize],
                ev.bus(net.outputs(), lane),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn fault_set_lanes_builder() {
        let fs = FaultSet::lanes(&[(3, true), (7, false)]);
        assert!(!fs.is_empty());
        assert!(FaultSet::none().is_empty());
    }
}
