/root/repo/target/debug/deps/harpo_bench-36bdf46a5868fcfa.d: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/debug/deps/libharpo_bench-36bdf46a5868fcfa.rlib: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/debug/deps/libharpo_bench-36bdf46a5868fcfa.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
