/root/repo/target/release/deps/harpo_core-663b1719408bf487.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/release/deps/harpo_core-663b1719408bf487: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/evaluator.rs:
crates/core/src/memo.rs:
crates/core/src/presets.rs:
