//! The graded single-precision FP multiplier circuit.
//!
//! A 24×24 significand array multiplier plus exponent arithmetic,
//! single-step normalisation and truncation, with special-case priority
//! muxes. Bit-exact against `harpo_isa::softfp::fmul`.

use crate::components::{const_bus, is_zero, ripple_add, ripple_sub};
use crate::eval::{bit_of, Evaluator, FaultSet};
use crate::fp_common::{decode_fp, inf_bus, pack_fp, qnan_bus, select, zero_bus};
use crate::netlist::{Netlist, NetlistBuilder, WireId};
use std::sync::OnceLock;

/// The single-precision FP multiplier.
#[derive(Debug)]
pub struct FpMulCircuit {
    net: Netlist,
    out: Vec<WireId>,
}

impl FpMulCircuit {
    /// Builds the circuit (prefer the shared [`fp_multiplier`] instance).
    pub fn build() -> FpMulCircuit {
        let mut b = NetlistBuilder::new("fp-mul-f32");
        let a_bus = b.input_bus(32);
        let b_bus = b.input_bus(32);
        let fa = decode_fp(&mut b, &a_bus);
        let fb = decode_fp(&mut b, &b_bus);
        let s = b.xor(fa.sign, fb.sign);

        // 24×24 significand array → 48-bit product.
        let mut rows: Vec<Vec<WireId>> = Vec::with_capacity(24);
        for i in 0..24 {
            let row: Vec<WireId> = (0..24).map(|j| b.and(fa.sig[j], fb.sig[i])).collect();
            rows.push(row);
        }
        let mut acc: Vec<WireId> = (0..48)
            .map(|k| if k < 24 { rows[0][k] } else { WireId::ZERO })
            .collect();
        for (i, row) in rows.iter().enumerate().skip(1) {
            let addend: Vec<WireId> = (0..48)
                .map(|k| {
                    if k >= i && k < i + 24 {
                        row[k - i]
                    } else {
                        WireId::ZERO
                    }
                })
                .collect();
            let (sum, _) = ripple_add(&mut b, &acc, &addend, WireId::ZERO);
            acc = sum;
        }
        let p47 = acc[47];
        // Mantissa: bits [24..=46] when the product has 48 significant
        // bits, else [23..=45] (truncation rounding).
        let m: Vec<WireId> = (0..23)
            .map(|i| b.mux(p47, acc[i + 24], acc[i + 23]))
            .collect();

        // Exponent: e = ea + eb - 127 + p47, computed in 10 bits
        // (two's complement; -127 ≡ 897 mod 1024).
        let mut ea10 = fa.exp.clone();
        ea10.extend_from_slice(&[WireId::ZERO, WireId::ZERO]);
        let mut eb10 = fb.exp.clone();
        eb10.extend_from_slice(&[WireId::ZERO, WireId::ZERO]);
        let (esum, _) = ripple_add(&mut b, &ea10, &eb10, WireId::ZERO);
        let bias = const_bus(897, 10);
        let (e10, _) = ripple_add(&mut b, &esum, &bias, p47);
        let neg = e10[9];
        let e_zero = is_zero(&mut b, &e10);
        let under = b.or(neg, e_zero);
        let (_, ge255) = ripple_sub(&mut b, &e10, &const_bus(255, 10));
        let not_neg = b.not(neg);
        let over = b.and(ge255, not_neg);

        let mut r = pack_fp(s, &e10[..8], &m);
        let z = zero_bus(s);
        r = select(&mut b, under, &z, &r);
        let inf_s = inf_bus(s);
        r = select(&mut b, over, &inf_s, &r);

        // Specials, highest priority last.
        let any_zero = b.or(fa.is_zero, fb.is_zero);
        r = select(&mut b, any_zero, &z, &r);
        let any_inf = b.or(fa.is_inf, fb.is_inf);
        r = select(&mut b, any_inf, &inf_s, &r);
        let inf_times_zero = b.and(any_inf, any_zero);
        let qn = qnan_bus();
        r = select(&mut b, inf_times_zero, &qn, &r);
        let nan_any = b.or(fa.is_nan, fb.is_nan);
        r = select(&mut b, nan_any, &qn, &r);

        let net = b.finish(r.clone());
        FpMulCircuit { net, out: r }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Evaluates lane 0.
    pub fn eval(&self, ev: &mut Evaluator, a: u32, b: u32, faults: &FaultSet) -> u32 {
        ev.run(
            &self.net,
            |i| {
                if i < 32 {
                    bit_of(a as u64, i)
                } else {
                    bit_of(b as u64, i - 32)
                }
            },
            faults,
        );
        ev.bus(&self.out, 0) as u32
    }

    /// Packed evaluation across fault lanes.
    pub fn eval_lanes(
        &self,
        ev: &mut Evaluator,
        a: u32,
        b: u32,
        faults: &FaultSet,
        out: &mut [u64; 64],
    ) {
        ev.run(
            &self.net,
            |i| {
                if i < 32 {
                    bit_of(a as u64, i)
                } else {
                    bit_of(b as u64, i - 32)
                }
            },
            faults,
        );
        ev.bus_all_lanes(&self.out, out);
    }
}

/// The process-wide FP multiplier circuit (built once).
pub fn fp_multiplier() -> &'static FpMulCircuit {
    static C: OnceLock<FpMulCircuit> = OnceLock::new();
    C.get_or_init(FpMulCircuit::build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::softfp;

    fn check(a: u32, b: u32) {
        let c = fp_multiplier();
        let mut ev = Evaluator::new(c.netlist());
        let got = c.eval(&mut ev, a, b, &FaultSet::none());
        let want = softfp::fmul(a, b);
        assert_eq!(
            got,
            want,
            "fmul({:#010x} [{}], {:#010x} [{}]) = {:#010x}, want {:#010x}",
            a,
            f32::from_bits(a),
            b,
            f32::from_bits(b),
            got,
            want
        );
    }

    #[test]
    fn simple_products() {
        for (a, b) in [
            (2.0f32, 3.0f32),
            (1.5, 1.5),
            (-4.0, 0.25),
            (0.1, 10.0),
            (1e19, 1e19),
            (1e-20, 1e-20),
            (-0.0, 7.0),
        ] {
            check(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn special_values() {
        let inf = f32::INFINITY.to_bits();
        let nan = softfp::QNAN;
        for (a, b) in [
            (inf, 2.0f32.to_bits()),
            (inf, 0u32),
            (0, inf),
            (nan, 1.0f32.to_bits()),
            (0, 0),
            (3, 7), // denormals flush
        ] {
            check(a, b);
        }
    }

    #[test]
    fn seeded_random_equivalence() {
        let c = fp_multiplier();
        let mut ev = Evaluator::new(c.netlist());
        let mut s = 0x1357_9BDFu64;
        for i in 0..2_000 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = s as u32;
            let b = (s >> 32) as u32;
            let got = c.eval(&mut ev, a, b, &FaultSet::none());
            let want = softfp::fmul(a, b);
            assert_eq!(got, want, "iter {i}: fmul({a:#010x}, {b:#010x})");
        }
    }

    #[test]
    fn gate_population_is_realistic() {
        assert!(fp_multiplier().netlist().gate_count() > 3_000);
    }
}
