/root/repo/target/release/deps/harpo_uarch-39d3ca721e7077db.d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/release/deps/harpo_uarch-39d3ca721e7077db: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

crates/uarch/src/lib.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/config.rs:
crates/uarch/src/core.rs:
crates/uarch/src/trace.rs:
