/root/repo/target/release/deps/harpo_bench-cb2a779f1e211422.d: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/release/deps/libharpo_bench-cb2a779f1e211422.rlib: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/release/deps/libharpo_bench-cb2a779f1e211422.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
