//! The `harpo` subcommands.

use crate::args::Args;
use harpo_core::{presets, Evaluator, Harpocrates, Scale};
use harpo_coverage::TargetStructure;
use harpo_faultsim::{
    build_campaign_trail, measure_detection_streamed, CampaignConfig, StreamSettings,
};
use harpo_isa::form::Catalog;
use harpo_isa::program::Program;
use harpo_isa::{from_container, to_container};
use harpo_museqgen::{GenConstraints, Generator};
use harpo_telemetry::{
    effective_threads, JsonlSink, Metrics, Profiler, Record, Sink, StderrSink, Telemetry,
    SCHEMA_VERSION,
};
use harpo_uarch::OooCore;
use std::sync::Arc;

/// Prints the top-level usage text.
pub fn usage() {
    eprintln!(
        "harpo — hardware-in-the-loop CPU test program generation

USAGE:
  harpo refine   --structure <s> [--scale reduced|paper] [--out test.hxpf] [--threads N]
                 [--journal run.jsonl] [--stream-every N] [--profile] [--sample-ms N]
                 [--quiet] [--verbose]
  harpo generate --insts <n> [--seed <n>] [--out test.hxpf]
  harpo grade    --structure <s> [--faults N] [--journal run.jsonl] [--stream-ms N]
                 [--budget-ms N] [--profile] [--quiet] [--verbose] <test.hxpf>
  harpo autopsy  --structure <s> [--faults N] [--seed N] [--journal run.jsonl]
                 [--heatmap heatmap.json] [--trace trace.json] [--quiet] [--verbose]
                 <test.hxpf>
  harpo simulate <test.hxpf>
  harpo disasm   [--limit N] <test.hxpf>
  harpo report   <run.jsonl | BENCH_*.json>... [--out REPORT.md] [--trace trace.json]
  harpo profile  <run.jsonl> [--top N] [--out PROFILE.md] [--folded f.folded]
                 [--speedscope s.json]
  harpo diff     <a.jsonl> <b.jsonl> [--out DIFF.md]
  harpo archive  <run.jsonl | BENCH_*.json>... [--index results/history.jsonl] [--id name]
  harpo history  [--index results/history.jsonl] [--out HISTORY.md]
  harpo watch    <run.jsonl> [--interval-ms 500] [--once] [--json]
  harpo info

STRUCTURES: irf, l1d, int-adder, int-mul, fp-adder, fp-mul

OBSERVABILITY:
  --journal <path>  write a machine-readable JSONL run journal (one
                    record per refinement iteration / campaign, plus a
                    summary with the full counter snapshot)
  harpo autopsy     forensics-enabled campaign: per-fault autopsy records
                    (divergence site, masking mechanism, detection
                    latency) and per-structure bit-level heatmaps with
                    the ACE-residency overlay
  harpo report      render journals and bench snapshots into a
                    self-contained Markdown report, fully offline
  harpo diff        compare two run journals: outcome transition matrix
                    keyed by stable fault identity, newly silent/detected
                    faults, counter deltas, first divergent record
                    (exit 1 on drift)
  harpo archive     append runs to the JSONL run index under results/
  harpo history     render the run index as Markdown trend tables
  --trace <path>    export journal records as a Chrome/Perfetto
                    trace_event file (open in ui.perfetto.dev)
  --stream-ms N     grade: emit live progress/heartbeat records to the
                    journal every N ms (schema v4; 0 = off, the default)
  --budget-ms N     grade: stop the campaign gracefully at a unit
                    boundary after N ms, journalling a resumable cursor
  --stream-every N  refine: journal progress/resource records every N
                    rounds plus evaluator heartbeats (0 = off)
  --profile         refine/grade: journal schema-v6 `profile` records
                    (per-thread span self-times) and `cost` records
                    (per-fault-class replay cost); off by default and
                    free when off, search/outcomes bit-identical
  --sample-ms N     refine: with --profile, also run the sampling
                    ticker at N ms cadence (0 = off, the default)
  harpo profile     render a profiled journal: top-N hotspot table,
                    sampling tallies, per-fault cost matrix; --folded /
                    --speedscope export flamegraph + speedscope files
  harpo watch       tail a live journal: progress bar, ETA, outcome
                    counts, per-worker heartbeats, stall alerts
  --verbose         mirror journal records to stderr, human-readable
  --quiet           suppress progress output on stdout"
    );
}

/// Switch names shared by the journalling subcommands.
pub(crate) const SWITCHES: &[&str] = &["quiet", "verbose", "profile"];

/// Builds the telemetry handle from `--journal` / `--verbose`.
pub(crate) fn telemetry_of(args: &Args) -> Result<Telemetry, String> {
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    if let Some(path) = args.get("journal") {
        let sink = JsonlSink::create(path).map_err(|e| format!("--journal {path}: {e}"))?;
        sinks.push(Arc::new(sink));
    }
    if args.has("verbose") {
        sinks.push(Arc::new(StderrSink));
    }
    Ok(Telemetry::fanout(sinks))
}

/// Emits the schema-v5 `meta` header record: schema version, git
/// commit, resolved thread count, and a hash of the run configuration.
/// Every journalling subcommand writes it first, so `harpo diff` can
/// say *which build with which config* produced each side. The record
/// names the run environment, not its results, and is excluded from
/// canonical (bit-identity) comparisons.
pub(crate) fn emit_meta(telemetry: &Telemetry, threads: usize, config: &str) {
    telemetry.emit(|| {
        Record::new("meta")
            .field("schema", SCHEMA_VERSION)
            .field("git_commit", git_commit())
            .field("threads", effective_threads(threads))
            .field("config_hash", config_hash(config))
    });
}

/// The current git commit (short), or `unknown` outside a work tree.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// FNV-128 hash of the config's debug rendering — enough to tell two
/// runs apart without journalling the whole config.
fn config_hash(config: &str) -> String {
    let mut h = harpo_isa::Fnv128::new();
    use std::hash::Hasher as _;
    h.write(config.as_bytes());
    format!("{:016x}", h.finish())
}

pub(crate) fn load(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    from_container(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn save(prog: &Program, path: &str) -> Result<(), String> {
    std::fs::write(path, to_container(prog)).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// `harpo refine` — run the Harpocrates loop for a structure.
pub fn refine(argv: &[String]) -> Result<(), String> {
    let args = Args::parse_with_switches(argv, SWITCHES)?;
    let structure = args.structure()?;
    let scale = match args.get("scale") {
        None => Scale::Reduced,
        Some(s) => Scale::parse(s).ok_or_else(|| format!("bad --scale {s}"))?,
    };
    let threads: usize = args.num("threads", 0)?;
    let quiet = args.has("quiet");
    let telemetry = telemetry_of(&args)?;
    let (constraints, mut loop_cfg) = presets::preset(structure, scale);
    loop_cfg.threads = threads;
    emit_meta(
        &telemetry,
        threads,
        &format!("refine {structure} {scale:?} {constraints:?} {loop_cfg:?}"),
    );
    if !quiet {
        println!(
            "refining for {structure}: population {}, top-{}, {} iterations, {}-instruction programs",
            loop_cfg.population, loop_cfg.top_k, loop_cfg.iterations, constraints.n_insts
        );
    }
    let mut h = Harpocrates::new(
        Generator::new(constraints),
        Evaluator::new(OooCore::default(), structure),
        loop_cfg,
    )
    .with_telemetry(telemetry)
    .with_streaming(args.num("stream-every", 0)?);
    if args.has("profile") {
        let profiler = Profiler::new();
        let sample_ms: u64 = args.num("sample-ms", 0)?;
        if sample_ms > 0 {
            profiler.start_sampler(std::time::Duration::from_millis(sample_ms));
        }
        h = h.with_profiler(profiler);
    }
    let report = h.run();
    if !quiet {
        for s in &report.samples {
            println!(
                "  iter {:>5}  best coverage {:>8.4}%",
                s.iteration,
                s.top_coverages[0] * 100.0
            );
        }
    }
    println!(
        "champion coverage {:.4}% ({:.0} inst/s loop throughput)",
        report.champion_coverage * 100.0,
        report.timing.instructions_per_second()
    );
    if let Some(path) = args.get("out") {
        save(&report.champion, path)?;
    }
    Ok(())
}

/// `harpo generate` — one constrained-random program, no refinement.
pub fn generate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let n_insts: usize = args.num("insts", 5_000)?;
    let seed: u64 = args.num("seed", 1)?;
    let gen = Generator::new(GenConstraints {
        n_insts,
        ..GenConstraints::default()
    });
    let prog = gen.generate(seed);
    println!(
        "generated `{}`: {} instructions, {} bytes of machine code",
        prog.name,
        prog.len(),
        prog.encode().len()
    );
    if let Some(path) = args.get("out") {
        save(&prog, path)?;
    }
    Ok(())
}

/// `harpo grade` — SFI campaign for a stored program.
pub fn grade(argv: &[String]) -> Result<(), String> {
    let args = Args::parse_with_switches(argv, SWITCHES)?;
    let structure = args.structure()?;
    let path = args
        .positional
        .first()
        .ok_or("grade needs a <test.hxpf> argument")?;
    let telemetry = telemetry_of(&args)?;
    let prog = load(path)?;
    let ccfg = CampaignConfig {
        n_faults: args.num("faults", 128)?,
        threads: args.num("threads", 0)?,
        profile: args.has("profile"),
        stream: StreamSettings {
            cadence_ms: args.num("stream-ms", 0)?,
            wall_budget_ms: args.num("budget-ms", 0)?,
            ..StreamSettings::default()
        },
        ..CampaignConfig::default()
    };
    emit_meta(
        &telemetry,
        ccfg.threads,
        &format!("grade {structure} {ccfg:?}"),
    );
    let core = OooCore::default();
    let sim = core
        .simulate(&prog, ccfg.cap)
        .map_err(|t| format!("golden run trapped: {t}"))?;
    let coverage = structure.coverage(&sim.trace, core.config());
    let trail = build_campaign_trail(&prog, &ccfg);
    let (result, _) = measure_detection_streamed(
        &prog,
        structure,
        &core,
        &ccfg,
        &sim.output.signature,
        &sim.trace,
        trail.as_ref(),
        &telemetry,
    );
    telemetry.emit(|| {
        let metrics = Metrics::new();
        result.publish(&metrics);
        Record::new("campaign")
            .field("program", prog.name.as_str())
            .field("structure", structure.label())
            .field("coverage", coverage)
            .field("faults", result.injected)
            .field("detection", result.detection())
            .field("sdc", result.sdc)
            .field("crash", result.crash)
            .field("masked", result.masked)
            .field("masked_fast_path", result.masked_fast_path)
            .field("replays", result.replays)
            .field("replay_insts", result.replay_insts)
            .field("replay_insts_skipped", result.replay_insts_skipped)
            .field("checkpoint_hits", result.checkpoint_hits)
            .field("early_exits", result.early_exits)
            .field("counters", metrics.to_value())
    });
    telemetry.flush();
    if !args.has("quiet") {
        println!("program `{}` vs {structure}:", prog.name);
        println!("  hardware coverage  {:.4}%", coverage * 100.0);
        println!("  fault injection    {result}");
    }
    Ok(())
}

/// `harpo simulate` — run a stored program on the OoO model.
pub fn simulate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let path = args
        .positional
        .first()
        .ok_or("simulate needs a <test.hxpf> argument")?;
    let prog = load(path)?;
    let core = OooCore::default();
    let sim = core
        .simulate(&prog, 100_000_000)
        .map_err(|t| format!("trapped: {t}"))?;
    let s = sim.trace.stats;
    println!("program `{}`:", prog.name);
    println!(
        "  {} instructions in {} cycles (IPC {:.2})",
        s.insts,
        s.cycles,
        s.ipc()
    );
    println!(
        "  L1D: {} hits, {} misses, {} writebacks",
        s.l1d_hits, s.l1d_misses, s.l1d_writebacks
    );
    println!(
        "  branches: {} ({} mispredicted)",
        s.branches, s.mispredicts
    );
    println!("  output digest: {:#018x}", sim.output.signature.digest());
    println!("  coverage profile:");
    for st in TargetStructure::ALL {
        println!(
            "    {:<20} {:>8.4}%",
            st.label(),
            st.coverage(&sim.trace, core.config()) * 100.0
        );
    }
    Ok(())
}

/// `harpo disasm` — print a stored program's instructions.
pub fn disasm(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let path = args
        .positional
        .first()
        .ok_or("disasm needs a <test.hxpf> argument")?;
    let prog = load(path)?;
    let limit: usize = args.num("limit", usize::MAX)?;
    println!("; program `{}`, {} instructions", prog.name, prog.len());
    for (i, inst) in prog.insts.iter().take(limit).enumerate() {
        println!("{i:6}: {inst}");
    }
    if prog.len() > limit {
        println!("  ... {} more", prog.len() - limit);
    }
    Ok(())
}

/// `harpo info` — ISA and model summary.
pub fn info(_argv: &[String]) -> Result<(), String> {
    let cat = Catalog::get();
    println!(
        "HX86 ISA: {} instruction forms across {} opcode pages",
        cat.len(),
        cat.page_count()
    );
    let det = cat.deterministic_forms().count();
    println!("  deterministic forms: {det}");
    let core = OooCore::default();
    let cfg = core.config();
    println!(
        "core model: {}-wide OoO, ROB {}, IQ {}, {} physical registers",
        cfg.width, cfg.rob_size, cfg.iq_size, cfg.phys_regs
    );
    println!(
        "L1D: {} KiB, {}-way, {}-byte lines ({} bits graded)",
        cfg.l1d_bytes / 1024,
        cfg.l1d_assoc,
        cfg.l1d_line,
        cfg.l1d_bits()
    );
    println!("graded functional units (gate populations):");
    for u in harpo_gates::GradedUnit::ALL {
        println!("  {:<20} {:>6} gates", u.label(), u.gate_count());
    }
    Ok(())
}
