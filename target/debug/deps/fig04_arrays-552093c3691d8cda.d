/root/repo/target/debug/deps/fig04_arrays-552093c3691d8cda.d: crates/bench/src/bin/fig04_arrays.rs Cargo.toml

/root/repo/target/debug/deps/libfig04_arrays-552093c3691d8cda.rmeta: crates/bench/src/bin/fig04_arrays.rs Cargo.toml

crates/bench/src/bin/fig04_arrays.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
