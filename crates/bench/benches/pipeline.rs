//! Criterion microbenchmarks of every Harpocrates pipeline stage —
//! generation, mutation, compilation (encode), microarchitectural
//! evaluation, coverage analysis and gate-level fault screening — so
//! performance regressions in the engine itself are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use harpo_coverage::TargetStructure;
use harpo_faultsim::screen_faults;
use harpo_gates::{GateFault, GradedUnit, UnitEvaluators};
use harpo_museqgen::{GenConstraints, Generator, Mutator};
use harpo_uarch::OooCore;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let gen = Generator::new(GenConstraints {
        n_insts: 1_000,
        ..GenConstraints::default()
    });
    let mutator = Mutator::new(gen.clone());
    let prog = gen.generate(7);
    let core = OooCore::default();

    c.bench_function("generate_1k_inst_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(gen.generate(seed))
        })
    });

    c.bench_function("mutate_1k_inst_program", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mutator.mutate(&prog, seed))
        })
    });

    c.bench_function("encode_1k_inst_program", |b| {
        b.iter(|| black_box(prog.encode()))
    });

    c.bench_function("ooo_simulate_1k_inst", |b| {
        b.iter(|| black_box(core.simulate(&prog, 1_000_000).unwrap()))
    });

    let sim = core.simulate(&prog, 1_000_000).unwrap();
    c.bench_function("irf_ace_analysis", |b| {
        b.iter(|| black_box(TargetStructure::Irf.coverage(&sim.trace, core.config())))
    });
    c.bench_function("l1d_ace_analysis", |b| {
        b.iter(|| black_box(TargetStructure::L1d.coverage(&sim.trace, core.config())))
    });
    c.bench_function("ibr_intadd_analysis", |b| {
        b.iter(|| black_box(TargetStructure::IntAdder.coverage(&sim.trace, core.config())))
    });

    let faults: Vec<GateFault> = (0..64u32)
        .map(|g| GateFault {
            unit: GradedUnit::IntAdder,
            gate: g * 5 % GradedUnit::IntAdder.gate_count() as u32,
            stuck_one: g % 2 == 0,
        })
        .collect();
    c.bench_function("screen_64_adder_faults", |b| {
        let mut ev = UnitEvaluators::new();
        b.iter(|| {
            black_box(screen_faults(
                &sim.trace,
                GradedUnit::IntAdder,
                &faults,
                &mut ev,
            ))
        })
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(pipeline);
