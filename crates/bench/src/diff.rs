//! Benchmark regression gating: compare a fresh `BENCH_*.json` snapshot
//! against the committed baseline and fail on regressions.
//!
//! The gated quantities default to the *speedup* keys (higher is
//! better) — the ones the paper's claims rest on — because raw
//! nanosecond timings vary with the host, while speedups are ratios of
//! two timings from the same machine and stay comparable across hosts.
//! A key regresses when `fresh < baseline * (1 - threshold)`.

use harpo_telemetry::json::{self, Value};

/// Default allowed relative drop before a key counts as regressed.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// Coefficient-of-variation ceiling above which a gated key's timings
/// count as noisy. The harness writes a `<key>_cov` companion next to
/// each timed key (stddev / mean of the per-iteration wall times); when
/// either side's companion exceeds this, the verdict for that key rests
/// on measurements that wobbled by more than the gate threshold itself,
/// so the diff flags it rather than let a quiet rerun "fix" a gate.
pub const NOISY_COV: f64 = 0.10;

/// One gated benchmark key.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Benchmark key.
    pub key: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// `fresh / baseline` (1.0 when the baseline is zero).
    pub ratio: f64,
    /// Whether this key dropped below the threshold.
    pub regressed: bool,
    /// Whether this key *rose* beyond the threshold — not a gate
    /// failure, but worth surfacing: an unexplained speedup is either a
    /// real win to lock in by re-baselining, or a sign the benchmark
    /// stopped measuring what it used to.
    pub improved: bool,
    /// The worse of the two sides' `<key>_cov` companions, when either
    /// file carries one (0.0 otherwise).
    pub cov: f64,
    /// Whether [`cov`](Self::cov) exceeds [`NOISY_COV`] — the verdict
    /// stands, but the measurement behind it was unstable.
    pub noisy: bool,
}

/// The comparison across all gated keys.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-key comparison, in baseline key order.
    pub rows: Vec<DiffRow>,
    /// The relative-drop threshold applied.
    pub threshold: f64,
}

impl DiffRow {
    /// Relative change in percent, negative for drops (`-17.3` means the
    /// fresh value is 17.3% below the baseline).
    pub fn delta_pct(&self) -> f64 {
        (self.ratio - 1.0) * 100.0
    }
}

impl DiffReport {
    /// Whether any gated key regressed.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// One line per regressed key with its percentage delta, in gate
    /// order — the gate prints *all* of them before failing, so a run
    /// that regresses three keys doesn't take three CI round-trips to
    /// fix.
    pub fn regression_lines(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter(|r| r.regressed)
            .map(|r| {
                format!(
                    "{}: {:.4} -> {:.4} ({:+.1}%, allowed -{:.0}%)",
                    r.key,
                    r.baseline,
                    r.fresh,
                    r.delta_pct(),
                    self.threshold * 100.0
                )
            })
            .collect()
    }

    /// One line per noisy key with its worst coefficient of variation.
    /// Informational like improvements: a noisy key still gates on its
    /// values, but CI prints these so an unstable measurement gets a
    /// quieter runner or more reps instead of silently flaky gates.
    pub fn noisy_lines(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter(|r| r.noisy)
            .map(|r| {
                format!(
                    "{}: CoV {:.1}% exceeds {:.0}% — per-iteration timings were unstable",
                    r.key,
                    r.cov * 100.0,
                    NOISY_COV * 100.0
                )
            })
            .collect()
    }

    /// One line per improved key with its percentage delta, mirroring
    /// [`regression_lines`](Self::regression_lines). Informational: an
    /// improvement never fails the gate, but CI prints these so a real
    /// win gets re-baselined instead of becoming invisible headroom
    /// that masks the next regression.
    pub fn improvement_lines(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter(|r| r.improved)
            .map(|r| {
                format!(
                    "{}: {:.4} -> {:.4} ({:+.1}%)",
                    r.key,
                    r.baseline,
                    r.fresh,
                    r.delta_pct()
                )
            })
            .collect()
    }

    /// The comparison as a self-contained Markdown summary — the CI
    /// artifact rendering. One table row per gated key with its delta
    /// and verdict, then the verdict line.
    pub fn to_markdown(&self, baseline_path: &str, fresh_path: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Bench gate: `{fresh_path}` vs `{baseline_path}`\n\n"
        ));
        out.push_str(&format!(
            "Threshold: ±{:.0}% on {} gated key(s).\n\n",
            self.threshold * 100.0,
            self.rows.len()
        ));
        out.push_str("| key | baseline | fresh | Δ | verdict |\n|---|---|---|---|---|\n");
        for r in &self.rows {
            let verdict = if r.regressed {
                "**regressed**"
            } else if r.improved {
                "improved"
            } else {
                "ok"
            };
            let noise = if r.noisy {
                format!(" (noisy: CoV {:.1}%)", r.cov * 100.0)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "| `{}` | {:.4} | {:.4} | {:+.1}% | {verdict}{noise} |\n",
                r.key,
                r.baseline,
                r.fresh,
                r.delta_pct()
            ));
        }
        out.push('\n');
        if self.regressed() {
            out.push_str(&format!(
                "Verdict: **regressed** — {} key(s) beyond the threshold.\n",
                self.rows.iter().filter(|r| r.regressed).count()
            ));
        } else {
            out.push_str("Verdict: **ok** — no gated key regressed.\n");
        }
        out
    }
}

fn flat_numbers(path: &str, content: &str) -> Result<Vec<(String, f64)>, String> {
    let v = json::parse(content).map_err(|e| format!("{path}: {e}"))?;
    let Value::Obj(fields) = v else {
        return Err(format!("{path}: expected a flat JSON object"));
    };
    fields
        .into_iter()
        .map(|(k, v)| {
            v.as_f64()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("{path}: key `{k}` is not a number"))
        })
        .collect()
}

/// Compares `fresh` against `baseline` (both flat `BENCH_*.json`
/// contents) on the gated keys.
///
/// With `keys: None`, gates every key containing `speedup` that is
/// present in both files (and errors if there are none — a silent empty
/// gate would pass vacuously). `<key>_cov` noise companions are never
/// auto-gated — they describe the stability of a measurement, not its
/// value — but when present they mark the gated key as noisy above
/// [`NOISY_COV`]. With an explicit key list, every named key must exist
/// in both files.
pub fn diff(
    baseline_path: &str,
    baseline: &str,
    fresh_path: &str,
    fresh: &str,
    threshold: f64,
    keys: Option<&[String]>,
) -> Result<DiffReport, String> {
    if !(0.0..1.0).contains(&threshold) {
        return Err(format!("threshold {threshold} must be in [0, 1)"));
    }
    let base = flat_numbers(baseline_path, baseline)?;
    let new = flat_numbers(fresh_path, fresh)?;
    let lookup = |side: &[(String, f64)], key: &str| -> Option<f64> {
        side.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    };

    let gated: Vec<String> = match keys {
        Some(list) => {
            for k in list {
                if lookup(&base, k).is_none() {
                    return Err(format!("{baseline_path}: missing key `{k}`"));
                }
                if lookup(&new, k).is_none() {
                    return Err(format!("{fresh_path}: missing key `{k}`"));
                }
            }
            list.to_vec()
        }
        None => {
            let auto: Vec<String> = base
                .iter()
                .filter(|(k, _)| {
                    k.contains("speedup") && !k.ends_with("_cov") && lookup(&new, k).is_some()
                })
                .map(|(k, _)| k.clone())
                .collect();
            if auto.is_empty() {
                return Err(format!(
                    "no speedup keys shared by {baseline_path} and {fresh_path}; \
                     pass --keys to gate explicitly"
                ));
            }
            auto
        }
    };

    let rows = gated
        .iter()
        .map(|key| {
            let b = lookup(&base, key).expect("validated above");
            let f = lookup(&new, key).expect("validated above");
            let ratio = if b == 0.0 { 1.0 } else { f / b };
            let companion = format!("{key}_cov");
            let cov = lookup(&base, &companion)
                .unwrap_or(0.0)
                .max(lookup(&new, &companion).unwrap_or(0.0));
            DiffRow {
                key: key.clone(),
                baseline: b,
                fresh: f,
                ratio,
                regressed: f < b * (1.0 - threshold),
                improved: f > b * (1.0 + threshold),
                cov,
                noisy: cov > NOISY_COV,
            }
        })
        .collect();
    Ok(DiffReport { rows, threshold })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{"evaluate_population_64x300_t4":4000000,
        "population_speedup_t4":2.0,"population_speedup_t1":1.6,
        "simulate_into_speedup":1.5}"#;

    fn run(fresh: &str, threshold: f64, keys: Option<&[String]>) -> Result<DiffReport, String> {
        diff("base.json", BASE, "fresh.json", fresh, threshold, keys)
    }

    #[test]
    fn matching_snapshots_pass() {
        let r = run(BASE, DEFAULT_THRESHOLD, None).unwrap();
        assert!(!r.regressed());
        // All three speedup keys gated, the raw timing ignored.
        assert_eq!(r.rows.len(), 3);
        assert!(r.rows.iter().all(|row| row.ratio == 1.0));
    }

    #[test]
    fn drops_beyond_the_threshold_regress() {
        let fresh = r#"{"population_speedup_t4":1.7,"population_speedup_t1":1.58,
            "simulate_into_speedup":1.5}"#;
        let r = run(fresh, 0.10, None).unwrap();
        assert!(r.regressed());
        let t4 = r.rows.iter().find(|x| x.key.ends_with("t4")).unwrap();
        assert!(t4.regressed, "1.7 < 2.0 * 0.9");
        let t1 = r.rows.iter().find(|x| x.key.ends_with("t1")).unwrap();
        assert!(!t1.regressed, "1.58 >= 1.6 * 0.9 stays within tolerance");
    }

    #[test]
    fn improvements_never_regress() {
        let fresh = r#"{"population_speedup_t4":3.0,"population_speedup_t1":2.0,
            "simulate_into_speedup":9.9}"#;
        assert!(!run(fresh, 0.10, None).unwrap().regressed());
    }

    #[test]
    fn explicit_keys_gate_exactly_those() {
        let keys = vec!["evaluate_population_64x300_t4".to_string()];
        let fresh = r#"{"evaluate_population_64x300_t4":1000000}"#;
        let r = run(fresh, 0.10, Some(&keys)).unwrap();
        assert_eq!(r.rows.len(), 1);
        // Raw timings gate on the same rule: lower than baseline−10%
        // counts as a drop of the *value*, which for a timing key means
        // "faster" — callers opting into timing keys accept that
        // direction. The default speedup gate avoids the ambiguity.
        assert!(r.rows[0].regressed);
    }

    #[test]
    fn missing_keys_and_bad_inputs_error() {
        let keys = vec!["nope".to_string()];
        assert!(run(BASE, 0.10, Some(&keys)).unwrap_err().contains("nope"));
        assert!(run("[1,2]", 0.10, None).unwrap_err().contains("flat JSON"));
        assert!(run(r#"{"a":"x"}"#, 0.10, None).unwrap_err().contains("`a`"));
        assert!(run(r#"{"a":1.0}"#, 0.10, None)
            .unwrap_err()
            .contains("no speedup keys"));
        assert!(run(BASE, 1.5, None).unwrap_err().contains("threshold"));
    }

    #[test]
    fn every_regressed_key_is_reported_with_its_delta() {
        let fresh = r#"{"population_speedup_t4":1.0,"population_speedup_t1":1.6,
            "simulate_into_speedup":0.75}"#;
        let r = run(fresh, 0.10, None).unwrap();
        let lines = r.regression_lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].starts_with("population_speedup_t4:"), "{lines:?}");
        assert!(lines[0].contains("(-50.0%"), "{lines:?}");
        assert!(lines[1].starts_with("simulate_into_speedup:"), "{lines:?}");
        assert!(lines[1].contains("(-50.0%"), "{lines:?}");
        assert!(
            lines.iter().all(|l| l.contains("allowed -10%")),
            "{lines:?}"
        );
        // The healthy key is not listed.
        assert!(!lines.iter().any(|l| l.contains("_t1")), "{lines:?}");

        let row = &r.rows[0];
        assert!((row.delta_pct() - -50.0).abs() < 1e-9);
        assert!(run(BASE, 0.10, None).unwrap().regression_lines().is_empty());
    }

    #[test]
    fn improved_keys_are_listed_with_their_delta_but_never_gate() {
        let fresh = r#"{"population_speedup_t4":3.0,"population_speedup_t1":1.6,
            "simulate_into_speedup":1.5}"#;
        let r = run(fresh, 0.10, None).unwrap();
        assert!(!r.regressed());
        let lines = r.improvement_lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("population_speedup_t4:"), "{lines:?}");
        assert!(lines[0].contains("(+50.0%)"), "{lines:?}");
        // Within-threshold keys are neither improved nor regressed.
        assert!(run(BASE, 0.10, None)
            .unwrap()
            .improvement_lines()
            .is_empty());
    }

    #[test]
    fn markdown_summary_carries_every_key_and_the_verdict() {
        let fresh = r#"{"population_speedup_t4":3.0,"population_speedup_t1":1.0,
            "simulate_into_speedup":1.5}"#;
        let r = run(fresh, 0.10, None).unwrap();
        let md = r.to_markdown("base.json", "fresh.json");
        assert!(
            md.contains("## Bench gate: `fresh.json` vs `base.json`"),
            "{md}"
        );
        assert!(
            md.contains("| `population_speedup_t4` | 2.0000 | 3.0000 | +50.0% | improved |"),
            "{md}"
        );
        assert!(
            md.contains("| `population_speedup_t1` | 1.6000 | 1.0000 | -37.5% | **regressed** |"),
            "{md}"
        );
        assert!(
            md.contains("| `simulate_into_speedup` | 1.5000 | 1.5000 | +0.0% | ok |"),
            "{md}"
        );
        assert!(md.contains("Verdict: **regressed** — 1 key(s)"), "{md}");

        let clean = run(BASE, 0.10, None)
            .unwrap()
            .to_markdown("base.json", "fresh.json");
        assert!(clean.contains("Verdict: **ok**"), "{clean}");
    }

    #[test]
    fn cov_companions_are_not_gated_but_mark_their_key_noisy() {
        let base = r#"{"x_speedup":2.0,"x_speedup_cov":0.02,"y_speedup":1.5}"#;
        let fresh = r#"{"x_speedup":2.0,"x_speedup_cov":0.14,"y_speedup":1.5}"#;
        let r = diff("b.json", base, "f.json", fresh, 0.10, None).unwrap();
        // The companion never appears as its own gated row...
        assert_eq!(r.rows.len(), 2, "{:?}", r.rows);
        assert!(r.rows.iter().all(|row| !row.key.ends_with("_cov")));
        // ...but the worse side's CoV marks the gated key noisy.
        let x = r.rows.iter().find(|row| row.key == "x_speedup").unwrap();
        assert!(x.noisy);
        assert!((x.cov - 0.14).abs() < 1e-12);
        assert!(!x.regressed, "noise alone never fails the gate");
        // A key without a companion is quiet by definition.
        let y = r.rows.iter().find(|row| row.key == "y_speedup").unwrap();
        assert!(!y.noisy);
        assert_eq!(y.cov, 0.0);

        let lines = r.noisy_lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("x_speedup: CoV 14.0%"), "{lines:?}");

        let md = r.to_markdown("b.json", "f.json");
        assert!(md.contains("| ok (noisy: CoV 14.0%) |"), "{md}");
        assert!(md.contains("| `y_speedup` | 1.5000 | 1.5000 | +0.0% | ok |"));
    }

    #[test]
    fn a_quiet_cov_stays_unflagged() {
        let base = r#"{"x_speedup":2.0,"x_speedup_cov":0.02}"#;
        let r = diff("b.json", base, "f.json", base, 0.10, None).unwrap();
        assert!(!r.rows[0].noisy);
        assert!(r.noisy_lines().is_empty());
        // Explicitly naming a _cov key still gates it — the exclusion
        // only shapes the default key set.
        let keys = vec!["x_speedup_cov".to_string()];
        let r = diff("b.json", base, "f.json", base, 0.10, Some(&keys)).unwrap();
        assert_eq!(r.rows[0].key, "x_speedup_cov");
    }

    #[test]
    fn zero_baseline_is_not_a_division_crash() {
        let r = diff(
            "b.json",
            r#"{"x_speedup":0.0}"#,
            "f.json",
            r#"{"x_speedup":0.0}"#,
            0.10,
            None,
        )
        .unwrap();
        assert!(!r.regressed());
        assert_eq!(r.rows[0].ratio, 1.0);
    }
}
