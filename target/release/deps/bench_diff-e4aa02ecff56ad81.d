/root/repo/target/release/deps/bench_diff-e4aa02ecff56ad81.d: crates/bench/src/bin/bench_diff.rs

/root/repo/target/release/deps/bench_diff-e4aa02ecff56ad81: crates/bench/src/bin/bench_diff.rs

crates/bench/src/bin/bench_diff.rs:
