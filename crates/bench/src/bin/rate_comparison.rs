//! §VI-A — effective runnable-instruction generation rate:
//! SiliFuzz-style fuzzing vs the Harpocrates loop.
//!
//! The paper measures ≈1,200 runnable instructions/second for SiliFuzz
//! (40 min of fuzzing + filtering) against ≈36,000 generated-and-
//! evaluated instructions/second for Harpocrates — a 30× gap. Both
//! pipelines here are much faster in absolute terms (no Unicorn, no
//! gem5), so the comparison is reported as measured rates plus the
//! ratio.

use harpo_baselines::{SiliFuzz, SiliFuzzConfig};
use harpo_bench::{write_csv, Cli, Harness};
use harpo_core::Scale;
use harpo_coverage::TargetStructure;
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("rate_comparison", &cli);
    let iters = match cli.scale {
        Scale::Paper => 200_000,
        Scale::Reduced => 20_000,
    };

    // SiliFuzz session: fuzz + filter, count runnable instructions.
    let t = Instant::now();
    let mut s = SiliFuzz::new(SiliFuzzConfig {
        seed: 1,
        iterations: iters,
        ..SiliFuzzConfig::default()
    });
    s.run();
    let fuzz_secs = t.elapsed().as_secs_f64();
    let fuzz_rate = s.stats().runnable_instructions as f64 / fuzz_secs;
    println!("SiliFuzz-style session:");
    println!(
        "  inputs {}   decoded {}   runnable {}",
        s.stats().inputs,
        s.stats().decoded,
        s.stats().runnable
    );
    println!(
        "  discard rate {:.1}% (paper: ~2/3)",
        s.stats().discard_rate() * 100.0
    );
    println!(
        "  runnable instructions {} in {:.2}s → {:.0} inst/s",
        s.stats().runnable_instructions,
        fuzz_secs,
        fuzz_rate
    );

    // Harpocrates loop: generated AND evaluated instructions.
    let report = harness.run_harpocrates(TargetStructure::IntAdder, cli.scale, cli.threads);
    let harpo_rate = report.timing.instructions_per_second();
    println!("\nHarpocrates loop:");
    println!(
        "  {} programs evaluated, {} instructions in {:.2}s → {:.0} inst/s",
        report.timing.programs_evaluated,
        report.timing.instructions_processed,
        report.timing.total.as_secs_f64(),
        harpo_rate
    );

    let ratio = harpo_rate / fuzz_rate.max(1e-9);
    println!("\nHarpocrates / SiliFuzz rate ratio: {ratio:.1}× (paper: 30×)");
    write_csv(
        &cli.out_dir,
        "rate_comparison.csv",
        "pipeline,instructions_per_second",
        &[
            format!("silifuzz,{fuzz_rate:.1}"),
            format!("harpocrates,{harpo_rate:.1}"),
            format!("ratio,{ratio:.2}"),
        ],
    );
    harness.finish();
}
