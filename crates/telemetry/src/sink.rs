//! Journal sinks and the [`Telemetry`] emission handle.

use crate::record::{is_streaming_kind, Record};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A destination for journal records. Implementations must tolerate
/// concurrent `emit` calls (the pipeline fans out across threads).
pub trait Sink: Send + Sync {
    /// Consumes one record.
    fn emit(&self, record: &Record);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Human-readable journal on stderr, one `kind key=value ...` line per
/// record.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, record: &Record) {
        eprintln!("[harpo] {}", record.to_human());
    }
}

/// Machine-readable journal: one JSON object per line (JSONL).
///
/// Freshness contract for live tailers (`harpo watch`): a streaming
/// record (see [`crate::is_streaming_kind`]) is flushed to disk as part
/// of its own `emit`, and any other record is flushed no later than one
/// flush cadence after emission (when a cadence is configured via
/// [`JsonlSink::with_flush_cadence`]). Everything else rides the
/// `BufWriter` and is flushed on drop.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    flush_cadence: Option<Duration>,
    last_flush: Mutex<Instant>,
}

impl JsonlSink {
    /// Creates (truncating) the journal file.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            flush_cadence: None,
            last_flush: Mutex::new(Instant::now()),
        })
    }

    /// Flushes at most this long after any record is emitted, so a live
    /// tailer sees every record within one cadence even when the journal
    /// carries only buffered (non-streaming) kinds.
    pub fn with_flush_cadence(mut self, cadence: Duration) -> JsonlSink {
        self.flush_cadence = Some(cadence);
        self
    }
}

impl Sink for JsonlSink {
    fn emit(&self, record: &Record) {
        let mut w = self.writer.lock().expect("journal writer poisoned");
        // A journal write failure must never abort a run; drop the line.
        let _ = writeln!(w, "{}", record.to_json());
        let cadence_due = self.flush_cadence.is_some_and(|cadence| {
            let last = self.last_flush.lock().expect("flush clock poisoned");
            last.elapsed() >= cadence
        });
        if cadence_due || is_streaming_kind(record.kind) {
            let _ = w.flush();
            *self.last_flush.lock().expect("flush clock poisoned") = Instant::now();
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("journal writer poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// In-memory sink for tests: share one instance via `Arc` and inspect
/// [`MemorySink::records`] afterwards.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<Record>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Snapshot of everything emitted so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("memory sink poisoned").clone()
    }

    /// Records of one kind.
    pub fn records_of(&self, kind: &str) -> Vec<Record> {
        self.records()
            .into_iter()
            .filter(|r| r.kind == kind)
            .collect()
    }
}

impl Sink for MemorySink {
    fn emit(&self, record: &Record) {
        self.records
            .lock()
            .expect("memory sink poisoned")
            .push(record.clone());
    }
}

/// The cloneable emission handle the pipeline carries.
///
/// With no sink attached ([`Telemetry::off`]) an emit is a single
/// branch: the record-building closure is never invoked, so
/// instrumentation costs ~zero on unobserved runs.
#[derive(Clone, Default)]
pub struct Telemetry {
    sinks: Vec<Arc<dyn Sink>>,
}

impl Telemetry {
    /// A handle with no sinks: all emissions are dropped for free.
    pub fn off() -> Telemetry {
        Telemetry::default()
    }

    /// A handle writing to one sink.
    pub fn to(sink: Arc<dyn Sink>) -> Telemetry {
        Telemetry { sinks: vec![sink] }
    }

    /// A handle fanning out to several sinks.
    pub fn fanout(sinks: Vec<Arc<dyn Sink>>) -> Telemetry {
        Telemetry { sinks }
    }

    /// Whether any sink is attached.
    pub fn enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Emits a record; the closure runs only if a sink is attached.
    pub fn emit(&self, build: impl FnOnce() -> Record) {
        if self.sinks.is_empty() {
            return;
        }
        let record = build();
        for sink in &self.sinks {
            sink.emit(&record);
        }
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_never_builds_the_record() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        t.emit(|| panic!("must not be called"));
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let mem = Arc::new(MemorySink::new());
        let t = Telemetry::to(mem.clone());
        assert!(t.enabled());
        t.emit(|| Record::new("a").field("n", 1u64));
        t.emit(|| Record::new("b").field("n", 2u64));
        let recs = mem.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, "a");
        assert_eq!(recs[1].get("n").unwrap().as_u64(), Some(2));
        assert_eq!(mem.records_of("b").len(), 1);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let m1 = Arc::new(MemorySink::new());
        let m2 = Arc::new(MemorySink::new());
        let t = Telemetry::fanout(vec![m1.clone(), m2.clone()]);
        t.emit(|| Record::new("x"));
        assert_eq!(m1.records().len(), 1);
        assert_eq!(m2.records().len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path =
            std::env::temp_dir().join(format!("harpo-telemetry-test-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            let t = Telemetry::to(Arc::new(sink));
            t.emit(|| Record::new("one").field("v", 0.5));
            t.emit(|| Record::new("two").field("s", "x"));
            t.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::parse(line).unwrap();
            assert!(v.get("kind").is_some());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        // An interrupted run drops the sink without ever calling
        // `flush()`; the journal on disk must still hold every line
        // emitted so far, each parseable.
        let path =
            std::env::temp_dir().join(format!("harpo-telemetry-drop-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            for i in 0..32u64 {
                sink.emit(&Record::new("tick").field("i", i));
            }
            // No flush: Drop must do it.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 32);
        for line in lines {
            crate::json::parse(line).expect("line parses");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_records_are_flushed_immediately() {
        // A live tailer must see a streaming record without waiting for
        // drop/flush — the sink stays alive (mid-run) while we read.
        let path = std::env::temp_dir().join(format!(
            "harpo-telemetry-stream-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Record::new("progress").field("done", 1u64));
        sink.emit(&Record::new("heartbeat").field("worker", 0u64));
        sink.emit(&Record::new("stall").field("worker", 0u64));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "streaming records not fresh");
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cadence_flush_makes_buffered_records_visible() {
        // With a flush cadence configured, a reader observes a buffered
        // (non-streaming) record within one cadence of emission: the
        // first emit after the cadence elapses flushes everything before
        // it too. A zero cadence means every emit flushes.
        let path = std::env::temp_dir().join(format!(
            "harpo-telemetry-cadence-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path)
            .unwrap()
            .with_flush_cadence(Duration::ZERO);
        sink.emit(&Record::new("iteration").field("iter", 0u64));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "cadence flush did not happen");
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn without_cadence_plain_records_stay_buffered() {
        // Guards the default: no cadence, no streaming kind → no flush
        // per record (the hot path keeps its buffered writes).
        let path = std::env::temp_dir().join(format!(
            "harpo-telemetry-buffered-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&Record::new("iteration").field("iter", 0u64));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.is_empty(), "plain record should still be buffered");
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn emission_is_thread_safe() {
        let mem = Arc::new(MemorySink::new());
        let t = Telemetry::to(mem.clone());
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let t = t.clone();
                s.spawn(move || {
                    for j in 0..100u64 {
                        t.emit(|| Record::new("tick").field("v", i * 1000 + j));
                    }
                });
            }
        });
        assert_eq!(mem.records().len(), 400);
    }
}
