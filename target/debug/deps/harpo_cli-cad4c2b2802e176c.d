/root/repo/target/debug/deps/harpo_cli-cad4c2b2802e176c.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_cli-cad4c2b2802e176c.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
