/root/repo/target/debug/deps/seventh_structure-5ea199c90874c079.d: crates/bench/src/bin/seventh_structure.rs Cargo.toml

/root/repo/target/debug/deps/libseventh_structure-5ea199c90874c079.rmeta: crates/bench/src/bin/seventh_structure.rs Cargo.toml

crates/bench/src/bin/seventh_structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
