//! Microarchitecture sensitivity checks: the timing model must respond
//! to configuration changes in the physically expected direction —
//! the property that makes hardware-in-the-loop grading meaningful.

use harpocrates::isa::asm::Asm;
use harpocrates::isa::form::Mnemonic;
use harpocrates::isa::mem::DATA_BASE;
use harpocrates::isa::reg::Gpr::*;
use harpocrates::isa::reg::Width::*;
use harpocrates::uarch::{CoreConfig, OooCore};

fn loop_program(body: impl Fn(&mut Asm), iters: i32) -> harpocrates::isa::Program {
    let mut a = Asm::new("sens");
    a.reg_init.gprs[Rsi.index()] = DATA_BASE;
    a.mov_ri(B64, Rcx, iters);
    a.label("l");
    body(&mut a);
    a.sub_ri(B64, Rcx, 1);
    a.jnz("l");
    a.halt();
    a.finish().unwrap()
}

fn cycles(cfg: CoreConfig, p: &harpocrates::isa::Program) -> u64 {
    OooCore::new(cfg)
        .simulate(p, 10_000_000)
        .unwrap()
        .trace
        .stats
        .cycles
}

#[test]
fn wider_machine_is_faster_on_ilp_code() {
    let p = loop_program(
        |a| {
            a.add_ri(B64, Rax, 1);
            a.add_ri(B64, Rbx, 2);
            a.add_ri(B64, Rdx, 3);
            a.add_ri(B64, Rbp, 4);
        },
        300,
    );
    let narrow = cycles(
        CoreConfig {
            width: 1,
            alu_pipes: 1,
            ..CoreConfig::default()
        },
        &p,
    );
    let wide = cycles(CoreConfig::default(), &p);
    // The loop-closing compare+branch serialises part of each iteration,
    // so the speed-up is below the ALU-count ratio; require ≥1.7×.
    assert!(
        wide * 17 < narrow * 10,
        "4-wide ({wide}) should be ≥1.7x faster than scalar ({narrow})"
    );
}

#[test]
fn longer_miss_latency_hurts_streaming() {
    let p = loop_program(
        |a| {
            a.load(B64, Rax, Rsi, 0);
            a.add_ri(B64, Rsi, 64);
        },
        400,
    );
    let fast_mem = cycles(
        CoreConfig {
            l1d_miss_lat: 10,
            ..CoreConfig::default()
        },
        &p,
    );
    let slow_mem = cycles(
        CoreConfig {
            l1d_miss_lat: 200,
            ..CoreConfig::default()
        },
        &p,
    );
    assert!(
        slow_mem > fast_mem + 1000,
        "200-cycle misses ({slow_mem}) must dwarf 10-cycle ({fast_mem})"
    );
}

#[test]
fn smaller_cache_misses_more() {
    // A 16 KiB working set fits a 32 KiB cache but thrashes an 8 KiB one.
    let p = {
        let mut a = Asm::new("ws");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rdx, 8); // passes
        a.label("pass");
        a.mov_rr(B64, Rdi, Rsi);
        a.mov_ri(B64, Rcx, 256); // 256 lines = 16 KiB
        a.label("l");
        a.load(B64, Rax, Rdi, 0);
        a.add_ri(B64, Rdi, 64);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.sub_ri(B64, Rdx, 1);
        a.jnz("pass");
        a.halt();
        a.finish().unwrap()
    };
    let big = OooCore::new(CoreConfig::default())
        .simulate(&p, 10_000_000)
        .unwrap();
    let small_cfg = CoreConfig {
        l1d_bytes: 8 * 1024,
        ..CoreConfig::default()
    };
    small_cfg.validate();
    let small = OooCore::new(small_cfg).simulate(&p, 10_000_000).unwrap();
    assert!(
        big.trace.stats.l1d_misses <= 260,
        "fits: {}",
        big.trace.stats.l1d_misses
    );
    assert!(
        small.trace.stats.l1d_misses > 1500,
        "thrashes: {}",
        small.trace.stats.l1d_misses
    );
}

#[test]
fn mispredict_penalty_scales_cost() {
    // Data-dependent alternating branches defeat the 2-bit predictor.
    let p = loop_program(
        |a| {
            a.op_ri(Mnemonic::Xor, B64, Rax, 1);
            a.op_ri(Mnemonic::Test, B64, Rax, 1);
            a.jz("even");
            a.add_ri(B64, Rbx, 1);
            a.label("even");
        },
        400,
    );
    let cheap = cycles(
        CoreConfig {
            mispredict_penalty: 2,
            ..CoreConfig::default()
        },
        &p,
    );
    let dear = cycles(
        CoreConfig {
            mispredict_penalty: 40,
            ..CoreConfig::default()
        },
        &p,
    );
    assert!(dear > cheap + 2000, "penalty 40 ({dear}) vs 2 ({cheap})");
}

#[test]
fn division_serializes() {
    let divs = loop_program(
        |a| {
            a.mov_ri(B64, Rax, 1000);
            a.mov_ri(B64, Rdx, 0);
            a.mov_ri(B64, Rbx, 7);
            a.op_r(Mnemonic::DivRax, B64, Rbx);
        },
        200,
    );
    let adds = loop_program(
        |a| {
            a.mov_ri(B64, Rax, 1000);
            a.mov_ri(B64, Rdx, 0);
            a.mov_ri(B64, Rbx, 7);
            a.add_rr(B64, Rax, Rbx);
        },
        200,
    );
    let c_div = cycles(CoreConfig::default(), &divs);
    let c_add = cycles(CoreConfig::default(), &adds);
    assert!(
        c_div > c_add * 2,
        "unpipelined 20-cycle divides ({c_div}) vs adds ({c_add})"
    );
}

#[test]
fn bigger_prf_never_slower() {
    let p = loop_program(
        |a| {
            for r in [Rax, Rbx, Rdx, Rbp, R8, R9, R10, R11] {
                a.add_ri(B64, r, 1);
            }
        },
        200,
    );
    let small = cycles(
        CoreConfig {
            phys_regs: 40,
            ..CoreConfig::default()
        },
        &p,
    );
    let big = cycles(
        CoreConfig {
            phys_regs: 256,
            ..CoreConfig::default()
        },
        &p,
    );
    assert!(big <= small, "256 pregs ({big}) vs 40 ({small})");
}
