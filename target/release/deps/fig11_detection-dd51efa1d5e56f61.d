/root/repo/target/release/deps/fig11_detection-dd51efa1d5e56f61.d: crates/bench/src/bin/fig11_detection.rs

/root/repo/target/release/deps/fig11_detection-dd51efa1d5e56f61: crates/bench/src/bin/fig11_detection.rs

crates/bench/src/bin/fig11_detection.rs:
