//! Cross-crate integration: baseline suites graded by the coverage and
//! fault-injection engines, checking the qualitative relationships the
//! paper's §III-C baseline study establishes.

use harpocrates::baselines::{mibench, opendcdiag};
use harpocrates::coverage::TargetStructure;
use harpocrates::faultsim::{measure_detection_with_golden, CampaignConfig};
use harpocrates::uarch::OooCore;

fn campaign() -> CampaignConfig {
    CampaignConfig {
        n_faults: 48,
        threads: 0,
        ..CampaignConfig::default()
    }
}

#[test]
fn ace_upper_bounds_detection_for_bit_arrays() {
    // ACE is an upper bound of transient detection (§III-C); allow
    // statistical slack for the small campaign size.
    let core = OooCore::default();
    let ccfg = campaign();
    for p in opendcdiag::all().iter().take(4) {
        let sim = core.simulate(p, 50_000_000).unwrap();
        for structure in [TargetStructure::Irf, TargetStructure::L1d] {
            let cov = structure.coverage(&sim.trace, core.config());
            let det = measure_detection_with_golden(
                p,
                structure,
                &core,
                &ccfg,
                &sim.output.signature,
                &sim.trace,
            )
            .detection();
            assert!(
                det <= cov + 0.17,
                "{} on {}: detection {det:.3} above ACE bound {cov:.3}",
                p.name,
                structure
            );
        }
    }
}

#[test]
fn fp_faults_invisible_to_integer_only_kernels() {
    let core = OooCore::default();
    let ccfg = campaign();
    // bitcount and sha are pure integer kernels.
    for p in [mibench::bitcount(), mibench::sha_like()] {
        let sim = core.simulate(&p, 50_000_000).unwrap();
        for structure in [TargetStructure::FpAdder, TargetStructure::FpMultiplier] {
            let det = measure_detection_with_golden(
                &p,
                structure,
                &core,
                &ccfg,
                &sim.output.signature,
                &sim.trace,
            );
            assert_eq!(
                det.detection(),
                0.0,
                "{} must mask all {} faults",
                p.name,
                structure
            );
            assert_eq!(det.masked_fast_path, 48, "screening resolves all");
        }
    }
}

#[test]
fn checking_tests_catch_multiplier_faults_better_than_mul_free_code() {
    let core = OooCore::default();
    let ccfg = campaign();
    let structure = TargetStructure::IntMultiplier;
    let grade = |p: &harpocrates::isa::program::Program| {
        let sim = core.simulate(p, 50_000_000).unwrap();
        measure_detection_with_golden(
            p,
            structure,
            &core,
            &ccfg,
            &sim.output.signature,
            &sim.trace,
        )
        .detection()
    };
    let mxm = grade(&opendcdiag::mxm_int());
    let crc = grade(&opendcdiag::checksum_crc()); // multiplier-free
    assert!(
        mxm > crc,
        "MxM ({mxm:.3}) must beat CRC ({crc:.3}) on multiplier faults"
    );
    assert!(mxm > 0.3, "MxM is multiplication-saturated: {mxm:.3}");
}

#[test]
fn memcheck_dominates_l1d_detection() {
    // The cache-covering test is the L1D outlier, as in the paper's
    // Fig. 4 (one OpenDCDiag test near 80%).
    let core = OooCore::default();
    let ccfg = campaign();
    let structure = TargetStructure::L1d;
    let grade = |p: &harpocrates::isa::program::Program| {
        let sim = core.simulate(p, 50_000_000).unwrap();
        measure_detection_with_golden(
            p,
            structure,
            &core,
            &ccfg,
            &sim.output.signature,
            &sim.trace,
        )
        .detection()
    };
    let mem = grade(&opendcdiag::mem_check());
    assert!(mem > 0.5, "memcheck L1D detection {mem:.3} should be high");
    let sha = grade(&mibench::sha_like());
    assert!(
        mem > sha,
        "memcheck ({mem:.3}) above a streaming kernel ({sha:.3})"
    );
}
