/root/repo/target/debug/deps/harpo_cli-3ccbd77218d90327.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/harpo_cli-3ccbd77218d90327: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
