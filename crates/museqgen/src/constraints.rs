//! Generation constraints: the user-configurable knobs of MuSeqGen
//! (paper §V-A, §V-D).
//!
//! The constraint system encodes the ISA-awareness that distinguishes
//! Harpocrates from byte-level fuzzers:
//!
//! * a **base-register pool** that is never written, so memory operands
//!   always resolve inside the valid region (the paper's `MUL`-clobbers-
//!   `RAX` example cannot happen);
//! * `RSP` is excluded from every destination, and `PUSH`/`POP` are
//!   emitted under a depth budget so the stack never under/overflows;
//! * non-deterministic forms (`RDTSC`, `CPUID`) and the trap-prone
//!   divide family are excluded from the random domain;
//! * memory operands follow a configurable strided pattern inside a
//!   cache-sized region; `MOVAPS` displacements are 16-byte aligned.

use harpo_isa::form::{Catalog, Form, FormId, FuKind, Mnemonic};
use harpo_isa::reg::Gpr;
use serde::{Deserialize, Serialize};

/// Destination-register allocation policy (paper §V-D: "register
/// allocation is configurable, allowing strategies such as constant
/// register dependency distance, random allocation, round-robin...").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegAllocPolicy {
    /// Cycle destinations through the writable pool — maximises the
    /// dependency distance (the paper's choice: balances ILP against
    /// dataflow propagation).
    MaxDependencyDistance,
    /// Uniformly random destinations (subject to ISA constraints).
    Random,
}

/// Memory-operand resolution pattern inside the designated region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemPlan {
    /// Region size in bytes (displacements stay inside it). Must be
    /// ≤ 32 KiB so a 16-bit displacement can reach everywhere.
    pub region: u32,
    /// Fixed stride between consecutive memory references.
    pub stride: u32,
}

impl MemPlan {
    /// The paper's default for non-cache targets: a cache-sized region
    /// with a 64-byte stride.
    pub fn cache_sized() -> MemPlan {
        MemPlan {
            region: 32 * 1024,
            stride: 64,
        }
    }

    /// The L1D-targeting plan (§VI-B2): sequential 8-byte stride across
    /// the full 32 KiB cache image.
    pub fn l1d_sweep() -> MemPlan {
        MemPlan {
            region: 32 * 1024,
            stride: 8,
        }
    }

    /// The displacement of memory reference number `k` for an access of
    /// `size` bytes (alignment enforced; 16-byte accesses get 16-byte
    /// alignment for `MOVAPS`).
    pub fn disp_of(&self, k: u64, size: u32) -> u16 {
        let align = size.max(1).next_power_of_two();
        let off = (k * self.stride as u64) % self.region as u64;
        let off = off & !(align as u64 - 1);
        // Keep the whole access in the region.
        off.min((self.region - align.max(size)) as u64) as u16
    }
}

/// Which broad instruction classes the generator may emit. All classes
/// respect determinism and crash-safety invariants regardless.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConstraints {
    /// Number of generated core instructions (the wrapper's `HALT` is
    /// extra).
    pub n_insts: usize,
    /// Destination allocation policy.
    pub regalloc: RegAllocPolicy,
    /// Memory-operand plan.
    pub mem: MemPlan,
    /// Allow memory-referencing forms.
    pub allow_memory: bool,
    /// Allow SSE forms.
    pub allow_sse: bool,
    /// Allow stack forms (`PUSH`/`POP`), depth-budgeted.
    pub allow_stack: bool,
    /// Allow branch forms (always resolved to the next instruction so
    /// taken and not-taken paths coincide, §V-D).
    pub allow_branches: bool,
    /// Optional whitelist: if non-empty, only these mnemonics are used.
    pub mnemonic_whitelist: Vec<Mnemonic>,
    /// Stack depth budget in 8-byte slots.
    pub stack_slots: u32,
    /// Probability of forcing a store form at each slot (a user-defined
    /// distribution in the sense of §V-D). Stores propagate register
    /// values into memory, where the output signature observes them —
    /// the "data flow propagation" half of the paper's balance.
    pub store_bias: f64,
}

impl Default for GenConstraints {
    fn default() -> Self {
        GenConstraints {
            n_insts: 5_000,
            regalloc: RegAllocPolicy::MaxDependencyDistance,
            mem: MemPlan::cache_sized(),
            allow_memory: true,
            allow_sse: true,
            allow_stack: true,
            allow_branches: true,
            mnemonic_whitelist: Vec::new(),
            stack_slots: 256,
            store_bias: 0.0,
        }
    }
}

/// Registers reserved as memory bases: never written by generated code,
/// initialised to the region base.
pub const BASE_POOL: [Gpr; 4] = [Gpr::Rsi, Gpr::Rdi, Gpr::R14, Gpr::R15];

/// Registers eligible as destinations (everything except the base pool
/// and `RSP`).
pub const WRITABLE_POOL: [Gpr; 11] = [
    Gpr::Rax,
    Gpr::Rcx,
    Gpr::Rdx,
    Gpr::Rbx,
    Gpr::Rbp,
    Gpr::R8,
    Gpr::R9,
    Gpr::R10,
    Gpr::R11,
    Gpr::R12,
    Gpr::R13,
];

impl GenConstraints {
    /// The form domain induced by these constraints.
    pub fn allowed_forms(&self) -> Vec<FormId> {
        Catalog::get()
            .forms()
            .iter()
            .filter(|f| self.form_allowed(f))
            .map(|f| f.id)
            .collect()
    }

    /// Whether one form is inside the constrained domain.
    pub fn form_allowed(&self, f: &Form) -> bool {
        if !f.deterministic {
            return false;
        }
        // HALT would truncate the sequence; the wrapper appends its own.
        if f.mnemonic == Mnemonic::Halt {
            return false;
        }
        // The divide family traps on random operands (divide-by-zero /
        // quotient overflow) — excluded like SiliFuzz excludes
        // crash-prone encodings.
        if f.fu == FuKind::IntDiv {
            return false;
        }
        if !self.allow_memory && f.touches_memory() {
            return false;
        }
        if !self.allow_sse && uses_sse(f) {
            return false;
        }
        if !self.allow_stack && matches!(f.mnemonic, Mnemonic::Push | Mnemonic::Pop) {
            return false;
        }
        if !self.allow_branches && f.is_branch() {
            return false;
        }
        if !self.mnemonic_whitelist.is_empty() && !self.mnemonic_whitelist.contains(&f.mnemonic) {
            return false;
        }
        true
    }
}

/// Does a form touch XMM state?
pub fn uses_sse(f: &Form) -> bool {
    use harpo_isa::form::OpMode::*;
    matches!(f.mode, Xx | Xm | Mx | Xr | Rx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_domain_is_large_and_safe() {
        let c = GenConstraints::default();
        let forms = c.allowed_forms();
        assert!(forms.len() > 200, "domain too small: {}", forms.len());
        let cat = Catalog::get();
        for id in &forms {
            let f = cat.form(*id);
            assert!(f.deterministic);
            assert_ne!(f.fu, FuKind::IntDiv);
        }
    }

    #[test]
    fn filters_apply() {
        let none = GenConstraints {
            allow_memory: false,
            allow_sse: false,
            allow_stack: false,
            allow_branches: false,
            ..GenConstraints::default()
        };
        let cat = Catalog::get();
        for id in none.allowed_forms() {
            let f = cat.form(id);
            assert!(!f.touches_memory(), "{}", f.name());
            assert!(!uses_sse(f), "{}", f.name());
            assert!(!f.is_branch(), "{}", f.name());
        }
    }

    #[test]
    fn whitelist_narrows_domain() {
        let only_mul = GenConstraints {
            mnemonic_whitelist: vec![Mnemonic::Imul2, Mnemonic::MulRax],
            ..GenConstraints::default()
        };
        let cat = Catalog::get();
        let forms = only_mul.allowed_forms();
        assert!(!forms.is_empty());
        for id in forms {
            assert!(matches!(
                cat.form(id).mnemonic,
                Mnemonic::Imul2 | Mnemonic::MulRax
            ));
        }
    }

    #[test]
    fn pools_are_disjoint_and_exclude_rsp() {
        for b in BASE_POOL {
            assert!(!WRITABLE_POOL.contains(&b));
            assert_ne!(b, Gpr::Rsp);
        }
        assert!(!WRITABLE_POOL.contains(&Gpr::Rsp));
        assert_eq!(BASE_POOL.len() + WRITABLE_POOL.len() + 1, 16);
    }

    #[test]
    fn mem_plan_respects_alignment_and_bounds() {
        let plan = MemPlan::l1d_sweep();
        for k in 0..10_000u64 {
            for size in [1u32, 2, 4, 8, 16] {
                let d = plan.disp_of(k, size) as u32;
                assert!(d + size <= plan.region, "k={k} size={size} d={d}");
                assert_eq!(d % size.next_power_of_two().min(16), 0);
            }
        }
        // 16-byte accesses are 16-aligned for MOVAPS.
        assert_eq!(plan.disp_of(3, 16) % 16, 0);
    }
}
