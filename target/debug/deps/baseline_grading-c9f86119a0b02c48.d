/root/repo/target/debug/deps/baseline_grading-c9f86119a0b02c48.d: tests/baseline_grading.rs

/root/repo/target/debug/deps/baseline_grading-c9f86119a0b02c48: tests/baseline_grading.rs

tests/baseline_grading.rs:
