/root/repo/target/debug/deps/harpo_baselines-d946fb5e18e6c153.d: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_baselines-d946fb5e18e6c153.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/kern.rs:
crates/baselines/src/mibench.rs:
crates/baselines/src/opendcdiag.rs:
crates/baselines/src/silifuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
