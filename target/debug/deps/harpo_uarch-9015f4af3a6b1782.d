/root/repo/target/debug/deps/harpo_uarch-9015f4af3a6b1782.d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/debug/deps/libharpo_uarch-9015f4af3a6b1782.rlib: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/debug/deps/libharpo_uarch-9015f4af3a6b1782.rmeta: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

crates/uarch/src/lib.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/config.rs:
crates/uarch/src/core.rs:
crates/uarch/src/trace.rs:
