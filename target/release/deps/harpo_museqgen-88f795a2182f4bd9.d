/root/repo/target/release/deps/harpo_museqgen-88f795a2182f4bd9.d: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/release/deps/libharpo_museqgen-88f795a2182f4bd9.rlib: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/release/deps/libharpo_museqgen-88f795a2182f4bd9.rmeta: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

crates/museqgen/src/lib.rs:
crates/museqgen/src/constraints.rs:
crates/museqgen/src/generator.rs:
crates/museqgen/src/mutate.rs:
