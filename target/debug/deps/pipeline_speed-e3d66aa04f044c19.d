/root/repo/target/debug/deps/pipeline_speed-e3d66aa04f044c19.d: crates/bench/src/bin/pipeline_speed.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_speed-e3d66aa04f044c19.rmeta: crates/bench/src/bin/pipeline_speed.rs Cargo.toml

crates/bench/src/bin/pipeline_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
