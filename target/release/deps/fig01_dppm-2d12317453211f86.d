/root/repo/target/release/deps/fig01_dppm-2d12317453211f86.d: crates/bench/src/bin/fig01_dppm.rs

/root/repo/target/release/deps/fig01_dppm-2d12317453211f86: crates/bench/src/bin/fig01_dppm.rs

crates/bench/src/bin/fig01_dppm.rs:
