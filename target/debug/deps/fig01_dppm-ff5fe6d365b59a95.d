/root/repo/target/debug/deps/fig01_dppm-ff5fe6d365b59a95.d: crates/bench/src/bin/fig01_dppm.rs

/root/repo/target/debug/deps/fig01_dppm-ff5fe6d365b59a95: crates/bench/src/bin/fig01_dppm.rs

crates/bench/src/bin/fig01_dppm.rs:
