//! A small assembler for writing HX86 programs by hand.
//!
//! Baseline kernels (the MiBench- and OpenDCDiag-like suites) and tests
//! are written against this API. Labels are resolved at [`Asm::finish`];
//! forward references are allowed.
//!
//! ```
//! use harpo_isa::asm::Asm;
//! use harpo_isa::reg::{Gpr::*, Width::*};
//!
//! # fn main() -> Result<(), harpo_isa::asm::AsmError> {
//! let mut a = Asm::new("memset");
//! a.mov_ri(B64, Rcx, 64);          // count
//! a.label("fill");
//! a.store(B8, Rsi, 0, Rax);        // [rsi+0] = al
//! a.add_ri(B64, Rsi, 1);
//! a.sub_ri(B64, Rcx, 1);
//! a.jnz("fill");
//! a.halt();
//! let prog = a.finish()?;
//! assert!(prog.len() > 5);
//! # Ok(())
//! # }
//! ```

use crate::form::{Catalog, Cond, FormId, Mnemonic, OpMode};
use crate::inst::Inst;
use crate::mem::MemImage;
use crate::program::{Program, RegInit};
use crate::reg::{Gpr, Width, Xmm};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is further than a 16-bit instruction offset.
    BranchOutOfRange {
        /// The referenced label.
        label: String,
        /// The required offset.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{}`", l),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{}`", l),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(
                    f,
                    "branch to `{}` out of range ({} instructions)",
                    label, offset
                )
            }
        }
    }
}

impl std::error::Error for AsmError {}

enum Entry {
    Inst(Inst),
    /// Unresolved branch: (form, label).
    Branch(FormId, String),
}

/// The assembler. Create with [`Asm::new`], emit instructions, call
/// [`Asm::finish`].
pub struct Asm {
    name: String,
    entries: Vec<Entry>,
    labels: HashMap<String, u32>,
    errors: Vec<AsmError>,
    /// Initial register state (editable before `finish`).
    pub reg_init: RegInit,
    /// Initial memory image (editable before `finish`).
    pub mem: MemImage,
}

impl Asm {
    /// Starts assembling a program with default memory (32 KiB + 4 KiB
    /// stack) and zeroed registers.
    pub fn new(name: impl Into<String>) -> Asm {
        Asm {
            name: name.into(),
            entries: Vec::new(),
            labels: HashMap::new(),
            errors: Vec::new(),
            reg_init: RegInit::zeroed(),
            mem: MemImage::default(),
        }
    }

    fn lookup(m: Mnemonic, mode: OpMode, w: Width, packed: bool) -> FormId {
        Catalog::get()
            .lookup(m, mode, w, packed)
            .unwrap_or_else(|| panic!("no form {:?} {:?} {:?} packed={}", m, mode, w, packed))
    }

    /// Current instruction index (where the next instruction will land).
    pub fn here(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.labels.insert(name.clone(), self.here()).is_some() {
            self.errors.push(AsmError::DuplicateLabel(name));
        }
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.entries.push(Entry::Inst(inst));
    }

    // ---- generic emitters ----

    /// `op reg, reg` at width.
    pub fn op_rr(&mut self, m: Mnemonic, w: Width, dst: Gpr, src: Gpr) {
        let f = Self::lookup(m, OpMode::Rr, w, false);
        self.push(Inst::new(f, dst.index() as u8, src.index() as u8, 0));
    }

    /// `op reg, imm32` at width.
    pub fn op_ri(&mut self, m: Mnemonic, w: Width, dst: Gpr, imm: i32) {
        let f = Self::lookup(m, OpMode::Ri, w, false);
        self.push(Inst::new(f, dst.index() as u8, 0, imm));
    }

    /// `op reg, [base + disp]` at width.
    pub fn op_rm(&mut self, m: Mnemonic, w: Width, dst: Gpr, base: Gpr, disp: i16) {
        let f = Self::lookup(m, OpMode::Rm, w, false);
        self.push(Inst::new(
            f,
            dst.index() as u8,
            base.index() as u8,
            disp as i32,
        ));
    }

    /// Single-register op at width (`inc`, `neg`, `push`, ...).
    pub fn op_r(&mut self, m: Mnemonic, w: Width, r: Gpr) {
        let f = Self::lookup(m, OpMode::R, w, false);
        self.push(Inst::new(f, r.index() as u8, 0, 0));
    }

    /// Shift/rotate by immediate.
    pub fn op_shift_i(&mut self, m: Mnemonic, w: Width, dst: Gpr, count: u8) {
        let f = Self::lookup(m, OpMode::RiB, w, false);
        self.push(Inst::new(f, dst.index() as u8, 0, count as i32));
    }

    /// Shift/rotate by CL.
    pub fn op_shift_cl(&mut self, m: Mnemonic, w: Width, dst: Gpr) {
        let f = Self::lookup(m, OpMode::Rc, w, false);
        self.push(Inst::new(f, dst.index() as u8, 0, 0));
    }

    /// SSE `op xmm, xmm`.
    pub fn op_xx(&mut self, m: Mnemonic, packed: bool, dst: Xmm, src: Xmm) {
        let f = Self::lookup(m, OpMode::Xx, Width::B32, packed);
        self.push(Inst::new(f, dst.index() as u8, src.index() as u8, 0));
    }

    /// SSE `op xmm, [base + disp]`.
    pub fn op_xm(&mut self, m: Mnemonic, packed: bool, dst: Xmm, base: Gpr, disp: i16) {
        let f = Self::lookup(m, OpMode::Xm, Width::B32, packed);
        self.push(Inst::new(
            f,
            dst.index() as u8,
            base.index() as u8,
            disp as i32,
        ));
    }

    // ---- common conveniences ----

    /// `mov reg, imm32` (sign-extended to width).
    pub fn mov_ri(&mut self, w: Width, dst: Gpr, imm: i32) {
        self.op_ri(Mnemonic::Mov, w, dst, imm);
    }

    /// `mov reg, reg`.
    pub fn mov_rr(&mut self, w: Width, dst: Gpr, src: Gpr) {
        self.op_rr(Mnemonic::Mov, w, dst, src);
    }

    /// Loads a full 64-bit immediate using `mov` + `shl` + `or` over
    /// 16-bit chunks (each chunk is a non-negative imm32, so no
    /// sign-extension surprises).
    pub fn mov_ri64(&mut self, dst: Gpr, imm: u64) {
        if imm <= i32::MAX as u64 {
            self.mov_ri(Width::B64, dst, imm as i32);
            return;
        }
        self.mov_ri(Width::B64, dst, ((imm >> 48) & 0xFFFF) as i32);
        for shift in [32u32, 16, 0] {
            self.op_shift_i(Mnemonic::Shl, Width::B64, dst, 16);
            let chunk = ((imm >> shift) & 0xFFFF) as i32;
            if chunk != 0 {
                self.op_ri(Mnemonic::Or, Width::B64, dst, chunk);
            }
        }
    }

    /// `add reg, reg`.
    pub fn add_rr(&mut self, w: Width, dst: Gpr, src: Gpr) {
        self.op_rr(Mnemonic::Add, w, dst, src);
    }

    /// `add reg, imm`.
    pub fn add_ri(&mut self, w: Width, dst: Gpr, imm: i32) {
        self.op_ri(Mnemonic::Add, w, dst, imm);
    }

    /// `sub reg, reg`.
    pub fn sub_rr(&mut self, w: Width, dst: Gpr, src: Gpr) {
        self.op_rr(Mnemonic::Sub, w, dst, src);
    }

    /// `sub reg, imm`.
    pub fn sub_ri(&mut self, w: Width, dst: Gpr, imm: i32) {
        self.op_ri(Mnemonic::Sub, w, dst, imm);
    }

    /// `cmp reg, reg`.
    pub fn cmp_rr(&mut self, w: Width, a: Gpr, b: Gpr) {
        self.op_rr(Mnemonic::Cmp, w, a, b);
    }

    /// `cmp reg, imm`.
    pub fn cmp_ri(&mut self, w: Width, a: Gpr, imm: i32) {
        self.op_ri(Mnemonic::Cmp, w, a, imm);
    }

    /// `imul dst, src` (two-operand signed multiply).
    pub fn imul_rr(&mut self, w: Width, dst: Gpr, src: Gpr) {
        self.op_rr(Mnemonic::Imul2, w, dst, src);
    }

    /// `load dst, [base + disp]` (a `MOV` load).
    pub fn load(&mut self, w: Width, dst: Gpr, base: Gpr, disp: i16) {
        self.op_rm(Mnemonic::Mov, w, dst, base, disp);
    }

    /// `store [base + disp], src` (a `MOV` store).
    pub fn store(&mut self, w: Width, base: Gpr, disp: i16, src: Gpr) {
        let f = Self::lookup(Mnemonic::Mov, OpMode::Mr, w, false);
        self.push(Inst::new(
            f,
            src.index() as u8,
            base.index() as u8,
            disp as i32,
        ));
    }

    /// `xor reg, reg` (the idiomatic zeroing).
    pub fn zero(&mut self, r: Gpr) {
        self.op_rr(Mnemonic::Xor, Width::B64, r, r);
    }

    /// Unconditional jump to a label.
    pub fn jmp(&mut self, label: impl Into<String>) {
        let f = Self::lookup(Mnemonic::Jmp, OpMode::Rel, Width::B64, false);
        self.entries.push(Entry::Branch(f, label.into()));
    }

    /// Conditional jump to a label.
    pub fn jcc(&mut self, cond: Cond, label: impl Into<String>) {
        let m = match cond {
            Cond::Z => Mnemonic::Jz,
            Cond::Nz => Mnemonic::Jnz,
            Cond::S => Mnemonic::Js,
            Cond::Ns => Mnemonic::Jns,
            Cond::C => Mnemonic::Jc,
            Cond::Nc => Mnemonic::Jnc,
            Cond::O => Mnemonic::Jo,
            Cond::No => Mnemonic::Jno,
        };
        let f = Self::lookup(m, OpMode::Rel, Width::B64, false);
        self.entries.push(Entry::Branch(f, label.into()));
    }

    /// `jnz label`.
    pub fn jnz(&mut self, label: impl Into<String>) {
        self.jcc(Cond::Nz, label);
    }

    /// `jz label`.
    pub fn jz(&mut self, label: impl Into<String>) {
        self.jcc(Cond::Z, label);
    }

    /// Terminates the program.
    pub fn halt(&mut self) {
        self.push(Inst::halt());
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    /// Any [`AsmError`] accumulated while emitting (duplicate labels) or
    /// during resolution (undefined labels, out-of-range branches).
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let mut insts = Vec::with_capacity(self.entries.len());
        for (idx, e) in self.entries.iter().enumerate() {
            match e {
                Entry::Inst(i) => insts.push(*i),
                Entry::Branch(form, label) => {
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    let rel = target as i64 - (idx as i64 + 1);
                    if rel < i16::MIN as i64 || rel > i16::MAX as i64 {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            offset: rel,
                        });
                    }
                    insts.push(Inst::new(*form, 0, 0, rel as i32));
                }
            }
        }
        Ok(Program {
            name: std::mem::take(&mut self.name),
            insts,
            reg_init: self.reg_init,
            mem: self.mem,
            provenance: crate::program::Provenance::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Machine;
    use crate::fu::NativeFu;
    use crate::mem::DATA_BASE;
    use crate::reg::Gpr::*;
    use crate::reg::Width::*;

    #[test]
    fn loop_program_runs() {
        let mut a = Asm::new("count");
        a.mov_ri(B64, Rax, 0);
        a.mov_ri(B64, Rcx, 5);
        a.label("top");
        a.add_ri(B64, Rax, 3);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("top");
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, NativeFu);
        let out = m.run(1000).unwrap();
        assert_eq!(out.state.gpr(Rax), 15);
    }

    #[test]
    fn forward_references_resolve() {
        let mut a = Asm::new("fwd");
        a.mov_ri(B64, Rax, 1);
        a.jmp("end");
        a.mov_ri(B64, Rax, 99); // skipped
        a.label("end");
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, NativeFu);
        assert_eq!(m.run(100).unwrap().state.gpr(Rax), 1);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new("bad");
        a.jmp("nowhere");
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new("dup");
        a.label("x");
        a.label("x");
        a.halt();
        assert!(matches!(
            a.finish().unwrap_err(),
            AsmError::DuplicateLabel(_)
        ));
    }

    #[test]
    fn mov_ri64_builds_any_constant() {
        for v in [
            0u64,
            1,
            0x7FFF_FFFF,
            0x8000_0000,
            0xFFFF_FFFF,
            0x1_0000_0000,
            0xDEAD_BEEF_CAFE_F00D,
            u64::MAX,
        ] {
            let mut a = Asm::new("c");
            a.mov_ri64(Rdi, v);
            a.halt();
            let p = a.finish().unwrap();
            let mut m = Machine::new(&p, NativeFu);
            assert_eq!(m.run(100).unwrap().state.gpr(Rdi), v, "constant {v:#x}");
        }
    }

    #[test]
    fn memory_helpers() {
        let mut a = Asm::new("mem");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rax, 0x4242);
        a.store(B64, Rsi, 128, Rax);
        a.load(B64, Rbx, Rsi, 128);
        a.halt();
        let p = a.finish().unwrap();
        let mut m = Machine::new(&p, NativeFu);
        assert_eq!(m.run(100).unwrap().state.gpr(Rbx), 0x4242);
    }
}
