/root/repo/target/debug/deps/harpo_bench-f5d3d4de87c7569e.d: crates/bench/src/lib.rs crates/bench/src/diff.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_bench-f5d3d4de87c7569e.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
