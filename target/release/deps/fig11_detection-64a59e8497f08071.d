/root/repo/target/release/deps/fig11_detection-64a59e8497f08071.d: crates/bench/src/bin/fig11_detection.rs

/root/repo/target/release/deps/fig11_detection-64a59e8497f08071: crates/bench/src/bin/fig11_detection.rs

crates/bench/src/bin/fig11_detection.rs:
