//! The journal record: one structured event.

use crate::json::{write_string, Value};

/// The journal schema version, stamped into every JSONL line as `"v"`.
///
/// Offline consumers (`harpo report`) refuse journals written by a newer
/// schema instead of mis-parsing them. Records without a `"v"` field are
/// version 1 (the pre-versioning journals of early runs). Bump this when
/// a record kind changes meaning or drops a field — additive fields do
/// not need a bump. The bump protocol is documented in DESIGN.md and
/// docs/observability.md.
pub const SCHEMA_VERSION: u64 = 6;

/// The live streaming record kinds introduced by schema v4.
///
/// These describe the *run* rather than the *result*: they carry
/// wall-clock-derived values (rates, ETAs, RSS, liveness ages) and are
/// therefore excluded from journal bit-identity comparisons — see
/// [`canonical_journal`].
pub const STREAMING_KINDS: [&str; 5] = ["progress", "heartbeat", "resource", "stall", "cursor"];

/// Whether a record kind is one of the v4 live streaming kinds.
pub fn is_streaming_kind(kind: &str) -> bool {
    STREAMING_KINDS.contains(&kind)
}

/// The cost-attribution record kinds introduced by schema v6:
/// `profile` (per-thread span hotspots from the [`crate::Profiler`])
/// and `cost` (per-fault-class replay cost from the SFI campaign).
///
/// Like the streaming kinds they describe *where the wall time went*,
/// not what the run decided, so they are excluded from journal
/// bit-identity comparisons — see [`canonical_journal`].
pub const PROFILE_KINDS: [&str; 2] = ["profile", "cost"];

/// Whether a record kind is one of the v6 cost-attribution kinds.
pub fn is_profile_kind(kind: &str) -> bool {
    PROFILE_KINDS.contains(&kind)
}

/// Whether a field key carries a wall-clock-derived value that differs
/// between two otherwise identical runs.
fn is_wallclock_field(key: &str) -> bool {
    key.ends_with("_ns")
        || key.ends_with("_ms")
        || key.ends_with("_per_sec")
        || matches!(key, "counters" | "rss_bytes" | "hit_rate")
}

/// Canonicalises a journal for determinism comparison: drops the
/// streaming-kind records (their very presence depends on timer ticks),
/// the v6 cost-attribution kinds (`profile` / `cost` records exist only
/// when profiling is enabled and carry nothing but wall-clock
/// attribution) and the `meta` header (it names the run *environment* —
/// git commit, thread count — which two comparable runs may
/// legitimately disagree on), strips wall-clock-bearing fields
/// (`*_ns`, `*_ms`, `*_per_sec`, `counters`, `rss_bytes`, `hit_rate`)
/// from the rest, and tolerates a torn final line (a live journal may
/// end mid-record). The surviving records re-serialise in their
/// original field order, so two runs that made the same decisions
/// produce byte-identical canonical journals — streaming and profiling
/// on or off.
pub fn canonical_journal(text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = String::with_capacity(text.len());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = match crate::json::parse(line) {
            Ok(v) => v,
            // A torn final line is expected on a live journal; an
            // unparseable *interior* line is kept verbatim so that real
            // corruption still shows up in the comparison.
            Err(_) if i + 1 == lines.len() => break,
            Err(_) => {
                out.push_str(line);
                out.push('\n');
                continue;
            }
        };
        if let Some(kind) = rec.get("kind").and_then(Value::as_str) {
            if is_streaming_kind(kind) || is_profile_kind(kind) || kind == "meta" {
                continue;
            }
        }
        let filtered = match rec {
            Value::Obj(fields) => Value::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| !is_wallclock_field(k))
                    .collect(),
            ),
            other => other,
        };
        out.push_str(&filtered.to_json());
        out.push('\n');
    }
    out
}

/// One journal event: a kind tag plus ordered key→value fields.
///
/// Built fluently and cheaply — construction is skipped entirely when no
/// sink is attached (see [`crate::Telemetry::emit`]):
///
/// ```
/// use harpo_telemetry::Record;
/// let r = Record::new("iteration").field("iter", 3u64).field("best", 0.25);
/// assert_eq!(r.to_json(), r#"{"kind":"iteration","v":6,"iter":3,"best":0.25}"#);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// The event kind (`"iteration"`, `"summary"`, `"campaign"`, ...).
    pub kind: &'static str,
    /// The fields, in insertion order.
    pub fields: Vec<(&'static str, Value)>,
}

impl Record {
    /// Starts a record of the given kind.
    pub fn new(kind: &'static str) -> Record {
        Record {
            kind,
            fields: Vec::new(),
        }
    }

    /// Appends a field.
    pub fn field(mut self, key: &'static str, value: impl Into<Value>) -> Record {
        self.fields.push((key, value.into()));
        self
    }

    /// Looks up a field value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders as one compact JSON object with `"kind"` first and the
    /// schema version second — the journal's JSONL line format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"kind\":");
        write_string(&mut out, self.kind);
        out.push_str(",\"v\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        for (k, v) in &self.fields {
            out.push(',');
            write_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_json());
        }
        out.push('}');
        out
    }

    /// Renders as a human-readable `kind key=value ...` line — the
    /// stderr sink format.
    pub fn to_human(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 12);
        out.push_str(self.kind);
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            match v {
                Value::Str(s) => out.push_str(s),
                other => out.push_str(&other.to_json()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn json_line_round_trips() {
        let r = Record::new("iteration")
            .field("iter", 7u64)
            .field("best", 0.5)
            .field("name", "int-mul")
            .field("ok", true);
        let v = parse(&r.to_json()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("iteration"));
        assert_eq!(v.get("v").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(v.get("iter").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("best").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("name").unwrap().as_str(), Some("int-mul"));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn human_line_is_flat() {
        let r = Record::new("summary")
            .field("coverage", 0.25)
            .field("tag", "x");
        assert_eq!(r.to_human(), "summary coverage=0.25 tag=x");
    }

    #[test]
    fn get_finds_fields() {
        let r = Record::new("k").field("a", 1u64);
        assert_eq!(r.get("a").unwrap().as_u64(), Some(1));
        assert!(r.get("b").is_none());
    }

    #[test]
    fn streaming_kinds_are_recognised() {
        for kind in STREAMING_KINDS {
            assert!(is_streaming_kind(kind), "{kind}");
        }
        for kind in ["iteration", "summary", "campaign", "autopsy"] {
            assert!(!is_streaming_kind(kind), "{kind}");
        }
    }

    #[test]
    fn canonical_journal_drops_streaming_records_and_clock_fields() {
        let a = "\
{\"kind\":\"iteration\",\"v\":4,\"iter\":0,\"best\":0.5,\"evaluation_ns\":123}\n\
{\"kind\":\"progress\",\"v\":4,\"done\":3,\"total\":9,\"eta_ns\":777}\n\
{\"kind\":\"heartbeat\",\"v\":4,\"worker\":0,\"rss_bytes\":4096}\n\
{\"kind\":\"summary\",\"v\":4,\"iterations\":1,\"total_ns\":99,\"counters\":{\"x\":1}}\n";
        let b = "\
{\"kind\":\"iteration\",\"v\":4,\"iter\":0,\"best\":0.5,\"evaluation_ns\":456}\n\
{\"kind\":\"summary\",\"v\":4,\"iterations\":1,\"total_ns\":11,\"counters\":{\"x\":2}}\n";
        assert_eq!(canonical_journal(a), canonical_journal(b));
        let expected = concat!(
            "{\"kind\":\"iteration\",\"v\":4,\"iter\":0,\"best\":0.5}\n",
            "{\"kind\":\"summary\",\"v\":4,\"iterations\":1}\n",
        );
        assert_eq!(canonical_journal(a), expected);
    }

    #[test]
    fn canonical_journal_drops_the_meta_header() {
        let with_meta = "\
{\"kind\":\"meta\",\"v\":5,\"schema\":5,\"git_commit\":\"abc123\",\"threads\":8,\"config_hash\":\"f00d\"}\n\
{\"kind\":\"summary\",\"v\":5,\"iterations\":1}\n";
        let without = "{\"kind\":\"summary\",\"v\":5,\"iterations\":1}\n";
        assert_eq!(canonical_journal(with_meta), canonical_journal(without));
        assert_eq!(canonical_journal(with_meta), without);
    }

    #[test]
    fn canonical_journal_drops_profile_and_cost_records() {
        let with_profiling = "\
{\"kind\":\"iteration\",\"v\":6,\"iter\":0,\"best\":0.5}\n\
{\"kind\":\"profile\",\"v\":6,\"source\":\"refine\",\"thread\":0,\"frames\":[]}\n\
{\"kind\":\"cost\",\"v\":6,\"scope\":\"replay\",\"outcome\":\"sdc\",\"faults\":3}\n\
{\"kind\":\"summary\",\"v\":6,\"iterations\":1}\n";
        let without = "\
{\"kind\":\"iteration\",\"v\":6,\"iter\":0,\"best\":0.5}\n\
{\"kind\":\"summary\",\"v\":6,\"iterations\":1}\n";
        assert_eq!(
            canonical_journal(with_profiling),
            canonical_journal(without)
        );
        assert_eq!(canonical_journal(with_profiling), without);
        for kind in PROFILE_KINDS {
            assert!(is_profile_kind(kind), "{kind}");
        }
        assert!(!is_profile_kind("iteration"));
    }

    #[test]
    fn canonical_journal_tolerates_a_torn_final_line() {
        let whole = "{\"kind\":\"summary\",\"v\":4,\"iterations\":2}\n";
        let torn = format!("{whole}{{\"kind\":\"progress\",\"v\":4,\"do");
        assert_eq!(canonical_journal(&torn), whole);
    }

    #[test]
    fn canonical_journal_keeps_interior_corruption() {
        let text = "not json at all\n{\"kind\":\"summary\",\"v\":4,\"iterations\":2}\n";
        assert_eq!(canonical_journal(text), text);
    }
}
