//! Live-streaming support: RSS sampling and the ETA estimator behind
//! the schema-v4 `progress`/`heartbeat` records.

/// Resident-set size of the current process in bytes, sampled from
/// `/proc/self/statm`. Returns 0 where the file is unavailable or
/// unparseable (non-Linux platforms, locked-down containers) — callers
/// journal the value as-is and consumers treat 0 as "not sampled".
pub fn rss_bytes() -> u64 {
    // statm's second column is the resident set in pages. std exposes no
    // portable page-size query; 4 KiB is correct on every platform this
    // project targets, and a wrong constant only scales a diagnostic.
    const PAGE_BYTES: u64 = 4096;
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|pages| pages.parse::<u64>().ok())
        })
        .map_or(0, |pages| pages * PAGE_BYTES)
}

/// Exponentially weighted moving average of a work rate, driving the
/// `progress` record's ETA. Feed it (units completed, nanoseconds
/// elapsed) deltas per observation window; ask it for the remaining
/// wall time of however many units are left.
#[derive(Debug, Clone, Copy, Default)]
pub struct EwmaRate {
    /// Units per nanosecond.
    rate: f64,
    primed: bool,
}

impl EwmaRate {
    /// Smoothing factor: ~⅓ weight on the newest window, so the ETA
    /// tracks workload drift (screening → replay phases) without
    /// whipsawing on a single slow unit.
    const ALPHA: f64 = 0.3;

    /// Folds one observation window into the average. Zero-duration
    /// windows are ignored; zero-unit windows legitimately drag the
    /// rate down (the run is stalling).
    pub fn observe(&mut self, units: u64, elapsed_ns: u64) {
        if elapsed_ns == 0 {
            return;
        }
        let rate = units as f64 / elapsed_ns as f64;
        self.rate = if self.primed {
            Self::ALPHA * rate + (1.0 - Self::ALPHA) * self.rate
        } else {
            rate
        };
        self.primed = true;
    }

    /// Smoothed cost of one unit in nanoseconds, once primed with a
    /// non-zero rate.
    pub fn unit_ns(&self) -> Option<u64> {
        (self.primed && self.rate > 0.0).then(|| (1.0 / self.rate) as u64)
    }

    /// Estimated nanoseconds until `remaining` more units complete.
    pub fn eta_ns(&self, remaining: u64) -> Option<u64> {
        (self.primed && self.rate > 0.0).then(|| (remaining as f64 / self.rate) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_nonzero_on_linux() {
        // On the Linux CI hosts statm is always readable; elsewhere the
        // function degrades to 0 by contract.
        if std::path::Path::new("/proc/self/statm").exists() {
            assert!(rss_bytes() > 0);
        } else {
            assert_eq!(rss_bytes(), 0);
        }
    }

    #[test]
    fn ewma_primes_then_smooths() {
        let mut e = EwmaRate::default();
        assert_eq!(e.eta_ns(10), None);
        assert_eq!(e.unit_ns(), None);

        // First window primes directly: 2 units / 1000 ns.
        e.observe(2, 1000);
        assert_eq!(e.unit_ns(), Some(500));
        assert_eq!(e.eta_ns(4), Some(2000));

        // A slower second window moves the estimate part-way, not all
        // the way: new rate = 0.3*0.001 + 0.7*0.002 = 0.0017 /ns.
        e.observe(1, 1000);
        let eta = e.eta_ns(17).unwrap();
        assert_eq!(eta, 10_000);
    }

    #[test]
    fn ewma_ignores_empty_windows_but_tracks_stalls() {
        let mut e = EwmaRate::default();
        e.observe(5, 0); // zero-duration: ignored, still unprimed
        assert_eq!(e.eta_ns(1), None);
        e.observe(10, 1000);
        let fast = e.eta_ns(10).unwrap();
        e.observe(0, 1000); // stall window drags the rate down
        assert!(e.eta_ns(10).unwrap() > fast);
    }
}
