/root/repo/target/release/deps/fig01_dppm-baa230aa27fa5ceb.d: crates/bench/src/bin/fig01_dppm.rs

/root/repo/target/release/deps/fig01_dppm-baa230aa27fa5ceb: crates/bench/src/bin/fig01_dppm.rs

crates/bench/src/bin/fig01_dppm.rs:
