/root/repo/target/release/deps/ablation_mutation-5351c69aebeff119.d: crates/bench/src/bin/ablation_mutation.rs

/root/repo/target/release/deps/ablation_mutation-5351c69aebeff119: crates/bench/src/bin/ablation_mutation.rs

crates/bench/src/bin/ablation_mutation.rs:
