//! The global-free metrics registry: named atomic counters and
//! log-bucketed histograms.
//!
//! There is deliberately no `static` registry — a [`Metrics`] value is
//! created by whoever owns a run (CLI command, bench binary, test),
//! cloned into each pipeline layer (it is an `Arc` inside) and
//! snapshotted at the end. Two runs never share state by accident, and
//! tests can assert on exact counts.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter (registered ones come from
    /// [`Metrics::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Bucket `i` counts observations with `i` significant bits, i.e.
    /// values in `[2^(i-1), 2^i)`; bucket 0 counts zeros. Powers of two
    /// keep `observe` branch-free and cover the full `u64` range.
    buckets: [AtomicU64; BUCKETS],
}

/// A log₂-bucketed histogram of `u64` observations (durations in
/// nanoseconds, work counts, ...).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistInner {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
        }
    }
}

impl Histogram {
    /// A fresh, unregistered histogram (registered ones come from
    /// [`Metrics::histogram`]).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Bucket index of a value: its significant-bit count.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let h = &*self.inner;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
        h.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// atomic; the histogram may be concurrently updated).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.inner;
        HistogramSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts (see [`Histogram`] for the bucket layout).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A counter value.
    Counter(u64),
    /// A histogram state (boxed: the bucket array dwarfs the counter
    /// variant).
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

/// The registry: a name → metric map shared by clone.
///
/// ```
/// use harpo_telemetry::Metrics;
/// let m = Metrics::new();
/// m.counter("evaluator.programs").add(3);
/// m.histogram("engine.stage.evaluation_ns").observe(1_500);
/// assert_eq!(m.counter("evaluator.programs").get(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Registration takes the lock; the returned handle is lock-free —
    /// resolve once outside hot loops.
    ///
    /// # Panics
    /// Panics if `name` is already a histogram.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            Metric::Histogram(_) => panic!("metric `{name}` is a histogram, not a counter"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already a counter.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            Metric::Counter(_) => panic!("metric `{name}` is a counter, not a histogram"),
        }
    }

    /// Whether anything has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .is_empty()
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let map = self.inner.lock().expect("metrics registry poisoned");
        map.iter()
            .map(|(name, m)| {
                let snap = match m {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), snap)
            })
            .collect()
    }

    /// The registry as one JSON object: counters become numbers,
    /// histograms become `{count, sum, max, mean}` objects — the
    /// `counters` payload of journal summaries and bench manifests.
    pub fn to_value(&self) -> Value {
        let fields = self
            .snapshot()
            .into_iter()
            .map(|(name, snap)| {
                let v = match snap {
                    MetricSnapshot::Counter(n) => Value::U64(n),
                    MetricSnapshot::Histogram(h) => Value::Obj(vec![
                        ("count".to_string(), Value::U64(h.count)),
                        ("sum".to_string(), Value::U64(h.sum)),
                        ("max".to_string(), Value::U64(h.max)),
                        ("mean".to_string(), Value::F64(h.mean())),
                    ]),
                };
                (name, v)
            })
            .collect();
        Value::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.clone().counter("x");
        a.inc();
        b.add(2);
        assert_eq!(m.counter("x").get(), 3);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[10], 1, "1000 has 10 significant bits");
        assert!((s.mean() - 201.2).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let m = Metrics::new();
        m.counter("b.count").inc();
        m.histogram("a.hist").observe(5);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a.hist");
        assert!(matches!(snap[1].1, MetricSnapshot::Counter(1)));
    }

    #[test]
    fn to_value_round_trips_as_json() {
        let m = Metrics::new();
        m.counter("runs").add(2);
        m.histogram("ns").observe(7);
        let v = crate::json::parse(&m.to_value().to_json()).unwrap();
        assert_eq!(v.get("runs").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("ns").unwrap().get("count").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("ns").unwrap().get("sum").unwrap().as_u64(), Some(7));
    }

    #[test]
    #[should_panic(expected = "is a histogram")]
    fn kind_mismatch_panics() {
        let m = Metrics::new();
        m.histogram("x");
        m.counter("x");
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    let c = m.counter("n");
                    let h = m.histogram("h");
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(m.counter("n").get(), 4000);
        assert_eq!(m.histogram("h").count(), 4000);
    }
}
