/root/repo/target/debug/deps/campaign_speed-6b0956134adb648e.d: crates/bench/src/bin/campaign_speed.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_speed-6b0956134adb648e.rmeta: crates/bench/src/bin/campaign_speed.rs Cargo.toml

crates/bench/src/bin/campaign_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
