//! The flat, bounds-checked data memory of an HX86 program.
//!
//! A program owns a single contiguous region at [`DATA_BASE`]: the *data*
//! area (addressed by generated loads/stores and RIP-relative operands)
//! followed by a *stack* area at the top (RSP is initialised to the region
//! end and grows down). Any access outside the region is a memory fault,
//! which the execution engine surfaces as a crash — the same observable
//! the paper's fault-injection taxonomy uses for wild addresses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Base virtual address of the data region.
pub const DATA_BASE: u64 = 0x1_0000;

/// An out-of-bounds access; carries the faulting address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemFault {
    /// The address that fell outside the program's valid region.
    pub addr: u64,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory access out of bounds at {:#x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// Declarative description of a program's initial memory: a seeded
/// pseudo-random fill plus explicit byte patches. Keeping the image
/// declarative (rather than a materialised `Vec<u8>`) keeps `Program`
/// values small when populations of hundreds of programs are alive.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemImage {
    /// Size in bytes of the data area.
    pub data_size: u32,
    /// Size in bytes of the stack area above the data area.
    pub stack_size: u32,
    /// Seed for the xorshift fill of the data area; `0` means zero-fill.
    pub fill_seed: u64,
    /// Byte patches applied on top of the fill, as (offset, bytes) pairs.
    pub patches: Vec<(u32, Vec<u8>)>,
}

impl MemImage {
    /// A cache-sized default image: 32 KiB data + 4 KiB stack, zero fill.
    pub fn new(data_size: u32, stack_size: u32) -> MemImage {
        MemImage {
            data_size,
            stack_size,
            fill_seed: 0,
            patches: Vec::new(),
        }
    }

    /// Total region size (data + stack).
    #[inline]
    pub fn total_size(&self) -> u32 {
        self.data_size + self.stack_size
    }

    /// Initial stack pointer (one past the region top; pushes pre-decrement).
    #[inline]
    pub fn initial_rsp(&self) -> u64 {
        DATA_BASE + self.total_size() as u64
    }

    /// Materialises the initial memory contents.
    pub fn build(&self) -> Memory {
        let mut mem = Memory {
            bytes: Vec::new(),
            base: DATA_BASE,
        };
        self.build_into(&mut mem);
        mem
    }

    /// Materialises the initial memory contents into an existing
    /// [`Memory`], reusing its allocation. Produces exactly the state
    /// [`MemImage::build`] would, regardless of what `mem` held before —
    /// the buffer-recycling path of simulation contexts and replay
    /// campaigns.
    pub fn build_into(&self, mem: &mut Memory) {
        mem.base = DATA_BASE;
        mem.bytes.clear();
        mem.bytes.resize(self.total_size() as usize, 0);
        let bytes = &mut mem.bytes;
        if self.fill_seed != 0 {
            let mut s = self.fill_seed;
            for chunk in bytes[..self.data_size as usize].chunks_mut(8) {
                // xorshift64* — fast, seeded, good enough for test data.
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let v = s.wrapping_mul(0x2545_F491_4F6C_DD1D).to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&v[..n]);
            }
        }
        for (off, data) in &self.patches {
            let start = *off as usize;
            let end = start + data.len();
            assert!(
                end <= self.data_size as usize,
                "patch [{start}, {end}) exceeds data area of {} bytes",
                self.data_size
            );
            bytes[start..end].copy_from_slice(data);
        }
    }
}

impl Default for MemImage {
    fn default() -> Self {
        MemImage::new(32 * 1024, 4 * 1024)
    }
}

/// Materialised program memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
    base: u64,
}

impl Memory {
    /// The region base address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The region size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Copies `other`'s contents into `self`, reusing the allocation —
    /// one memcpy, against the fill-and-patch rebuild of
    /// [`MemImage::build_into`]. Replay contexts clone a per-program
    /// template this way instead of re-running the image fill for every
    /// fault.
    pub fn copy_from(&mut self, other: &Memory) {
        self.base = other.base;
        self.bytes.clone_from(&other.bytes);
    }

    /// Whether the region is empty (degenerate images only).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[inline]
    fn offset(&self, addr: u64, size: u32) -> Result<usize, MemFault> {
        let off = addr.wrapping_sub(self.base);
        if off
            .checked_add(size as u64)
            .is_some_and(|end| end <= self.bytes.len() as u64)
        {
            Ok(off as usize)
        } else {
            Err(MemFault { addr })
        }
    }

    /// Reads `size` bytes (1, 2, 4, 8 or 16 — 16 returns only via
    /// [`Memory::read128`]) little-endian, zero-extended.
    ///
    /// # Errors
    /// [`MemFault`] if any byte of the access is outside the region.
    pub fn read(&self, addr: u64, size: u32) -> Result<u64, MemFault> {
        let off = self.offset(addr, size)?;
        let mut v = 0u64;
        for i in (0..size as usize).rev() {
            v = (v << 8) | self.bytes[off + i] as u64;
        }
        Ok(v)
    }

    /// Writes the low `size` bytes of `val` little-endian.
    ///
    /// # Errors
    /// [`MemFault`] if any byte of the access is outside the region.
    pub fn write(&mut self, addr: u64, size: u32, val: u64) -> Result<(), MemFault> {
        let off = self.offset(addr, size)?;
        for i in 0..size as usize {
            self.bytes[off + i] = (val >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Reads a 128-bit value as two 64-bit lanes (for `MOVAPS`).
    ///
    /// # Errors
    /// [`MemFault`] if the access leaves the region.
    pub fn read128(&self, addr: u64) -> Result<[u64; 2], MemFault> {
        Ok([self.read(addr, 8)?, self.read(addr + 8, 8)?])
    }

    /// Writes a 128-bit value as two 64-bit lanes.
    ///
    /// # Errors
    /// [`MemFault`] if the access leaves the region.
    pub fn write128(&mut self, addr: u64, val: [u64; 2]) -> Result<(), MemFault> {
        self.write(addr, 8, val[0])?;
        self.write(addr + 8, 8, val[1])
    }

    /// Raw view of the region (used by the output signature).
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Hash of the whole region; part of the program's output signature
    /// used for corruption detection. Word-wise ([`fnv1a_wide`]): the
    /// region is tens of kilobytes and is hashed once per simulation, so
    /// the byte-at-a-time [`fnv1a`] was a measurable slice of total
    /// simulation time.
    pub fn signature(&self) -> u64 {
        fnv1a_wide(&self.bytes)
    }

    /// Direct byte flip (used by the fault injector to model persistent
    /// memory corruption after a dirty eviction of a faulty cache line).
    pub fn flip_bit(&mut self, addr: u64, bit: u8) -> Result<(), MemFault> {
        let off = self.offset(addr, 1)?;
        self.bytes[off] ^= 1 << (bit & 7);
        Ok(())
    }
}

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-style hash absorbing eight bytes per multiply, with an extra
/// xor-shift so flips in the high bits of a word diffuse downward. Each
/// step is a bijection of the accumulator, so two buffers differing in a
/// single word always hash differently. Roughly 8× faster than [`fnv1a`]
/// on large regions; NOT byte-compatible with it — use only where the
/// exact FNV-1a value is not part of a stored format.
pub fn fnv1a_wide(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 29;
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = MemImage::new(256, 64).build();
        for size in [1u32, 2, 4, 8] {
            let val = 0x1122_3344_5566_7788u64
                & if size == 8 {
                    u64::MAX
                } else {
                    (1 << (8 * size)) - 1
                };
            m.write(DATA_BASE + 16, size, val).unwrap();
            assert_eq!(m.read(DATA_BASE + 16, size).unwrap(), val);
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = MemImage::new(64, 0).build();
        m.write(DATA_BASE, 4, 0xAABB_CCDD).unwrap();
        assert_eq!(m.read(DATA_BASE, 1).unwrap(), 0xDD);
        assert_eq!(m.read(DATA_BASE + 3, 1).unwrap(), 0xAA);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = MemImage::new(64, 0).build();
        assert!(m.read(DATA_BASE + 63, 1).is_ok());
        assert!(m.read(DATA_BASE + 63, 2).is_err());
        assert!(m.read(DATA_BASE - 1, 1).is_err());
        assert!(m.write(0, 8, 1).is_err());
        assert!(m.read(u64::MAX, 8).is_err(), "overflowing address");
    }

    #[test]
    fn seeded_fill_is_deterministic_and_nonzero() {
        let img = MemImage {
            fill_seed: 42,
            ..MemImage::new(1024, 0)
        };
        let a = img.build();
        let b = img.build();
        assert_eq!(a, b);
        assert!(a.as_bytes().iter().any(|&x| x != 0));
    }

    #[test]
    fn build_into_matches_build_and_reuses_capacity() {
        let img = MemImage {
            fill_seed: 99,
            patches: vec![(16, vec![0xAB, 0xCD])],
            ..MemImage::new(4096, 256)
        };
        // A dirty, differently-sized buffer from a previous program.
        let mut recycled = MemImage::new(64, 0).build();
        recycled.write(DATA_BASE, 8, u64::MAX).unwrap();
        img.build_into(&mut recycled);
        assert_eq!(recycled, img.build());
        // Shrinking reuses the larger allocation.
        let cap_before = recycled.bytes.capacity();
        MemImage::new(128, 0).build_into(&mut recycled);
        assert_eq!(recycled, MemImage::new(128, 0).build());
        assert_eq!(recycled.bytes.capacity(), cap_before);
    }

    #[test]
    fn patches_apply() {
        let img = MemImage {
            patches: vec![(8, vec![1, 2, 3])],
            ..MemImage::new(64, 0)
        };
        let m = img.build();
        assert_eq!(m.read(DATA_BASE + 8, 1).unwrap(), 1);
        assert_eq!(m.read(DATA_BASE + 10, 1).unwrap(), 3);
    }

    #[test]
    fn signature_changes_with_content() {
        let mut m = MemImage::new(64, 0).build();
        let s0 = m.signature();
        m.write(DATA_BASE + 5, 1, 0xFF).unwrap();
        assert_ne!(m.signature(), s0);
    }

    #[test]
    fn fnv1a_wide_sees_every_word_and_the_tail() {
        let base: Vec<u8> = (0..141u32).map(|i| (i * 37) as u8).collect();
        let h0 = fnv1a_wide(&base);
        // A flip in any single byte — aligned words and the ragged tail
        // alike — must change the hash.
        for i in 0..base.len() {
            let mut b = base.clone();
            b[i] ^= 0x80;
            assert_ne!(fnv1a_wide(&b), h0, "byte {i} did not affect the hash");
        }
        // Stable across calls and sensitive to length.
        assert_eq!(fnv1a_wide(&base), h0);
        assert_ne!(fnv1a_wide(&base[..140]), h0);
    }

    #[test]
    fn flip_bit_flips() {
        let mut m = MemImage::new(64, 0).build();
        m.flip_bit(DATA_BASE + 3, 5).unwrap();
        assert_eq!(m.read(DATA_BASE + 3, 1).unwrap(), 1 << 5);
        m.flip_bit(DATA_BASE + 3, 5).unwrap();
        assert_eq!(m.read(DATA_BASE + 3, 1).unwrap(), 0);
    }
}
