/root/repo/target/debug/deps/fig11_detection-fce498bb0e6c8f39.d: crates/bench/src/bin/fig11_detection.rs

/root/repo/target/debug/deps/fig11_detection-fce498bb0e6c8f39: crates/bench/src/bin/fig11_detection.rs

crates/bench/src/bin/fig11_detection.rs:
