/root/repo/target/release/deps/serde-f3b95c9d9253ed7e.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-f3b95c9d9253ed7e.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-f3b95c9d9253ed7e.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
