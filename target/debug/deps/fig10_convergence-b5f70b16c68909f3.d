/root/repo/target/debug/deps/fig10_convergence-b5f70b16c68909f3.d: crates/bench/src/bin/fig10_convergence.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_convergence-b5f70b16c68909f3.rmeta: crates/bench/src/bin/fig10_convergence.rs Cargo.toml

crates/bench/src/bin/fig10_convergence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
