/root/repo/target/release/deps/proptest-bb05fb97ef8518fe.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bb05fb97ef8518fe.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-bb05fb97ef8518fe.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
