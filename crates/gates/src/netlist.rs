//! Gate-level netlist representation.
//!
//! A [`Netlist`] is a combinational circuit over two-input gates (plus
//! three-input muxes), stored in topological order: a gate may only read
//! wires with smaller ids, which the [`NetlistBuilder`] enforces by
//! construction. Wire 0 and wire 1 are the constants `0` and `1`; input
//! wires follow; each gate drives one new wire.
//!
//! Fault injection targets *gate outputs*: a stuck-at-0/1 fault forces the
//! driven wire to a constant, modelling the paper's gate-level permanent
//! fault model for functional units (§III-C).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a wire in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WireId(pub u32);

impl WireId {
    /// The constant-0 wire.
    pub const ZERO: WireId = WireId(0);
    /// The constant-1 wire.
    pub const ONE: WireId = WireId(1);

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WireId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Boolean function computed by a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // standard boolean gate names
pub enum GateOp {
    And,
    Or,
    Xor,
    Nand,
    Nor,
    Xnor,
    /// `out = a` when `sel` is 1, else `b` (the third input is the select).
    Mux,
    /// `out = !a` (second input ignored).
    Not,
}

/// One gate. `sel` is only meaningful for [`GateOp::Mux`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// The boolean function.
    pub op: GateOp,
    /// First input.
    pub a: WireId,
    /// Second input (ignored by `Not`).
    pub b: WireId,
    /// Select input for `Mux`.
    pub sel: WireId,
}

/// A combinational circuit in topological order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    n_inputs: u32,
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
}

impl Netlist {
    /// Circuit name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs.
    #[inline]
    pub fn input_count(&self) -> usize {
        self.n_inputs as usize
    }

    /// Number of gates — the fault population size for SFI gate sampling.
    #[inline]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The gates in topological order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary output wires.
    #[inline]
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Wire id of primary input `i`.
    #[inline]
    pub fn input_wire(&self, i: usize) -> WireId {
        debug_assert!(i < self.n_inputs as usize);
        WireId(2 + i as u32)
    }

    /// Wire id driven by gate `g`.
    #[inline]
    pub fn gate_wire(&self, g: usize) -> WireId {
        WireId(2 + self.n_inputs + g as u32)
    }

    /// Total number of wires (constants + inputs + gates).
    #[inline]
    pub fn wire_count(&self) -> usize {
        2 + self.n_inputs as usize + self.gates.len()
    }
}

/// Incremental netlist construction with topological-order enforcement.
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    n_inputs: u32,
    gates: Vec<Gate>,
    inputs_frozen: bool,
}

impl NetlistBuilder {
    /// Starts a new circuit.
    pub fn new(name: impl Into<String>) -> NetlistBuilder {
        NetlistBuilder {
            name: name.into(),
            n_inputs: 0,
            gates: Vec::new(),
            inputs_frozen: false,
        }
    }

    /// Declares one primary input.
    ///
    /// # Panics
    /// Panics if called after the first gate was added (inputs must come
    /// first so wire ids stay topological).
    pub fn input(&mut self) -> WireId {
        assert!(!self.inputs_frozen, "declare all inputs before gates");
        let w = WireId(2 + self.n_inputs);
        self.n_inputs += 1;
        w
    }

    /// Declares a bus of `n` primary inputs, LSB first.
    pub fn input_bus(&mut self, n: usize) -> Vec<WireId> {
        (0..n).map(|_| self.input()).collect()
    }

    fn next_wire(&self) -> u32 {
        2 + self.n_inputs + self.gates.len() as u32
    }

    fn push(&mut self, op: GateOp, a: WireId, b: WireId, sel: WireId) -> WireId {
        self.inputs_frozen = true;
        let next = self.next_wire();
        assert!(
            a.0 < next && b.0 < next && sel.0 < next,
            "gate inputs must be already-defined wires"
        );
        self.gates.push(Gate { op, a, b, sel });
        WireId(next)
    }

    /// `a & b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(GateOp::And, a, b, WireId::ZERO)
    }

    /// `a | b`.
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(GateOp::Or, a, b, WireId::ZERO)
    }

    /// `a ^ b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(GateOp::Xor, a, b, WireId::ZERO)
    }

    /// `!(a & b)`.
    pub fn nand(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(GateOp::Nand, a, b, WireId::ZERO)
    }

    /// `!(a | b)`.
    pub fn nor(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(GateOp::Nor, a, b, WireId::ZERO)
    }

    /// `!(a ^ b)`.
    pub fn xnor(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(GateOp::Xnor, a, b, WireId::ZERO)
    }

    /// `!a`.
    pub fn not(&mut self, a: WireId) -> WireId {
        self.push(GateOp::Not, a, WireId::ZERO, WireId::ZERO)
    }

    /// `sel ? a : b`.
    pub fn mux(&mut self, sel: WireId, a: WireId, b: WireId) -> WireId {
        self.push(GateOp::Mux, a, b, sel)
    }

    /// Finalises the circuit with the given primary outputs.
    ///
    /// # Panics
    /// Panics if an output references an undefined wire.
    pub fn finish(self, outputs: Vec<WireId>) -> Netlist {
        let max = self.next_wire();
        assert!(
            outputs.iter().all(|o| o.0 < max),
            "output references undefined wire"
        );
        Netlist {
            name: self.name,
            n_inputs: self.n_inputs,
            gates: self.gates,
            outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_wires() {
        let mut b = NetlistBuilder::new("t");
        let i0 = b.input();
        let i1 = b.input();
        assert_eq!(i0, WireId(2));
        assert_eq!(i1, WireId(3));
        let g0 = b.and(i0, i1);
        assert_eq!(g0, WireId(4));
        let n = b.finish(vec![g0]);
        assert_eq!(n.gate_count(), 1);
        assert_eq!(n.input_wire(1), WireId(3));
        assert_eq!(n.gate_wire(0), WireId(4));
        assert_eq!(n.wire_count(), 5);
    }

    #[test]
    #[should_panic(expected = "before gates")]
    fn inputs_after_gates_panic() {
        let mut b = NetlistBuilder::new("t");
        let i = b.input();
        b.not(i);
        b.input();
    }

    #[test]
    #[should_panic(expected = "undefined wire")]
    fn bad_output_panics() {
        let mut b = NetlistBuilder::new("t");
        let i = b.input();
        b.not(i);
        b.finish(vec![WireId(99)]);
    }
}
