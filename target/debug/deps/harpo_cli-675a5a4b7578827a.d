/root/repo/target/debug/deps/harpo_cli-675a5a4b7578827a.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/libharpo_cli-675a5a4b7578827a.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
