//! Constrained-random program generation (paper §V-D).
//!
//! A generated program is a single linear basic block (branches resolve
//! to the next instruction, equating taken and not-taken paths), wrapped
//! with deterministic initial state: base registers point at the memory
//! region, data registers and memory hold seeded pseudo-random values,
//! and the sequence ends in `HALT` so the output signature is
//! well-defined.

use crate::constraints::{GenConstraints, RegAllocPolicy, BASE_POOL, WRITABLE_POOL};
use harpo_isa::form::{Catalog, Form, FormId, Mnemonic, OpMode};
use harpo_isa::inst::Inst;
use harpo_isa::mem::{MemImage, DATA_BASE};
use harpo_isa::program::{Program, Provenance, RegInit};
use harpo_isa::reg::Gpr;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

/// Operand-assignment state threaded through a generation (or mutation)
/// pass.
#[derive(Debug, Clone, Default)]
pub struct OperandCtx {
    /// Cursor for the max-dependency-distance destination rotation.
    pub dst_cursor: usize,
    /// Cursor for XMM destinations.
    pub xmm_cursor: usize,
    /// Memory reference counter (drives the strided pattern).
    pub mem_counter: u64,
    /// Current stack depth in slots.
    pub stack_depth: u32,
}

/// The MuSeqGen code generator.
#[derive(Debug, Clone)]
pub struct Generator {
    constraints: GenConstraints,
    allowed: Vec<FormId>,
    store_forms: Vec<FormId>,
}

impl Generator {
    /// Builds a generator for a constraint set.
    ///
    /// # Panics
    /// Panics if the constraints leave an empty form domain.
    pub fn new(constraints: GenConstraints) -> Generator {
        let allowed = constraints.allowed_forms();
        assert!(!allowed.is_empty(), "constraints admit no forms");
        let cat = Catalog::get();
        let store_forms = allowed
            .iter()
            .copied()
            .filter(|id| {
                let f = cat.form(*id);
                f.fu == harpo_isa::form::FuKind::Store && f.mnemonic != Mnemonic::Push
            })
            .collect();
        Generator {
            constraints,
            allowed,
            store_forms,
        }
    }

    /// The constraint set.
    pub fn constraints(&self) -> &GenConstraints {
        &self.constraints
    }

    /// The allowed form domain.
    pub fn allowed(&self) -> &[FormId] {
        &self.allowed
    }

    /// Generates one program from a seed. Same seed → same program.
    ///
    /// ```
    /// use harpo_museqgen::{GenConstraints, Generator};
    /// let gen = Generator::new(GenConstraints { n_insts: 100, ..Default::default() });
    /// let prog = gen.generate(7);
    /// assert_eq!(prog.len(), 101); // + the wrapper's HALT
    /// assert_eq!(prog.insts, gen.generate(7).insts);
    /// ```
    pub fn generate(&self, seed: u64) -> Program {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6865_7870_6F63_7261);
        let mut ctx = OperandCtx::default();
        let mut insts = Vec::with_capacity(self.constraints.n_insts + 1);
        for _ in 0..self.constraints.n_insts {
            let form = self.pick_form(&mut rng, &ctx);
            insts.push(self.instantiate(form, &mut rng, &mut ctx));
        }
        insts.push(Inst::halt());
        self.wrap(format!("museqgen-{seed:08x}"), insts, seed)
    }

    /// Wraps an instruction sequence with the deterministic initial
    /// state (registers + memory image) the constraints imply.
    pub fn wrap(&self, name: String, insts: Vec<Inst>, seed: u64) -> Program {
        let region = self.constraints.mem.region;
        let mut reg_init = RegInit::spread(region, seed | 1);
        for b in BASE_POOL {
            reg_init.gprs[b.index()] = DATA_BASE;
        }
        // Seeded data values in the writable pool.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for r in WRITABLE_POOL {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            reg_init.gprs[r.index()] = s;
        }
        let mem = MemImage {
            data_size: region,
            stack_size: self.constraints.stack_slots * 8 + 512,
            fill_seed: seed | 1,
            patches: Vec::new(),
        };
        Program {
            name,
            insts,
            reg_init,
            mem,
            provenance: Provenance::genesis(seed),
        }
    }

    /// Picks a form, respecting the stack-depth budget and the store
    /// bias of the configured distribution.
    pub fn pick_form(&self, rng: &mut StdRng, ctx: &OperandCtx) -> FormId {
        if !self.store_forms.is_empty()
            && self.constraints.store_bias > 0.0
            && rng.random_bool(self.constraints.store_bias)
        {
            return *self.store_forms.choose(rng).expect("nonempty");
        }
        let cat = Catalog::get();
        for _ in 0..16 {
            let id = *self.allowed.choose(rng).expect("nonempty domain");
            let f = cat.form(id);
            match f.mnemonic {
                Mnemonic::Push if ctx.stack_depth >= self.constraints.stack_slots => continue,
                Mnemonic::Pop if ctx.stack_depth == 0 => continue,
                _ => return id,
            }
        }
        // Degenerate constraint sets fall back to a NOP.
        Inst::nop().form
    }

    fn next_dst(&self, rng: &mut StdRng, ctx: &mut OperandCtx) -> Gpr {
        match self.constraints.regalloc {
            RegAllocPolicy::MaxDependencyDistance => {
                let r = WRITABLE_POOL[ctx.dst_cursor % WRITABLE_POOL.len()];
                ctx.dst_cursor += 1;
                r
            }
            RegAllocPolicy::Random => *WRITABLE_POOL.choose(rng).expect("pool nonempty"),
        }
    }

    fn next_xmm(&self, rng: &mut StdRng, ctx: &mut OperandCtx) -> u8 {
        match self.constraints.regalloc {
            RegAllocPolicy::MaxDependencyDistance => {
                let x = (ctx.xmm_cursor % 16) as u8;
                ctx.xmm_cursor += 1;
                x
            }
            RegAllocPolicy::Random => rng.random_range(0..16),
        }
    }

    fn mem_operand(&self, form: &Form, rng: &mut StdRng, ctx: &mut OperandCtx) -> (Gpr, u16) {
        let size = access_size(form);
        let disp = self.constraints.mem.disp_of(ctx.mem_counter, size);
        ctx.mem_counter += 1;
        let base = *BASE_POOL.choose(rng).expect("base pool nonempty");
        (base, disp)
    }

    /// Picks an integer *source* register. Sources are drawn mostly from
    /// the writable pool so values chain through the dataflow and
    /// propagate toward the output — the paper's §V-D "balance between
    /// high ILP and data flow propagation". A small fraction still reads
    /// arbitrary registers (bases, RSP) for pattern diversity.
    fn src_gpr(&self, rng: &mut StdRng) -> u8 {
        if rng.random_range(0..5u8) == 0 {
            rng.random_range(0..16u8)
        } else {
            WRITABLE_POOL.choose(rng).expect("pool").index() as u8
        }
    }

    /// Assigns operands for `form` under the constraint system.
    pub fn instantiate(&self, form_id: FormId, rng: &mut StdRng, ctx: &mut OperandCtx) -> Inst {
        let form = *Catalog::get().form(form_id);
        let any_xmm = |rng: &mut StdRng| rng.random_range(0..16u8);
        match form.mode {
            OpMode::Rr => {
                let dst = self.next_dst(rng, ctx).index() as u8;
                // XCHG writes both operands: keep both in the writable
                // pool so base registers stay intact.
                let src = if form.mnemonic == Mnemonic::Xchg {
                    WRITABLE_POOL.choose(rng).expect("pool").index() as u8
                } else {
                    self.src_gpr(rng)
                };
                Inst::new(form_id, dst, src, 0)
            }
            OpMode::Ri => {
                let dst = self.next_dst(rng, ctx).index() as u8;
                Inst::new(form_id, dst, 0, rng.random::<i32>())
            }
            OpMode::Rm => {
                let dst = self.next_dst(rng, ctx).index() as u8;
                let (base, disp) = self.mem_operand(&form, rng, ctx);
                Inst::new(form_id, dst, base.index() as u8, disp as i32)
            }
            OpMode::Mr => {
                let src = self.src_gpr(rng);
                let (base, disp) = self.mem_operand(&form, rng, ctx);
                Inst::new(form_id, src, base.index() as u8, disp as i32)
            }
            OpMode::RmRip => {
                let dst = self.next_dst(rng, ctx).index() as u8;
                let (_, disp) = self.mem_operand(&form, rng, ctx);
                Inst::new(form_id, dst, 0, disp as i32)
            }
            OpMode::MrRip => {
                let src = self.src_gpr(rng);
                let (_, disp) = self.mem_operand(&form, rng, ctx);
                Inst::new(form_id, src, 0, disp as i32)
            }
            OpMode::R => {
                let r = match form.mnemonic {
                    // PUSH only reads its operand.
                    Mnemonic::Push => {
                        ctx.stack_depth += 1;
                        self.src_gpr(rng)
                    }
                    Mnemonic::Pop => {
                        ctx.stack_depth = ctx.stack_depth.saturating_sub(1);
                        self.next_dst(rng, ctx).index() as u8
                    }
                    _ => self.next_dst(rng, ctx).index() as u8,
                };
                Inst::new(form_id, r, 0, 0)
            }
            OpMode::RiB => {
                let dst = self.next_dst(rng, ctx).index() as u8;
                Inst::new(form_id, dst, 0, rng.random_range(0..256))
            }
            OpMode::Rc => {
                let dst = self.next_dst(rng, ctx).index() as u8;
                Inst::new(form_id, dst, 0, 0)
            }
            OpMode::I => {
                ctx.stack_depth += 1;
                Inst::new(form_id, 0, 0, rng.random::<i32>())
            }
            // Branches resolve to the fall-through target (§V-D).
            OpMode::Rel => Inst::new(form_id, 0, 0, 0),
            OpMode::None => Inst::new(form_id, 0, 0, 0),
            OpMode::Xx => {
                let dst = self.next_xmm(rng, ctx);
                Inst::new(form_id, dst, any_xmm(rng), 0)
            }
            OpMode::Xm => {
                let dst = self.next_xmm(rng, ctx);
                let (base, disp) = self.mem_operand(&form, rng, ctx);
                Inst::new(form_id, dst, base.index() as u8, disp as i32)
            }
            OpMode::Mx => {
                let src = any_xmm(rng);
                let (base, disp) = self.mem_operand(&form, rng, ctx);
                Inst::new(form_id, src, base.index() as u8, disp as i32)
            }
            OpMode::Xr => {
                let dst = self.next_xmm(rng, ctx);
                Inst::new(form_id, dst, self.src_gpr(rng), 0)
            }
            OpMode::Rx => {
                let dst = self.next_dst(rng, ctx).index() as u8;
                Inst::new(form_id, dst, any_xmm(rng), 0)
            }
        }
    }
}

/// Memory access size of a form in bytes.
pub fn access_size(form: &Form) -> u32 {
    use harpo_isa::form::OpMode::*;
    match form.mode {
        Xm | Mx => {
            if form.packed || form.mnemonic == Mnemonic::Movaps {
                16
            } else {
                4
            }
        }
        _ => form.width.bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::exec::Machine;
    use harpo_isa::fu::NativeFu;
    use harpo_uarch::OooCore;

    #[test]
    fn generated_programs_run_cleanly() {
        let gen = Generator::new(GenConstraints {
            n_insts: 2_000,
            ..GenConstraints::default()
        });
        for seed in 0..8 {
            let p = gen.generate(seed);
            assert_eq!(p.len(), 2_001);
            let mut m = Machine::new(&p, NativeFu);
            let out = m
                .run(100_000)
                .unwrap_or_else(|t| panic!("seed {seed} trapped: {t}"));
            assert_eq!(out.dyn_count, 2_001, "linear program retires once each");
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let gen = Generator::new(GenConstraints::default());
        let a = gen.generate(42);
        let b = gen.generate(42);
        assert_eq!(a, b);
        let c = gen.generate(43);
        assert_ne!(a.insts, c.insts);
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        // The §V-B determinism requirement: same program, same output.
        let gen = Generator::new(GenConstraints {
            n_insts: 1_000,
            ..GenConstraints::default()
        });
        let p = gen.generate(7);
        let s1 = Machine::new(&p, NativeFu).run(100_000).unwrap().signature;
        let s2 = Machine::new(&p, NativeFu).run(100_000).unwrap().signature;
        assert_eq!(s1, s2);
    }

    #[test]
    fn base_registers_never_written() {
        let gen = Generator::new(GenConstraints {
            n_insts: 3_000,
            ..GenConstraints::default()
        });
        let p = gen.generate(99);
        let mut m = Machine::new(&p, NativeFu);
        while let Some(si) = m.step().unwrap() {
            for b in BASE_POOL {
                assert_eq!(
                    si.writes_gpr & (1 << b.index()),
                    0,
                    "base register {b} written by dyn {}",
                    si.dyn_idx
                );
            }
            let is_stack = matches!(
                Catalog::get().form(si.form).mnemonic,
                Mnemonic::Push | Mnemonic::Pop
            );
            if !is_stack {
                assert_eq!(
                    si.writes_gpr & (1 << Gpr::Rsp.index()),
                    0,
                    "RSP written by a non-stack instruction"
                );
            }
        }
    }

    #[test]
    fn simulates_under_ooo_core() {
        let gen = Generator::new(GenConstraints {
            n_insts: 1_500,
            ..GenConstraints::default()
        });
        let p = gen.generate(5);
        let r = OooCore::default().simulate(&p, 100_000).unwrap();
        assert!(r.trace.stats.cycles > 100);
    }

    #[test]
    fn whitelisted_generation_only_emits_whitelist() {
        let gen = Generator::new(GenConstraints {
            n_insts: 500,
            allow_memory: false,
            mnemonic_whitelist: vec![Mnemonic::Add, Mnemonic::Sub, Mnemonic::Mov],
            ..GenConstraints::default()
        });
        let p = gen.generate(1);
        let cat = Catalog::get();
        for i in &p.insts[..p.insts.len() - 1] {
            assert!(matches!(
                cat.form(i.form).mnemonic,
                Mnemonic::Add | Mnemonic::Sub | Mnemonic::Mov
            ));
        }
    }

    #[test]
    fn stack_depth_never_negative() {
        // A stack-heavy domain still never pops an empty stack (run
        // proves it: underflow would trap).
        let gen = Generator::new(GenConstraints {
            n_insts: 4_000,
            mnemonic_whitelist: vec![Mnemonic::Push, Mnemonic::Pop, Mnemonic::Add],
            ..GenConstraints::default()
        });
        for seed in 0..4 {
            let p = gen.generate(seed);
            Machine::new(&p, NativeFu)
                .run(100_000)
                .unwrap_or_else(|t| panic!("seed {seed}: {t}"));
        }
    }
}
