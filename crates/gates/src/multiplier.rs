//! The graded 32×32→64 integer multiplier array.
//!
//! A classic array multiplier: 1,024 partial-product AND gates reduced by
//! a cascade of ripple-carry rows (~11k gates total). Wider multiplies
//! (64-bit `IMUL`/`MUL`) are composed from several passes through this
//! array by the semantics layer (see `harpo_isa::fu::compose`), mirroring
//! designs that iterate a narrower array.

use crate::components::ripple_add;
use crate::eval::{bit_of, Evaluator, FaultSet};
use crate::netlist::{Netlist, NetlistBuilder, WireId};
use std::sync::OnceLock;

/// The 32×32→64 array multiplier.
#[derive(Debug)]
pub struct MulCircuit {
    net: Netlist,
    product: Vec<WireId>,
}

impl MulCircuit {
    /// Builds the circuit (prefer the shared [`int_multiplier`] instance).
    pub fn build() -> MulCircuit {
        let mut b = NetlistBuilder::new("int-mul-32x32");
        let a = b.input_bus(32);
        let bb = b.input_bus(32);

        // Partial products: row i = (a & b_i) << i.
        let mut rows: Vec<Vec<WireId>> = Vec::with_capacity(32);
        for &b_bit in bb.iter().take(32) {
            let row: Vec<WireId> = (0..32).map(|j| b.and(a[j], b_bit)).collect();
            rows.push(row);
        }

        // Accumulate rows with 64-bit ripple adders.
        let mut acc: Vec<WireId> = (0..64)
            .map(|k| if k < 32 { rows[0][k] } else { WireId::ZERO })
            .collect();
        for (i, row) in rows.iter().enumerate().skip(1) {
            let addend: Vec<WireId> = (0..64)
                .map(|k| {
                    if k >= i && k < i + 32 {
                        row[k - i]
                    } else {
                        WireId::ZERO
                    }
                })
                .collect();
            let (sum, _) = ripple_add(&mut b, &acc, &addend, WireId::ZERO);
            acc = sum;
        }
        let net = b.finish(acc.clone());
        MulCircuit { net, product: acc }
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Evaluates lane 0.
    pub fn eval(&self, ev: &mut Evaluator, a: u32, b: u32, faults: &FaultSet) -> u64 {
        ev.run(
            &self.net,
            |i| {
                if i < 32 {
                    bit_of(a as u64, i)
                } else {
                    bit_of(b as u64, i - 32)
                }
            },
            faults,
        );
        ev.bus(&self.product, 0)
    }

    /// Packed evaluation: one pass grades up to 64 faults (fault *i* in
    /// lane *i*).
    pub fn eval_lanes(
        &self,
        ev: &mut Evaluator,
        a: u32,
        b: u32,
        faults: &FaultSet,
        out: &mut [u64; 64],
    ) {
        ev.run(
            &self.net,
            |i| {
                if i < 32 {
                    bit_of(a as u64, i)
                } else {
                    bit_of(b as u64, i - 32)
                }
            },
            faults,
        );
        ev.bus_all_lanes(&self.product, out);
    }
}

/// The process-wide multiplier circuit (built once).
pub fn int_multiplier() -> &'static MulCircuit {
    static C: OnceLock<MulCircuit> = OnceLock::new();
    C.get_or_init(MulCircuit::build)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_products_exact() {
        let c = int_multiplier();
        let mut ev = Evaluator::new(c.netlist());
        for (a, b) in [
            (0u32, 0u32),
            (1, 1),
            (7, 9),
            (0xFFFF, 0xFFFF),
            (u32::MAX, u32::MAX),
            (u32::MAX, 2),
        ] {
            assert_eq!(
                c.eval(&mut ev, a, b, &FaultSet::none()),
                a as u64 * b as u64,
                "{a} * {b}"
            );
        }
    }

    #[test]
    fn seeded_random_equivalence() {
        let c = int_multiplier();
        let mut ev = Evaluator::new(c.netlist());
        let mut s = 0xDEAD_BEEFu64;
        for _ in 0..200 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = s as u32;
            let b = (s >> 32) as u32;
            assert_eq!(
                c.eval(&mut ev, a, b, &FaultSet::none()),
                a as u64 * b as u64
            );
        }
    }

    #[test]
    fn gate_count_is_substantial() {
        // The paper injects into gate-level FU models; the array must be a
        // realistic fault population, not a toy.
        assert!(int_multiplier().netlist().gate_count() > 5_000);
    }

    #[test]
    fn packed_fault_screening_matches_single() {
        let c = int_multiplier();
        let mut ev = Evaluator::new(c.netlist());
        let faults: Vec<(u32, bool)> = (0..32u32)
            .map(|i| (i * 97 % c.netlist().gate_count() as u32, i % 2 == 0))
            .collect();
        let fs = FaultSet::lanes(&faults);
        let mut out = [0u64; 64];
        c.eval_lanes(&mut ev, 123_456_789, 987_654_321, &fs, &mut out);
        for (i, &(g, s1)) in faults.iter().enumerate() {
            let single = c.eval(&mut ev, 123_456_789, 987_654_321, &FaultSet::single(g, s1));
            assert_eq!(out[i], single, "lane {i}");
        }
    }
}
