/root/repo/target/debug/deps/harpo_baselines-95b687862ceb669d.d: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/debug/deps/libharpo_baselines-95b687862ceb669d.rlib: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/debug/deps/libharpo_baselines-95b687862ceb669d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kern.rs:
crates/baselines/src/mibench.rs:
crates/baselines/src/opendcdiag.rs:
crates/baselines/src/silifuzz.rs:
