//! Concrete instructions: a form plus operand fields.

use crate::form::{Catalog, Form, FormId, Mnemonic, OpMode};
use crate::reg::{Gpr, Xmm};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete HX86 instruction.
///
/// The representation is deliberately compact (16 bytes, `Copy`): programs
/// run to 30K instructions and the genetic loop holds populations of ~100
/// programs, so instruction storage is on the hot path. The `a`/`b` fields
/// are 4-bit register selectors whose meaning depends on the form's
/// [`OpMode`]; `imm` carries immediates, shift counts, displacements and
/// branch offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Inst {
    /// Which form this instruction instantiates.
    pub form: FormId,
    /// First register field (destination for two-operand forms).
    pub a: u8,
    /// Second register field (source, or memory base register).
    pub b: u8,
    /// Immediate / displacement / branch offset, meaning per mode:
    /// * `Ri`, `I` — 32-bit immediate (sign-extended at execution);
    /// * `RiB` — shift count / bit index (low 8 bits);
    /// * `Rm`/`Mr`/`Xm`/`Mx` — 16-bit signed displacement;
    /// * `RmRip`/`MrRip` — 16-bit unsigned offset into the data region;
    /// * `Rel` — signed instruction-index offset.
    pub imm: i32,
}

impl Inst {
    /// Creates an instruction after validating the operand fields fit the
    /// form's mode (register selectors are 4-bit).
    ///
    /// # Panics
    /// Panics if a register selector exceeds 15; callers construct
    /// selectors from [`Gpr`]/[`Xmm`] indices so this indicates a logic
    /// error, not bad input data.
    pub fn new(form: FormId, a: u8, b: u8, imm: i32) -> Inst {
        assert!(a < 16 && b < 16, "register selectors are 4-bit");
        Inst { form, a, b, imm }
    }

    /// The form metadata for this instruction.
    #[inline]
    pub fn form_meta(&self) -> &'static Form {
        Catalog::get().form(self.form)
    }

    /// First register field as a GPR.
    #[inline]
    pub fn gpr_a(&self) -> Gpr {
        Gpr::from_nibble(self.a)
    }

    /// Second register field as a GPR.
    #[inline]
    pub fn gpr_b(&self) -> Gpr {
        Gpr::from_nibble(self.b)
    }

    /// First register field as an XMM register.
    #[inline]
    pub fn xmm_a(&self) -> Xmm {
        Xmm::from_nibble(self.a)
    }

    /// Second register field as an XMM register.
    #[inline]
    pub fn xmm_b(&self) -> Xmm {
        Xmm::from_nibble(self.b)
    }

    /// Memory base register (modes with a `[base + disp]` operand).
    #[inline]
    pub fn mem_base(&self) -> Gpr {
        Gpr::from_nibble(self.b)
    }

    /// Signed displacement for memory modes.
    #[inline]
    pub fn disp(&self) -> i16 {
        self.imm as i16
    }

    /// Branch offset in instruction indices (mode `Rel`).
    #[inline]
    pub fn rel(&self) -> i32 {
        self.imm
    }

    /// A NOP instruction.
    pub fn nop() -> Inst {
        let id = Catalog::get()
            .lookup(Mnemonic::Nop, OpMode::None, crate::reg::Width::B64, false)
            .expect("nop form exists");
        Inst::new(id, 0, 0, 0)
    }

    /// A HALT instruction (terminates execution cleanly).
    pub fn halt() -> Inst {
        let id = Catalog::get()
            .lookup(Mnemonic::Halt, OpMode::None, crate::reg::Width::B64, false)
            .expect("halt form exists");
        Inst::new(id, 0, 0, 0)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let meta = self.form_meta();
        match meta.mode {
            OpMode::Rr => write!(f, "{} {}, {}", meta, self.gpr_a(), self.gpr_b()),
            OpMode::Ri => write!(f, "{} {}, {:#x}", meta, self.gpr_a(), self.imm),
            OpMode::Rm => write!(
                f,
                "{} {}, [{}{:+}]",
                meta,
                self.gpr_a(),
                self.mem_base(),
                self.disp()
            ),
            OpMode::Mr => write!(
                f,
                "{} [{}{:+}], {}",
                meta,
                self.mem_base(),
                self.disp(),
                self.gpr_a()
            ),
            OpMode::RmRip => write!(f, "{} {}, [rip+{:#x}]", meta, self.gpr_a(), self.imm as u16),
            OpMode::MrRip => write!(f, "{} [rip+{:#x}], {}", meta, self.imm as u16, self.gpr_a()),
            OpMode::R => write!(f, "{} {}", meta, self.gpr_a()),
            OpMode::RiB => write!(f, "{} {}, {}", meta, self.gpr_a(), self.imm as u8),
            OpMode::Rc => write!(f, "{} {}, cl", meta, self.gpr_a()),
            OpMode::I => write!(f, "{} {:#x}", meta, self.imm),
            OpMode::Rel => write!(f, "{} {:+}", meta, self.rel()),
            OpMode::None => write!(f, "{}", meta),
            OpMode::Xx => write!(f, "{} {}, {}", meta, self.xmm_a(), self.xmm_b()),
            OpMode::Xm => write!(
                f,
                "{} {}, [{}{:+}]",
                meta,
                self.xmm_a(),
                self.mem_base(),
                self.disp()
            ),
            OpMode::Mx => write!(
                f,
                "{} [{}{:+}], {}",
                meta,
                self.mem_base(),
                self.disp(),
                self.xmm_a()
            ),
            OpMode::Xr => write!(f, "{} {}, {}", meta, self.xmm_a(), self.gpr_b()),
            OpMode::Rx => write!(f, "{} {}, {}", meta, self.gpr_a(), self.xmm_b()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::form::Mnemonic;
    use crate::reg::Width;

    fn form_of(m: Mnemonic, mode: OpMode, w: Width) -> FormId {
        Catalog::get().lookup(m, mode, w, false).unwrap()
    }

    #[test]
    fn inst_is_compact() {
        assert!(std::mem::size_of::<Inst>() <= 16);
    }

    #[test]
    fn accessors_decode_fields() {
        let f = form_of(Mnemonic::Add, OpMode::Rr, Width::B64);
        let i = Inst::new(f, 3, 9, 0);
        assert_eq!(i.gpr_a(), Gpr::Rbx);
        assert_eq!(i.gpr_b(), Gpr::R9);
    }

    #[test]
    #[should_panic(expected = "register selectors")]
    fn oversized_selector_panics() {
        let f = form_of(Mnemonic::Add, OpMode::Rr, Width::B64);
        let _ = Inst::new(f, 16, 0, 0);
    }

    #[test]
    fn display_all_modes_nonempty() {
        let c = Catalog::get();
        for form in c.forms() {
            let i = Inst::new(form.id, 1, 2, 8);
            let s = i.to_string();
            assert!(!s.is_empty(), "empty display for {}", form.name());
        }
    }
}
