/root/repo/target/debug/deps/harpo_uarch-988e2b6de01eca9d.d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/debug/deps/harpo_uarch-988e2b6de01eca9d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

crates/uarch/src/lib.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/config.rs:
crates/uarch/src/core.rs:
crates/uarch/src/trace.rs:
