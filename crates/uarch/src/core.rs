//! The out-of-order core timing model.
//!
//! An execution-driven, timestamp-based OoO model: the functional engine
//! (`harpo_isa::exec::Machine`) supplies per-instruction [`StepInfo`]
//! records in program order; the timing model assigns each instruction
//! its fetch/dispatch/issue/complete/commit cycles under the structural
//! constraints of [`CoreConfig`] (dispatch width, ROB/IQ occupancy,
//! physical-register availability, FU pipes, cache ports, branch
//! redirects) and records the microarchitectural observables into an
//! [`ExecutionTrace`].
//!
//! This style of model computes the same quantities Harpocrates consumes
//! from gem5 — per-cycle physical-register lifetimes, cache residency,
//! FU operand streams — at a fraction of the cost, which is what the
//! hardware-in-the-loop evaluation step needs (thousands of simulations
//! per genetic run; see DESIGN.md substitution table).

use crate::cache::{CacheAccess, L1Dcache, LineEvent};
use crate::config::CoreConfig;
use crate::trace::{DynRecord, ExecutionTrace, FuOp, RegInstance, RegRead, SimStats, XmmInstance};
use harpo_isa::exec::{Machine, RunOutput, StepInfo, Trap};
use harpo_isa::form::{Catalog, FuKind};
use harpo_isa::fu::NativeFu;
use harpo_isa::program::Program;
use harpo_isa::reg::{Gpr, Xmm};
use std::collections::{HashMap, VecDeque};

/// Result of a golden simulation: the architectural output plus the full
/// microarchitectural trace.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Architectural output of the run.
    pub output: RunOutput,
    /// Microarchitectural observables.
    pub trace: ExecutionTrace,
}

/// The out-of-order core simulator. Stateless between runs; create once
/// and call [`OooCore::simulate`] per program.
#[derive(Debug, Clone)]
pub struct OooCore {
    cfg: CoreConfig,
}

impl OooCore {
    /// Creates a core with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (see
    /// [`CoreConfig::validate`]).
    pub fn new(cfg: CoreConfig) -> OooCore {
        cfg.validate();
        OooCore { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs `prog` to completion, producing output and trace.
    ///
    /// # Errors
    /// Any [`Trap`] raised by the program (including the dynamic
    /// instruction cap).
    pub fn simulate(&self, prog: &Program, cap: u64) -> Result<SimResult, Trap> {
        let mut machine = Machine::new(prog, NativeFu);
        let mut t = Timing::new(&self.cfg);
        loop {
            if machine.dyn_count() >= cap {
                return Err(Trap::InstructionCap);
            }
            match machine.step()? {
                None => break,
                Some(si) => t.retire(&si),
            }
        }
        let output = machine.output();
        let trace = t.finish(output.dyn_count);
        Ok(SimResult { output, trace })
    }
}

impl Default for OooCore {
    fn default() -> Self {
        OooCore::new(CoreConfig::default())
    }
}

/// A pool of identical pipelined execution pipes.
#[derive(Debug)]
struct PipePool {
    next_free: Vec<u64>,
}

impl PipePool {
    fn new(n: u32) -> PipePool {
        PipePool {
            next_free: vec![0; n.max(1) as usize],
        }
    }

    /// Issues at the earliest cycle ≥ `ready` with a free pipe, occupying
    /// it for `occupancy` cycles.
    fn issue(&mut self, ready: u64, occupancy: u64) -> u64 {
        let (idx, &free) = self
            .next_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("pool nonempty");
        let at = ready.max(free);
        self.next_free[idx] = at + occupancy;
        at
    }
}

/// Two-bit saturating branch direction predictor.
#[derive(Debug)]
struct Bpred {
    table: Vec<u8>,
}

impl Bpred {
    fn new() -> Bpred {
        Bpred {
            table: vec![1; 1024], // weakly not-taken
        }
    }

    fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let e = &mut self.table[pc as usize % 1024];
        let pred = *e >= 2;
        if taken {
            *e = (*e + 1).min(3);
        } else {
            *e = e.saturating_sub(1);
        }
        pred == taken
    }
}

struct Timing {
    cfg: CoreConfig,
    cache: L1Dcache,
    bpred: Bpred,

    // Frontend.
    fetch_cycle: u64,
    fetched_this_cycle: u32,

    // Backend rings (freed-at times).
    rob_ring: Vec<u64>,
    iq_ring: Vec<u64>,
    dyn_idx: u64,

    // Register readiness.
    gpr_ready: [u64; 16],
    xmm_ready: [u64; 16],
    flags_ready: u64,

    // Rename state.
    freelist: VecDeque<(u64, u16)>, // (free_at, preg)
    cur_inst: [usize; 16],          // arch → index into instances
    instances: Vec<RegInstance>,
    xmm_freelist: VecDeque<(u64, u16)>,
    xmm_cur_inst: [usize; 16],
    xmm_instances: Vec<XmmInstance>,

    // Execution resources.
    alu: PipePool,
    mul: PipePool,
    div: PipePool,
    fpadd: PipePool,
    fpmul: PipePool,
    fpdiv: PipePool,
    load_ports: PipePool,
    store_ports: PipePool,
    /// Commit cycle of the most recent store to each byte: loads must not
    /// read the data array before an older overlapping store has written
    /// it (no store-to-load forwarding is modelled).
    store_commit: HashMap<u64, u64>,

    // Commit.
    last_commit: u64,
    committed_this_cycle: u32,

    // Trace accumulation.
    dyn_records: Vec<DynRecord>,
    cache_accesses: Vec<CacheAccess>,
    line_events: Vec<LineEvent>,
    fu_ops: Vec<FuOp>,
    branches: u64,
    mispredicts: u64,
    rob_stalls: u64,
    iq_stalls: u64,
    prf_stalls: u64,
}

impl Timing {
    fn new(cfg: &CoreConfig) -> Timing {
        let mut instances = Vec::with_capacity(1024);
        let mut cur_inst = [0usize; 16];
        for (i, slot) in cur_inst.iter_mut().enumerate() {
            *slot = instances.len();
            instances.push(RegInstance {
                preg: i as u16,
                arch: Gpr::ALL[i],
                writer: u64::MAX,
                write_cycle: 0,
                free_cycle: u64::MAX,
                live_at_end: false,
                reads: Vec::new(),
            });
        }
        let freelist = (16..cfg.phys_regs as u16).map(|p| (0u64, p)).collect();
        let mut xmm_instances = Vec::with_capacity(256);
        let mut xmm_cur_inst = [0usize; 16];
        for (i, slot) in xmm_cur_inst.iter_mut().enumerate() {
            *slot = xmm_instances.len();
            xmm_instances.push(XmmInstance {
                preg: i as u16,
                arch: Xmm::ALL[i],
                writer: u64::MAX,
                write_cycle: 0,
                free_cycle: u64::MAX,
                live_at_end: false,
                reads: Vec::new(),
            });
        }
        let xmm_freelist = (16..cfg.phys_xmm as u16).map(|p| (0u64, p)).collect();
        Timing {
            cfg: cfg.clone(),
            cache: L1Dcache::new(cfg),
            bpred: Bpred::new(),
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            rob_ring: vec![0; cfg.rob_size as usize],
            iq_ring: vec![0; cfg.iq_size as usize],
            dyn_idx: 0,
            gpr_ready: [0; 16],
            xmm_ready: [0; 16],
            flags_ready: 0,
            freelist,
            cur_inst,
            instances,
            xmm_freelist,
            xmm_cur_inst,
            xmm_instances,
            alu: PipePool::new(cfg.alu_pipes),
            mul: PipePool::new(1),
            div: PipePool::new(1),
            fpadd: PipePool::new(1),
            fpmul: PipePool::new(1),
            fpdiv: PipePool::new(1),
            load_ports: PipePool::new(cfg.load_ports),
            store_ports: PipePool::new(cfg.store_ports),
            store_commit: HashMap::new(),
            last_commit: 0,
            committed_this_cycle: 0,
            dyn_records: Vec::new(),
            cache_accesses: Vec::new(),
            line_events: Vec::new(),
            fu_ops: Vec::new(),
            branches: 0,
            mispredicts: 0,
            rob_stalls: 0,
            iq_stalls: 0,
            prf_stalls: 0,
        }
    }

    fn retire(&mut self, si: &StepInfo) {
        let cfg_width = self.cfg.width;
        let form = Catalog::get().form(si.form);
        let idx = self.dyn_idx;
        self.dyn_idx += 1;

        // ---- Fetch (width-limited, redirected on mispredicts). ----
        if self.fetched_this_cycle >= cfg_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        let fetch = self.fetch_cycle;
        self.fetched_this_cycle += 1;

        // ---- Dispatch: frontend depth + ROB/IQ/PRF availability. ----
        // Each structural constraint that actually delays dispatch is
        // counted as a stall of that structure.
        let mut dispatch = fetch + self.cfg.frontend_depth as u64;
        let rob_slot = (idx % self.cfg.rob_size as u64) as usize;
        if self.rob_ring[rob_slot] > dispatch {
            dispatch = self.rob_ring[rob_slot];
            self.rob_stalls += 1;
        }
        let iq_slot = (idx % self.cfg.iq_size as u64) as usize;
        if self.iq_ring[iq_slot] > dispatch {
            dispatch = self.iq_ring[iq_slot];
            self.iq_stalls += 1;
        }

        // Allocate physical destination registers (integer and XMM).
        let mut prf_stalled = false;
        let n_writes = (si.writes_gpr).count_ones() as usize;
        let mut new_pregs = [0u16; 6];
        for slot in new_pregs.iter_mut().take(n_writes) {
            let (free_at, preg) = self
                .freelist
                .pop_front()
                .expect("PRF smaller than architectural state");
            if free_at > dispatch {
                dispatch = free_at;
                prf_stalled = true;
            }
            *slot = preg;
        }
        let n_xwrites = (si.writes_xmm).count_ones() as usize;
        let mut new_xpregs = [0u16; 6];
        for slot in new_xpregs.iter_mut().take(n_xwrites) {
            let (free_at, preg) = self
                .xmm_freelist
                .pop_front()
                .expect("XMM PRF smaller than architectural state");
            if free_at > dispatch {
                dispatch = free_at;
                prf_stalled = true;
            }
            *slot = preg;
        }
        if prf_stalled {
            self.prf_stalls += 1;
        }

        // ---- Operand readiness. ----
        let mut ready = dispatch + 1;
        let mut rd = si.reads_gpr;
        while rd != 0 {
            let r = rd.trailing_zeros() as usize;
            rd &= rd - 1;
            ready = ready.max(self.gpr_ready[r]);
        }
        let mut rx = si.reads_xmm;
        while rx != 0 {
            let r = rx.trailing_zeros() as usize;
            rx &= rx - 1;
            ready = ready.max(self.xmm_ready[r]);
        }
        if si.reads_flags {
            ready = ready.max(self.flags_ready);
        }

        // ---- Split memory micro-op (if any). ----
        let is_store = si.mem.map(|m| m.is_store).unwrap_or(false);
        let mut op_ready = ready;
        let mut load_done = 0u64;
        if let Some(mem) = si.mem {
            if !mem.is_store {
                // Memory dependence: wait for older overlapping stores to
                // have written the data array (one cycle after commit).
                let mut ready = ready;
                for b in mem.addr..mem.addr + mem.size as u64 {
                    if let Some(&t) = self.store_commit.get(&b) {
                        ready = ready.max(t + 1);
                    }
                }
                let l_issue = self.load_ports.issue(ready, 1);
                let lat = self.cache_load(idx, l_issue, mem.addr, mem.size);
                load_done = l_issue + lat as u64;
                op_ready = op_ready.max(load_done);
            }
        }

        // ---- Execute micro-op. ----
        let passes = si.passes.len().max(1) as u64;
        let (issue, complete) = match form.fu {
            FuKind::Alu | FuKind::IntAdd | FuKind::Branch => {
                let at = self.alu.issue(op_ready, passes);
                (at, at + FuKind::Alu.latency() as u64 + (passes - 1))
            }
            FuKind::IntMul => {
                let at = self.mul.issue(op_ready, passes);
                (at, at + FuKind::IntMul.latency() as u64 + (passes - 1))
            }
            FuKind::IntDiv => {
                let lat = FuKind::IntDiv.latency() as u64;
                let at = self.div.issue(op_ready, lat); // unpipelined
                (at, at + lat)
            }
            FuKind::FpAdd => {
                let at = self.fpadd.issue(op_ready, passes);
                (at, at + FuKind::FpAdd.latency() as u64 + (passes - 1))
            }
            FuKind::FpMul => {
                let at = self.fpmul.issue(op_ready, passes);
                (at, at + FuKind::FpMul.latency() as u64 + (passes - 1))
            }
            FuKind::FpDiv => {
                let lat = FuKind::FpDiv.latency() as u64;
                let at = self.fpdiv.issue(op_ready, lat);
                (at, at + lat)
            }
            FuKind::Load => {
                // Pure load: the load micro-op *is* the instruction.
                if load_done > 0 {
                    (op_ready.max(ready), load_done)
                } else {
                    (ready, ready + 1)
                }
            }
            FuKind::Store => {
                let at = self.store_ports.issue(op_ready, 1);
                (at, at + 1)
            }
        };
        self.iq_ring[iq_slot] = issue + 1;

        // ---- Record graded unit passes at their issue cycles. ----
        for (i, p) in si.passes.as_slice().iter().enumerate() {
            self.fu_ops.push(FuOp {
                dyn_idx: idx,
                cycle: issue + i as u64,
                kind: p.kind,
                a: p.a,
                b: p.b,
                cin: p.cin,
            });
        }

        // ---- Record register reads at the issue cycle. ----
        let propagates =
            si.writes_gpr != 0 || si.writes_xmm != 0 || si.mem.map(|m| m.is_store).unwrap_or(false);
        let mut rd = si.reads_gpr;
        while rd != 0 {
            let r = rd.trailing_zeros() as usize;
            rd &= rd - 1;
            let inst = self.cur_inst[r];
            self.instances[inst].reads.push(RegRead {
                dyn_idx: idx,
                cycle: issue,
                propagates,
                obs: [si.gpr_read_mask[r], 0],
            });
        }
        let mut rx = si.reads_xmm;
        while rx != 0 {
            let r = rx.trailing_zeros() as usize;
            rx &= rx - 1;
            let inst = self.xmm_cur_inst[r];
            self.xmm_instances[inst].reads.push(RegRead {
                dyn_idx: idx,
                cycle: issue,
                propagates,
                obs: si.xmm_read_mask[r],
            });
        }

        // ---- Commit (in order, width-limited). ----
        let mut commit = (complete + 1).max(self.last_commit);
        if commit == self.last_commit {
            if self.committed_this_cycle >= cfg_width {
                commit += 1;
                self.committed_this_cycle = 1;
            } else {
                self.committed_this_cycle += 1;
            }
        } else {
            self.committed_this_cycle = 1;
        }
        self.last_commit = commit;
        self.rob_ring[rob_slot] = commit;

        // ---- Stores write the cache at commit. ----
        if let Some(mem) = si.mem {
            if is_store {
                self.cache_store(idx, commit, mem.addr, mem.size);
                for b in mem.addr..mem.addr + mem.size as u64 {
                    self.store_commit.insert(b, commit);
                }
            }
        }

        // ---- Register writeback + rename bookkeeping. ----
        let mut wr = si.writes_gpr;
        let mut wslot = 0;
        while wr != 0 {
            let r = wr.trailing_zeros() as usize;
            wr &= wr - 1;
            self.gpr_ready[r] = complete;
            let preg = new_pregs[wslot];
            wslot += 1;
            // The previous instance frees when this writer commits.
            let old = self.cur_inst[r];
            self.instances[old].free_cycle = commit;
            let old_preg = self.instances[old].preg;
            self.freelist.push_back((commit, old_preg));
            self.cur_inst[r] = self.instances.len();
            self.instances.push(RegInstance {
                preg,
                arch: Gpr::ALL[r],
                writer: idx,
                write_cycle: complete,
                free_cycle: u64::MAX,
                live_at_end: false,
                reads: Vec::new(),
            });
        }
        let mut wx = si.writes_xmm;
        let mut xslot = 0;
        while wx != 0 {
            let r = wx.trailing_zeros() as usize;
            wx &= wx - 1;
            self.xmm_ready[r] = complete;
            let preg = new_xpregs[xslot];
            xslot += 1;
            let old = self.xmm_cur_inst[r];
            self.xmm_instances[old].free_cycle = commit;
            let old_preg = self.xmm_instances[old].preg;
            self.xmm_freelist.push_back((commit, old_preg));
            self.xmm_cur_inst[r] = self.xmm_instances.len();
            self.xmm_instances.push(XmmInstance {
                preg,
                arch: Xmm::ALL[r],
                writer: idx,
                write_cycle: complete,
                free_cycle: u64::MAX,
                live_at_end: false,
                reads: Vec::new(),
            });
        }
        if si.writes_flags {
            self.flags_ready = complete;
        }

        // ---- Def/use record for liveness analysis. ----
        let branch_kind = match si.branch {
            None => 0,
            Some(br) if br.trivial => 1, // direction can never matter
            Some(_) => 2,
        };
        self.dyn_records.push(DynRecord {
            reads_gpr: si.reads_gpr,
            writes_gpr: si.writes_gpr,
            reads_xmm: si.reads_xmm,
            writes_xmm: si.writes_xmm,
            reads_flags: si.reads_flags,
            writes_flags: si.writes_flags,
            mem_addr: si.mem.map(|m| m.addr).unwrap_or(0),
            mem_size: si.mem.map(|m| m.size).unwrap_or(0),
            is_store: si.mem.map(|m| m.is_store).unwrap_or(false),
            branch: branch_kind,
        });

        // ---- Branch resolution. ----
        if let Some(br) = si.branch {
            self.branches += 1;
            let correct = self.bpred.predict_and_update(si.static_idx, br.taken);
            if !correct {
                self.mispredicts += 1;
                let redirect = complete + self.cfg.mispredict_penalty as u64;
                if redirect > self.fetch_cycle {
                    self.fetch_cycle = redirect;
                    self.fetched_this_cycle = 0;
                }
            }
        }
    }

    /// Accesses the cache for a load (splitting line straddles); returns
    /// the load-to-use latency.
    fn cache_load(&mut self, dyn_idx: u64, cycle: u64, addr: u64, size: u8) -> u32 {
        let line = self.cache.line_size() as u64;
        let mut lat = 0u32;
        let mut a = addr;
        let end = addr + size as u64;
        while a < end {
            let chunk_end = ((a / line) + 1) * line;
            let sz = chunk_end.min(end) - a;
            let (hit, way) = self.cache.access(a, false, cycle, &mut self.line_events);
            lat = lat.max(if hit {
                self.cfg.l1d_hit_lat
            } else {
                self.cfg.l1d_hit_lat + self.cfg.l1d_miss_lat
            });
            self.cache_accesses.push(CacheAccess {
                dyn_idx,
                cycle,
                addr: a,
                size: sz as u8,
                is_store: false,
                hit,
                set: self.cache.set_of(a),
                way,
            });
            a = chunk_end;
        }
        lat
    }

    fn cache_store(&mut self, dyn_idx: u64, cycle: u64, addr: u64, size: u8) {
        let line = self.cache.line_size() as u64;
        let mut a = addr;
        let end = addr + size as u64;
        while a < end {
            let chunk_end = ((a / line) + 1) * line;
            let sz = chunk_end.min(end) - a;
            let (hit, way) = self.cache.access(a, true, cycle, &mut self.line_events);
            self.cache_accesses.push(CacheAccess {
                dyn_idx,
                cycle,
                addr: a,
                size: sz as u8,
                is_store: true,
                hit,
                set: self.cache.set_of(a),
                way,
            });
            a = chunk_end;
        }
    }

    fn finish(mut self, insts: u64) -> ExecutionTrace {
        let cycles = self.last_commit.max(1);
        for inst in &mut self.instances {
            if inst.free_cycle == u64::MAX {
                inst.free_cycle = cycles;
                inst.live_at_end = true;
            }
        }
        for inst in &mut self.xmm_instances {
            if inst.free_cycle == u64::MAX {
                inst.free_cycle = cycles;
                inst.live_at_end = true;
            }
        }
        let (h, m, wb) = self.cache.stats();
        ExecutionTrace {
            stats: SimStats {
                cycles,
                insts,
                l1d_hits: h,
                l1d_misses: m,
                l1d_writebacks: wb,
                branches: self.branches,
                mispredicts: self.mispredicts,
                rob_stalls: self.rob_stalls,
                iq_stalls: self.iq_stalls,
                prf_stalls: self.prf_stalls,
            },
            reg_instances: self.instances,
            xmm_instances: self.xmm_instances,
            dyn_records: self.dyn_records,
            cache_accesses: self.cache_accesses,
            line_events: self.line_events,
            fu_ops: self.fu_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::form::Mnemonic;
    use harpo_isa::mem::DATA_BASE;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_isa::reg::Xmm;

    fn simulate(prog: &harpo_isa::program::Program) -> SimResult {
        OooCore::default()
            .simulate(prog, 10_000_000)
            .expect("clean run")
    }

    #[test]
    fn timing_and_function_agree() {
        let mut a = Asm::new("loop");
        a.mov_ri(B64, Rax, 0);
        a.mov_ri(B64, Rcx, 100);
        a.label("l");
        a.add_ri(B64, Rax, 2);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let p = a.finish().unwrap();
        let r = simulate(&p);
        assert_eq!(r.output.state.gpr(Rax), 200);
        assert!(r.trace.stats.cycles > 100, "loop takes real time");
        assert_eq!(r.trace.stats.insts, r.output.dyn_count);
        assert!(r.trace.stats.ipc() > 0.1 && r.trace.stats.ipc() < 4.0);
    }

    #[test]
    fn dependent_chain_slower_than_independent() {
        // Serial dependency chain.
        let mut a = Asm::new("serial");
        a.mov_ri(B64, Rax, 1);
        for _ in 0..200 {
            a.add_ri(B64, Rax, 1);
        }
        a.halt();
        let serial = simulate(&a.finish().unwrap()).trace.stats.cycles;

        // Same op count spread over 8 independent registers.
        let mut a = Asm::new("parallel");
        for (i, r) in [Rax, Rbx, Rcx, Rdx, Rsi, Rdi, R8, R9].iter().enumerate() {
            a.mov_ri(B64, *r, i as i32);
        }
        for i in 0..200 {
            let r = [Rax, Rbx, Rcx, Rdx, Rsi, Rdi, R8, R9][i % 8];
            a.add_ri(B64, r, 1);
        }
        a.halt();
        let parallel = simulate(&a.finish().unwrap()).trace.stats.cycles;
        assert!(
            parallel * 3 < serial * 2,
            "ILP must pay off: serial={serial}, parallel={parallel}"
        );
    }

    #[test]
    fn cache_misses_cost_cycles() {
        // Stride-64 over 32 KiB misses everywhere on the first pass.
        let mut a = Asm::new("stream");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 512);
        a.label("l");
        a.load(B64, Rax, Rsi, 0);
        a.add_ri(B64, Rsi, 64);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let r = simulate(&a.finish().unwrap());
        assert_eq!(r.trace.stats.l1d_misses, 512);
        assert_eq!(r.trace.stats.l1d_hits, 0);
        // Hit-only version is much faster.
        let mut a = Asm::new("hot");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 512);
        a.label("l");
        a.load(B64, Rax, Rsi, 0);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let hot = simulate(&a.finish().unwrap());
        assert!(hot.trace.stats.cycles < r.trace.stats.cycles);
    }

    #[test]
    fn reg_instances_track_lifetimes() {
        let mut a = Asm::new("life");
        a.mov_ri(B64, Rax, 1); // instance A
        a.add_ri(B64, Rbx, 0); // reads rbx
        a.mov_rr(B64, Rcx, Rax); // reads instance A
        a.mov_ri(B64, Rax, 2); // instance B; frees A at commit
        a.halt();
        let r = simulate(&a.finish().unwrap());
        // Find the instance written by dyn instruction 0 (mov rax, 1).
        let inst_a = r
            .trace
            .reg_instances
            .iter()
            .find(|i| i.writer == 0)
            .expect("instance exists");
        assert_eq!(inst_a.arch, Rax);
        assert_eq!(inst_a.reads.len(), 1, "read once by mov rcx, rax");
        assert!(inst_a.free_cycle < r.trace.stats.cycles + 1);
        // Bypass allows a consumer to issue in the producer's completion
        // cycle, so equality is legal.
        assert!(inst_a.write_cycle <= inst_a.reads[0].cycle);
        assert!(inst_a.reads[0].cycle <= inst_a.free_cycle);
        // Never-rewritten architectural registers stay live to the end.
        let rbx_init = r
            .trace
            .reg_instances
            .iter()
            .find(|i| i.arch == Rbx && i.writer == u64::MAX);
        assert!(rbx_init.is_none() || rbx_init.unwrap().free_cycle <= r.trace.stats.cycles);
    }

    #[test]
    fn fu_ops_recorded_with_cycles() {
        let mut a = Asm::new("fu");
        a.mov_ri(B64, Rax, 7);
        a.mov_ri(B64, Rbx, 9);
        a.imul_rr(B64, Rax, Rbx);
        a.add_rr(B64, Rax, Rbx);
        a.halt();
        let r = simulate(&a.finish().unwrap());
        let muls = r.trace.fu_op_count(FuKind::IntMul);
        assert_eq!(muls, 4, "64-bit signed imul decomposes into 4 passes");
        let adds = r.trace.fu_op_count(FuKind::IntAdd);
        assert_eq!(adds, 1);
        // Pass cycles are ordered within the instruction.
        let mul_ops: Vec<_> = r.trace.fu_ops_of(FuKind::IntMul).collect();
        for w in mul_ops.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
    }

    #[test]
    fn branch_mispredicts_counted() {
        // A data-dependent alternating branch defeats the 2-bit predictor.
        let mut a = Asm::new("alt");
        a.mov_ri(B64, Rcx, 200);
        a.mov_ri(B64, Rax, 0);
        a.label("l");
        a.op_ri(Mnemonic::Xor, B64, Rax, 1);
        a.op_ri(Mnemonic::Test, B64, Rax, 1);
        a.jz("skip");
        a.add_ri(B64, Rbx, 1);
        a.label("skip");
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let r = simulate(&a.finish().unwrap());
        assert!(r.trace.stats.branches >= 400);
        assert!(
            r.trace.stats.mispredicts > 50,
            "alternating pattern mispredicts: {}",
            r.trace.stats.mispredicts
        );
    }

    #[test]
    fn sse_ops_use_fp_units() {
        let mut a = Asm::new("sse");
        a.reg_init.xmms[0][0] = 1.5f32.to_bits() as u64;
        a.reg_init.xmms[1][0] = 2.5f32.to_bits() as u64;
        a.op_xx(Mnemonic::Addss, false, Xmm::Xmm0, Xmm::Xmm1);
        a.op_xx(Mnemonic::Mulss, false, Xmm::Xmm0, Xmm::Xmm1);
        a.halt();
        let r = simulate(&a.finish().unwrap());
        assert_eq!(r.trace.fu_op_count(FuKind::FpAdd), 1);
        assert_eq!(r.trace.fu_op_count(FuKind::FpMul), 1);
        assert_eq!(
            r.output.state.xmm_scalar(Xmm::Xmm0),
            10.0f32.to_bits() // (1.5 + 2.5) * 2.5
        );
    }

    #[test]
    fn prf_pressure_stalls_but_completes() {
        // More in-flight writes than physical registers forces recycling.
        let cfg = CoreConfig {
            phys_regs: 34,
            ..CoreConfig::default()
        };
        let core = OooCore::new(cfg);
        let mut a = Asm::new("prf");
        for i in 0..500 {
            a.mov_ri(B64, Gpr::ALL[i % 4], i as i32);
        }
        a.halt();
        let p = a.finish().unwrap();
        let r = core.simulate(&p, 100_000).unwrap();
        assert_eq!(r.trace.stats.insts, 501);
        // Physical registers stay within the configured population.
        assert!(r.trace.reg_instances.iter().all(|i| (i.preg as u32) < 34));
        assert!(
            r.trace.stats.prf_stalls > 0,
            "recycling the tiny PRF must register as dispatch stalls"
        );
    }

    #[test]
    fn structural_stalls_counted_under_pressure() {
        // A long serial chain keeps instructions in flight far longer than
        // a 16-entry ROB can hold, so dispatch must repeatedly wait on ROB
        // slot reuse.
        let cfg = CoreConfig {
            rob_size: 16,
            ..CoreConfig::default()
        };
        let core = OooCore::new(cfg);
        let mut a = Asm::new("chain");
        a.mov_ri(B64, Rax, 1);
        a.mov_ri(B64, Rbx, 3);
        for _ in 0..300 {
            a.imul_rr(B64, Rax, Rbx);
        }
        a.halt();
        let p = a.finish().unwrap();
        let r = core.simulate(&p, 100_000).unwrap();
        assert!(
            r.trace.stats.rob_stalls > 0,
            "serial multiply chain must fill a 16-entry ROB"
        );
        // A trivial straight-line program on the default core stalls on
        // nothing.
        let mut a = Asm::new("tiny");
        a.mov_ri(B64, Rax, 1);
        a.halt();
        let r = OooCore::default()
            .simulate(&a.finish().unwrap(), 100)
            .unwrap();
        let s = r.trace.stats;
        assert_eq!(s.rob_stalls + s.iq_stalls + s.prf_stalls, 0);
    }

    #[test]
    fn trap_propagates() {
        let mut a = Asm::new("oob");
        a.mov_ri(B64, Rsi, 0x100); // below DATA_BASE
        a.load(B64, Rax, Rsi, 0);
        a.halt();
        let p = a.finish().unwrap();
        assert!(OooCore::default().simulate(&p, 1000).is_err());
    }
}
