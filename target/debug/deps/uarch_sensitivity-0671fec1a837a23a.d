/root/repo/target/debug/deps/uarch_sensitivity-0671fec1a837a23a.d: tests/uarch_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libuarch_sensitivity-0671fec1a837a23a.rmeta: tests/uarch_sensitivity.rs Cargo.toml

tests/uarch_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
