#![warn(missing_docs)]

//! # harpo-uarch — the microarchitectural evaluation engine
//!
//! The gem5 substitute (DESIGN.md substitution table): an out-of-order
//! x86-class core model that executes HX86 programs and records the
//! microarchitectural observables the Harpocrates loop consumes —
//! physical-register lifetimes (for ACE analysis of the IRF), L1D
//! residency and access events (for cache ACE and transient-fault
//! planning), and graded functional-unit operand streams (for the IBR
//! metric and gate-level fault injection).
//!
//! ```
//! use harpo_uarch::{CoreConfig, OooCore};
//! use harpo_isa::asm::Asm;
//! use harpo_isa::reg::{Gpr, Width};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new("demo");
//! a.mov_ri(Width::B64, Gpr::Rax, 21);
//! a.add_rr(Width::B64, Gpr::Rax, Gpr::Rax);
//! a.halt();
//! let prog = a.finish()?;
//!
//! let core = OooCore::new(CoreConfig::skylake_like());
//! let result = core.simulate(&prog, 1_000_000)?;
//! assert_eq!(result.output.state.gpr(Gpr::Rax), 42);
//! assert!(result.trace.stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod config;
pub mod core;
pub mod trace;

pub use cache::{CacheAccess, L1Dcache, LineEvent, LineEventKind};
pub use config::CoreConfig;
pub use core::{OooCore, SimContext, SimResult};
pub use trace::{ExecutionTrace, FuOp, RegInstance, RegRead, SimStats};
