/root/repo/target/debug/deps/seventh_structure-33dc492b180bfacf.d: crates/bench/src/bin/seventh_structure.rs

/root/repo/target/debug/deps/seventh_structure-33dc492b180bfacf: crates/bench/src/bin/seventh_structure.rs

crates/bench/src/bin/seventh_structure.rs:
