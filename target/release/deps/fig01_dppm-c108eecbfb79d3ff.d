/root/repo/target/release/deps/fig01_dppm-c108eecbfb79d3ff.d: crates/bench/src/bin/fig01_dppm.rs

/root/repo/target/release/deps/fig01_dppm-c108eecbfb79d3ff: crates/bench/src/bin/fig01_dppm.rs

crates/bench/src/bin/fig01_dppm.rs:
