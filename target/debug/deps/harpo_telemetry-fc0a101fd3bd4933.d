/root/repo/target/debug/deps/harpo_telemetry-fc0a101fd3bd4933.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libharpo_telemetry-fc0a101fd3bd4933.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libharpo_telemetry-fc0a101fd3bd4933.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/stream.rs:
crates/telemetry/src/trace.rs:
