//! `harpo profile` — where the cycles go.
//!
//! Consumes a JSONL run journal carrying schema-v6 `profile` and `cost`
//! records (written by `harpo refine --profile` / `harpo grade
//! --profile`) and renders the cost-attribution view: a top-N hotspot
//! table with self/total time per span stack, the per-thread self-time
//! coverage check, the sampling-ticker tallies, and the per-fault-class
//! replay cost matrix from the SFI campaign. `--folded` and
//! `--speedscope` additionally export the profile as collapsed-stack
//! lines (flamegraph.pl / inferno) and a speedscope JSON document.
//!
//! Rendering is a pure function of the input bytes, like `harpo
//! report`: no clocks, no environment, so a committed journal renders
//! byte-identically forever (the golden snapshot test relies on this).

use crate::args::Args;
use harpo_telemetry::json::{self, Value};
use harpo_telemetry::{folded_lines, latest_profiles, speedscope_json, SCHEMA_VERSION};
use std::fmt::Write as _;

/// `harpo profile` entry point.
pub fn profile(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let path = args
        .positional
        .first()
        .ok_or("profile needs a <run.jsonl> argument")?;
    let content = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let records = parse_journal(path, &content)?;
    let top: usize = args.num("top", 20)?;
    let md = render(&records, top);
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, &md).map_err(|e| format!("{out}: {e}"))?;
            println!("wrote {out}");
        }
        None => print!("{md}"),
    }
    let profiles = records_of(&records, "profile");
    if let Some(fp) = args.get("folded") {
        std::fs::write(fp, folded_lines(&profiles)).map_err(|e| format!("{fp}: {e}"))?;
        println!("wrote {fp}");
    }
    if let Some(sp) = args.get("speedscope") {
        std::fs::write(sp, speedscope_json(&profiles, path)).map_err(|e| format!("{sp}: {e}"))?;
        println!("wrote {sp}");
    }
    Ok(())
}

/// Parses a JSONL journal, tolerating a torn final line and refusing
/// newer schema versions — same contract as `harpo report`.
fn parse_journal(path: &str, content: &str) -> Result<Vec<Value>, String> {
    let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
    let mut records = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let v = match json::parse(line) {
            Ok(v) => v,
            Err(_) if i + 1 == lines.len() => break,
            Err(e) => return Err(format!("{path}:{}: {e}", i + 1)),
        };
        let ver = v.get("v").and_then(Value::as_u64).unwrap_or(1);
        if ver > SCHEMA_VERSION {
            return Err(format!(
                "{path}:{}: journal schema v{ver} is newer than this build reads \
                 (v{SCHEMA_VERSION}); upgrade harpo to analyze it",
                i + 1
            ));
        }
        records.push(v);
    }
    Ok(records)
}

/// The records of one kind, in file order.
fn records_of<'a>(records: &'a [Value], kind: &str) -> Vec<&'a Value> {
    records
        .iter()
        .filter(|r| r.get("kind").and_then(Value::as_str) == Some(kind))
        .collect()
}

fn u(v: Option<&Value>) -> u64 {
    v.and_then(Value::as_u64).unwrap_or(0)
}

fn s<'a>(v: Option<&'a Value>, default: &'a str) -> &'a str {
    v.and_then(Value::as_str).unwrap_or(default)
}

/// Renders the profile view for a parsed journal. Pure: same records
/// in, same bytes out.
pub fn render(records: &[Value], top: usize) -> String {
    let mut out = String::new();
    out.push_str("# Where the cycles go\n\n");
    let profiles = latest_profiles(&records_of(records, "profile"));
    let costs = records_of(records, "cost");
    let campaigns = records_of(records, "campaign");
    if profiles.is_empty() && costs.is_empty() {
        out.push_str(
            "_No `profile` or `cost` records — run with `--profile` \
             to collect them._\n",
        );
        return out;
    }
    if !profiles.is_empty() {
        render_hotspots(&mut out, &profiles, top);
        render_samples(&mut out, &profiles);
    }
    render_cost(
        &mut out,
        "## Per-fault cost attribution",
        &costs,
        &campaigns,
    );
    out
}

/// One hotspot row: a frame from one thread's latest profile record.
struct Hotspot<'a> {
    source: &'a str,
    thread: u64,
    stack: &'a str,
    count: u64,
    total_ns: u64,
    self_ns: u64,
    p99_ns: u64,
}

fn frames_of<'a>(profiles: &[&'a Value]) -> Vec<Hotspot<'a>> {
    let mut rows = Vec::new();
    for rec in profiles {
        let source = s(rec.get("source"), "?");
        let thread = u(rec.get("thread"));
        let Some(Value::Arr(frames)) = rec.get("frames") else {
            continue;
        };
        for f in frames {
            rows.push(Hotspot {
                source,
                thread,
                stack: s(f.get("stack"), "?"),
                count: u(f.get("count")),
                total_ns: u(f.get("total_ns")),
                self_ns: u(f.get("self_ns")),
                p99_ns: u(f.get("p99_ns")),
            });
        }
    }
    rows
}

fn render_hotspots(out: &mut String, profiles: &[&Value], top: usize) {
    let mut rows = frames_of(profiles);
    // Self-time coverage: per thread, the frame self-times are an exact
    // decomposition of the root spans' totals, so the sums must agree
    // (within the integer truncation of each span's nanosecond clock).
    let self_total: u64 = rows.iter().map(|r| r.self_ns).sum();
    let root_total: u64 = rows
        .iter()
        .filter(|r| !r.stack.contains(';'))
        .map(|r| r.total_ns)
        .sum();
    let coverage = if root_total == 0 {
        0.0
    } else {
        self_total as f64 / root_total as f64
    };
    rows.sort_by(|a, b| {
        b.self_ns
            .cmp(&a.self_ns)
            .then_with(|| a.stack.cmp(b.stack))
            .then_with(|| (a.source, a.thread).cmp(&(b.source, b.thread)))
    });
    let shown = rows.len().min(top);
    let _ = writeln!(
        out,
        "## Hotspots (top {shown} of {} by self time)\n",
        rows.len()
    );
    out.push_str(
        "| rank | thread | stack | self | total | count | p99 |\n|---|---|---|---|---|---|---|\n",
    );
    for (i, r) in rows.iter().take(top).enumerate() {
        let _ = writeln!(
            out,
            "| {} | {}/t{} | `{}` | {} | {} | {} | {} |",
            i + 1,
            r.source,
            r.thread,
            r.stack,
            fmt_ns(r.self_ns),
            fmt_ns(r.total_ns),
            r.count,
            fmt_ns(r.p99_ns),
        );
    }
    let _ = writeln!(
        out,
        "\nSelf-time accounting covers {} of the profiled root span time \
         ({} self across {} frame(s) vs {} root total on {} thread(s)).\n",
        fmt_pct(coverage),
        fmt_ns(self_total),
        rows.len(),
        fmt_ns(root_total),
        profiles.len(),
    );
}

fn render_samples(out: &mut String, profiles: &[&Value]) {
    let mut rows: Vec<(String, u64)> = Vec::new();
    for rec in profiles {
        let source = s(rec.get("source"), "?");
        let thread = u(rec.get("thread"));
        let Some(Value::Arr(samples)) = rec.get("samples") else {
            continue;
        };
        for sm in samples {
            rows.push((
                format!("{source}/t{thread};{}", s(sm.get("stack"), "?")),
                u(sm.get("count")),
            ));
        }
    }
    if rows.is_empty() {
        return;
    }
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out.push_str("## Sampling ticker\n\n");
    out.push_str("| stack | samples |\n|---|---|\n");
    for (stack, count) in &rows {
        let _ = writeln!(out, "| `{stack}` | {count} |");
    }
    out.push('\n');
}

/// Renders the per-fault cost attribution section from `cost` records:
/// the replay cost matrix by (structure × program × fault model ×
/// outcome class), the replay-instruction attribution check against the
/// `campaign` records, and the journalled netlist compile times. Shared
/// with `harpo report`'s Cost section.
pub(crate) fn render_cost(out: &mut String, heading: &str, costs: &[&Value], campaigns: &[&Value]) {
    let replay: Vec<&&Value> = costs
        .iter()
        .filter(|c| c.get("scope").and_then(Value::as_str) == Some("replay"))
        .collect();
    let compile: Vec<&&Value> = costs
        .iter()
        .filter(|c| c.get("scope").and_then(Value::as_str) == Some("compile"))
        .collect();
    if replay.is_empty() && compile.is_empty() {
        return;
    }
    let _ = writeln!(out, "{heading}\n");
    if !replay.is_empty() {
        out.push_str(
            "| structure | program | model | outcome | faults | replay insts | replay wall |\n\
             |---|---|---|---|---|---|---|\n",
        );
        let mut attributed = 0u64;
        for c in &replay {
            attributed += u(c.get("replay_insts"));
            let _ = writeln!(
                out,
                "| {} | `{}` | {} | {} | {} | {} | {} |",
                s(c.get("structure"), "?"),
                s(c.get("program"), "?"),
                s(c.get("model"), "?"),
                s(c.get("outcome"), "?"),
                u(c.get("faults")),
                u(c.get("replay_insts")),
                fmt_ns(u(c.get("replay_ns"))),
            );
        }
        out.push('\n');
        let campaign_insts: u64 = campaigns.iter().map(|c| u(c.get("replay_insts"))).sum();
        if campaign_insts > 0 {
            let _ = writeln!(
                out,
                "Attributed {} of {} campaign replay instructions ({}).\n",
                attributed,
                campaign_insts,
                fmt_pct(attributed as f64 / campaign_insts as f64),
            );
        }
    }
    for c in &compile {
        let _ = writeln!(
            out,
            "Netlist compile ({} / `{}`, {}): {}.",
            s(c.get("structure"), "?"),
            s(c.get("program"), "?"),
            s(c.get("model"), "?"),
            fmt_ns(u(c.get("netlist_compile_ns"))),
        );
    }
    if !compile.is_empty() {
        out.push('\n');
    }
}

/// Formats nanoseconds with a readable unit (same fixed-precision
/// scheme as `harpo report`, so the two renderings agree).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal() -> Vec<Value> {
        [
            // An interim snapshot that the final one supersedes.
            r#"{"kind":"profile","v":6,"source":"refine","thread":0,"frames":[{"stack":"refine","count":1,"total_ns":100,"self_ns":100,"max_ns":100,"p99_ns":100}]}"#,
            r#"{"kind":"profile","v":6,"source":"refine","thread":0,"frames":[{"stack":"refine","count":1,"total_ns":1000,"self_ns":100,"max_ns":1000,"p99_ns":1000},{"stack":"refine;evaluation","count":4,"total_ns":700,"self_ns":700,"max_ns":300,"p99_ns":300},{"stack":"refine;mutation","count":4,"total_ns":200,"self_ns":200,"max_ns":80,"p99_ns":80}],"samples":[{"stack":"refine;evaluation","count":6}]}"#,
            r#"{"kind":"cost","v":6,"scope":"replay","structure":"IRF","program":"t0","model":"transient","outcome":"masked","faults":61,"replay_insts":363,"replay_ns":2000000}"#,
            r#"{"kind":"cost","v":6,"scope":"replay","structure":"IRF","program":"t0","model":"transient","outcome":"sdc","faults":1,"replay_insts":121,"replay_ns":500000}"#,
            r#"{"kind":"cost","v":6,"scope":"compile","structure":"IRF","program":"t0","model":"transient","netlist_compile_ns":1500000}"#,
            r#"{"kind":"campaign","v":6,"program":"t0","structure":"IRF","faults":64,"replays":6,"replay_insts":484}"#,
        ]
        .iter()
        .map(|l| json::parse(l).unwrap())
        .collect()
    }

    #[test]
    fn hotspot_table_ranks_by_self_time_and_checks_coverage() {
        let md = render(&journal(), 20);
        assert!(md.contains("## Hotspots (top 3 of 3 by self time)"), "{md}");
        // evaluation (700) > mutation (200) > root self (100).
        assert!(
            md.contains("| 1 | refine/t0 | `refine;evaluation` | 700 ns | 700 ns | 4 | 300 ns |"),
            "{md}"
        );
        assert!(
            md.contains("| 2 | refine/t0 | `refine;mutation` | 200 ns |"),
            "{md}"
        );
        assert!(
            md.contains("| 3 | refine/t0 | `refine` | 100 ns | 1.00 us |"),
            "{md}"
        );
        // 100 + 700 + 200 == 1000: exact decomposition of the root.
        assert!(
            md.contains("covers 100.00% of the profiled root span time"),
            "{md}"
        );
        // The superseded interim snapshot contributed nothing.
        assert!(!md.contains("| 100 ns | 100 ns |"), "{md}");
    }

    #[test]
    fn sampler_tallies_render() {
        let md = render(&journal(), 20);
        assert!(md.contains("## Sampling ticker"), "{md}");
        assert!(md.contains("| `refine/t0;refine;evaluation` | 6 |"), "{md}");
    }

    #[test]
    fn cost_matrix_attributes_campaign_replays() {
        let md = render(&journal(), 20);
        assert!(md.contains("## Per-fault cost attribution"), "{md}");
        assert!(
            md.contains("| IRF | `t0` | transient | masked | 61 | 363 | 2.00 ms |"),
            "{md}"
        );
        assert!(
            md.contains("| IRF | `t0` | transient | sdc | 1 | 121 | 500.00 us |"),
            "{md}"
        );
        assert!(
            md.contains("Attributed 484 of 484 campaign replay instructions (100.00%)."),
            "{md}"
        );
        assert!(
            md.contains("Netlist compile (IRF / `t0`, transient): 1.50 ms."),
            "{md}"
        );
    }

    #[test]
    fn top_limits_the_table() {
        let md = render(&journal(), 1);
        assert!(md.contains("## Hotspots (top 1 of 3 by self time)"), "{md}");
        assert!(!md.contains("`refine;mutation`"), "{md}");
    }

    #[test]
    fn empty_journal_says_so() {
        let md = render(&[], 20);
        assert!(md.contains("No `profile` or `cost` records"), "{md}");
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(&journal(), 20), render(&journal(), 20));
    }
}
