//! Semantic program fingerprints.
//!
//! Several layers need a compact, stable identity for a program's
//! *behaviour*: the engine's evaluation memo keys cached coverage scores
//! by it, and the lineage flight recorder stamps every offspring with the
//! fingerprint of its parent so journal analysis can attribute coverage
//! deltas to mutation operators. Both uses share one definition so a
//! memo hit and a lineage edge always talk about the same program.
//!
//! Programs are keyed by a 128-bit FNV-style fingerprint of their
//! *semantic* content: the instruction sequence, the initial register
//! state and the memory image. The `name` and [`Provenance`] fields are
//! deliberately excluded — they are metadata, and two programs differing
//! only there execute identically. 128 bits keeps the collision
//! probability negligible at any realistic population size (birthday
//! bound ≈ 2⁻⁶⁴ per pair), so a fingerprint hit is treated as definitive.
//!
//! [`Provenance`]: crate::program::Provenance

use crate::program::Program;
use std::hash::{Hash, Hasher};

/// A 128-bit streaming hasher: two independent 64-bit FNV-1a-style
/// accumulators with distinct offset bases and odd multipliers. Not
/// cryptographic — just wide enough that accidental collisions are out
/// of reach for the memo table's lifetime.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    lo: u64,
    hi: u64,
}

impl Fnv128 {
    const LO_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const LO_PRIME: u64 = 0x0000_0100_0000_01b3;
    const HI_OFFSET: u64 = 0x6c62_272e_07bb_0142;
    const HI_PRIME: u64 = 0x0000_0001_0000_01b5;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 {
            lo: Self::LO_OFFSET,
            hi: Self::HI_OFFSET,
        }
    }

    /// The 128-bit digest of everything written so far.
    pub fn fingerprint(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Hasher for Fnv128 {
    fn finish(&self) -> u64 {
        self.lo ^ self.hi
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ b as u64).wrapping_mul(Self::LO_PRIME);
            self.hi = (self.hi ^ b as u64).wrapping_mul(Self::HI_PRIME);
        }
    }
}

/// The semantic fingerprint of a program: a 128-bit digest of its
/// instructions, initial register state and memory image (name and
/// provenance are excluded).
pub fn fingerprint(prog: &Program) -> u128 {
    let mut h = Fnv128::new();
    prog.insts.hash(&mut h);
    prog.reg_init.hash(&mut h);
    prog.mem.hash(&mut h);
    h.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::program::Provenance;

    fn sample(tweak: u64) -> Program {
        let mut p = Program::new(format!("fp-{tweak}"), vec![Inst::halt()]);
        p.reg_init.gprs[5] = 0x1234_5678 ^ tweak;
        p
    }

    #[test]
    fn fingerprint_is_stable() {
        let p = sample(1);
        assert_eq!(fingerprint(&p), fingerprint(&p.clone()));
    }

    #[test]
    fn fingerprint_ignores_name_and_provenance() {
        let p = sample(2);
        let mut q = p.clone();
        q.name = "renamed".into();
        q.provenance = Provenance {
            parent: Some(7),
            operator: Some("replace-all".into()),
            seed: 99,
            birth_round: 3,
        };
        assert_eq!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn fingerprint_sees_reg_state() {
        assert_ne!(fingerprint(&sample(3)), fingerprint(&sample(4)));
    }

    #[test]
    fn fingerprint_sees_instructions() {
        let p = sample(5);
        let mut q = p.clone();
        q.insts.push(Inst::halt());
        assert_ne!(fingerprint(&p), fingerprint(&q));
    }
}
