/root/repo/target/release/deps/ablation_l1d-7b34537c5430cd34.d: crates/bench/src/bin/ablation_l1d.rs

/root/repo/target/release/deps/ablation_l1d-7b34537c5430cd34: crates/bench/src/bin/ablation_l1d.rs

crates/bench/src/bin/ablation_l1d.rs:
