/root/repo/target/release/deps/harpo-c54333d3f44dfe93.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/release/deps/harpo-c54333d3f44dfe93: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
