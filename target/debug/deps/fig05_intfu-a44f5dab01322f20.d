/root/repo/target/debug/deps/fig05_intfu-a44f5dab01322f20.d: crates/bench/src/bin/fig05_intfu.rs

/root/repo/target/debug/deps/fig05_intfu-a44f5dab01322f20: crates/bench/src/bin/fig05_intfu.rs

crates/bench/src/bin/fig05_intfu.rs:
