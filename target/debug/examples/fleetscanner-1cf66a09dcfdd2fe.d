/root/repo/target/debug/examples/fleetscanner-1cf66a09dcfdd2fe.d: examples/fleetscanner.rs

/root/repo/target/debug/examples/fleetscanner-1cf66a09dcfdd2fe: examples/fleetscanner.rs

examples/fleetscanner.rs:
