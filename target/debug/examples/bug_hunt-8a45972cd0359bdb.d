/root/repo/target/debug/examples/bug_hunt-8a45972cd0359bdb.d: examples/bug_hunt.rs Cargo.toml

/root/repo/target/debug/examples/libbug_hunt-8a45972cd0359bdb.rmeta: examples/bug_hunt.rs Cargo.toml

examples/bug_hunt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
