//! Ablation (§V-B1) — the mutation-strategy choice: replace-all
//! instruction replacement (the paper's pick) vs k-point crossover.
//!
//! The paper reports that uniform instruction replacement converges
//! swiftly without over-specialising; this harness runs both operators
//! under identical budgets and compares the converged coverage.

use harpo_bench::{pct, write_csv, Cli, Harness};
use harpo_core::{presets, Evaluator};
use harpo_coverage::TargetStructure;
use harpo_isa::program::Program;
use harpo_museqgen::{Generator, Mutator};
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("ablation_mutation", &cli);
    let structure = TargetStructure::IntMultiplier;
    let (constraints, loop_cfg) = presets::preset(structure, cli.scale);
    let gen = Generator::new(constraints);
    let mutator = Mutator::new(gen.clone());
    let evaluator =
        Evaluator::new(OooCore::default(), structure).with_metrics(harness.metrics().clone());

    let pop_n = loop_cfg.population;
    let top_k = loop_cfg.top_k;
    let iters = loop_cfg.iterations;

    let mut csv = Vec::new();
    for strategy in ["replace-all", "crossover-2pt", "crossover-8pt"] {
        let mut population: Vec<Program> =
            (0..pop_n).map(|i| gen.generate(900 + i as u64)).collect();
        let mut survivors: Vec<(f64, Program)> = Vec::new();
        for iter in 0..=iters {
            let scores = evaluator.evaluate_population(&population, cli.threads);
            let mut pool: Vec<(f64, Program)> =
                scores.into_iter().zip(population.drain(..)).collect();
            pool.append(&mut survivors);
            pool.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            pool.truncate(top_k);
            survivors = pool;
            if iter == iters {
                break;
            }
            for i in 0..pop_n {
                let seed = (iter as u64) << 16 | i as u64;
                let child = match strategy {
                    "replace-all" => mutator.mutate(&survivors[i % top_k].1, seed),
                    "crossover-2pt" => mutator.crossover_kpoint(
                        &survivors[i % top_k].1,
                        &survivors[(i + 1) % top_k].1,
                        2,
                        seed,
                    ),
                    _ => mutator.crossover_kpoint(
                        &survivors[i % top_k].1,
                        &survivors[(i + 1) % top_k].1,
                        8,
                        seed,
                    ),
                };
                population.push(child);
            }
        }
        let best = survivors[0].0;
        println!("{strategy:<15} converged coverage {}", pct(best));
        csv.push(format!("{strategy},{best:.6}"));
    }
    println!("\n(crossover alone only reshuffles the initial gene pool; replacement injects new instructions — the paper's argument for it)");
    write_csv(
        &cli.out_dir,
        "ablation_mutation.csv",
        "strategy,coverage",
        &csv,
    );
    harness.finish();
}
