#![warn(missing_docs)]

//! # harpo-telemetry — structured run journal, metrics and stage spans
//!
//! The paper's evaluation hinges on quantities the pipeline computes at
//! run time: Table I's loop-stage breakdown, Fig. 10's convergence
//! curves, the SFI campaign's screened-vs-replayed fault economics.
//! This crate makes those observable as first-class signals instead of
//! ad-hoc `println!`s:
//!
//! * [`Record`] / [`Sink`] — a structured **run journal**: every event
//!   is a flat key→value record that renders as one JSONL line
//!   ([`JsonlSink`]), a human-readable stderr line ([`StderrSink`]) or
//!   an in-memory entry for tests ([`MemorySink`]). [`Telemetry`] is the
//!   cheap, cloneable handle the pipeline emits through; with no sink
//!   attached, emission is a single branch and the record is never
//!   built.
//! * [`Metrics`] — a **global-free registry** of named atomic
//!   [`Counter`]s and log-bucketed [`Histogram`]s. Clone the registry
//!   (it is an `Arc` inside), hand it to each pipeline layer, snapshot
//!   it at the end of a run.
//! * [`Span`] — RAII **stage timers** that accumulate wall time into a
//!   `Duration` and/or a histogram, replacing hand-rolled
//!   `Instant::now()` bookkeeping.
//! * [`Profiler`] — opt-in **self-time profiling**: per-thread span
//!   stacks (so every scope knows self vs. child time), a std-only
//!   sampling ticker for long branch-free kernels, and the schema-v6
//!   `profile` record with flamegraph-folded ([`folded_lines`]) and
//!   speedscope ([`speedscope_json`]) exporters. Off by default and
//!   free when off, like streaming.
//! * [`TraceBuilder`] — a **Chrome/Perfetto `trace_event` exporter**:
//!   stage spans, campaign timelines and per-fault replays rendered as
//!   a trace file loadable in `ui.perfetto.dev` (see
//!   [`trace_from_journal`]).
//! * [`stream`] — **live-streaming support** for the schema-v4
//!   `progress`/`heartbeat`/`resource` records: `/proc/self/statm` RSS
//!   sampling and the [`EwmaRate`] ETA estimator. The streaming record
//!   kinds themselves are listed in [`STREAMING_KINDS`] and excluded
//!   from determinism comparisons by [`canonical_journal`].
//! * [`Journal`] / [`FaultKey`] — the **read side**: an offline
//!   parse/index of a finished journal plus the stable cross-run fault
//!   identity stamped into schema-v5 `autopsy` records, the substrate
//!   for `harpo diff`, `harpo archive` and shard-journal merging.
//! * [`json`] — the hand-rolled JSON writer/parser backing all of the
//!   above. No third-party dependencies anywhere in this crate, so it
//!   builds offline and adds nothing to the workspace's dependency set.
//!
//! Telemetry is strictly observational: attaching or detaching sinks
//! must never change a run's results (the engine's determinism test
//! verifies champion and coverage are bit-identical either way).

pub mod json;
pub mod metrics;
pub mod profile;
pub mod reader;
pub mod record;
pub mod sink;
pub mod span;
pub mod stream;
pub mod trace;

pub use json::Value;
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricSnapshot, Metrics, HIST_BUCKETS};
pub use profile::{
    folded_lines, hottest_frame, latest_profiles, speedscope_json, FrameStat, ProfGuard,
    ProfileSnapshot, Profiler, ThreadProfile,
};
pub use reader::{FaultKey, Journal};
pub use record::{
    canonical_journal, is_profile_kind, is_streaming_kind, Record, PROFILE_KINDS, SCHEMA_VERSION,
    STREAMING_KINDS,
};
pub use sink::{JsonlSink, MemorySink, Sink, StderrSink, Telemetry};
pub use span::Span;
pub use stream::{rss_bytes, EwmaRate};
pub use trace::{trace_from_journal, TraceBuilder, TraceEvent};

/// Resolves a requested worker-thread count: `0` means "all available
/// cores". The single source of truth for every fan-out in the
/// workspace (population evaluation, SFI campaigns, screening).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves() {
        assert_eq!(effective_threads(4), 4);
        assert!(effective_threads(0) >= 1);
    }
}
