/root/repo/target/debug/deps/harpo_baselines-2f0282cfefaae8aa.d: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/debug/deps/harpo_baselines-2f0282cfefaae8aa: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kern.rs:
crates/baselines/src/mibench.rs:
crates/baselines/src/opendcdiag.rs:
crates/baselines/src/silifuzz.rs:
