/root/repo/target/debug/deps/harpo-b0f850df469ed32a.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/harpo-b0f850df469ed32a: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
