/root/repo/target/debug/deps/fig01_dppm-9871129bfe2ac0df.d: crates/bench/src/bin/fig01_dppm.rs

/root/repo/target/debug/deps/fig01_dppm-9871129bfe2ac0df: crates/bench/src/bin/fig01_dppm.rs

crates/bench/src/bin/fig01_dppm.rs:
