/root/repo/target/debug/deps/harpo-3296cef4191b59d4.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs Cargo.toml

/root/repo/target/debug/deps/libharpo-3296cef4191b59d4.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
