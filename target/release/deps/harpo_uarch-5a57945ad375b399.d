/root/repo/target/release/deps/harpo_uarch-5a57945ad375b399.d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/release/deps/libharpo_uarch-5a57945ad375b399.rlib: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/release/deps/libharpo_uarch-5a57945ad375b399.rmeta: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

crates/uarch/src/lib.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/config.rs:
crates/uarch/src/core.rs:
crates/uarch/src/trace.rs:
