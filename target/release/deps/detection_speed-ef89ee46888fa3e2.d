/root/repo/target/release/deps/detection_speed-ef89ee46888fa3e2.d: crates/bench/src/bin/detection_speed.rs

/root/repo/target/release/deps/detection_speed-ef89ee46888fa3e2: crates/bench/src/bin/detection_speed.rs

crates/bench/src/bin/detection_speed.rs:
