/root/repo/target/debug/deps/table1_loopstep-b0581351c2cdfed4.d: crates/bench/src/bin/table1_loopstep.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_loopstep-b0581351c2cdfed4.rmeta: crates/bench/src/bin/table1_loopstep.rs Cargo.toml

crates/bench/src/bin/table1_loopstep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
