/root/repo/target/debug/deps/harpocrates-854403062e1f65c7.d: src/lib.rs

/root/repo/target/debug/deps/libharpocrates-854403062e1f65c7.rlib: src/lib.rs

/root/repo/target/debug/deps/libharpocrates-854403062e1f65c7.rmeta: src/lib.rs

src/lib.rs:
