/root/repo/target/debug/deps/fig05_intfu-ea540d347103fe58.d: crates/bench/src/bin/fig05_intfu.rs Cargo.toml

/root/repo/target/debug/deps/libfig05_intfu-ea540d347103fe58.rmeta: crates/bench/src/bin/fig05_intfu.rs Cargo.toml

crates/bench/src/bin/fig05_intfu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
