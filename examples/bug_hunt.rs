//! The §VI-D story, reproduced: Harpocrates-generated programs exposed an
//! instruction-emulation bug in gem5 v22 — `RCR` with rotate amount equal
//! to the register size. This example builds a deliberately buggy
//! "reference emulator" (the common off-by-one: reducing the count modulo
//! `width` instead of `width + 1`) and differentially tests it against
//! the engine using constrained-random generated programs, the way the
//! real bug was found.
//!
//! ```sh
//! cargo run --release --example bug_hunt
//! ```

use harpocrates::isa::exec::Machine;
use harpocrates::isa::form::{Catalog, Mnemonic, OpMode};
use harpocrates::isa::fu::NativeFu;
use harpocrates::isa::program::Program;
use harpocrates::museqgen::{GenConstraints, Generator};

/// A buggy model of `RCR`/`RCL`: the rotate amount is reduced modulo the
/// register width instead of `width + 1` — the gem5-style corner-case
/// error. Everything else delegates to the real engine.
fn buggy_rotate_count(width: u32, raw: u32) -> u32 {
    let masked = raw & if width == 64 { 63 } else { 31 };
    masked % width // BUG: should be width + 1
}

fn correct_rotate_count(width: u32, raw: u32) -> u32 {
    let masked = raw & if width == 64 { 63 } else { 31 };
    masked % (width + 1)
}

/// Does `prog` contain an input that makes the buggy emulator diverge?
/// (We detect divergence statically per instruction: the two count
/// reductions disagree exactly when the reduced counts differ.)
fn find_divergent_rcr(prog: &Program) -> Option<(usize, u32, u32)> {
    let cat = Catalog::get();
    for (i, inst) in prog.insts.iter().enumerate() {
        let f = cat.form(inst.form);
        if !matches!(f.mnemonic, Mnemonic::Rcr | Mnemonic::Rcl) || f.mode != OpMode::RiB {
            continue;
        }
        let w = f.width.bits();
        let raw = inst.imm as u32;
        if buggy_rotate_count(w, raw) != correct_rotate_count(w, raw) {
            return Some((i, w, raw));
        }
    }
    None
}

fn main() {
    // Constrain generation toward the rotate family — the "electrical and
    // environment screening" configuration style of §IV-B, here aimed at
    // emulator validation instead of silicon.
    let gen = Generator::new(GenConstraints {
        n_insts: 2_000,
        allow_memory: false,
        allow_sse: false,
        mnemonic_whitelist: vec![
            Mnemonic::Rcr,
            Mnemonic::Rcl,
            Mnemonic::Rol,
            Mnemonic::Ror,
            Mnemonic::Mov,
            Mnemonic::Add,
            Mnemonic::Xor,
        ],
        ..GenConstraints::default()
    });

    println!("differentially testing a buggy RCR emulator with generated programs...\n");
    for seed in 0..64u64 {
        let prog = gen.generate(seed);
        // The program must be a valid, clean test before it can indict
        // the emulator.
        Machine::new(&prog, NativeFu)
            .run(100_000)
            .expect("generated test runs cleanly");
        if let Some((idx, width, raw)) = find_divergent_rcr(&prog) {
            let masked = raw & if width == 64 { 63 } else { 31 };
            println!("seed {seed}: divergence at instruction {idx}");
            println!("  rotate width {width}, raw count {raw} (masked {masked})");
            println!(
                "  correct reduction: {} — buggy emulator uses: {}",
                correct_rotate_count(width, raw),
                buggy_rotate_count(width, raw)
            );
            println!(
                "\nThe corner case (count ≡ width, mod width+1) surfaced after {} generated programs —",
                seed + 1
            );
            println!("the same class of bug Harpocrates exposed in gem5 v22 (paper §VI-D).");
            return;
        }
    }
    println!("no divergence found in 64 programs (unexpected — rotate-heavy generation should hit the corner)");
    std::process::exit(1);
}
