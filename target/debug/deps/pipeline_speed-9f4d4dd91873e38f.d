/root/repo/target/debug/deps/pipeline_speed-9f4d4dd91873e38f.d: crates/bench/src/bin/pipeline_speed.rs

/root/repo/target/debug/deps/pipeline_speed-9f4d4dd91873e38f: crates/bench/src/bin/pipeline_speed.rs

crates/bench/src/bin/pipeline_speed.rs:
