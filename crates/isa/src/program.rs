//! Self-contained HX86 test programs.
//!
//! A [`Program`] bundles everything needed for a deterministic run: the
//! instruction sequence, the initial register values and the initial
//! memory image. This corresponds to the paper's "wrapper" concept
//! (§V-D): MuSeqGen wraps the raw generated sequence with initialisation
//! so that every execution starts from an identical state and produces a
//! fixed end-state output.

use crate::inst::Inst;
use crate::mem::{MemImage, DATA_BASE};
use crate::reg::Gpr;
use serde::{Deserialize, Serialize};

/// Initial values for the architectural registers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegInit {
    /// Initial GPR values (RSP is overridden to the stack top at load).
    pub gprs: [u64; 16],
    /// Initial XMM values, two 64-bit lanes each.
    pub xmms: [[u64; 2]; 16],
}

impl RegInit {
    /// All registers zero.
    pub fn zeroed() -> RegInit {
        RegInit {
            gprs: [0; 16],
            xmms: [[0; 2]; 16],
        }
    }

    /// The generator-friendly default: every GPR points into the data
    /// region (spread across it, 64-byte aligned) so any register is a
    /// valid memory base; XMM registers hold small normal floats so FP
    /// arithmetic starts from meaningful values rather than zeros.
    ///
    /// Register values are derived from `seed` so distinct programs can
    /// start from distinct (but reproducible) states.
    pub fn spread(data_size: u32, seed: u64) -> RegInit {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut gprs = [0u64; 16];
        for (i, g) in gprs.iter_mut().enumerate() {
            let spread = (i as u64 * (data_size as u64 / 16)) & !63;
            // Leave headroom so small displacements stay in bounds.
            *g = DATA_BASE + spread.min(data_size.saturating_sub(256) as u64);
        }
        let mut xmms = [[0u64; 2]; 16];
        for x in xmms.iter_mut() {
            for lane in x.iter_mut() {
                // Two f32 lanes per u64: normal values spanning the whole
                // exponent range with random signs, so FP arithmetic
                // exercises overflow/underflow and sign paths (not just a
                // narrow magnitude band).
                let mk = |r: u64| -> u32 {
                    let sign = ((r >> 40) as u32 & 1) << 31;
                    let exp = (1 + (r >> 23) % 254) as u32; // 1..=254: normal
                    let man = r as u32 & 0x007F_FFFF;
                    sign | (exp << 23) | man
                };
                let a = mk(next());
                let b = mk(next());
                *lane = a as u64 | (b as u64) << 32;
            }
        }
        RegInit { gprs, xmms }
    }
}

impl Default for RegInit {
    fn default() -> Self {
        RegInit::zeroed()
    }
}

/// Where a program came from — the lineage flight-recorder tag.
///
/// The Generator stamps genesis programs (no parent), the Mutator stamps
/// offspring with the parent's semantic fingerprint and the operator that
/// produced them, and the engine fills in the refinement round. The tag
/// is pure metadata: it is excluded from the semantic fingerprint
/// ([`crate::fingerprint::fingerprint`]) and never influences execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Provenance {
    /// Semantic fingerprint of the parent program (`None` for genesis
    /// programs produced directly by the Generator).
    pub parent: Option<u128>,
    /// Mutation-operator label that produced this program (`None` for
    /// genesis programs).
    pub operator: Option<String>,
    /// The RNG seed the producing step used.
    pub seed: u64,
    /// Refinement round this program was born in (0 = bootstrap
    /// population).
    pub birth_round: u32,
}

impl Provenance {
    /// A genesis tag: produced by the Generator from `seed`, no parent.
    pub fn genesis(seed: u64) -> Provenance {
        Provenance {
            parent: None,
            operator: None,
            seed,
            birth_round: 0,
        }
    }

    /// A mutation tag: produced from the parent with fingerprint
    /// `parent` by `operator` under `seed`. The birth round is filled in
    /// by whoever runs the loop.
    pub fn mutated(parent: u128, operator: impl Into<String>, seed: u64) -> Provenance {
        Provenance {
            parent: Some(parent),
            operator: Some(operator.into()),
            seed,
            birth_round: 0,
        }
    }
}

/// A complete, runnable HX86 test program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable identifier (shows up in reports and benches).
    pub name: String,
    /// The instruction sequence. Execution begins at index 0 and ends at
    /// the first retired `HALT` (or when falling off the end).
    pub insts: Vec<Inst>,
    /// Initial register values.
    pub reg_init: RegInit,
    /// Initial memory image.
    pub mem: MemImage,
    /// Lineage tag (metadata only; absent in old serialised programs).
    #[serde(default)]
    pub provenance: Provenance,
}

impl Program {
    /// Creates a program with default (zeroed registers, 32 KiB + 4 KiB)
    /// state.
    pub fn new(name: impl Into<String>, insts: Vec<Inst>) -> Program {
        Program {
            name: name.into(),
            insts,
            reg_init: RegInit::zeroed(),
            mem: MemImage::default(),
            provenance: Provenance::default(),
        }
    }

    /// Static instruction count.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Encodes the instruction stream to machine code bytes (the paper's
    /// "compilation" step in Table I).
    pub fn encode(&self) -> Vec<u8> {
        crate::encode::encode_program(&self.insts)
    }

    /// The effective initial RSP (stack top).
    #[inline]
    pub fn initial_rsp(&self) -> u64 {
        self.mem.initial_rsp()
    }

    /// Builds the initial [`crate::state::ArchState`] for this program.
    pub fn initial_state(&self) -> crate::state::ArchState {
        let mut st = crate::state::ArchState::new();
        for (i, &v) in self.reg_init.gprs.iter().enumerate() {
            st.set_gpr(Gpr::ALL[i], v);
        }
        for (i, &v) in self.reg_init.xmms.iter().enumerate() {
            st.set_xmm(crate::reg::Xmm::ALL[i], v);
        }
        st.set_gpr(Gpr::Rsp, self.initial_rsp());
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_init_points_into_data() {
        let ri = RegInit::spread(32 * 1024, 7);
        for (i, &g) in ri.gprs.iter().enumerate() {
            assert!(g >= DATA_BASE, "gpr{} below base", i);
            assert!(g < DATA_BASE + 32 * 1024, "gpr{} beyond data", i);
            assert_eq!(g % 64, 0, "gpr{} unaligned", i);
        }
        // XMM lanes hold normal (finite, nonzero) single-precision values
        // spanning the exponent range.
        let mut seen_big = false;
        let mut seen_small = false;
        for x in &ri.xmms {
            for lane in x {
                for bits in [*lane as u32, (*lane >> 32) as u32] {
                    let f0 = f32::from_bits(bits);
                    assert!(f0.is_normal(), "{f0}");
                    seen_big |= f0.abs() > 1e20;
                    seen_small |= f0.abs() < 1e-20;
                }
            }
        }
        assert!(seen_big && seen_small, "exponent range should be wide");
    }

    #[test]
    fn spread_is_seeded() {
        assert_eq!(RegInit::spread(1024, 3), RegInit::spread(1024, 3));
        assert_ne!(RegInit::spread(1024, 3).xmms, RegInit::spread(1024, 4).xmms);
    }

    #[test]
    fn initial_state_sets_rsp() {
        let p = Program::new("t", vec![Inst::halt()]);
        let st = p.initial_state();
        assert_eq!(st.gpr(Gpr::Rsp), p.initial_rsp());
    }
}
