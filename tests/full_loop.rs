//! End-to-end integration tests of the complete Harpocrates pipeline:
//! generation → microarchitectural evaluation → selection → mutation →
//! SFI grading, across crates.

use harpocrates::core::{Evaluator, Harpocrates, LoopConfig};
use harpocrates::coverage::TargetStructure;
use harpocrates::faultsim::{measure_detection, CampaignConfig};
use harpocrates::museqgen::{GenConstraints, Generator};
use harpocrates::uarch::OooCore;

fn small_loop(
    structure: TargetStructure,
    n_insts: usize,
    iters: usize,
) -> harpocrates::core::RunReport {
    let h = Harpocrates::new(
        Generator::new(GenConstraints {
            n_insts,
            ..GenConstraints::default()
        }),
        Evaluator::new(OooCore::default(), structure),
        LoopConfig {
            population: 10,
            top_k: 3,
            iterations: iters,
            sample_every: iters.max(1),
            seed: 0xE2E,
            threads: 0,
        },
    );
    h.run()
}

#[test]
fn loop_improves_every_structure() {
    for structure in TargetStructure::ALL {
        let report = small_loop(structure, 300, 10);
        let initial = report.samples.first().unwrap().top_coverages[0];
        assert!(
            report.champion_coverage >= initial,
            "{structure}: champion {:.4} below initial {:.4}",
            report.champion_coverage,
            initial
        );
        assert!(report.champion_coverage > 0.0, "{structure}: zero coverage");
    }
}

#[test]
fn coverage_gain_translates_to_detection_gain() {
    // The paper's crux claim (§VI-B): refining for coverage raises SFI
    // detection. At smoke scale a single structure is binomial-noise
    // bound (96 faults resolve detection to ~±5pp, well inside the
    // margin a 16-iteration population-10 loop buys), so assert the
    // claim where the paper makes it: aggregated across all six target
    // structures, each refined for its own objective and graded against
    // the same random program on a larger fault sample.
    let core = OooCore::default();
    let ccfg = CampaignConfig {
        n_faults: 256,
        threads: 0,
        ..CampaignConfig::default()
    };
    let mut random_total = 0.0;
    let mut champ_total = 0.0;
    let mut per_structure = String::new();
    for structure in TargetStructure::ALL {
        let gen = Generator::new(GenConstraints {
            n_insts: 400,
            ..GenConstraints::default()
        });
        let random = gen.generate(0xAB);
        let random_det = measure_detection(&random, structure, &core, &ccfg)
            .unwrap()
            .detection();
        let report = small_loop(structure, 400, 16);
        let champ_det = measure_detection(&report.champion, structure, &core, &ccfg)
            .unwrap()
            .detection();
        // No structure may fall off a cliff under refinement: anything
        // beyond sampling noise means the objective actively hurts SFI.
        assert!(
            champ_det + 0.05 >= random_det,
            "{structure}: refined {champ_det:.3} collapsed below random {random_det:.3}"
        );
        random_total += random_det;
        champ_total += champ_det;
        per_structure.push_str(&format!(
            "  {structure}: random {random_det:.3} refined {champ_det:.3}\n"
        ));
    }
    assert!(
        champ_total > random_total,
        "refined programs must beat random in aggregate detection \
         ({champ_total:.3} vs {random_total:.3}):\n{per_structure}"
    );
}

#[test]
fn champion_is_a_valid_deterministic_program() {
    use harpocrates::isa::exec::Machine;
    use harpocrates::isa::fu::NativeFu;
    let report = small_loop(TargetStructure::IntAdder, 500, 8);
    let p = &report.champion;
    let a = Machine::new(p, NativeFu).run(10_000_000).expect("runs");
    let b = Machine::new(p, NativeFu).run(10_000_000).expect("runs");
    assert_eq!(a.signature, b.signature, "champion must stay deterministic");
    // And its encoding round-trips (a deployable artefact).
    let bytes = p.encode();
    let decoded = harpocrates::isa::decode_stream(&bytes).expect("decodes");
    assert_eq!(decoded, p.insts);
}
