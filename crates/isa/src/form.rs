//! The instruction *form* catalogue.
//!
//! A **form** is a concrete instruction variant: a mnemonic at a specific
//! operand mode and width (`ADD r64, r/m64` and `ADD r8, imm8` are distinct
//! forms). This mirrors MicroProbe's architecture-module view of an ISA,
//! where "the same mnemonics with different operand types are handled as
//! distinct instructions" (paper §V-B1) — the mutation engine's
//! instruction-replacement operator works at form granularity.
//!
//! The catalogue is generated programmatically as the legal product of
//! mnemonic × mode × width and is exposed through [`Catalog`], which also
//! owns the opcode pages used by the byte encoder/decoder.

use crate::reg::Width;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Instruction mnemonics. Condition-code families are expanded per
/// condition (`Jz` and `Jnz` are different mnemonics), as are the implicit
/// one-operand multiply/divide forms, matching how x86 opcode maps are
/// organised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // x86 mnemonics are the documentation
pub enum Mnemonic {
    // Data movement.
    Mov,
    Movzx,
    Movsx,
    Xchg,
    Lea,
    Push,
    Pop,
    // Integer arithmetic routed through the graded adder unit.
    Add,
    Adc,
    Sub,
    Sbb,
    Cmp,
    Inc,
    Dec,
    Neg,
    // Logic / bit manipulation (generic ALU).
    And,
    Or,
    Xor,
    Test,
    Not,
    Bswap,
    Popcnt,
    Lzcnt,
    Tzcnt,
    Bt,
    Bts,
    Btr,
    Btc,
    // Shifts and rotates (generic ALU).
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
    Rcl,
    Rcr,
    // Multiply / divide.
    Imul2,
    ImulRax,
    MulRax,
    IdivRax,
    DivRax,
    // Conditional moves and set.
    Cmovz,
    Cmovnz,
    Cmovs,
    Cmovns,
    Cmovc,
    Cmovnc,
    Setz,
    Setnz,
    Sets,
    Setc,
    // Control flow.
    Jmp,
    Jz,
    Jnz,
    Js,
    Jns,
    Jc,
    Jnc,
    Jo,
    Jno,
    // Misc.
    Nop,
    Halt,
    Rdtsc,
    Cpuid,
    // SSE moves.
    Movss,
    Movaps,
    MovqRx,
    MovqXr,
    // SSE scalar single-precision arithmetic.
    Addss,
    Subss,
    Mulss,
    Divss,
    Minss,
    Maxss,
    Sqrtss,
    // SSE packed single-precision arithmetic (4 lanes).
    Addps,
    Subps,
    Mulps,
    Divps,
    Minps,
    Maxps,
    // SSE logic.
    Andps,
    Orps,
    Xorps,
    // SSE compare / convert.
    Ucomiss,
    Cvtsi2ss,
    Cvttss2si,
    // SSE integer (uses the integer adder unit, two 64-bit lanes).
    Paddq,
    Psubq,
    Pxor,
    /// Packed dword add (four 32-bit lanes through the integer adder).
    Paddd,
    /// Packed dword subtract.
    Psubd,
    /// Packed unsigned dword multiply (dwords 0 and 2 → two qwords),
    /// routing the integer multiplier from vector code.
    Pmuludq,
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)?;
        Ok(())
    }
}

/// Operand mode: how the (up to two) explicit operands are supplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpMode {
    /// Two GPR operands; first is the destination.
    Rr,
    /// GPR destination, 32-bit immediate (sign-extended to width).
    Ri,
    /// GPR destination, memory source at `[base + disp16]`.
    Rm,
    /// Memory destination at `[base + disp16]`, GPR source.
    Mr,
    /// GPR destination, RIP-relative memory source (`[rip + disp16]`).
    RmRip,
    /// RIP-relative memory destination, GPR source.
    MrRip,
    /// Single GPR operand.
    R,
    /// Single GPR operand plus an 8-bit immediate (shift counts, `BT`).
    RiB,
    /// Single GPR operand shifted by the implicit `CL` register.
    Rc,
    /// 32-bit immediate only (`PUSH imm32`).
    I,
    /// Branch with a 16-bit signed *instruction-index* offset.
    Rel,
    /// No explicit operands.
    None,
    /// Two XMM operands; first is the destination.
    Xx,
    /// XMM destination, memory source.
    Xm,
    /// Memory destination, XMM source.
    Mx,
    /// XMM destination, GPR source (`MOVQ xmm, r64`, `CVTSI2SS`).
    Xr,
    /// GPR destination, XMM source (`MOVQ r64, xmm`, `CVTTSS2SI`).
    Rx,
}

impl OpMode {
    /// Does this mode reference memory?
    #[inline]
    pub fn touches_memory(self) -> bool {
        matches!(
            self,
            OpMode::Rm | OpMode::Mr | OpMode::RmRip | OpMode::MrRip | OpMode::Xm | OpMode::Mx
        )
    }
}

/// Functional-unit class an instruction executes on. The four *graded*
/// structures of the paper's evaluation (§III-B2) are `IntAdd`, `IntMul`,
/// `FpAdd` and `FpMul`; the rest exist for timing realism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Generic ALU (logic, shifts, moves between registers, LEA).
    Alu,
    /// The graded 64-bit integer adder (add/sub/cmp/inc/dec/neg/adc/sbb).
    IntAdd,
    /// The graded 32×32→64 integer multiplier array.
    IntMul,
    /// Integer divider (not graded; fixed latency).
    IntDiv,
    /// The graded single-precision FP adder.
    FpAdd,
    /// The graded single-precision FP multiplier.
    FpMul,
    /// FP divide/sqrt pipe (not graded).
    FpDiv,
    /// Load port (address generation + L1D access).
    Load,
    /// Store port.
    Store,
    /// Branch unit.
    Branch,
}

impl FuKind {
    /// Default execution latency in cycles (L1D hit latency for loads; the
    /// cache model adds miss penalties).
    pub fn latency(self) -> u32 {
        match self {
            FuKind::Alu | FuKind::IntAdd => 1,
            FuKind::IntMul => 3,
            FuKind::IntDiv => 20,
            FuKind::FpAdd => 3,
            FuKind::FpMul => 4,
            FuKind::FpDiv => 13,
            FuKind::Load => 4,
            FuKind::Store => 1,
            FuKind::Branch => 1,
        }
    }
}

/// Branch conditions (used by the assembler's `jcc` helper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // standard x86 condition codes
pub enum Cond {
    Z,
    Nz,
    S,
    Ns,
    C,
    Nc,
    O,
    No,
}

/// Identifier of a form: an index into [`Catalog::forms`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FormId(pub u16);

impl FormId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FormId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "form#{}", self.0)
    }
}

/// A single instruction form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Form {
    /// The form's identifier (its catalogue index).
    pub id: FormId,
    /// Mnemonic.
    pub mnemonic: Mnemonic,
    /// Operand mode.
    pub mode: OpMode,
    /// Integer data width; for SSE forms this is `B32` (scalar lane) or
    /// `B64` (`MOVQ` family); packed forms use `B32` with `packed = true`.
    pub width: Width,
    /// True for packed (4-lane) SSE forms.
    pub packed: bool,
    /// Functional-unit class.
    pub fu: FuKind,
    /// False for instructions whose results vary across runs (RDTSC,
    /// CPUID); generators exclude these, fuzz filters reject them.
    pub deterministic: bool,
    /// True if the form's destination register field names an XMM register.
    pub writes_xmm: bool,
}

impl Form {
    /// Does this form read or write memory?
    #[inline]
    pub fn touches_memory(&self) -> bool {
        self.mode.touches_memory() || matches!(self.mnemonic, Mnemonic::Push | Mnemonic::Pop)
    }

    /// Is this a control-flow form?
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.fu == FuKind::Branch
    }

    /// Human-readable name, e.g. `add.rr.32`.
    pub fn name(&self) -> String {
        let pk = if self.packed { ".p" } else { "" };
        format!(
            "{}.{:?}.{}{}",
            format!("{:?}", self.mnemonic).to_lowercase(),
            self.mode,
            self.width.bits(),
            pk
        )
    }
}

impl fmt::Display for Form {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The complete form catalogue plus the opcode pages used by the binary
/// encoding. Obtain the process-wide instance with [`Catalog::get`].
#[derive(Debug)]
pub struct Catalog {
    forms: Vec<Form>,
    /// Opcode pages: `pages[p][b]` maps opcode byte `b` on page `p` to a
    /// form. Page 0 is the primary map; pages 1.. are reached through
    /// escape bytes (see `encode.rs`).
    pages: Vec<[Option<FormId>; 256]>,
    /// Reverse map: for each form, its (page, opcode) position.
    position: Vec<(u8, u8)>,
}

/// Number of opcode slots used per page; the remainder stay invalid so
/// byte-level fuzzing encounters illegal opcodes, as on real x86.
const PAGE_FILL: usize = 224;

impl Catalog {
    /// The process-wide catalogue (built once, on first use).
    ///
    /// ```
    /// use harpo_isa::form::{Catalog, FuKind};
    /// let cat = Catalog::get();
    /// assert!(cat.len() > 300);
    /// // Graded structures have forms to exercise them.
    /// assert!(cat.forms().iter().any(|f| f.fu == FuKind::IntMul));
    /// ```
    pub fn get() -> &'static Catalog {
        static CAT: OnceLock<Catalog> = OnceLock::new();
        CAT.get_or_init(Catalog::build)
    }

    /// All forms, indexable by [`FormId::index`].
    #[inline]
    pub fn forms(&self) -> &[Form] {
        &self.forms
    }

    /// Number of forms in the catalogue.
    #[inline]
    pub fn len(&self) -> usize {
        self.forms.len()
    }

    /// The catalogue is never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a form by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range (form ids are only minted by this
    /// catalogue, so this indicates corruption).
    #[inline]
    pub fn form(&self, id: FormId) -> &Form {
        &self.forms[id.index()]
    }

    /// Finds the form with the given mnemonic/mode/width/packed signature.
    pub fn lookup(
        &self,
        mnemonic: Mnemonic,
        mode: OpMode,
        width: Width,
        packed: bool,
    ) -> Option<FormId> {
        self.forms
            .iter()
            .find(|f| {
                f.mnemonic == mnemonic && f.mode == mode && f.width == width && f.packed == packed
            })
            .map(|f| f.id)
    }

    /// The (page, opcode) encoding position of a form.
    #[inline]
    pub fn position(&self, id: FormId) -> (u8, u8) {
        self.position[id.index()]
    }

    /// Decodes an opcode byte on a page to a form, if assigned.
    #[inline]
    pub fn on_page(&self, page: u8, opcode: u8) -> Option<FormId> {
        self.pages
            .get(page as usize)
            .and_then(|p| p[opcode as usize])
    }

    /// Number of opcode pages.
    #[inline]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// All deterministic forms, the default generator domain.
    pub fn deterministic_forms(&self) -> impl Iterator<Item = &Form> {
        self.forms.iter().filter(|f| f.deterministic)
    }

    fn build() -> Catalog {
        let mut b = Builder::default();
        b.build_all();
        let forms = b.forms;

        // Lay forms out across opcode pages round-robin, so every
        // instruction family (ALU, multiply, SSE, ...) has members on the
        // primary map — like real x86, where common opcodes are
        // single-byte and escapes extend the space. A catalogue-order
        // split would hide whole families behind the escape byte and make
        // them unreachable for byte-level fuzzers.
        let page_count = forms.len().div_ceil(PAGE_FILL);
        let mut pages = vec![[None; 256]; page_count];
        let mut position = Vec::with_capacity(forms.len());
        for f in &forms {
            let p = f.id.index() % page_count;
            let o = f.id.index() / page_count;
            debug_assert!(o < PAGE_FILL);
            pages[p][o] = Some(f.id);
            position.push((p as u8, o as u8));
        }
        Catalog {
            forms,
            pages,
            position,
        }
    }
}

#[derive(Default)]
struct Builder {
    forms: Vec<Form>,
}

impl Builder {
    #[allow(clippy::too_many_arguments)] // private builder: one arg per Form field
    fn push(
        &mut self,
        mnemonic: Mnemonic,
        mode: OpMode,
        width: Width,
        packed: bool,
        fu: FuKind,
        deterministic: bool,
        writes_xmm: bool,
    ) {
        let id = FormId(self.forms.len() as u16);
        self.forms.push(Form {
            id,
            mnemonic,
            mode,
            width,
            packed,
            fu,
            deterministic,
            writes_xmm,
        });
    }

    fn int(&mut self, m: Mnemonic, mode: OpMode, w: Width, fu: FuKind) {
        self.push(m, mode, w, false, fu, true, false);
    }

    fn sse(&mut self, m: Mnemonic, mode: OpMode, packed: bool, fu: FuKind) {
        let writes_xmm = !matches!(mode, OpMode::Mx | OpMode::Rx);
        self.push(m, mode, Width::B32, packed, fu, true, writes_xmm);
    }

    fn build_all(&mut self) {
        use FuKind::*;
        use Mnemonic::*;
        use OpMode::*;
        use Width::*;

        // Integer ALU binary operations at all four widths, three modes.
        // Add-family goes through the graded integer adder; logic through
        // the generic ALU.
        let binops: &[(Mnemonic, FuKind)] = &[
            (Add, IntAdd),
            (Adc, IntAdd),
            (Sub, IntAdd),
            (Sbb, IntAdd),
            (Cmp, IntAdd),
            (And, Alu),
            (Or, Alu),
            (Xor, Alu),
            (Test, Alu),
        ];
        for &(m, fu) in binops {
            for &w in &Width::ALL {
                for &mode in &[Rr, Ri, Rm] {
                    // Memory-source forms occupy a load port as well; the
                    // timing model splits them into load + op micro-ops.
                    self.int(m, mode, w, fu);
                }
            }
        }

        // MOV at all widths, five modes (including RIP-relative).
        for &w in &Width::ALL {
            for &mode in &[Rr, Ri, Rm, Mr] {
                let fu = match mode {
                    Mr => Store,
                    Rm => Load,
                    _ => Alu,
                };
                self.int(Mov, mode, w, fu);
            }
        }
        self.int(Mov, RmRip, B64, Load);
        self.int(Mov, MrRip, B64, Store);
        self.int(Mov, RmRip, B32, Load);
        self.int(Mov, MrRip, B32, Store);

        // MOVZX / MOVSX from 8/16/32-bit sources into 64-bit destinations.
        for &w in &[B8, B16, B32] {
            for &mode in &[Rr, Rm] {
                let fu = if mode == Rm { Load } else { Alu };
                self.int(Movzx, mode, w, fu);
                self.int(Movsx, mode, w, fu);
            }
        }

        // Unary integer ops (adder-backed ones are graded).
        for &w in &Width::ALL {
            self.int(Inc, R, w, IntAdd);
            self.int(Dec, R, w, IntAdd);
            self.int(Neg, R, w, IntAdd);
            self.int(Not, R, w, Alu);
        }
        self.int(Bswap, R, B32, Alu);
        self.int(Bswap, R, B64, Alu);
        for &w in &[B16, B32, B64] {
            self.int(Popcnt, Rr, w, Alu);
            self.int(Lzcnt, Rr, w, Alu);
            self.int(Tzcnt, Rr, w, Alu);
        }

        // Shifts and rotates: by immediate and by CL.
        for &m in &[Shl, Shr, Sar, Rol, Ror, Rcl, Rcr] {
            for &w in &Width::ALL {
                self.int(m, RiB, w, Alu);
                self.int(m, Rc, w, Alu);
            }
        }

        // Bit test family.
        for &m in &[Bt, Bts, Btr, Btc] {
            for &w in &[B16, B32, B64] {
                self.int(m, Rr, w, Alu);
                self.int(m, RiB, w, Alu);
            }
        }

        // Multiply / divide. IMUL2 is the two-operand register form; the
        // RAX-implicit forms exist at all widths, as in x86.
        for &w in &[B16, B32, B64] {
            self.int(Imul2, Rr, w, IntMul);
            self.int(Imul2, Rm, w, IntMul);
        }
        for &w in &Width::ALL {
            self.int(ImulRax, R, w, IntMul);
            self.int(MulRax, R, w, IntMul);
            self.int(IdivRax, R, w, IntDiv);
            self.int(DivRax, R, w, IntDiv);
        }

        // LEA (address arithmetic on the plain ALU).
        self.int(Lea, Rm, B64, Alu);
        self.int(Lea, Rm, B32, Alu);

        // XCHG.
        for &w in &Width::ALL {
            self.int(Xchg, Rr, w, Alu);
        }

        // Conditional moves.
        for &m in &[Cmovz, Cmovnz, Cmovs, Cmovns, Cmovc, Cmovnc] {
            for &w in &[B16, B32, B64] {
                self.int(m, Rr, w, Alu);
            }
        }
        for &m in &[Setz, Setnz, Sets, Setc] {
            self.int(m, R, B8, Alu);
        }

        // Stack operations (64-bit as on x86-64).
        self.int(Push, R, B64, Store);
        self.int(Pop, R, B64, Load);
        self.int(Push, I, B64, Store);

        // Control flow. Branch targets are instruction-index relative.
        for &m in &[Jmp, Jz, Jnz, Js, Jns, Jc, Jnc, Jo, Jno] {
            self.int(m, Rel, B64, Branch);
        }

        // Misc.
        self.int(Nop, None, B64, Alu);
        self.int(Halt, None, B64, Alu);
        self.push(Rdtsc, None, B64, false, Alu, false, false);
        self.push(Cpuid, None, B64, false, Alu, false, false);

        // SSE moves.
        self.sse(Movss, Xx, false, Alu);
        self.sse(Movss, Xm, false, Load);
        self.sse(Movss, Mx, false, Store);
        self.sse(Movaps, Xx, true, Alu);
        self.sse(Movaps, Xm, true, Load);
        self.sse(Movaps, Mx, true, Store);
        self.push(MovqXr, Xr, B64, false, Alu, true, true);
        self.push(MovqRx, Rx, B64, false, Alu, true, false);

        // SSE scalar arithmetic.
        for &(m, fu) in &[
            (Addss, FpAdd),
            (Subss, FpAdd),
            (Minss, FpAdd),
            (Maxss, FpAdd),
            (Mulss, FpMul),
            (Divss, FpDiv),
            (Sqrtss, FpDiv),
        ] {
            self.sse(m, Xx, false, fu);
            if m != Sqrtss {
                self.sse(m, Xm, false, fu);
            }
        }

        // SSE packed arithmetic (four lanes → four unit passes).
        for &(m, fu) in &[
            (Addps, FpAdd),
            (Subps, FpAdd),
            (Minps, FpAdd),
            (Maxps, FpAdd),
            (Mulps, FpMul),
            (Divps, FpDiv),
        ] {
            self.sse(m, Xx, true, fu);
            self.sse(m, Xm, true, fu);
        }

        // SSE logic.
        for &m in &[Andps, Orps, Xorps] {
            self.sse(m, Xx, true, Alu);
        }

        // SSE compare / convert.
        self.sse(Ucomiss, Xx, false, FpAdd);
        self.push(Cvtsi2ss, Xr, B32, false, FpAdd, true, true);
        self.push(Cvtsi2ss, Xr, B64, false, FpAdd, true, true);
        self.push(Cvttss2si, Rx, B32, false, FpAdd, true, false);
        self.push(Cvttss2si, Rx, B64, false, FpAdd, true, false);

        // SSE integer lanes (exercise the integer adder and multiplier
        // from vector code — hyperscalers flag both scalar and vector
        // datapaths as SDC sources).
        self.sse(Paddq, Xx, true, IntAdd);
        self.sse(Psubq, Xx, true, IntAdd);
        self.sse(Pxor, Xx, true, Alu);
        self.sse(Paddd, Xx, true, IntAdd);
        self.sse(Psubd, Xx, true, IntAdd);
        self.sse(Pmuludq, Xx, true, IntMul);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_substantial() {
        let c = Catalog::get();
        // The paper's extended MicroProbe supports ~2,000 x86 variants; our
        // synthetic catalogue targets several hundred.
        assert!(c.len() >= 300, "catalogue too small: {}", c.len());
        assert!(c.len() < 1000);
    }

    #[test]
    fn form_ids_are_dense_and_self_referential() {
        let c = Catalog::get();
        for (i, f) in c.forms().iter().enumerate() {
            assert_eq!(f.id.index(), i);
        }
    }

    #[test]
    fn opcode_positions_roundtrip() {
        let c = Catalog::get();
        for f in c.forms() {
            let (p, o) = c.position(f.id);
            assert_eq!(c.on_page(p, o), Some(f.id));
            assert!((o as usize) < PAGE_FILL);
        }
    }

    #[test]
    fn unassigned_opcodes_exist_on_every_page() {
        let c = Catalog::get();
        for p in 0..c.page_count() as u8 {
            assert_eq!(c.on_page(p, 0xFF), None);
            assert_eq!(c.on_page(p, PAGE_FILL as u8), None);
        }
    }

    #[test]
    fn nondeterministic_forms_flagged() {
        let c = Catalog::get();
        let nd: Vec<_> = c.forms().iter().filter(|f| !f.deterministic).collect();
        assert_eq!(nd.len(), 2);
        assert!(nd
            .iter()
            .all(|f| matches!(f.mnemonic, Mnemonic::Rdtsc | Mnemonic::Cpuid)));
    }

    #[test]
    fn lookup_finds_known_forms() {
        let c = Catalog::get();
        let add = c
            .lookup(Mnemonic::Add, OpMode::Rr, Width::B64, false)
            .expect("add.rr.64 exists");
        assert_eq!(c.form(add).fu, FuKind::IntAdd);
        let mul = c
            .lookup(Mnemonic::Mulps, OpMode::Xx, Width::B32, true)
            .expect("mulps exists");
        assert_eq!(c.form(mul).fu, FuKind::FpMul);
        assert!(c
            .lookup(Mnemonic::Lea, OpMode::Rr, Width::B64, false)
            .is_none());
    }

    #[test]
    fn graded_units_have_forms() {
        let c = Catalog::get();
        for fu in [FuKind::IntAdd, FuKind::IntMul, FuKind::FpAdd, FuKind::FpMul] {
            assert!(
                c.forms().iter().any(|f| f.fu == fu),
                "no forms for graded unit {:?}",
                fu
            );
        }
    }

    #[test]
    fn rcr_exists_at_all_widths() {
        // §VI-D regression surface: rotate-through-carry at every width.
        let c = Catalog::get();
        for w in Width::ALL {
            assert!(c.lookup(Mnemonic::Rcr, OpMode::RiB, w, false).is_some());
            assert!(c.lookup(Mnemonic::Rcr, OpMode::Rc, w, false).is_some());
        }
    }
}
