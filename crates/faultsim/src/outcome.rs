//! Fault-injection outcome taxonomy and campaign tallies (paper §II-E).

use crate::checkpoint::ReplayStats;
use harpo_telemetry::{Histogram, Metrics, HIST_BUCKETS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A lock-free, allocation-free tally of per-fault replay lengths
/// (dynamic instructions executed per functional replay), log₂-bucketed
/// with the same geometry as [`Histogram`].
///
/// Campaign workers accumulate into their thread-local tally and
/// [`CampaignResult::merge`] folds tallies together; [`CampaignResult::publish`]
/// then merges the final distribution into the shared
/// `faultsim.replay_len` histogram, whose p50/p90/p99 land in the journal
/// summary record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayLenHist {
    /// Replays tallied.
    pub count: u64,
    /// Longest replay seen.
    pub max: u64,
    /// Bucket `i` counts replays whose length has `i` significant bits.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for ReplayLenHist {
    fn default() -> ReplayLenHist {
        ReplayLenHist {
            count: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl ReplayLenHist {
    /// Tallies one replay of `insts` dynamic instructions.
    pub fn observe(&mut self, insts: u64) {
        self.count += 1;
        self.max = self.max.max(insts);
        self.buckets[Histogram::bucket_of(insts)] += 1;
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &ReplayLenHist) {
        self.count += other.count;
        self.max = self.max.max(other.max);
        for (slot, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += n;
        }
    }
}

/// One cell of the per-fault-class cost matrix: how many faults of one
/// outcome class a campaign graded, and what they cost.
///
/// `faults` and `replay_insts` are deterministic (they restate the
/// outcome tallies and replay accounting per class); `replay_ns` is
/// wall clock, accumulated only when [`crate::CampaignConfig::profile`]
/// is on, and excluded from [`CostMatrix`] equality like
/// [`CampaignResult::netlist_compile_ns`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CostCell {
    /// Faults of this outcome class.
    pub faults: u64,
    /// Dynamic instructions replayed for this class.
    pub replay_insts: u64,
    /// Wall-clock nanoseconds spent replaying this class (0 unless the
    /// campaign ran with profiling on).
    pub replay_ns: u64,
}

/// Per-outcome replay-cost attribution for one campaign: every injected
/// fault lands in exactly one [`CostCell`], so the cells' `faults` sum
/// to `injected` and their `replay_insts` sum to `replay_insts` — the
/// decomposition the schema-v6 `cost` records journal.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CostMatrix {
    /// One cell per outcome, indexed in [`CostMatrix::OUTCOMES`] order.
    pub cells: [CostCell; 4],
}

impl CostMatrix {
    /// Cell order: every outcome appears exactly once.
    pub const OUTCOMES: [FaultOutcome; 4] = [
        FaultOutcome::Masked,
        FaultOutcome::Sdc,
        FaultOutcome::Crash,
        FaultOutcome::Corrected,
    ];

    fn idx(o: FaultOutcome) -> usize {
        match o {
            FaultOutcome::Masked => 0,
            FaultOutcome::Sdc => 1,
            FaultOutcome::Crash => 2,
            FaultOutcome::Corrected => 3,
        }
    }

    /// The cell of one outcome class.
    pub fn cell(&self, o: FaultOutcome) -> &CostCell {
        &self.cells[Self::idx(o)]
    }

    /// Counts one fault of class `o`.
    pub fn account_fault(&mut self, o: FaultOutcome) {
        self.cells[Self::idx(o)].faults += 1;
    }

    /// Attributes `insts` replayed instructions to class `o`.
    pub fn account_insts(&mut self, o: FaultOutcome, insts: u64) {
        self.cells[Self::idx(o)].replay_insts += insts;
    }

    /// Attributes `ns` of replay wall time to class `o` (profiling on
    /// only — wall clock must never leak into default-path tallies).
    pub fn account_ns(&mut self, o: FaultOutcome, ns: u64) {
        self.cells[Self::idx(o)].replay_ns += ns;
    }

    /// Folds another matrix into this one.
    pub fn merge(&mut self, other: &CostMatrix) {
        for (cell, o) in self.cells.iter_mut().zip(&other.cells) {
            cell.faults += o.faults;
            cell.replay_insts += o.replay_insts;
            cell.replay_ns += o.replay_ns;
        }
    }

    /// Replayed instructions summed across all classes — must equal the
    /// campaign's `replay_insts` (the ≥99%-attribution invariant is in
    /// fact exact).
    pub fn total_replay_insts(&self) -> u64 {
        self.cells.iter().map(|c| c.replay_insts).sum()
    }
}

impl PartialEq for CostMatrix {
    fn eq(&self, other: &Self) -> bool {
        // Everything except replay_ns, which is wall-clock.
        self.cells
            .iter()
            .zip(&other.cells)
            .all(|(a, b)| a.faults == b.faults && a.replay_insts == b.replay_insts)
    }
}

impl Eq for CostMatrix {}

/// The observable outcome of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The fault never propagated to software-visible state (including
    /// faults proven dead from the golden trace without a replay).
    Masked,
    /// The program completed with a different output signature — a
    /// silent data corruption, which the test program *detects* by
    /// comparing signatures.
    Sdc,
    /// The faulty run trapped (wild address, divide error, ...).
    Crash,
    /// A hardware protection scheme (parity/ECC) corrected the fault
    /// before it became architecturally visible (paper §II-E: a single
    /// bit flip in a SECDED cache is "Masked (Corrected)").
    Corrected,
}

impl FaultOutcome {
    /// Whether a checking test program detects this outcome (SDC via
    /// signature mismatch, crash via the trap itself).
    pub fn detected(self) -> bool {
        !matches!(self, FaultOutcome::Masked | FaultOutcome::Corrected)
    }

    /// Lowercase journal label (`autopsy`/`heatmap` records).
    pub fn label(self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::Sdc => "sdc",
            FaultOutcome::Crash => "crash",
            FaultOutcome::Corrected => "corrected",
        }
    }
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultOutcome::Masked => "Masked",
            FaultOutcome::Sdc => "SDC",
            FaultOutcome::Crash => "Crash",
            FaultOutcome::Corrected => "Corrected",
        };
        f.write_str(s)
    }
}

/// Aggregate result of a statistical fault-injection campaign.
///
/// Equality ignores [`CampaignResult::netlist_compile_ns`] — the one
/// wall-clock field — so bit-identity assertions across thread counts
/// and checkpoint settings stay meaningful.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Faults injected (N).
    pub injected: u64,
    /// Faults whose run produced a corrupted output.
    pub sdc: u64,
    /// Faults whose run crashed.
    pub crash: u64,
    /// Faults masked (n_masked = N − sdc − crash − corrected).
    pub masked: u64,
    /// Faults corrected by a protection scheme (subset of undetected).
    pub corrected: u64,
    /// Faults resolved Masked from the golden trace alone (no replay) —
    /// a throughput statistic, subset of `masked`.
    pub masked_fast_path: u64,
    /// Faults screened against the golden operand stream by the packed
    /// gate-level evaluator (gate-fault campaigns only).
    pub screened: u64,
    /// Functional replays actually paid for (injected minus the faults
    /// resolved without a replay).
    pub replays: u64,
    /// Dynamic instructions executed across all replays — the campaign's
    /// simulation cost.
    pub replay_insts: u64,
    /// Golden instructions *not* executed thanks to the checkpoint
    /// trail: seeked-over prefixes plus reconverged suffixes.
    #[serde(default)]
    pub replay_insts_skipped: u64,
    /// Replays that seeked to a mid-run checkpoint instead of starting
    /// from instruction 0.
    #[serde(default)]
    pub checkpoint_hits: u64,
    /// Replays that early-exited Masked on reconvergence with the
    /// golden trail.
    #[serde(default)]
    pub early_exits: u64,
    /// Activated gate faults proven Masked by the bit-parallel outcome
    /// cohort (the corrupted output never enters live architectural
    /// state), skipping the functional replay entirely.
    #[serde(default)]
    pub cohort_demoted: u64,
    /// Faulted-unit evaluations answered by the per-replay
    /// operand-triple memo in [`harpo_gates::FaultyFu`].
    #[serde(default)]
    pub fu_memo_hits: u64,
    /// Faulted-unit evaluations that consulted that memo.
    #[serde(default)]
    pub fu_memo_lookups: u64,
    /// Total ops across the fault-specialized compiled circuits of all
    /// replays (compare against `replays` × source gate count for the
    /// specialization compression ratio).
    #[serde(default)]
    pub specialized_ops: u64,
    /// Wall-clock nanoseconds spent compiling fault-specialized
    /// circuits. Excluded from equality (the only non-deterministic
    /// field).
    #[serde(default)]
    pub netlist_compile_ns: u64,
    /// Distribution of per-replay lengths (not serialized — the flight
    /// recorder carries it via the `faultsim.replay_len` histogram).
    #[serde(skip)]
    pub replay_len: ReplayLenHist,
    /// Per-outcome cost attribution (not serialized — the journal
    /// carries it via schema-v6 `cost` records when profiling is on).
    #[serde(skip)]
    pub cost: CostMatrix,
}

impl PartialEq for CampaignResult {
    fn eq(&self, other: &Self) -> bool {
        // Everything except netlist_compile_ns, which is wall-clock.
        self.injected == other.injected
            && self.sdc == other.sdc
            && self.crash == other.crash
            && self.masked == other.masked
            && self.corrected == other.corrected
            && self.masked_fast_path == other.masked_fast_path
            && self.screened == other.screened
            && self.replays == other.replays
            && self.replay_insts == other.replay_insts
            && self.replay_insts_skipped == other.replay_insts_skipped
            && self.checkpoint_hits == other.checkpoint_hits
            && self.early_exits == other.early_exits
            && self.cohort_demoted == other.cohort_demoted
            && self.fu_memo_hits == other.fu_memo_hits
            && self.fu_memo_lookups == other.fu_memo_lookups
            && self.specialized_ops == other.specialized_ops
            && self.replay_len == other.replay_len
            && self.cost == other.cost
    }
}

impl Eq for CampaignResult {}

impl CampaignResult {
    /// Records one outcome.
    pub fn record(&mut self, o: FaultOutcome, fast_path: bool) {
        self.injected += 1;
        self.cost.account_fault(o);
        match o {
            FaultOutcome::Sdc => self.sdc += 1,
            FaultOutcome::Crash => self.crash += 1,
            FaultOutcome::Masked => {
                self.masked += 1;
                if fast_path {
                    self.masked_fast_path += 1;
                }
            }
            FaultOutcome::Corrected => self.corrected += 1,
        }
    }

    /// Records one outcome that required a functional replay of `insts`
    /// dynamic instructions.
    pub fn record_replayed(&mut self, o: FaultOutcome, insts: u64) {
        self.record(o, false);
        self.replays += 1;
        self.replay_insts += insts;
        self.replay_len.observe(insts);
        self.cost.account_insts(o, insts);
    }

    /// Attributes `ns` of replay wall time to outcome class `o`. Call
    /// sites must gate this on [`crate::CampaignConfig::profile`]: the
    /// default path never reads the clock per fault.
    pub fn record_replay_ns(&mut self, o: FaultOutcome, ns: u64) {
        self.cost.account_ns(o, ns);
    }

    /// Records one replayed outcome with the checkpointed engine's
    /// per-replay statistics ([`ReplayStats`]).
    pub fn record_replay_stats(&mut self, o: FaultOutcome, stats: &ReplayStats) {
        self.record_replayed(o, stats.executed_insts);
        self.replay_insts_skipped += stats.skipped_insts;
        self.checkpoint_hits += stats.checkpoint_hit as u64;
        self.early_exits += stats.early_exit as u64;
        self.fu_memo_hits += stats.fu_memo_hits;
        self.fu_memo_lookups += stats.fu_memo_lookups;
        self.specialized_ops += stats.specialized_ops;
        self.netlist_compile_ns += stats.compile_ns;
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &CampaignResult) {
        self.injected += other.injected;
        self.sdc += other.sdc;
        self.crash += other.crash;
        self.masked += other.masked;
        self.corrected += other.corrected;
        self.masked_fast_path += other.masked_fast_path;
        self.screened += other.screened;
        self.replays += other.replays;
        self.replay_insts += other.replay_insts;
        self.replay_insts_skipped += other.replay_insts_skipped;
        self.checkpoint_hits += other.checkpoint_hits;
        self.early_exits += other.early_exits;
        self.cohort_demoted += other.cohort_demoted;
        self.fu_memo_hits += other.fu_memo_hits;
        self.fu_memo_lookups += other.fu_memo_lookups;
        self.specialized_ops += other.specialized_ops;
        self.netlist_compile_ns += other.netlist_compile_ns;
        self.replay_len.merge(&other.replay_len);
        self.cost.merge(&other.cost);
    }

    /// Adds this tally to the `faultsim.*` counters of a metrics
    /// registry (counters accumulate across campaigns on the same
    /// registry).
    pub fn publish(&self, metrics: &Metrics) {
        metrics.counter("faultsim.injected").add(self.injected);
        metrics.counter("faultsim.sdc").add(self.sdc);
        metrics.counter("faultsim.crash").add(self.crash);
        metrics.counter("faultsim.masked").add(self.masked);
        metrics.counter("faultsim.corrected").add(self.corrected);
        metrics
            .counter("faultsim.masked_fast_path")
            .add(self.masked_fast_path);
        metrics.counter("faultsim.screened").add(self.screened);
        metrics.counter("faultsim.replays").add(self.replays);
        metrics
            .counter("faultsim.replay_insts")
            .add(self.replay_insts);
        metrics
            .counter("faultsim.replay_insts_skipped")
            .add(self.replay_insts_skipped);
        metrics
            .counter("faultsim.checkpoint_hits")
            .add(self.checkpoint_hits);
        metrics
            .counter("faultsim.early_exits")
            .add(self.early_exits);
        metrics
            .counter("faultsim.cohort_demoted")
            .add(self.cohort_demoted);
        metrics
            .counter("faultsim.fu_memo_hits")
            .add(self.fu_memo_hits);
        metrics
            .counter("faultsim.fu_memo_lookups")
            .add(self.fu_memo_lookups);
        metrics
            .counter("faultsim.specialized_ops")
            .add(self.specialized_ops);
        // netlist_compile_ns stays out of the journal: it is wall-clock,
        // and journal counters are byte-deterministic by contract
        // (enforced by the CLI forensics tests).
        if self.replay_len.count > 0 {
            metrics.histogram("faultsim.replay_len").merge_counts(
                &self.replay_len.buckets,
                self.replay_insts,
                self.replay_len.max,
            );
        }
    }

    /// Fault detection capability n/N (paper §II-C).
    pub fn detection(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            (self.sdc + self.crash) as f64 / self.injected as f64
        }
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} detection={:.1}% (SDC {} / Crash {} / Masked {} / Corrected {})",
            self.injected,
            self.detection() * 100.0,
            self.sdc,
            self.crash,
            self.masked,
            self.corrected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_len_merge_is_associative_and_commutative() {
        // Per-worker tallies merge in whatever order workers finish;
        // the final distribution must not depend on it.
        let tally = |lens: &[u64]| {
            let mut h = ReplayLenHist::default();
            for &l in lens {
                h.observe(l);
            }
            h
        };
        let a = tally(&[0, 1, 7]);
        let b = tally(&[8, 8, 1 << 40]);
        let c = tally(&[u64::MAX, 3]);

        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);

        // c ⊕ b ⊕ a (commuted) and the flat tally agree too.
        let mut commuted = c;
        commuted.merge(&b);
        commuted.merge(&a);
        assert_eq!(commuted, left);
        assert_eq!(tally(&[0, 1, 7, 8, 8, 1 << 40, u64::MAX, 3]), left);

        // The identity element really is the identity.
        let mut with_empty = left;
        with_empty.merge(&ReplayLenHist::default());
        assert_eq!(with_empty, left);
    }

    #[test]
    fn detection_math() {
        let mut r = CampaignResult::default();
        r.record(FaultOutcome::Sdc, false);
        r.record(FaultOutcome::Crash, false);
        r.record(FaultOutcome::Masked, true);
        r.record(FaultOutcome::Masked, false);
        assert_eq!(r.injected, 4);
        assert!((r.detection() - 0.5).abs() < 1e-12);
        assert_eq!(r.masked_fast_path, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CampaignResult::default();
        a.record(FaultOutcome::Sdc, false);
        let mut b = CampaignResult::default();
        b.record(FaultOutcome::Masked, true);
        b.record_replayed(FaultOutcome::Crash, 5000);
        a.merge(&b);
        assert_eq!(a.injected, 3);
        assert_eq!(a.masked, 1);
        assert_eq!(a.replays, 1);
        assert_eq!(a.replay_insts, 5000);
    }

    #[test]
    fn publish_feeds_metrics_counters() {
        let mut r = CampaignResult::default();
        r.record_replayed(FaultOutcome::Sdc, 100);
        r.record_replayed(FaultOutcome::Masked, 200);
        r.record(FaultOutcome::Masked, true);
        let m = Metrics::new();
        r.publish(&m);
        r.publish(&m); // counters accumulate across campaigns
        assert_eq!(m.counter("faultsim.injected").get(), 6);
        assert_eq!(m.counter("faultsim.sdc").get(), 2);
        assert_eq!(m.counter("faultsim.masked").get(), 4);
        assert_eq!(m.counter("faultsim.masked_fast_path").get(), 2);
        assert_eq!(m.counter("faultsim.replays").get(), 4);
        assert_eq!(m.counter("faultsim.replay_insts").get(), 600);
    }

    #[test]
    fn replay_lengths_are_tallied_and_merged() {
        let mut a = CampaignResult::default();
        a.record_replayed(FaultOutcome::Sdc, 100);
        a.record_replayed(FaultOutcome::Masked, 3000);
        let mut b = CampaignResult::default();
        b.record_replayed(FaultOutcome::Crash, 7);
        a.merge(&b);
        assert_eq!(a.replay_len.count, 3);
        assert_eq!(a.replay_len.max, 3000);
        assert_eq!(a.replay_len.buckets[Histogram::bucket_of(100)], 1);
        assert_eq!(a.replay_len.buckets[Histogram::bucket_of(7)], 1);

        let m = Metrics::new();
        a.publish(&m);
        let snap = m.histogram("faultsim.replay_len").snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 3107);
        assert_eq!(snap.max, 3000);
        // p99 resolves to the bucket holding the longest replay, capped
        // at the observed max.
        assert_eq!(snap.percentile(0.99), 3000);
    }

    #[test]
    fn fast_path_outcomes_do_not_enter_the_replay_histogram() {
        let mut r = CampaignResult::default();
        r.record(FaultOutcome::Masked, true);
        r.record(FaultOutcome::Sdc, false);
        assert_eq!(r.replay_len.count, 0);
        let m = Metrics::new();
        r.publish(&m);
        // Empty distribution: publish must not materialize the histogram
        // with a zero merge.
        assert_eq!(m.histogram("faultsim.replay_len").snapshot().count, 0);
    }

    #[test]
    fn equality_ignores_compile_wall_clock() {
        // Thread-invariance tests assert full result equality; the only
        // wall-clock field must not break them.
        let mut a = CampaignResult::default();
        a.record_replayed(FaultOutcome::Sdc, 100);
        let mut b = a;
        b.netlist_compile_ns = 123_456;
        assert_eq!(a, b);
        b.fu_memo_hits = 1;
        assert_ne!(a, b, "deterministic counters still compared");
    }

    #[test]
    fn cost_matrix_decomposes_the_tally_exactly() {
        let mut r = CampaignResult::default();
        r.record(FaultOutcome::Masked, true);
        r.record_replayed(FaultOutcome::Sdc, 100);
        r.record_replayed(FaultOutcome::Masked, 40);
        r.record_replayed(FaultOutcome::Crash, 7);
        let mut other = CampaignResult::default();
        other.record_replayed(FaultOutcome::Sdc, 1000);
        other.record(FaultOutcome::Corrected, true);
        r.merge(&other);
        // Cells' fault counts restate the outcome tallies …
        assert_eq!(r.cost.cell(FaultOutcome::Masked).faults, r.masked);
        assert_eq!(r.cost.cell(FaultOutcome::Sdc).faults, r.sdc);
        assert_eq!(r.cost.cell(FaultOutcome::Crash).faults, r.crash);
        assert_eq!(r.cost.cell(FaultOutcome::Corrected).faults, r.corrected);
        let fault_sum: u64 = r.cost.cells.iter().map(|c| c.faults).sum();
        assert_eq!(fault_sum, r.injected);
        // … and the replayed instructions decompose exactly (100% of
        // the campaign's replay cost is attributed to some class).
        assert_eq!(r.cost.total_replay_insts(), r.replay_insts);
        assert_eq!(r.cost.cell(FaultOutcome::Sdc).replay_insts, 1100);
        assert_eq!(r.cost.cell(FaultOutcome::Masked).replay_insts, 40);
    }

    #[test]
    fn cost_equality_ignores_replay_wall_clock() {
        let mut a = CampaignResult::default();
        a.record_replayed(FaultOutcome::Sdc, 100);
        let mut b = a;
        b.record_replay_ns(FaultOutcome::Sdc, 999_999);
        assert_eq!(a, b, "replay_ns is wall-clock, not science");
        b.cost.account_insts(FaultOutcome::Sdc, 1);
        assert_ne!(a, b, "deterministic cost cells still compared");
    }

    #[test]
    fn outcome_detected_flags() {
        assert!(FaultOutcome::Sdc.detected());
        assert!(FaultOutcome::Crash.detected());
        assert!(!FaultOutcome::Masked.detected());
    }
}
