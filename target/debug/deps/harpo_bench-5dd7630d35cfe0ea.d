/root/repo/target/debug/deps/harpo_bench-5dd7630d35cfe0ea.d: crates/bench/src/lib.rs crates/bench/src/diff.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_bench-5dd7630d35cfe0ea.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
