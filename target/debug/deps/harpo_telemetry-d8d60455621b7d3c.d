/root/repo/target/debug/deps/harpo_telemetry-d8d60455621b7d3c.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_telemetry-d8d60455621b7d3c.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/stream.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
