//! `harpo report` — the offline journal analyzer.
//!
//! Consumes one or more JSONL run journals (written by `--journal`) and
//! optionally `BENCH_*.json` snapshots, entirely offline, and renders a
//! self-contained Markdown report: run summary, convergence table with
//! plateau detection, operator-efficacy ranking, stage wall-clock
//! breakdown with per-iteration percentiles, cache/stall counters,
//! campaign replay-savings statistics, and — for journals written by
//! `harpo autopsy` — a fault-forensics section (masking-mechanism
//! breakdown, detection-latency percentiles, never-detected bits per
//! structure). `--trace` additionally exports the journal as a
//! Chrome/Perfetto `trace_event` file.
//!
//! Rendering is a pure function of the input bytes — no clocks, no
//! environment — so a committed journal renders byte-identically
//! forever (the golden snapshot test relies on this).

use crate::args::Args;
use harpo_telemetry::json::{self, Value};
use harpo_telemetry::SCHEMA_VERSION;
use std::fmt::Write as _;

/// `harpo report` entry point.
pub fn report(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    if args.positional.is_empty() {
        return Err("report needs at least one journal (.jsonl) or bench (.json) file".to_string());
    }
    let mut inputs = Vec::new();
    for path in &args.positional {
        let content = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        inputs.push((path.clone(), content));
    }
    let md = render(&inputs)?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &md).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{md}"),
    }
    if let Some(tpath) = args.get("trace") {
        let mut records = Vec::new();
        for (path, content) in &inputs {
            if let Input::Journal(recs) = classify(path, content)? {
                records.extend(recs);
            }
        }
        let trace = harpo_telemetry::trace_from_journal(&records);
        std::fs::write(tpath, trace.to_json()).map_err(|e| format!("{tpath}: {e}"))?;
        println!("wrote {tpath} ({} trace events)", trace.len());
    }
    Ok(())
}

/// One parsed input file.
enum Input {
    /// A JSONL run journal: the parsed records in file order.
    Journal(Vec<Value>),
    /// A flat benchmark snapshot: name → number.
    Bench(Vec<(String, Value)>),
}

/// Parses and classifies one file: JSONL lines carrying a `"kind"` field
/// are a journal; a single flat object of numbers is a bench snapshot.
fn classify(path: &str, content: &str) -> Result<Input, String> {
    let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(format!("{path}: empty file"));
    }
    let first = json::parse(lines[0]).map_err(|e| format!("{path}:1: {e}"))?;
    if first.get("kind").is_none() {
        if lines.len() > 1 {
            return Err(format!("{path}: multi-line file without journal records"));
        }
        return match first {
            Value::Obj(fields) => Ok(Input::Bench(fields)),
            _ => Err(format!("{path}: expected a JSON object")),
        };
    }
    let mut records = vec![first];
    for (i, line) in lines.iter().enumerate().skip(1) {
        match json::parse(line) {
            Ok(v) => records.push(v),
            // A run killed mid-write can leave a torn final line even
            // though the sink flushes on drop; everything before it is
            // still a valid journal, so analyze what survived.
            Err(_) if i + 1 == lines.len() => break,
            Err(e) => return Err(format!("{path}:{}: {e}", i + 1)),
        }
    }
    for (i, rec) in records.iter().enumerate() {
        let v = rec.get("v").and_then(Value::as_u64).unwrap_or(1);
        if v > SCHEMA_VERSION {
            return Err(format!(
                "{path}:{}: journal schema v{v} is newer than this build reads (v{SCHEMA_VERSION}); \
                 upgrade harpo to analyze it",
                i + 1
            ));
        }
    }
    Ok(Input::Journal(records))
}

/// Renders the full Markdown report for a set of `(path, content)`
/// inputs. Pure: same bytes in, same bytes out.
pub fn render(inputs: &[(String, String)]) -> Result<String, String> {
    let mut out = String::new();
    out.push_str("# Harpocrates run report\n\n");
    out.push_str("Inputs:\n");
    for (path, _) in inputs {
        let _ = writeln!(out, "- `{path}`");
    }
    out.push('\n');
    for (path, content) in inputs {
        match classify(path, content)? {
            Input::Journal(records) => render_journal(&mut out, path, &records),
            Input::Bench(fields) => render_bench(&mut out, path, &fields),
        }
    }
    Ok(out)
}

fn render_journal(out: &mut String, path: &str, records: &[Value]) {
    let _ = writeln!(out, "## Journal `{path}`\n");
    let of = |kind: &str| -> Vec<&Value> {
        records
            .iter()
            .filter(|r| r.get("kind").and_then(Value::as_str) == Some(kind))
            .collect()
    };
    let summaries = of("summary");
    let iterations = of("iteration");
    let campaigns = of("campaign");
    let autopsies = of("autopsy");
    let heatmaps = of("heatmap");
    let progress = of("progress");
    let beats = of("heartbeat");
    let stalls = of("stall");
    let cursors = of("cursor");
    let runs = of("run");
    let profiles = of("profile");
    let costs = of("cost");

    if let Some(s) = summaries.first() {
        render_summary(out, s);
    }
    if !iterations.is_empty() {
        render_convergence(out, &iterations);
    }
    if let Some(e) = of("operator_efficacy").first() {
        render_efficacy(out, e);
    }
    if let Some(s) = summaries.first() {
        render_stages(out, s);
        render_cache(out, s);
    }
    if !campaigns.is_empty() {
        render_campaigns(out, &campaigns);
    }
    // Cost attribution (schema v6): `cost` records plus the hottest
    // span from the latest `profile` record per thread.
    if !costs.is_empty() || !profiles.is_empty() {
        render_cost_section(out, &profiles, &costs, &campaigns);
    }
    if !autopsies.is_empty() || !heatmaps.is_empty() {
        render_forensics(out, &autopsies, &heatmaps);
    }
    if !progress.is_empty() || !beats.is_empty() || !stalls.is_empty() || !cursors.is_empty() {
        render_liveness(out, &progress, &beats, &stalls, &cursors);
    }
    // A run-archive index (see `harpo archive`) embeds its trend tables.
    if !runs.is_empty() {
        crate::archive::render_history(out, &runs);
    }
    if summaries.is_empty()
        && iterations.is_empty()
        && campaigns.is_empty()
        && autopsies.is_empty()
        && heatmaps.is_empty()
        && progress.is_empty()
        && beats.is_empty()
        && stalls.is_empty()
        && cursors.is_empty()
        && runs.is_empty()
        && profiles.is_empty()
        && costs.is_empty()
    {
        let _ = writeln!(
            out,
            "_No summary, iteration or campaign records — nothing to analyze._\n"
        );
    }
}

fn u(v: Option<&Value>) -> u64 {
    v.and_then(Value::as_u64).unwrap_or(0)
}

fn f(v: Option<&Value>) -> f64 {
    v.and_then(Value::as_f64).unwrap_or(0.0)
}

fn render_summary(out: &mut String, s: &Value) {
    out.push_str("### Run summary\n\n");
    out.push_str("| quantity | value |\n|---|---|\n");
    let _ = writeln!(out, "| iterations | {} |", u(s.get("iterations")));
    let _ = writeln!(
        out,
        "| champion coverage | {} |",
        fmt_pct(f(s.get("champion_coverage")))
    );
    let _ = writeln!(
        out,
        "| programs evaluated | {} |",
        u(s.get("programs_evaluated"))
    );
    let _ = writeln!(
        out,
        "| instructions processed | {} |",
        u(s.get("instructions_processed"))
    );
    let _ = writeln!(
        out,
        "| loop throughput | {:.0} inst/s |",
        f(s.get("insts_per_sec"))
    );
    let _ = writeln!(out, "| wall clock | {} |", fmt_ns(u(s.get("total_ns"))));
    out.push('\n');
}

/// Convergence table (downsampled to at most this many rows) plus
/// plateau detection over the champion trajectory.
const MAX_CONVERGENCE_ROWS: usize = 60;

fn render_convergence(out: &mut String, iterations: &[&Value]) {
    out.push_str("### Convergence\n\n");
    out.push_str("| round | best | champion | kth | new survivors |\n|---|---|---|---|---|\n");
    let stride = iterations.len().div_ceil(MAX_CONVERGENCE_ROWS).max(1);
    for (i, rec) in iterations.iter().enumerate() {
        if i % stride != 0 && i != iterations.len() - 1 {
            continue;
        }
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} |",
            u(rec.get("iter")),
            fmt_pct(f(rec.get("best"))),
            fmt_pct(f(rec.get("champion"))),
            fmt_pct(f(rec.get("kth"))),
            u(rec.get("new_survivors")),
        );
    }
    if stride > 1 {
        let _ = writeln!(
            out,
            "\n_{} rounds, showing every {stride}th (plus the last)._",
            iterations.len()
        );
    }
    out.push('\n');

    // Plateau detection: the last round where the champion improved.
    const EPS: f64 = 1e-12;
    let mut best_so_far = f64::NEG_INFINITY;
    let mut last_improvement = 0u64;
    for rec in iterations {
        let c = f(rec.get("champion"));
        if c > best_so_far + EPS {
            best_so_far = c;
            last_improvement = u(rec.get("iter"));
        }
    }
    let final_round = u(iterations.last().unwrap().get("iter"));
    let idle = final_round.saturating_sub(last_improvement);
    if idle == 0 {
        out.push_str(
            "Champion still improving in the final round — the run had not converged.\n\n",
        );
    } else {
        let _ = writeln!(
            out,
            "Champion plateaued after round {last_improvement}: no improvement in the final {idle} round(s).\n"
        );
    }
}

fn render_efficacy(out: &mut String, e: &Value) {
    let Some(ops) = e.get("operators").and_then(Value::as_arr) else {
        return;
    };
    out.push_str("### Operator efficacy\n\n");
    out.push_str("Ranked by realized coverage gain (survivors' coverage delta vs parent):\n\n");
    out.push_str(
        "| rank | operator | offspring | survivors | survival | realized gain | mean Δ | max Δ |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for (i, op) in ops.iter().enumerate() {
        let offspring = u(op.get("offspring"));
        let survivors = u(op.get("survivors"));
        let survival = if offspring == 0 {
            0.0
        } else {
            survivors as f64 / offspring as f64
        };
        let _ = writeln!(
            out,
            "| {} | `{}` | {} | {} | {} | {:+.6} | {:+.6} | {:+.6} |",
            i + 1,
            op.get("operator").and_then(Value::as_str).unwrap_or("?"),
            offspring,
            survivors,
            fmt_pct(survival),
            f(op.get("realized_gain")),
            f(op.get("mean_delta")),
            f(op.get("max_delta")),
        );
    }
    out.push('\n');
}

/// The loop stages, in pipeline order, as `(summary field, label)`.
const STAGES: [(&str, &str); 4] = [
    ("generation_ns", "generation"),
    ("mutation_ns", "mutation"),
    ("compilation_ns", "compilation"),
    ("evaluation_ns", "evaluation"),
];

fn render_stages(out: &mut String, s: &Value) {
    let total = u(s.get("total_ns"));
    if total == 0 {
        return;
    }
    out.push_str("### Stage wall clock\n\n");
    out.push_str("```\n");
    let _ = writeln!(out, "total {:>14}", fmt_ns(total));
    let counters = s.get("counters");
    for (i, (field, label)) in STAGES.iter().enumerate() {
        let ns = u(s.get(field));
        let branch = if i == STAGES.len() - 1 {
            "└─"
        } else {
            "├─"
        };
        let _ = write!(
            out,
            "{branch} {label:<12} {:>10}  {:>5}",
            fmt_ns(ns),
            fmt_pct(ns as f64 / total as f64)
        );
        // Per-iteration latency percentiles from the stage histogram.
        let hist = counters.and_then(|c| c.get(&format!("engine.stage.{field}")));
        if let Some(h) = hist {
            let _ = write!(
                out,
                "  per-iter p50 {} / p90 {} / p99 {}",
                fmt_ns(u(h.get("p50"))),
                fmt_ns(u(h.get("p90"))),
                fmt_ns(u(h.get("p99"))),
            );
        }
        out.push('\n');
    }
    out.push_str("```\n\n");
    if let Some(h) = counters.and_then(|c| c.get("evaluator.simulate_ns")) {
        let _ = writeln!(
            out,
            "Per-program simulate latency: p50 {} / p90 {} / p99 {} (max {}, {} simulations).\n",
            fmt_ns(u(h.get("p50"))),
            fmt_ns(u(h.get("p90"))),
            fmt_ns(u(h.get("p99"))),
            fmt_ns(u(h.get("max"))),
            u(h.get("count")),
        );
    }
}

fn render_cache(out: &mut String, s: &Value) {
    let hits = u(s.get("cache_hits"));
    let misses = u(s.get("cache_misses"));
    let counters = s.get("counters");
    out.push_str("### Cache and stalls\n\n");
    out.push_str("| counter | value |\n|---|---|\n");
    let lookups = hits + misses;
    let rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    let _ = writeln!(
        out,
        "| memo-cache hit rate | {} ({hits} of {lookups}) |",
        fmt_pct(rate)
    );
    if let Some(c) = counters {
        let insts = u(c.get("uarch.insts"));
        let stalls = u(c.get("uarch.dispatch_stalls"));
        if insts > 0 {
            let _ = writeln!(
                out,
                "| dispatch stalls | {stalls} ({:.2} per kilo-inst) |",
                stalls as f64 * 1000.0 / insts as f64
            );
        }
        for (key, label) in [
            ("evaluator.steals", "work-steal events"),
            ("evaluator.traps", "trapped programs"),
        ] {
            if let Some(v) = c.get(key).and_then(Value::as_u64) {
                let _ = writeln!(out, "| {label} | {v} |");
            }
        }
    }
    out.push('\n');
}

fn render_campaigns(out: &mut String, campaigns: &[&Value]) {
    out.push_str("### Fault-injection campaigns\n\n");
    out.push_str(
        "| program | structure | coverage | detection | faults | replays | replay savings | checkpoint hits | early exits |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for c in campaigns {
        let executed = u(c.get("replay_insts"));
        let skipped = u(c.get("replay_insts_skipped"));
        let savings = if executed + skipped == 0 {
            0.0
        } else {
            skipped as f64 / (executed + skipped) as f64
        };
        let _ = writeln!(
            out,
            "| `{}` | {} | {} | {} | {} | {} | {} | {} | {} |",
            c.get("program").and_then(Value::as_str).unwrap_or("?"),
            c.get("structure").and_then(Value::as_str).unwrap_or("?"),
            fmt_pct(f(c.get("coverage"))),
            fmt_pct(f(c.get("detection"))),
            u(c.get("faults")),
            u(c.get("replays")),
            fmt_pct(savings),
            u(c.get("checkpoint_hits")),
            u(c.get("early_exits")),
        );
    }
    out.push('\n');
    for c in campaigns {
        let Some(h) = c.get("counters").and_then(|m| m.get("faultsim.replay_len")) else {
            continue;
        };
        if u(h.get("count")) == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "Replay length (`{}`): p50 {} / p90 {} / p99 {} insts (max {}, {} replays).",
            c.get("program").and_then(Value::as_str).unwrap_or("?"),
            u(h.get("p50")),
            u(h.get("p90")),
            u(h.get("p99")),
            u(h.get("max")),
            u(h.get("count")),
        );
    }
    out.push('\n');
}

/// Cost attribution (schema v6): where the campaign's cycles went.
/// The per-fault-class replay cost matrix and journalled netlist
/// compile times come from `cost` records (rendered by the shared
/// `harpo profile` helper); the hotspot summary keeps one line per
/// thread — the full table is `harpo profile`'s job.
fn render_cost_section(
    out: &mut String,
    profiles: &[&Value],
    costs: &[&Value],
    campaigns: &[&Value],
) {
    crate::profile::render_cost(out, "### Cost attribution", costs, campaigns);
    let latest = harpo_telemetry::latest_profiles(profiles);
    let mut lines = Vec::new();
    for rec in latest {
        if let Some((stack, self_ns)) = harpo_telemetry::hottest_frame(rec) {
            lines.push(format!(
                "- {}/t{}: hottest span `{stack}` ({} self time)",
                rec.get("source").and_then(Value::as_str).unwrap_or("?"),
                u(rec.get("thread")),
                fmt_ns(self_ns),
            ));
        }
    }
    if !lines.is_empty() {
        if costs.is_empty() {
            // `render_cost` had nothing to head the section with.
            out.push_str("### Cost attribution\n\n");
        }
        out.push_str(
            "Hottest span per profiled thread (see `harpo profile` for the full table):\n\n",
        );
        for line in &lines {
            let _ = writeln!(out, "{line}");
        }
        out.push('\n');
    }
}

/// Masking-mechanism labels in the fixed presentation order (matches
/// `harpo_cli::autopsy::MECHANISMS`); rendering works on parsed JSON, so
/// the order is pinned here rather than derived from input order.
pub(crate) const MECHANISM_LABELS: [&str; 6] = [
    "overwrite",
    "logical",
    "reconverged",
    "corrected",
    "signature",
    "trap",
];

/// How many never-detected bits to show per structure.
const MAX_BLIND_BITS: usize = 5;

fn render_forensics(out: &mut String, autopsies: &[&Value], heatmaps: &[&Value]) {
    out.push_str("### Fault forensics\n\n");
    if !autopsies.is_empty() {
        out.push_str("| masking mechanism | faults | share |\n|---|---|---|\n");
        for label in MECHANISM_LABELS {
            let n = autopsies
                .iter()
                .filter(|a| a.get("mechanism").and_then(Value::as_str) == Some(label))
                .count();
            if n > 0 {
                let _ = writeln!(
                    out,
                    "| {label} | {n} | {} |",
                    fmt_pct(n as f64 / autopsies.len() as f64)
                );
            }
        }
        out.push('\n');
        let mut lat: Vec<u64> = autopsies
            .iter()
            .filter(|a| {
                matches!(
                    a.get("outcome").and_then(Value::as_str),
                    Some("sdc") | Some("crash")
                )
            })
            .map(|a| u(a.get("detection_latency")))
            .collect();
        lat.sort_unstable();
        if !lat.is_empty() {
            let p = |num: u64| lat[((lat.len() - 1) as u64 * num / 100) as usize];
            let _ = writeln!(
                out,
                "Detection latency: p50 {} / p90 {} / p99 {} insts ({} detected of {}).\n",
                p(50),
                p(90),
                p(99),
                lat.len(),
                autopsies.len(),
            );
        }
    }
    // Blind spots: faulted bits that were never detected, per structure,
    // with the ACE-residency overlay for context.
    let mut blind_header = false;
    for h in heatmaps {
        let Ok(map) = harpo_faultsim::StructureHeatmap::from_value(h) else {
            continue;
        };
        let blind = map.never_detected();
        if blind.is_empty() {
            continue;
        }
        if !blind_header {
            out.push_str(
                "| structure | bit | faults (0 detected) | ACE bit-cycles |\n|---|---|---|---|\n",
            );
            blind_header = true;
        }
        for &(bit, faults) in blind.iter().take(MAX_BLIND_BITS) {
            let ace = map.ace.get(bit).copied().unwrap_or(0);
            let _ = writeln!(out, "| {} | {bit} | {faults} | {ace} |", map.structure);
        }
        if blind.len() > MAX_BLIND_BITS {
            let _ = writeln!(
                out,
                "| {} | … | {} more never-detected bit(s) | |",
                map.structure,
                blind.len() - MAX_BLIND_BITS
            );
        }
    }
    if blind_header {
        out.push('\n');
    } else if !heatmaps.is_empty() {
        out.push_str("No never-detected bits — every faulted bit was detected at least once.\n\n");
    }
}

/// Run liveness: what the schema-v4 streaming records (`progress`,
/// `heartbeat`, `stall`, `cursor`) say about how the run behaved while
/// it was alive — time to first SDC, worker utilization, stalls the
/// watchdog flagged, and the resume cursor if a wall-clock budget cut
/// the run short.
fn render_liveness(
    out: &mut String,
    progress: &[&Value],
    beats: &[&Value],
    stalls: &[&Value],
    cursors: &[&Value],
) {
    out.push_str("### Run liveness\n\n");
    if let Some(last) = progress.last() {
        out.push_str("| quantity | value |\n|---|---|\n");
        let _ = writeln!(
            out,
            "| units graded | {} / {} |",
            u(last.get("done")),
            u(last.get("total"))
        );
        if let Some(rate) = last.get("units_per_sec").and_then(Value::as_f64) {
            let _ = writeln!(out, "| live throughput | {rate:.1} units/s |");
        }
        let _ = writeln!(
            out,
            "| streamed wall clock | {} |",
            fmt_ns(u(last.get("elapsed_ns")))
        );
        let first_sdc = progress.iter().find(|p| u(p.get("sdc")) > 0);
        match first_sdc {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "| time to first SDC | {} (≤ {} units in) |",
                    fmt_ns(u(p.get("elapsed_ns"))),
                    u(p.get("done"))
                );
            }
            None => {
                let _ = writeln!(out, "| time to first SDC | never (no SDC observed) |");
            }
        }
        let _ = writeln!(out, "| progress ticks | {} |", progress.len());
        out.push('\n');
    }

    // Worker utilization from the latest heartbeat per (source, worker):
    // how evenly the fault units spread across the pool.
    let mut latest: std::collections::BTreeMap<(String, u64), u64> =
        std::collections::BTreeMap::new();
    for b in beats {
        let key = (
            b.get("source")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            u(b.get("worker")),
        );
        latest.insert(key, u(b.get("units")));
    }
    if !latest.is_empty() {
        let total: u64 = latest.values().sum();
        out.push_str("Worker utilization (from final heartbeats):\n\n");
        out.push_str("| worker | units graded | share |\n|---|---|---|\n");
        for ((source, worker), units) in &latest {
            let share = if total == 0 {
                0.0
            } else {
                *units as f64 / total as f64
            };
            let _ = writeln!(out, "| {source} w{worker} | {units} | {} |", fmt_pct(share));
        }
        out.push('\n');
    }

    if stalls.is_empty() {
        out.push_str("No stalls observed.\n\n");
    } else {
        let _ = writeln!(
            out,
            "**{} stall(s) flagged by the watchdog:**\n",
            stalls.len()
        );
        for st in stalls {
            let _ = writeln!(
                out,
                "- worker {} silent {} ms at fault {} ({} · `{}`)",
                u(st.get("worker")),
                u(st.get("silent_ms")),
                u(st.get("fault")),
                st.get("structure").and_then(Value::as_str).unwrap_or("?"),
                st.get("program").and_then(Value::as_str).unwrap_or("?"),
            );
        }
        out.push('\n');
    }

    for c in cursors {
        let _ = writeln!(
            out,
            "Budget-stopped at {} / {} units — resumable cursor journalled \
             (stride {}).\n",
            u(c.get("completed")),
            u(c.get("total")),
            u(c.get("stride")),
        );
    }
}

fn render_bench(out: &mut String, path: &str, fields: &[(String, Value)]) {
    let _ = writeln!(out, "## Benchmarks `{path}`\n");
    out.push_str("| benchmark | value |\n|---|---|\n");
    for (key, v) in fields {
        let rendered = match v {
            Value::U64(ns) if !key.contains("speedup") => fmt_ns(*ns),
            _ => match v.as_f64() {
                Some(x) if key.contains("speedup") => format!("{x:.3}×"),
                Some(x) => format!("{x}"),
                None => v.to_json(),
            },
        };
        let _ = writeln!(out, "| `{key}` | {rendered} |");
    }
    out.push('\n');
}

/// Formats nanoseconds with a readable unit. Deterministic (fixed
/// precision), so reports are stable byte-for-byte.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal() -> String {
        [
            r#"{"kind":"run_start","v":2,"structure":"int-adder"}"#,
            r#"{"kind":"iteration","v":2,"iter":0,"evaluated":8,"best":0.10,"mean":0.05,"champion":0.10,"kth":0.08,"new_survivors":2,"generation_ns":1000,"mutation_ns":0,"compilation_ns":500,"evaluation_ns":9000}"#,
            r#"{"kind":"lineage","v":2,"iter":1,"operator":"replace-all","offspring":8,"survivors":1,"delta_mean":0.001,"delta_max":0.02,"realized_gain":0.02}"#,
            r#"{"kind":"iteration","v":2,"iter":1,"evaluated":8,"best":0.12,"mean":0.06,"champion":0.12,"kth":0.09,"new_survivors":1,"generation_ns":0,"mutation_ns":800,"compilation_ns":480,"evaluation_ns":8800}"#,
            r#"{"kind":"iteration","v":2,"iter":2,"evaluated":8,"best":0.12,"mean":0.07,"champion":0.12,"kth":0.10,"new_survivors":0,"generation_ns":0,"mutation_ns":790,"compilation_ns":475,"evaluation_ns":8700}"#,
            r#"{"kind":"operator_efficacy","v":2,"operators":[{"operator":"replace-all","offspring":16,"survivors":1,"realized_gain":0.02,"mean_delta":0.001,"max_delta":0.02}]}"#,
            r#"{"kind":"summary","v":2,"iterations":2,"champion_coverage":0.12,"programs_evaluated":24,"cache_hits":3,"cache_misses":21,"instructions_processed":4800,"insts_per_sec":100000.0,"generation_ns":1000,"mutation_ns":1590,"compilation_ns":1455,"evaluation_ns":26500,"total_ns":31000,"counters":{"engine.stage.evaluation_ns":{"count":3,"sum":26500,"max":9000,"mean":8833.3,"p50":8191,"p90":8191,"p99":8191},"evaluator.simulate_ns":{"count":24,"sum":26000,"max":2000,"mean":1083.3,"p50":1023,"p90":2000,"p99":2000},"uarch.insts":4800,"uarch.dispatch_stalls":240,"evaluator.steals":2,"evaluator.traps":0}}"#,
        ]
        .join("\n")
    }

    fn render_one(name: &str, content: &str) -> String {
        render(&[(name.to_string(), content.to_string())]).unwrap()
    }

    #[test]
    fn journal_renders_every_section() {
        let md = render_one("run.jsonl", &journal());
        for heading in [
            "### Run summary",
            "### Convergence",
            "### Operator efficacy",
            "### Stage wall clock",
            "### Cache and stalls",
        ] {
            assert!(md.contains(heading), "missing {heading}:\n{md}");
        }
        assert!(md.contains("| 1 | `replace-all` | 16 | 1 |"));
        assert!(md.contains("memo-cache hit rate | 12.50% (3 of 24)"));
        assert!(md.contains("Champion plateaued after round 1"));
        assert!(md.contains("Per-program simulate latency"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_one("run.jsonl", &journal());
        let b = render_one("run.jsonl", &journal());
        assert_eq!(a, b);
    }

    #[test]
    fn unversioned_records_are_v1_and_accepted() {
        let md = render_one(
            "old.jsonl",
            r#"{"kind":"summary","iterations":1,"champion_coverage":0.5,"total_ns":10}"#,
        );
        assert!(md.contains("### Run summary"));
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let future = format!(r#"{{"kind":"summary","v":{}}}"#, SCHEMA_VERSION + 1);
        let err = render(&[("f.jsonl".to_string(), future)]).unwrap_err();
        assert!(err.contains("newer"), "{err}");
        assert!(err.contains("f.jsonl:1"), "{err}");
    }

    #[test]
    fn bench_snapshots_render_as_a_table() {
        let md = render_one(
            "BENCH_pipeline.json",
            r#"{"evaluate_population_64x300_t4":4337046,"population_speedup_t4":2.318577898412883}"#,
        );
        assert!(md.contains("## Benchmarks `BENCH_pipeline.json`"));
        assert!(md.contains("| `evaluate_population_64x300_t4` | 4.34 ms |"));
        assert!(md.contains("| `population_speedup_t4` | 2.319× |"));
    }

    #[test]
    fn campaign_journals_report_replay_savings() {
        let md = render_one(
            "grade.jsonl",
            r#"{"kind":"campaign","v":2,"program":"t0","structure":"irf","coverage":0.8,"detection":0.7,"faults":128,"sdc":60,"crash":30,"masked":38,"masked_fast_path":10,"replays":100,"replay_insts":5000,"replay_insts_skipped":5000,"checkpoint_hits":40,"early_exits":25,"counters":{"faultsim.replay_len":{"count":100,"sum":5000,"max":400,"mean":50.0,"p50":63,"p90":255,"p99":400}}}"#,
        );
        assert!(md.contains("### Fault-injection campaigns"));
        assert!(md.contains("| `t0` | irf | 80.00% | 70.00% | 128 | 100 | 50.00% | 40 | 25 |"));
        assert!(md.contains("Replay length (`t0`): p50 63 / p90 255 / p99 400 insts"));
    }

    #[test]
    fn long_runs_downsample_the_convergence_table() {
        let mut lines = Vec::new();
        for i in 0..300 {
            lines.push(format!(
                r#"{{"kind":"iteration","v":2,"iter":{i},"best":0.1,"mean":0.05,"champion":0.1,"kth":0.05,"new_survivors":0,"generation_ns":0,"mutation_ns":0,"compilation_ns":0,"evaluation_ns":0}}"#
            ));
        }
        let md = render_one("big.jsonl", &lines.join("\n"));
        let rows = md.lines().filter(|l| l.starts_with("| 2")).count();
        assert!(md.contains("300 rounds, showing every 5th"));
        // Last round always present even if off-stride.
        assert!(md.contains("| 299 | "));
        assert!(rows < 70);
    }

    #[test]
    fn empty_and_garbage_inputs_error_with_the_path() {
        assert!(render(&[("e.jsonl".into(), String::new())])
            .unwrap_err()
            .contains("e.jsonl"));
        assert!(render(&[("g.jsonl".into(), "not json".into())])
            .unwrap_err()
            .contains("g.jsonl:1"));
        // A multi-line file with no journal records is neither format.
        assert!(render(&[("m.json".into(), "{\"a\":1}\n{\"b\":2}".into())])
            .unwrap_err()
            .contains("m.json"));
    }

    fn forensics_journal() -> String {
        [
            r#"{"kind":"autopsy","v":3,"fault":0,"worker":0,"structure":"irf","bit":5,"outcome":"sdc","mechanism":"signature","site":"register","site_detail":"rax","injected_cycle":10,"injected_dyn":4,"propagation_insts":40,"detection_latency":40}"#,
            r#"{"kind":"autopsy","v":3,"fault":1,"worker":1,"structure":"irf","bit":63,"outcome":"masked","mechanism":"overwrite","site":"none","site_detail":"","injected_cycle":2,"injected_dyn":0,"propagation_insts":0,"detection_latency":0}"#,
            r#"{"kind":"autopsy","v":3,"fault":2,"worker":0,"structure":"irf","bit":63,"outcome":"crash","mechanism":"trap","site":"memory","site_detail":"0x40","injected_cycle":7,"injected_dyn":3,"propagation_insts":12,"detection_latency":12}"#,
            r#"{"kind":"heatmap","v":3,"structure":"irf","bits":3,"sdc":[1,0,0],"crash":[0,0,1],"masked":[0,3,0],"corrected":[0,0,0],"ace":[100,70,9]}"#,
        ]
        .join("\n")
    }

    #[test]
    fn forensics_journals_render_the_autopsy_section() {
        let md = render_one("autopsy.jsonl", &forensics_journal());
        assert!(md.contains("### Fault forensics"), "{md}");
        assert!(md.contains("| signature | 1 | 33.33% |"), "{md}");
        assert!(md.contains("| overwrite | 1 | 33.33% |"), "{md}");
        assert!(
            md.contains("Detection latency: p50 12 / p90 12 / p99 12 insts (2 detected of 3)."),
            "{md}"
        );
        // Bit 1 was faulted three times, never detected, with 70 ACE
        // bit-cycles — the heatmap's blind spot.
        assert!(md.contains("| irf | 1 | 3 | 70 |"), "{md}");
        // Bits 0 and 2 were detected, so only bit 1 is listed.
        assert!(!md.contains("| irf | 0 |"), "{md}");
    }

    #[test]
    fn heatmap_records_round_trip_through_the_report() {
        // The journal's heatmap record parses back into the exact
        // StructureHeatmap that rendered it.
        let rec = forensics_journal().lines().last().unwrap().to_string();
        let v = json::parse(&rec).unwrap();
        let map = harpo_faultsim::StructureHeatmap::from_value(&v).unwrap();
        assert_eq!(map.structure, "irf");
        assert_eq!(map.bits(), 3);
        assert_eq!(map.never_detected(), vec![(1, 3)]);
        // to_value -> from_value is the identity.
        let again = harpo_faultsim::StructureHeatmap::from_value(&map.to_value()).unwrap();
        assert_eq!(again, map);
        // And the rendered report is unchanged whether the record came
        // from the journal or from the round-tripped heatmap.
        let md = render_one("a.jsonl", &forensics_journal());
        let md2 = render_one("a.jsonl", &forensics_journal());
        assert_eq!(md, md2);
    }

    #[test]
    fn fully_detected_heatmaps_say_so() {
        let md = render_one(
            "a.jsonl",
            r#"{"kind":"heatmap","v":3,"structure":"irf","bits":1,"sdc":[2],"crash":[0],"masked":[0],"corrected":[0],"ace":[5]}"#,
        );
        assert!(md.contains("No never-detected bits"), "{md}");
    }

    #[test]
    fn torn_final_journal_lines_are_tolerated() {
        // A run killed mid-write leaves a truncated last line; everything
        // before it still renders.
        let torn = format!("{}\n{}", journal(), r#"{"kind":"iteration","v":2,"it"#);
        let md = render_one("run.jsonl", &torn);
        assert!(md.contains("### Run summary"), "{md}");
        assert_eq!(md, render_one("run.jsonl", &journal()));
        // A torn line in the *middle* is still an error.
        let broken = format!("{}\nnot json\n{}", journal(), journal());
        let err = render(&[("b.jsonl".to_string(), broken)]).unwrap_err();
        assert!(err.contains("b.jsonl:8"), "{err}");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(0), "0 ns");
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 us");
        assert_eq!(fmt_ns(2_345_678), "2.35 ms");
        assert_eq!(fmt_ns(61_000_000_000), "61.00 s");
    }
}
