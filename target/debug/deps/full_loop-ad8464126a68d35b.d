/root/repo/target/debug/deps/full_loop-ad8464126a68d35b.d: tests/full_loop.rs

/root/repo/target/debug/deps/full_loop-ad8464126a68d35b: tests/full_loop.rs

tests/full_loop.rs:
