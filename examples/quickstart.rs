//! Quickstart: generate a targeted test program for the integer
//! multiplier, watch the Harpocrates loop refine it, and grade the final
//! champion with statistical fault injection.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use harpocrates::core::{presets, Evaluator, Harpocrates, Scale};
use harpocrates::coverage::TargetStructure;
use harpocrates::faultsim::{measure_detection, CampaignConfig};
use harpocrates::museqgen::Generator;
use harpocrates::uarch::OooCore;

fn main() {
    let structure = TargetStructure::IntMultiplier;
    println!("target structure: {structure}");

    // 1. Assemble the loop from its three components (paper Fig. 7):
    //    Generator + Mutator (inside the engine) + Evaluator.
    let (constraints, loop_cfg) = presets::preset(structure, Scale::Reduced);
    println!(
        "loop: population {}, top-{}, {} iterations, {}-instruction programs",
        loop_cfg.population, loop_cfg.top_k, loop_cfg.iterations, constraints.n_insts
    );
    let harpo = Harpocrates::new(
        Generator::new(constraints),
        Evaluator::new(OooCore::default(), structure),
        loop_cfg,
    );

    // 2. Run the hardware-in-the-loop refinement.
    let report = harpo.run();
    println!("\ncoverage (IBR) over sampled iterations:");
    for s in &report.samples {
        let bar = "#".repeat((s.top_coverages[0] * 400.0) as usize);
        println!(
            "  iter {:>4}  {:>7.3}%  {bar}",
            s.iteration,
            s.top_coverages[0] * 100.0
        );
    }

    // 3. Grade the champion with gate-level statistical fault injection.
    let core = OooCore::default();
    let ccfg = CampaignConfig {
        n_faults: 96,
        ..CampaignConfig::default()
    };
    let result = measure_detection(&report.champion, structure, &core, &ccfg)
        .expect("champion runs cleanly");
    println!(
        "\nchampion `{}`: coverage {:.2}%, fault detection {}",
        report.champion.name,
        report.champion_coverage * 100.0,
        result
    );
    println!(
        "generation throughput: {:.0} instructions/second",
        report.timing.instructions_per_second()
    );
}
