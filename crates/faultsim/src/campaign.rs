//! Statistical fault-injection campaigns (paper §II-E).
//!
//! A campaign measures the **fault detection capability** of one test
//! program for one target structure: inject N uniformly sampled faults,
//! grade each run against the golden output, report n/N. Faults are
//! independent, so the campaign fans out across threads; each fault uses
//! the fast-path planners of [`crate::plan`] / the activation screen of
//! [`crate::gate`] before paying for a functional replay.

use crate::autopsy::FaultAutopsy;
use crate::checkpoint::ReplayStats;
use crate::cohort::{screen_fault_cohorts, DynFates, GateVerdict};
use crate::fault::{sample_gate_faults, sample_irf_faults, sample_l1d_faults, sample_xrf_faults};
use crate::gate::{
    replay_gate_permanent_bounded, screen_fault_spans, screen_faults, ActivationSpan,
};
use crate::outcome::{CampaignResult, CostMatrix, FaultOutcome};
use crate::plan::{plan_irf, plan_l1d, plan_xrf};
use crate::replay::{replay_with_plan_bounded, ReplayCtx};
use crate::stream::{CampaignStream, StreamSettings};
use harpo_coverage::TargetStructure;
use harpo_gates::{GateFault, GradedUnit, UnitEvaluators};
use harpo_isa::exec::Trap;
use harpo_isa::program::Program;
use harpo_isa::state::Signature;
use harpo_isa::trail::GoldenTrail;
use harpo_telemetry::{FaultKey, Record, Telemetry};
use harpo_uarch::{ExecutionTrace, OooCore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Protection scheme modelled on the L1D data array (paper §II-E: "CPU
/// protection schemes like parity and ECC are considered in fault
/// injection modeling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum L1dProtection {
    /// Unprotected data array: flips propagate (the paper's evaluated
    /// configuration).
    None,
    /// SECDED ECC: single-bit transients are corrected on access.
    Secded,
}

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Faults to inject (N of the n/N statistic).
    pub n_faults: usize,
    /// RNG seed for fault sampling.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Dynamic instruction cap per replay.
    pub cap: u64,
    /// L1D protection scheme.
    pub l1d_protection: L1dProtection,
    /// Golden-trail checkpoint interval in dynamic instructions for
    /// checkpointed replay (seek to the fault, early-exit on
    /// reconvergence); `0` disables the trail and every replay runs the
    /// full prefix. Outcomes are bit-identical either way (enforced by
    /// `tests/equivalence.rs`).
    #[serde(default = "default_checkpoint_interval")]
    pub checkpoint_interval: u64,
    /// Record a per-fault [`FaultAutopsy`] alongside the aggregate
    /// tally. Off by default: campaigns in the inner refinement loop pay
    /// nothing for the instrumentation (the forensic log is never
    /// allocated), and outcomes are identical either way.
    #[serde(default)]
    pub forensics: bool,
    /// Live streaming-telemetry knobs ([`StreamSettings`]): monitor
    /// cadence, stall watchdog, wall-clock budget. Off by default
    /// (`cadence_ms == 0`); when off — or when no telemetry sink is
    /// attached — the grading hot path pays a single branch per fault
    /// unit and allocates nothing.
    #[serde(default)]
    pub stream: StreamSettings,
    /// Run gate replays on the legacy interpreted netlist engine — no
    /// fault specialization, no output memo, no cohort demotion. Off by
    /// default; benchmarks flip it on for their baseline leg. Outcomes
    /// are bit-identical either way (`tests/equivalence.rs`).
    #[serde(default)]
    pub gate_legacy: bool,
    /// Demote activated gate faults whose corruption provably never
    /// reaches live architectural state ([`crate::cohort`]) instead of
    /// replaying them. On by default; ignored when `gate_legacy` is set.
    #[serde(default = "default_true")]
    pub cohort_demotion: bool,
    /// Attribute replay wall time to each fault class and journal the
    /// per-outcome cost matrix as schema-v6 `cost` records (plus the
    /// `netlist_compile_ns` compile-scope record). Off by default: the
    /// default grading path never reads the clock per fault, and the
    /// `campaign_profile_off_speedup_t1` bench key gates that it stays
    /// that way. Outcomes are bit-identical either way — cost records
    /// are observability, never behaviour.
    #[serde(default)]
    pub profile: bool,
}

/// Serde default so configs serialised before the checkpoint trail
/// existed deserialise to the current default.
fn default_checkpoint_interval() -> u64 {
    128
}

/// Serde default for knobs that ship enabled.
#[allow(dead_code)] // referenced only from the serde(default) attribute
fn default_true() -> bool {
    true
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n_faults: 128,
            seed: 0xFA017,
            threads: 0,
            cap: 50_000_000,
            l1d_protection: L1dProtection::None,
            checkpoint_interval: default_checkpoint_interval(),
            forensics: false,
            stream: StreamSettings::default(),
            gate_legacy: false,
            cohort_demotion: true,
            profile: false,
        }
    }
}

impl CampaignConfig {
    fn effective_threads(&self) -> usize {
        harpo_telemetry::effective_threads(self.threads)
    }
}

/// The graded unit of a functional-unit structure.
///
/// # Panics
/// Panics for bit-array structures.
pub fn graded_unit_of(s: TargetStructure) -> GradedUnit {
    match s {
        TargetStructure::IntAdder => GradedUnit::IntAdder,
        TargetStructure::IntMultiplier => GradedUnit::IntMultiplier,
        TargetStructure::FpAdder => GradedUnit::FpAdder,
        TargetStructure::FpMultiplier => GradedUnit::FpMultiplier,
        other => panic!("{other} is not a functional unit"),
    }
}

/// Runs a full SFI campaign for `prog` against `structure`.
///
/// ```no_run
/// use harpo_coverage::TargetStructure;
/// use harpo_faultsim::{measure_detection, CampaignConfig};
/// use harpo_museqgen::{GenConstraints, Generator};
/// use harpo_uarch::OooCore;
///
/// # fn main() -> Result<(), harpo_isa::exec::Trap> {
/// let prog = Generator::new(GenConstraints::default()).generate(1);
/// let result = measure_detection(
///     &prog,
///     TargetStructure::IntAdder,
///     &OooCore::default(),
///     &CampaignConfig::default(),
/// )?;
/// println!("detection capability: {:.1}%", result.detection() * 100.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
/// Propagates a [`Trap`] if the *golden* run itself fails (a malformed
/// test program).
pub fn measure_detection(
    prog: &Program,
    structure: TargetStructure,
    core: &OooCore,
    ccfg: &CampaignConfig,
) -> Result<CampaignResult, Trap> {
    let sim = core.simulate(prog, ccfg.cap)?;
    Ok(measure_detection_with_golden(
        prog,
        structure,
        core,
        ccfg,
        &sim.output.signature,
        &sim.trace,
    ))
}

/// Campaign variant reusing an existing golden run (the Harpocrates loop
/// already has the trace from the coverage evaluation). Builds the
/// golden checkpoint trail itself; callers grading many structures for
/// the same program should build the trail once with
/// [`build_campaign_trail`] and use [`measure_detection_with_trail`].
pub fn measure_detection_with_golden(
    prog: &Program,
    structure: TargetStructure,
    core: &OooCore,
    ccfg: &CampaignConfig,
    golden: &Signature,
    trace: &ExecutionTrace,
) -> CampaignResult {
    let trail = build_campaign_trail(prog, ccfg);
    measure_detection_with_trail(prog, structure, core, ccfg, golden, trace, trail.as_ref())
}

/// Records the golden checkpoint trail for `prog` under `ccfg`, or
/// `None` when checkpointing is disabled (`checkpoint_interval == 0`)
/// or the golden run traps (campaigns only grade trap-free programs, so
/// the replay engine simply falls back to full replays).
pub fn build_campaign_trail(prog: &Program, ccfg: &CampaignConfig) -> Option<GoldenTrail> {
    (ccfg.checkpoint_interval > 0)
        .then(|| GoldenTrail::record(prog, ccfg.cap, ccfg.checkpoint_interval).ok())
        .flatten()
}

/// Campaign variant reusing an existing golden run *and* golden trail,
/// so the trail is recorded once per program no matter how many
/// structures are graded against it.
pub fn measure_detection_with_trail(
    prog: &Program,
    structure: TargetStructure,
    core: &OooCore,
    ccfg: &CampaignConfig,
    golden: &Signature,
    trace: &ExecutionTrace,
    trail: Option<&GoldenTrail>,
) -> CampaignResult {
    measure_detection_forensic(prog, structure, core, ccfg, golden, trace, trail).0
}

/// [`measure_detection_with_trail`] with the forensic log: when
/// [`CampaignConfig::forensics`] is on, the second element holds one
/// [`FaultAutopsy`] per injected fault, ordered by fault index (a total
/// order independent of the thread count). With forensics off it is
/// empty and the campaign runs exactly as the plain variant.
pub fn measure_detection_forensic(
    prog: &Program,
    structure: TargetStructure,
    core: &OooCore,
    ccfg: &CampaignConfig,
    golden: &Signature,
    trace: &ExecutionTrace,
    trail: Option<&GoldenTrail>,
) -> (CampaignResult, Vec<FaultAutopsy>) {
    measure_detection_streamed(
        prog,
        structure,
        core,
        ccfg,
        golden,
        trace,
        trail,
        &Telemetry::off(),
    )
}

/// Live-telemetry campaign context shared by every worker of one
/// [`parallel_tally`]: where to journal, and which (structure, program)
/// the streaming records should name.
#[derive(Clone, Copy)]
struct LiveCampaign<'a> {
    telemetry: &'a Telemetry,
    structure: &'static str,
    program: &'a str,
}

/// [`measure_detection_forensic`] with live streaming telemetry: when
/// [`CampaignConfig::stream`] asks for a cadence *and* `telemetry` has a
/// sink, a monitor thread journals schema-v4 `progress` and per-worker
/// `heartbeat` records while the campaign runs, the watchdog journals a
/// `stall` naming the exact (structure, program, fault) unit of any
/// worker silent for [`StreamSettings::stall_beats`] cadences, and the
/// wall-clock budget (if set) stops workers at the next unit boundary
/// with a resumable `cursor` record. With streaming off (either knob)
/// the campaign is bit-identical to [`measure_detection_forensic`] and
/// the hot path pays one branch per fault unit.
#[allow(clippy::too_many_arguments)]
pub fn measure_detection_streamed(
    prog: &Program,
    structure: TargetStructure,
    core: &OooCore,
    ccfg: &CampaignConfig,
    golden: &Signature,
    trace: &ExecutionTrace,
    trail: Option<&GoldenTrail>,
    telemetry: &Telemetry,
) -> (CampaignResult, Vec<FaultAutopsy>) {
    let cfg = core.config();
    let label = structure.label();
    let live = LiveCampaign {
        telemetry,
        structure: label,
        program: prog.name.as_str(),
    };
    let cycles = trace.stats.cycles;
    // Watchdog budget: a corrupted loop bound can make the faulty run
    // diverge; anything beyond a few times the golden length is graded
    // Crash (a hung CPU is a detected CPU), exactly as a fleet test
    // harness would time out. This also bounds replay cost.
    let replay_cap = ccfg.cap.min(trace.stats.insts * 4 + 10_000);
    // The program half of every stamped FaultKey: the 128-bit program
    // fingerprint (instructions + register init + memory image), so the
    // same fault site in two different programs never aliases.
    let fp_hex = format!("{:032x}", harpo_isa::fingerprint(prog));
    let mut rng = StdRng::seed_from_u64(ccfg.seed);
    let profile = ccfg.profile;
    let model = match structure {
        TargetStructure::Irf | TargetStructure::Xrf | TargetStructure::L1d => "transient",
        _ => "stuck-at",
    };
    let (result, autopsies) = match structure {
        TargetStructure::Irf => {
            let faults = sample_irf_faults(&mut rng, cfg, cycles, ccfg.n_faults);
            let (result, mut autopsies) =
                parallel_tally(ccfg, live, faults.len(), |i, res, ctx, log| {
                    let f = &faults[i];
                    let plan = plan_irf(trace, f);
                    if plan.is_empty() {
                        res.record(FaultOutcome::Masked, true);
                        if let Some(log) = log {
                            log.push(FaultAutopsy::transient_fast_path(
                                label,
                                f.bit.into(),
                                f.cycle,
                            ));
                        }
                    } else {
                        let (o, stats) = timed_replay(profile, res, || {
                            replay_with_plan_bounded(prog, &plan, golden, replay_cap, trail, ctx)
                        });
                        if let Some(log) = log {
                            log.push(FaultAutopsy::transient(
                                label,
                                f.bit.into(),
                                f.cycle,
                                &plan,
                                o,
                                &stats,
                            ));
                        }
                    }
                });
            stamp_fault_keys(&mut autopsies, label, &fp_hex, "transient", |i| {
                let f = &faults[i];
                format!("p{}.b{}.c{}", f.preg, f.bit, f.cycle)
            });
            (result, autopsies)
        }
        TargetStructure::Xrf => {
            let faults = sample_xrf_faults(&mut rng, cfg, cycles, ccfg.n_faults);
            let (result, mut autopsies) =
                parallel_tally(ccfg, live, faults.len(), |i, res, ctx, log| {
                    let f = &faults[i];
                    let plan = plan_xrf(trace, f);
                    if plan.is_empty() {
                        res.record(FaultOutcome::Masked, true);
                        if let Some(log) = log {
                            log.push(FaultAutopsy::transient_fast_path(
                                label,
                                f.bit.into(),
                                f.cycle,
                            ));
                        }
                    } else {
                        let (o, stats) = timed_replay(profile, res, || {
                            replay_with_plan_bounded(prog, &plan, golden, replay_cap, trail, ctx)
                        });
                        if let Some(log) = log {
                            log.push(FaultAutopsy::transient(
                                label,
                                f.bit.into(),
                                f.cycle,
                                &plan,
                                o,
                                &stats,
                            ));
                        }
                    }
                });
            stamp_fault_keys(&mut autopsies, label, &fp_hex, "transient", |i| {
                let f = &faults[i];
                format!("p{}.b{}.c{}", f.preg, f.bit, f.cycle)
            });
            (result, autopsies)
        }
        TargetStructure::L1d => {
            let faults = sample_l1d_faults(&mut rng, cfg, cycles, ccfg.n_faults);
            let (result, mut autopsies) =
                parallel_tally(ccfg, live, faults.len(), |i, res, ctx, log| {
                    let f = &faults[i];
                    let plan = plan_l1d(trace, cfg, f);
                    if plan.is_empty() {
                        res.record(FaultOutcome::Masked, true);
                        if let Some(log) = log {
                            log.push(FaultAutopsy::transient_fast_path(
                                label,
                                f.bit.into(),
                                f.cycle,
                            ));
                        }
                    } else if ccfg.l1d_protection == L1dProtection::Secded {
                        // SECDED corrects the single flipped bit at the first
                        // access — the consumer never sees corrupted data.
                        res.record(FaultOutcome::Corrected, true);
                        if let Some(log) = log {
                            log.push(FaultAutopsy::corrected(label, f.bit.into(), f.cycle, &plan));
                        }
                    } else {
                        let (o, stats) = timed_replay(profile, res, || {
                            replay_with_plan_bounded(prog, &plan, golden, replay_cap, trail, ctx)
                        });
                        if let Some(log) = log {
                            log.push(FaultAutopsy::transient(
                                label,
                                f.bit.into(),
                                f.cycle,
                                &plan,
                                o,
                                &stats,
                            ));
                        }
                    }
                });
            stamp_fault_keys(&mut autopsies, label, &fp_hex, "transient", |i| {
                let f = &faults[i];
                format!("s{}.w{}.b{}.c{}", f.set, f.way, f.bit, f.cycle)
            });
            (result, autopsies)
        }
        fu => {
            let unit = graded_unit_of(fu);
            let faults = sample_gate_faults(&mut rng, unit, ccfg.n_faults);
            let legacy = ccfg.gate_legacy;
            // Stage 1: activation screening in 64-fault packed batches.
            // The default pipeline fuses the outcome-cohort liveness
            // screen into the same pass, demoting activated faults whose
            // corruption provably dies before architectural state. A
            // fault with no span is exactly a never-activated fault, so
            // the fast-path tally is identical on every pipeline.
            let (mut result, mut autopsies) = if !legacy && ccfg.cohort_demotion {
                let verdicts = screen_cohorts_all(trace, unit, &faults, ccfg);
                parallel_tally(
                    ccfg,
                    live,
                    faults.len(),
                    |i, res, ctx, log| match verdicts[i] {
                        GateVerdict::Inactive => {
                            res.record(FaultOutcome::Masked, true);
                            if let Some(log) = log {
                                log.push(FaultAutopsy::gate_screened(label, faults[i].gate));
                            }
                        }
                        GateVerdict::Demoted(span) => {
                            res.record(FaultOutcome::Masked, false);
                            res.cohort_demoted += 1;
                            if let Some(log) = log {
                                log.push(FaultAutopsy::gate_demoted(
                                    label,
                                    faults[i].gate,
                                    (span.first_dyn, span.first_cycle),
                                ));
                            }
                        }
                        GateVerdict::Replay(span) => {
                            let (o, stats) = timed_replay(profile, res, || {
                                replay_gate_permanent_bounded(
                                    prog,
                                    faults[i],
                                    golden,
                                    replay_cap,
                                    trail.map(|t| (t, span)),
                                    false,
                                    ctx,
                                )
                            });
                            if let Some(log) = log {
                                log.push(FaultAutopsy::gate(
                                    label,
                                    faults[i].gate,
                                    Some((span.first_dyn, span.first_cycle)),
                                    o,
                                    &stats,
                                ));
                            }
                        }
                    },
                )
            } else {
                match trail {
                    Some(t) => {
                        let spans = screen_spans_all(trace, unit, &faults, ccfg);
                        parallel_tally(ccfg, live, faults.len(), |i, res, ctx, log| {
                            match spans[i] {
                                None => {
                                    res.record(FaultOutcome::Masked, true);
                                    if let Some(log) = log {
                                        log.push(FaultAutopsy::gate_screened(
                                            label,
                                            faults[i].gate,
                                        ));
                                    }
                                }
                                Some(span) => {
                                    let (o, stats) = timed_replay(profile, res, || {
                                        replay_gate_permanent_bounded(
                                            prog,
                                            faults[i],
                                            golden,
                                            replay_cap,
                                            Some((t, span)),
                                            legacy,
                                            ctx,
                                        )
                                    });
                                    if let Some(log) = log {
                                        log.push(FaultAutopsy::gate(
                                            label,
                                            faults[i].gate,
                                            Some((span.first_dyn, span.first_cycle)),
                                            o,
                                            &stats,
                                        ));
                                    }
                                }
                            }
                        })
                    }
                    None => {
                        let activated = screen_all(trace, unit, &faults, ccfg);
                        parallel_tally(ccfg, live, faults.len(), |i, res, ctx, log| {
                            if !activated[i] {
                                res.record(FaultOutcome::Masked, true);
                                if let Some(log) = log {
                                    log.push(FaultAutopsy::gate_screened(label, faults[i].gate));
                                }
                            } else {
                                let (o, stats) = timed_replay(profile, res, || {
                                    replay_gate_permanent_bounded(
                                        prog, faults[i], golden, replay_cap, None, legacy, ctx,
                                    )
                                });
                                if let Some(log) = log {
                                    log.push(FaultAutopsy::gate(
                                        label,
                                        faults[i].gate,
                                        None,
                                        o,
                                        &stats,
                                    ));
                                }
                            }
                        })
                    }
                }
            };
            result.screened = faults.len() as u64;
            stamp_fault_keys(&mut autopsies, label, &fp_hex, "stuck-at", |i| {
                let f = &faults[i];
                format!("g{}.sa{}", f.gate, u8::from(f.stuck_one))
            });
            (result, autopsies)
        }
    };
    if profile {
        emit_cost_records(telemetry, label, prog.name.as_str(), model, &result);
    }
    (result, autopsies)
}

/// Journals one campaign's per-outcome cost matrix as schema-v6 `cost`
/// records: one `scope:"replay"` record per non-empty outcome class
/// (faults graded, replayed instructions, replay wall time), plus one
/// `scope:"compile"` record carrying the netlist-compile wall time when
/// the campaign compiled fault-specialized circuits. Only called with
/// [`CampaignConfig::profile`] on; a run without a sink emits nothing.
fn emit_cost_records(
    telemetry: &Telemetry,
    structure: &'static str,
    program: &str,
    model: &'static str,
    result: &CampaignResult,
) {
    if !telemetry.enabled() {
        return;
    }
    for (o, cell) in CostMatrix::OUTCOMES.iter().zip(&result.cost.cells) {
        if cell.faults == 0 {
            continue;
        }
        telemetry.emit(|| {
            Record::new("cost")
                .field("scope", "replay")
                .field("structure", structure)
                .field("program", program.to_string())
                .field("model", model)
                .field("outcome", o.label())
                .field("faults", cell.faults)
                .field("replay_insts", cell.replay_insts)
                .field("replay_ns", cell.replay_ns)
        });
    }
    if result.netlist_compile_ns > 0 {
        telemetry.emit(|| {
            Record::new("cost")
                .field("scope", "compile")
                .field("structure", structure)
                .field("program", program.to_string())
                .field("model", model)
                .field("netlist_compile_ns", result.netlist_compile_ns)
        });
    }
}

/// Runs one functional replay, attributing its wall time to the
/// outcome's cost cell when profiling is on and recording the replay
/// statistics either way. The default path reads no clock: `profile`
/// costs a single branch per replay.
#[inline]
fn timed_replay(
    profile: bool,
    res: &mut CampaignResult,
    replay: impl FnOnce() -> (FaultOutcome, ReplayStats),
) -> (FaultOutcome, ReplayStats) {
    let t0 = profile.then(Instant::now);
    let (o, stats) = replay();
    if let Some(t0) = t0 {
        res.record_replay_ns(o, t0.elapsed().as_nanos() as u64);
    }
    res.record_replay_stats(o, &stats);
    (o, stats)
}

/// Stamps the stable cross-run [`FaultKey`] into each autopsy once the
/// sampled fault site is known. `site` maps a fault index (stable for a
/// fixed config — the sampler is seeded) to its structure-local
/// coordinate. A no-op with forensics off: the autopsy log is empty.
fn stamp_fault_keys(
    autopsies: &mut [FaultAutopsy],
    structure: &str,
    fp_hex: &str,
    model: &str,
    site: impl Fn(usize) -> String,
) {
    for a in autopsies.iter_mut() {
        a.key = FaultKey::new(structure, fp_hex, &site(a.fault as usize), model).render();
    }
}

fn screen_all(
    trace: &ExecutionTrace,
    unit: GradedUnit,
    faults: &[GateFault],
    ccfg: &CampaignConfig,
) -> Vec<bool> {
    screen_chunks(faults, ccfg, |c, ev| screen_faults(trace, unit, c, ev))
}

fn screen_spans_all(
    trace: &ExecutionTrace,
    unit: GradedUnit,
    faults: &[GateFault],
    ccfg: &CampaignConfig,
) -> Vec<Option<ActivationSpan>> {
    screen_chunks(faults, ccfg, |c, ev| screen_fault_spans(trace, unit, c, ev))
}

fn screen_cohorts_all(
    trace: &ExecutionTrace,
    unit: GradedUnit,
    faults: &[GateFault],
    ccfg: &CampaignConfig,
) -> Vec<GateVerdict> {
    // One liveness analysis per campaign, shared by every chunk.
    let fates = DynFates::analyze(trace, unit);
    screen_chunks(faults, ccfg, |c, ev| {
        screen_fault_cohorts(trace, unit, c, ev, &fates)
    })
}

/// Fans the packed 64-lane activation screen across threads; `screen`
/// maps one ≤64-fault chunk to one result per fault.
fn screen_chunks<T: Copy + Default + Send>(
    faults: &[GateFault],
    ccfg: &CampaignConfig,
    screen: impl Fn(&[GateFault], &mut UnitEvaluators) -> Vec<T> + Sync,
) -> Vec<T> {
    let chunks: Vec<&[GateFault]> = faults.chunks(64).collect();
    let mut out = vec![T::default(); faults.len()];
    let threads = ccfg.effective_threads().min(chunks.len().max(1));
    if threads == 1 {
        // No scope/spawn round trip on the single-thread hot path: with
        // the word-level screens a whole chunk costs less than a spawn.
        let mut ev = UnitEvaluators::new();
        for (chunk_idx, c) in chunks.iter().enumerate() {
            let r = screen(c, &mut ev);
            let base = chunk_idx * 64;
            out[base..base + r.len()].copy_from_slice(&r);
        }
        return out;
    }
    std::thread::scope(|s| {
        let screen = &screen;
        let mut handles = Vec::new();
        for (t, chunk_group) in chunks.chunks(chunks.len().div_ceil(threads)).enumerate() {
            let chunk_group: Vec<&[GateFault]> = chunk_group.to_vec();
            handles.push((
                t,
                s.spawn(move || {
                    let mut ev = UnitEvaluators::new();
                    chunk_group
                        .iter()
                        .map(|c| screen(c, &mut ev))
                        .collect::<Vec<_>>()
                }),
            ));
        }
        let per_group = chunks.len().div_ceil(threads);
        for (t, h) in handles {
            let results = h.join().expect("screen worker");
            for (j, r) in results.into_iter().enumerate() {
                let chunk_idx = t * per_group + j;
                let base = chunk_idx * 64;
                out[base..base + r.len()].copy_from_slice(&r);
            }
        }
    });
    out
}

/// Fans `n` independent fault gradings across threads and merges
/// tallies. Each worker owns one [`ReplayCtx`] so every replay it runs
/// recycles the same memory buffer; the strided index distribution is
/// kept (rather than work stealing) because tallies are merged per
/// worker and the assignment must stay deterministic.
///
/// With [`CampaignConfig::forensics`] on, each worker also keeps a local
/// autopsy log; `grade` pushes zero or more autopsies per fault, which
/// are stamped with the fault index and worker id here, merged, and
/// sorted by fault index so the log is a deterministic function of the
/// campaign alone. With forensics off the log is `None` end to end.
///
/// With [`CampaignConfig::stream`] enabled (and a telemetry sink in
/// `live`), a [`CampaignStream`] is shared with the workers — each
/// stamps its atomic slot around every unit and checks the budget stop
/// flag at unit boundaries — and a monitor thread journals the live
/// records until the last worker finishes.
fn parallel_tally(
    ccfg: &CampaignConfig,
    live: LiveCampaign<'_>,
    n: usize,
    grade: impl Fn(usize, &mut CampaignResult, &mut ReplayCtx, Option<&mut Vec<FaultAutopsy>>) + Sync,
) -> (CampaignResult, Vec<FaultAutopsy>) {
    let threads = ccfg.effective_threads().min(n.max(1));
    let forensics = ccfg.forensics;
    let stream = (ccfg.stream.enabled() && live.telemetry.enabled()).then(|| {
        CampaignStream::new(
            live.telemetry.clone(),
            ccfg.stream,
            live.structure,
            live.program,
            n,
            threads,
        )
    });
    let monitor = stream.as_ref().map(CampaignStream::monitor);
    let mut total = CampaignResult::default();
    let mut autopsies = Vec::new();
    if threads == 1 && stream.is_none() {
        // Single worker, no live monitor: grade inline. Identical
        // tallies and autopsy stamps to the one-worker scoped path,
        // minus the spawn/join round trip.
        let mut log = forensics.then(Vec::new);
        let mut ctx = ReplayCtx::new();
        for i in 0..n {
            let before = log.as_ref().map_or(0, Vec::len);
            grade(i, &mut total, &mut ctx, log.as_mut());
            if let Some(log) = &mut log {
                for a in &mut log[before..] {
                    a.fault = i as u64;
                    a.worker = 0;
                }
            }
        }
        autopsies.extend(log.into_iter().flatten());
        autopsies.sort_by_key(|a| a.fault);
        return (total, autopsies);
    }
    std::thread::scope(|s| {
        let grade = &grade;
        let stream = &stream;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mut local = CampaignResult::default();
                    let mut log = forensics.then(Vec::new);
                    let mut ctx = ReplayCtx::new();
                    let mut i = t;
                    while i < n {
                        if let Some(stream) = stream {
                            // Budget stops land on unit boundaries only,
                            // so every lane's tally is a strided prefix.
                            if stream.should_stop() {
                                break;
                            }
                            stream.begin_unit(t, i);
                        }
                        let before = log.as_ref().map_or(0, Vec::len);
                        grade(i, &mut local, &mut ctx, log.as_mut());
                        if let Some(log) = &mut log {
                            for a in &mut log[before..] {
                                a.fault = i as u64;
                                a.worker = t as u64;
                            }
                        }
                        if let Some(stream) = stream {
                            stream.finish_unit(t, &local);
                        }
                        i += threads;
                    }
                    if let Some(stream) = stream {
                        stream.finish_worker(t, i, i >= n);
                    }
                    (local, log)
                })
            })
            .collect();
        for h in handles {
            let (local, log) = h.join().expect("campaign worker");
            total.merge(&local);
            autopsies.extend(log.into_iter().flatten());
        }
    });
    if let Some(monitor) = monitor {
        monitor.finish();
    }
    autopsies.sort_by_key(|a| a.fault);
    (total, autopsies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::mem::DATA_BASE;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;

    fn small_cfg(n: usize) -> CampaignConfig {
        CampaignConfig {
            n_faults: n,
            seed: 7,
            threads: 2,
            cap: 1_000_000,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn irf_campaign_on_value_heavy_program_detects() {
        // Long-lived, output-reaching values: many IRF faults detected.
        let mut a = Asm::new("irfheavy");
        for (i, r) in [Rax, Rbx, Rcx, Rdx].iter().enumerate() {
            a.mov_ri(B64, *r, 0x1111 * (i as i32 + 1));
        }
        for _ in 0..60 {
            a.add_rr(B64, Rax, Rbx);
            a.add_rr(B64, Rbx, Rcx);
            a.add_rr(B64, Rcx, Rdx);
            a.add_rr(B64, Rdx, Rax);
        }
        a.halt();
        let p = a.finish().unwrap();
        let core = OooCore::default();
        let r = measure_detection(&p, TargetStructure::Irf, &core, &small_cfg(128)).unwrap();
        assert_eq!(r.injected, 128);
        assert!(r.detection() > 0.0, "{r}");
        assert!(r.masked_fast_path > 0, "fast path should fire");
        // Every fault either resolved on the fast path or paid a replay.
        assert_eq!(r.replays, r.injected - r.masked_fast_path);
        assert!(r.replay_insts > 0, "replays execute instructions");
    }

    #[test]
    fn l1d_campaign_runs() {
        let mut a = Asm::new("l1d");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 64);
        a.label("w");
        a.store(B64, Rsi, 0, Rcx);
        a.load(B64, Rax, Rsi, 0);
        a.add_rr(B64, Rbx, Rax);
        a.add_ri(B64, Rsi, 8);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("w");
        a.store(B64, Rsi, 0, Rbx);
        a.halt();
        let p = a.finish().unwrap();
        let core = OooCore::default();
        let r = measure_detection(&p, TargetStructure::L1d, &core, &small_cfg(96)).unwrap();
        assert_eq!(r.injected, 96);
        // Most random (set, way, bit, cycle) faults land on untouched
        // frames → masked; some land in live data.
        assert!(r.masked > 0);
    }

    #[test]
    fn adder_campaign_detects_most_stuck_faults() {
        let mut a = Asm::new("adds");
        a.mov_ri64(Rax, 0x5555_5555_5555_5555);
        a.mov_ri64(Rbx, 0x0123_4567_89AB_CDEF);
        for _ in 0..40 {
            a.add_rr(B64, Rcx, Rax);
            a.sub_rr(B64, Rcx, Rbx);
            a.add_rr(B64, Rdx, Rcx);
        }
        a.halt();
        let p = a.finish().unwrap();
        let core = OooCore::default();
        let r = measure_detection(&p, TargetStructure::IntAdder, &core, &small_cfg(96)).unwrap();
        assert!(
            r.detection() > 0.4,
            "an add/sub chain should catch many adder faults: {r}"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let mut a = Asm::new("det");
        a.mov_ri(B64, Rax, 3);
        for _ in 0..30 {
            a.add_rr(B64, Rbx, Rax);
        }
        a.halt();
        let p = a.finish().unwrap();
        let core = OooCore::default();
        let r1 = measure_detection(&p, TargetStructure::Irf, &core, &small_cfg(64)).unwrap();
        let r2 = measure_detection(&p, TargetStructure::Irf, &core, &small_cfg(64)).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn profiling_is_outcome_neutral_and_accounts_every_replay_inst() {
        use harpo_telemetry::{MemorySink, Value};
        use std::sync::Arc;

        let mut a = Asm::new("cost");
        a.mov_ri(B64, Rax, 3);
        for _ in 0..30 {
            a.add_rr(B64, Rbx, Rax);
            a.add_rr(B64, Rcx, Rbx);
        }
        a.halt();
        let p = a.finish().unwrap();
        let core = OooCore::default();
        let off = measure_detection(&p, TargetStructure::Irf, &core, &small_cfg(64)).unwrap();
        let pcfg = CampaignConfig {
            profile: true,
            ..small_cfg(64)
        };
        let sim = core.simulate(&p, pcfg.cap).unwrap();
        let mem = Arc::new(MemorySink::new());
        let trail = build_campaign_trail(&p, &pcfg);
        let (on, _) = measure_detection_streamed(
            &p,
            TargetStructure::Irf,
            &core,
            &pcfg,
            &sim.output.signature,
            &sim.trace,
            trail.as_ref(),
            &Telemetry::to(mem.clone()),
        );
        // Profiling never changes outcomes (equality already ignores
        // the wall-clock cells).
        assert_eq!(on, off);
        // Every replayed instruction lands in exactly one cost cell.
        assert!(on.replay_insts > 0);
        assert_eq!(on.cost.total_replay_insts(), on.replay_insts);
        // Replays took nonzero wall time, attributed per class.
        let timed_ns: u64 = on.cost.cells.iter().map(|c| c.replay_ns).sum();
        assert!(timed_ns > 0, "profiling on must time replays");
        // The journal carries one replay-scope cost record per
        // non-empty outcome class, restating the matrix.
        let costs = mem.records_of("cost");
        assert!(!costs.is_empty());
        let mut journalled_insts = 0;
        for rec in &costs {
            assert_eq!(rec.get("structure").unwrap().as_str(), Some("IRF"));
            assert_eq!(rec.get("model").unwrap().as_str(), Some("transient"));
            if rec.get("scope").unwrap().as_str() == Some("replay") {
                journalled_insts += rec.get("replay_insts").and_then(Value::as_u64).unwrap_or(0);
            }
        }
        assert_eq!(journalled_insts, on.replay_insts);
    }

    #[test]
    fn profile_off_emits_no_cost_records() {
        use harpo_telemetry::MemorySink;
        use std::sync::Arc;

        let mut a = Asm::new("nocost");
        a.mov_ri(B64, Rax, 3);
        for _ in 0..20 {
            a.add_rr(B64, Rbx, Rax);
        }
        a.halt();
        let p = a.finish().unwrap();
        let core = OooCore::default();
        let ccfg = small_cfg(32);
        let sim = core.simulate(&p, ccfg.cap).unwrap();
        let mem = Arc::new(MemorySink::new());
        let trail = build_campaign_trail(&p, &ccfg);
        let (r, _) = measure_detection_streamed(
            &p,
            TargetStructure::Irf,
            &core,
            &ccfg,
            &sim.output.signature,
            &sim.trace,
            trail.as_ref(),
            &Telemetry::to(mem.clone()),
        );
        assert!(mem.records_of("cost").is_empty());
        // The deterministic halves of the matrix still accumulate (they
        // restate the tallies), but no clock was read.
        assert_eq!(r.cost.total_replay_insts(), r.replay_insts);
        assert_eq!(r.cost.cells.iter().map(|c| c.replay_ns).sum::<u64>(), 0);
    }

    #[test]
    fn mul_free_program_masks_all_mul_faults() {
        let mut a = Asm::new("nomul");
        for _ in 0..50 {
            a.add_ri(B64, Rax, 3);
        }
        a.halt();
        let p = a.finish().unwrap();
        let core = OooCore::default();
        let r =
            measure_detection(&p, TargetStructure::IntMultiplier, &core, &small_cfg(64)).unwrap();
        assert_eq!(r.detection(), 0.0);
        assert_eq!(r.masked_fast_path, 64, "all resolved by screening");
        assert_eq!(r.screened, 64);
        assert_eq!(r.replays, 0, "screening avoided every replay");
        assert_eq!(r.replay_insts, 0);
    }
}
