//! Workspace-level property tests (proptest) over the core invariants:
//! encode/decode round trips, netlist/native equivalence, replay
//! neutrality and generator safety.

use harpo_gates::{fp_adder, fp_multiplier, int_adder, int_multiplier, Evaluator, FaultSet};
use harpocrates::isa::exec::Machine;
use harpocrates::isa::fu::{FuProvider, NativeFu};
use harpocrates::isa::softfp;
use harpocrates::isa::{decode_stream, encode_inst, Inst};
use harpocrates::museqgen::{GenConstraints, Generator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode == id over the whole valid-instruction domain.
    #[test]
    fn encode_decode_roundtrip(form_idx in 0usize..=10_000, a in 0u8..16, b in 0u8..16, imm: i32) {
        let cat = harpocrates::isa::form::Catalog::get();
        let form = cat.forms()[form_idx % cat.len()];
        let inst = Inst::new(form.id, a, b, imm);
        let mut bytes = Vec::new();
        encode_inst(&inst, &mut bytes);
        let back = decode_stream(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(back.len(), 1);
        prop_assert_eq!(back[0].form, inst.form);
        prop_assert_eq!(back[0].a, inst.a);
        prop_assert_eq!(back[0].b, inst.b);
    }

    /// The fault-free adder netlist is the native adder.
    #[test]
    fn adder_netlist_equals_native(x: u64, y: u64, cin: bool) {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        prop_assert_eq!(
            c.eval(&mut ev, x, y, cin, &FaultSet::none()),
            NativeFu.int_add(x, y, cin)
        );
    }

    /// The fault-free multiplier netlist is the native multiplier.
    #[test]
    fn multiplier_netlist_equals_native(x: u32, y: u32) {
        let c = int_multiplier();
        let mut ev = Evaluator::new(c.netlist());
        prop_assert_eq!(c.eval(&mut ev, x, y, &FaultSet::none()), x as u64 * y as u64);
    }

    /// The FP circuits are bit-exact against the softfp specification on
    /// arbitrary bit patterns (including NaN/Inf/denormal encodings).
    #[test]
    fn fp_netlists_equal_softfp(x: u32, y: u32) {
        let mut ev = Evaluator::new(fp_adder().netlist());
        prop_assert_eq!(fp_adder().eval(&mut ev, x, y, &FaultSet::none()), softfp::fadd(x, y));
        let mut ev = Evaluator::new(fp_multiplier().netlist());
        prop_assert_eq!(fp_multiplier().eval(&mut ev, x, y, &FaultSet::none()), softfp::fmul(x, y));
    }

    /// softfp addition is commutative (the magnitude-ordering and
    /// signed-zero rules are symmetric by construction).
    #[test]
    fn softfp_add_commutes(x: u32, y: u32) {
        prop_assume!(!softfp::is_nan(x) && !softfp::is_nan(y));
        prop_assert_eq!(softfp::fadd(x, y), softfp::fadd(y, x));
    }

    /// Every generated program runs to completion without trapping and
    /// retires exactly its static length (linearity), for arbitrary
    /// seeds.
    #[test]
    fn generated_programs_never_trap(seed: u64) {
        let gen = Generator::new(GenConstraints {
            n_insts: 300,
            ..GenConstraints::default()
        });
        let p = gen.generate(seed);
        let out = Machine::new(&p, NativeFu).run(100_000).expect("no trap");
        prop_assert_eq!(out.dyn_count, 301);
    }

    /// An empty corruption plan replays bit-identically (the fault
    /// injector's neutrality requirement).
    #[test]
    fn empty_plan_replay_is_identity(seed: u64) {
        use harpocrates::faultsim::{replay_with_plan, CorruptionPlan, FaultOutcome};
        let gen = Generator::new(GenConstraints {
            n_insts: 150,
            ..GenConstraints::default()
        });
        let p = gen.generate(seed);
        let golden = Machine::new(&p, NativeFu).run(100_000).unwrap().signature;
        prop_assert_eq!(
            replay_with_plan(&p, &CorruptionPlan::default(), &golden, 100_000),
            FaultOutcome::Masked
        );
    }

    /// Mutation preserves validity: mutants of valid programs never trap.
    #[test]
    fn mutants_never_trap(seed: u64, mseed: u64) {
        use harpocrates::museqgen::Mutator;
        let gen = Generator::new(GenConstraints {
            n_insts: 200,
            ..GenConstraints::default()
        });
        let m = Mutator::new(gen.clone());
        let p = m.mutate(&gen.generate(seed), mseed);
        Machine::new(&p, NativeFu).run(100_000).expect("mutant runs");
    }
}
