/root/repo/target/debug/deps/fig06_fpfu-56dcc87e1267c281.d: crates/bench/src/bin/fig06_fpfu.rs

/root/repo/target/debug/deps/fig06_fpfu-56dcc87e1267c281: crates/bench/src/bin/fig06_fpfu.rs

crates/bench/src/bin/fig06_fpfu.rs:
