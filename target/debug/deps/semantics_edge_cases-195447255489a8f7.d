/root/repo/target/debug/deps/semantics_edge_cases-195447255489a8f7.d: tests/semantics_edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics_edge_cases-195447255489a8f7.rmeta: tests/semantics_edge_cases.rs Cargo.toml

tests/semantics_edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
