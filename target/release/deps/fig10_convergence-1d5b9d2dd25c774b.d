/root/repo/target/release/deps/fig10_convergence-1d5b9d2dd25c774b.d: crates/bench/src/bin/fig10_convergence.rs

/root/repo/target/release/deps/fig10_convergence-1d5b9d2dd25c774b: crates/bench/src/bin/fig10_convergence.rs

crates/bench/src/bin/fig10_convergence.rs:
