/root/repo/target/release/deps/pipeline_speed-e09dcf67069fdbf6.d: crates/bench/src/bin/pipeline_speed.rs

/root/repo/target/release/deps/pipeline_speed-e09dcf67069fdbf6: crates/bench/src/bin/pipeline_speed.rs

crates/bench/src/bin/pipeline_speed.rs:
