/root/repo/target/release/deps/harpo_core-913d41149587128e.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/release/deps/libharpo_core-913d41149587128e.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/release/deps/libharpo_core-913d41149587128e.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/evaluator.rs:
crates/core/src/memo.rs:
crates/core/src/presets.rs:
