//! Table I — single loop-step duration breakdown: mutation, generation,
//! compilation, evaluation, total.
//!
//! The paper measures 13.35 s per step for 96 programs × 5K instructions
//! on a 96-thread EPYC against gem5; absolute numbers differ here (our
//! evaluation engine is far faster than gem5), but the *structure* of
//! the costs and the per-step accounting are reproduced exactly.

use harpo_bench::{write_csv, Cli, Harness};
use harpo_core::{Evaluator, Harpocrates, LoopConfig, Scale};
use harpo_coverage::TargetStructure;
use harpo_museqgen::{GenConstraints, Generator};
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("table1_loopstep", &cli);
    // Table I's configuration: 96 programs of 5K instructions.
    let (population, n_insts, iters) = match cli.scale {
        Scale::Paper => (96, 5_000, 10),
        Scale::Reduced => (24, 1_000, 6),
    };
    let h = Harpocrates::new(
        Generator::new(GenConstraints {
            n_insts,
            ..GenConstraints::default()
        }),
        Evaluator::new(OooCore::default(), TargetStructure::IntAdder),
        LoopConfig {
            population,
            top_k: population / 6,
            iterations: iters,
            sample_every: iters,
            seed: 0x7AB1,
            threads: cli.threads,
        },
    )
    .with_metrics(harness.metrics().clone());
    let r = h.run();
    let t = r.timing;
    let per = |d: std::time::Duration| d.as_secs_f64() / iters as f64;
    println!(
        "Table I — loop step breakdown ({population} programs × {n_insts} instructions, averaged over {iters} iterations)"
    );
    println!("{:<13} {:>12}", "step", "time/step");
    let rows = [
        ("Mutation", per(t.mutation)),
        ("Generation", per(t.generation)),
        ("Compilation", per(t.compilation)),
        ("Evaluation", per(t.evaluation)),
        ("Total", per(t.total)),
    ];
    let mut csv = Vec::new();
    for (name, secs) in rows {
        println!("{name:<13} {:>11.4}s", secs);
        csv.push(format!("{name},{secs:.6}"));
    }
    println!(
        "\nthroughput: {:.0} generated+evaluated instructions/second",
        t.instructions_per_second()
    );
    csv.push(format!("inst_per_sec,{:.1}", t.instructions_per_second()));
    write_csv(&cli.out_dir, "table1_loopstep.csv", "step,seconds", &csv);
    harness.finish();
}
