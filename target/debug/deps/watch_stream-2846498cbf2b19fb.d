/root/repo/target/debug/deps/watch_stream-2846498cbf2b19fb.d: crates/cli/tests/watch_stream.rs

/root/repo/target/debug/deps/watch_stream-2846498cbf2b19fb: crates/cli/tests/watch_stream.rs

crates/cli/tests/watch_stream.rs:

# env-dep:CARGO_BIN_EXE_harpo=/root/repo/target/debug/harpo
