/root/repo/target/debug/deps/campaign_speed-224c4f4b675ed9c7.d: crates/bench/src/bin/campaign_speed.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_speed-224c4f4b675ed9c7.rmeta: crates/bench/src/bin/campaign_speed.rs Cargo.toml

crates/bench/src/bin/campaign_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
