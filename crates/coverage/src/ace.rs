//! ACE lifetime analysis (paper §II-D, Fig. 3).
//!
//! A storage bit is **ACE** (Architecturally Correct Execution) during an
//! interval if a transient flip anywhere in that interval would corrupt
//! the value a later consumer reads: write→read and read→read intervals
//! are ACE, read→overwrite and read→eviction (clean) intervals are
//! un-ACE. Coverage is the fraction of ACE bit-cycles over the total
//! `bits × cycles` budget of the structure; it is a fast upper bound on
//! transient-fault detection capability and the fitness function the
//! Harpocrates loop optimises for bit-array structures (IRF and L1D).

use crate::liveness::dynamic_liveness;
use harpo_uarch::cache::LineEventKind;
use harpo_uarch::{CoreConfig, ExecutionTrace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of an ACE analysis over one structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AceReport {
    /// ACE bit-cycles accumulated.
    pub ace_bit_cycles: u64,
    /// Total bit-cycles of the structure (`bits × cycles`).
    pub total_bit_cycles: u64,
}

impl AceReport {
    /// Coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_bit_cycles == 0 {
            0.0
        } else {
            self.ace_bit_cycles as f64 / self.total_bit_cycles as f64
        }
    }
}

/// ACE lifetime analysis of the physical integer register file.
///
/// Each value instance contributes `(last_read − write) × 64` ACE
/// bit-cycles; instances never read contribute nothing (their residency
/// is un-ACE dead time). Instances holding the final architectural
/// mapping are consumed by the output checker and stay ACE to the end.
pub fn irf_ace(trace: &ExecutionTrace, cfg: &CoreConfig) -> AceReport {
    let live = dynamic_liveness(trace);
    let end = trace.stats.cycles;
    let mut ace = 0u64;
    // Exact per-bit ACE: bit b of an instance is ACE up to the last
    // *live* read whose observation mask contains b; final-mapping
    // instances are read in full by the output checker.
    for inst in &trace.reg_instances {
        if inst.live_at_end {
            ace += end.saturating_sub(inst.write_cycle) * 64;
            continue;
        }
        let mut last = [0u64; 64];
        let mut any = false;
        for r in trace.reads_of(inst) {
            if !live.get(r.dyn_idx as usize).copied().unwrap_or(false) {
                continue;
            }
            let mut m = r.obs[0];
            if m != 0 {
                any = true;
            }
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                last[b] = last[b].max(r.cycle);
            }
        }
        if any {
            for lb in last {
                ace += lb.saturating_sub(inst.write_cycle);
            }
        }
    }
    AceReport {
        ace_bit_cycles: ace,
        total_bit_cycles: cfg.irf_bits() * trace.stats.cycles,
    }
}

/// ACE lifetime analysis of the physical XMM register file — the same
/// lifetime algebra as [`irf_ace`] over 128-bit instances. This is the
/// "seventh structure" extension showing the methodology applies to any
/// structure the trace observes (paper §IV-B).
pub fn xrf_ace(trace: &ExecutionTrace, cfg: &CoreConfig) -> AceReport {
    let live = dynamic_liveness(trace);
    let end = trace.stats.cycles;
    let mut ace = 0u64;
    for inst in &trace.xmm_instances {
        if inst.live_at_end {
            ace += end.saturating_sub(inst.write_cycle) * 128;
            continue;
        }
        let mut last = [0u64; 128];
        let mut any = false;
        for r in trace.xmm_reads_of(inst) {
            if !live.get(r.dyn_idx as usize).copied().unwrap_or(false) {
                continue;
            }
            for lane in 0..2 {
                let mut m = r.obs[lane];
                if m != 0 {
                    any = true;
                }
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    last[lane * 64 + b] = last[lane * 64 + b].max(r.cycle);
                }
            }
        }
        if any {
            for lb in last {
                ace += lb.saturating_sub(inst.write_cycle);
            }
        }
    }
    AceReport {
        ace_bit_cycles: ace,
        total_bit_cycles: cfg.xrf_bits() * trace.stats.cycles,
    }
}

/// Per-bit ACE residency of the integer register file: element `b` is
/// the ACE bit-cycles accumulated by bit `b` across every physical
/// register instance, so `sum == irf_ace().ace_bit_cycles`. The fault
/// forensics heatmaps overlay this on per-bit outcome histograms: a bit
/// with high residency but no detections marks corruption the generator
/// exposes to consumers that then mask it.
pub fn irf_ace_per_bit(trace: &ExecutionTrace, _cfg: &CoreConfig) -> Vec<u64> {
    let live = dynamic_liveness(trace);
    let end = trace.stats.cycles;
    let mut per_bit = vec![0u64; 64];
    for inst in &trace.reg_instances {
        if inst.live_at_end {
            let credit = end.saturating_sub(inst.write_cycle);
            for slot in per_bit.iter_mut() {
                *slot += credit;
            }
            continue;
        }
        let mut last = [0u64; 64];
        let mut any = false;
        for r in trace.reads_of(inst) {
            if !live.get(r.dyn_idx as usize).copied().unwrap_or(false) {
                continue;
            }
            let mut m = r.obs[0];
            if m != 0 {
                any = true;
            }
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                last[b] = last[b].max(r.cycle);
            }
        }
        if any {
            for (slot, lb) in per_bit.iter_mut().zip(last) {
                *slot += lb.saturating_sub(inst.write_cycle);
            }
        }
    }
    per_bit
}

/// Per-bit ACE residency of the XMM register file (128 positions);
/// `sum == xrf_ace().ace_bit_cycles`.
pub fn xrf_ace_per_bit(trace: &ExecutionTrace, _cfg: &CoreConfig) -> Vec<u64> {
    let live = dynamic_liveness(trace);
    let end = trace.stats.cycles;
    let mut per_bit = vec![0u64; 128];
    for inst in &trace.xmm_instances {
        if inst.live_at_end {
            let credit = end.saturating_sub(inst.write_cycle);
            for slot in per_bit.iter_mut() {
                *slot += credit;
            }
            continue;
        }
        let mut last = [0u64; 128];
        let mut any = false;
        for r in trace.xmm_reads_of(inst) {
            if !live.get(r.dyn_idx as usize).copied().unwrap_or(false) {
                continue;
            }
            for lane in 0..2 {
                let mut m = r.obs[lane];
                if m != 0 {
                    any = true;
                }
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    m &= m - 1;
                    last[lane * 64 + b] = last[lane * 64 + b].max(r.cycle);
                }
            }
        }
        if any {
            for (slot, lb) in per_bit.iter_mut().zip(last) {
                *slot += lb.saturating_sub(inst.write_cycle);
            }
        }
    }
    per_bit
}

#[derive(Debug, Clone, Copy)]
enum FrameItem {
    Fill {
        cycle: u64,
    },
    Evict {
        cycle: u64,
        dirty: bool,
    },
    Access {
        cycle: u64,
        offset: u8,
        size: u8,
        is_store: bool,
    },
}

impl FrameItem {
    fn cycle(&self) -> u64 {
        match *self {
            FrameItem::Fill { cycle }
            | FrameItem::Evict { cycle, .. }
            | FrameItem::Access { cycle, .. } => cycle,
        }
    }

    /// Ordering priority at equal cycle: evict old line, fill new line,
    /// then access it.
    fn prio(&self) -> u8 {
        match self {
            FrameItem::Evict { .. } => 0,
            FrameItem::Fill { .. } => 1,
            FrameItem::Access { .. } => 2,
        }
    }
}

/// ACE lifetime analysis of the L1 data cache data array.
///
/// Per-byte rule set (first-order, as in the paper):
/// * fill → read and read → read intervals are ACE;
/// * intervals ending in a store are un-ACE (the old value dies);
/// * bytes dirty at a dirty eviction are ACE up to the eviction (the
///   value escapes to memory — conservative, ACE is an upper bound);
/// * clean residency after the last read is un-ACE.
pub fn l1d_ace(trace: &ExecutionTrace, cfg: &CoreConfig) -> AceReport {
    let line = cfg.l1d_line as usize;
    // Group events per frame, preserving insertion order for stability.
    let mut frames: HashMap<(u32, u32), Vec<FrameItem>> = HashMap::new();
    for e in &trace.line_events {
        let item = match e.kind {
            LineEventKind::Fill => FrameItem::Fill { cycle: e.cycle },
            LineEventKind::EvictClean => FrameItem::Evict {
                cycle: e.cycle,
                dirty: false,
            },
            LineEventKind::EvictDirty => FrameItem::Evict {
                cycle: e.cycle,
                dirty: true,
            },
        };
        frames.entry((e.set, e.way)).or_default().push(item);
    }
    for a in &trace.cache_accesses {
        frames
            .entry((a.set, a.way))
            .or_default()
            .push(FrameItem::Access {
                cycle: a.cycle,
                offset: (a.addr as usize % line) as u8,
                size: a.size,
                is_store: a.is_store,
            });
    }

    let mut ace = 0u64;
    let mut last_point = vec![0u64; line];
    let mut dirty = vec![false; line];
    for (_, mut items) in frames {
        items.sort_by_key(|i| (i.cycle(), i.prio()));
        let mut resident = false;
        for item in items {
            match item {
                FrameItem::Fill { cycle } => {
                    resident = true;
                    last_point.fill(cycle);
                    dirty.fill(false);
                }
                FrameItem::Evict { cycle, dirty: d } => {
                    if resident && d {
                        for b in 0..line {
                            if dirty[b] {
                                ace += cycle.saturating_sub(last_point[b]);
                            }
                        }
                    }
                    resident = false;
                }
                FrameItem::Access {
                    cycle,
                    offset,
                    size,
                    is_store,
                } => {
                    if !resident {
                        continue;
                    }
                    let lo = offset as usize;
                    let hi = (lo + size as usize).min(line);
                    for b in lo..hi {
                        if is_store {
                            dirty[b] = true;
                        } else {
                            ace += cycle.saturating_sub(last_point[b]);
                        }
                        last_point[b] = cycle;
                    }
                }
            }
        }
        // Lines still resident at program end are read back by the output
        // checker (through the cache): every byte — clean or dirty — is
        // ACE from its last access to the end.
        if resident {
            let end = trace.stats.cycles;
            for last in last_point.iter().take(line) {
                ace += end.saturating_sub(*last);
            }
        }
    }
    AceReport {
        ace_bit_cycles: ace * 8,
        total_bit_cycles: cfg.l1d_bits() * trace.stats.cycles,
    }
}

/// Per-bit ACE residency of the L1D data array along the *line offset*
/// axis: position `p = byte_in_line × 8 + bit` — the same coordinate an
/// `L1dFault` names — aggregated over every (set, way) frame. Accesses
/// are byte-granular, so the 8 bits of a byte share its ACE cycles;
/// `sum == l1d_ace().ace_bit_cycles`.
pub fn l1d_ace_per_bit(trace: &ExecutionTrace, cfg: &CoreConfig) -> Vec<u64> {
    let line = cfg.l1d_line as usize;
    let mut frames: HashMap<(u32, u32), Vec<FrameItem>> = HashMap::new();
    for e in &trace.line_events {
        let item = match e.kind {
            LineEventKind::Fill => FrameItem::Fill { cycle: e.cycle },
            LineEventKind::EvictClean => FrameItem::Evict {
                cycle: e.cycle,
                dirty: false,
            },
            LineEventKind::EvictDirty => FrameItem::Evict {
                cycle: e.cycle,
                dirty: true,
            },
        };
        frames.entry((e.set, e.way)).or_default().push(item);
    }
    for a in &trace.cache_accesses {
        frames
            .entry((a.set, a.way))
            .or_default()
            .push(FrameItem::Access {
                cycle: a.cycle,
                offset: (a.addr as usize % line) as u8,
                size: a.size,
                is_store: a.is_store,
            });
    }

    let mut per_byte = vec![0u64; line];
    let mut last_point = vec![0u64; line];
    let mut dirty = vec![false; line];
    for (_, mut items) in frames {
        items.sort_by_key(|i| (i.cycle(), i.prio()));
        let mut resident = false;
        for item in items {
            match item {
                FrameItem::Fill { cycle } => {
                    resident = true;
                    last_point.fill(cycle);
                    dirty.fill(false);
                }
                FrameItem::Evict { cycle, dirty: d } => {
                    if resident && d {
                        for b in 0..line {
                            if dirty[b] {
                                per_byte[b] += cycle.saturating_sub(last_point[b]);
                            }
                        }
                    }
                    resident = false;
                }
                FrameItem::Access {
                    cycle,
                    offset,
                    size,
                    is_store,
                } => {
                    if !resident {
                        continue;
                    }
                    let lo = offset as usize;
                    let hi = (lo + size as usize).min(line);
                    for b in lo..hi {
                        if is_store {
                            dirty[b] = true;
                        } else {
                            per_byte[b] += cycle.saturating_sub(last_point[b]);
                        }
                        last_point[b] = cycle;
                    }
                }
            }
        }
        if resident {
            let end = trace.stats.cycles;
            for (acc, last) in per_byte.iter_mut().zip(last_point.iter()).take(line) {
                *acc += end.saturating_sub(*last);
            }
        }
    }
    let mut per_bit = vec![0u64; line * 8];
    for (b, &cycles) in per_byte.iter().enumerate() {
        for slot in per_bit.iter_mut().skip(b * 8).take(8) {
            *slot += cycles;
        }
    }
    per_bit
}

/// The per-bit ACE overlay of a bit-array structure's heatmap, or `None`
/// for functional units (gate position has no residency axis).
pub fn ace_overlay_of(
    structure: crate::TargetStructure,
    trace: &ExecutionTrace,
    cfg: &CoreConfig,
) -> Option<Vec<u64>> {
    match structure {
        crate::TargetStructure::Irf => Some(irf_ace_per_bit(trace, cfg)),
        crate::TargetStructure::Xrf => Some(xrf_ace_per_bit(trace, cfg)),
        crate::TargetStructure::L1d => Some(l1d_ace_per_bit(trace, cfg)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::mem::DATA_BASE;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_uarch::OooCore;

    fn run(a: Asm) -> (ExecutionTrace, CoreConfig) {
        let p = a.finish().unwrap();
        let core = OooCore::default();
        let r = core.simulate(&p, 10_000_000).unwrap();
        (r.trace, core.config().clone())
    }

    #[test]
    fn live_values_beat_dead_values() {
        // Eight registers written once then read repeatedly: their
        // instances stay ACE for the whole run...
        const REGS: [harpo_isa::reg::Gpr; 8] = [Rbx, Rcx, Rdx, Rbp, R8, R9, R10, R11];
        let mut a = Asm::new("live");
        for (i, r) in REGS.iter().enumerate() {
            a.mov_ri(B64, *r, i as i32 + 1);
        }
        for _ in 0..40 {
            for r in REGS {
                a.add_rr(B64, Rax, r);
            }
        }
        a.halt();
        let (t_live, cfg) = run(a);
        let live = irf_ace(&t_live, &cfg).coverage();

        // ...while the same registers churned with never-read values earn
        // little beyond the shared end-state (checker-visible) credit.
        let mut a = Asm::new("dead");
        for i in 0..320 {
            a.mov_ri(B64, REGS[i % 8], i as i32);
        }
        a.halt();
        let (t_dead, cfg) = run(a);
        let dead = irf_ace(&t_dead, &cfg).coverage();
        assert!(
            live > dead + 0.03,
            "live {live:.4} must clearly beat dead {dead:.4}"
        );
    }

    #[test]
    fn irf_coverage_bounded() {
        let mut a = Asm::new("x");
        a.mov_ri(B64, Rax, 1);
        for _ in 0..50 {
            a.add_rr(B64, Rbx, Rax);
        }
        a.halt();
        let (t, cfg) = run(a);
        let r = irf_ace(&t, &cfg);
        let c = r.coverage();
        assert!((0.0..=1.0).contains(&c), "coverage {c}");
        assert!(c > 0.0);
    }

    #[test]
    fn cache_reuse_increases_ace() {
        // Repeatedly reading the same cache-resident data → long ACE
        // read-to-read chains.
        let mut a = Asm::new("reuse");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 400);
        a.label("l");
        a.load(B64, Rax, Rsi, 0);
        a.load(B64, Rbx, Rsi, 8);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let (t_reuse, cfg) = run(a);
        let reuse = l1d_ace(&t_reuse, &cfg).coverage();

        // Write-only streaming: bytes are dirty but never read; they get
        // the conservative dirty-residency credit only.
        let mut a = Asm::new("wstream");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 400);
        a.label("l");
        a.store(B8, Rsi, 0, Rax);
        a.store(B8, Rsi, 0, Rbx); // overwrite: prior byte interval un-ACE
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let (t_w, cfg) = run(a);
        let wonly = l1d_ace(&t_w, &cfg).coverage();
        assert!(reuse > 0.0);
        assert!(reuse > wonly, "reuse {reuse:.6} vs write-only {wonly:.6}");
    }

    #[test]
    fn l1d_coverage_bounded() {
        let mut a = Asm::new("b");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        for i in 0..64 {
            a.load(B64, Rax, Rsi, i * 8);
        }
        a.halt();
        let (t, cfg) = run(a);
        let c = l1d_ace(&t, &cfg).coverage();
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn empty_trace_is_zero() {
        let t = ExecutionTrace::default();
        let cfg = CoreConfig::default();
        assert_eq!(irf_ace(&t, &cfg).coverage(), 0.0);
        assert_eq!(l1d_ace(&t, &cfg).coverage(), 0.0);
    }

    #[test]
    fn per_bit_overlays_sum_to_the_aggregates() {
        // A mixed program exercising registers, narrow widths (so the
        // observation masks differ per bit) and the cache.
        let mut a = Asm::new("mix");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri64(Rax, 0x0123_4567_89AB_CDEF);
        a.mov_ri(B64, Rcx, 30);
        a.label("l");
        a.add_rr(B64, Rbx, Rax);
        a.add_rr(B8, Rdx, Rbx); // narrow read: only low bits observed
        a.store(B64, Rsi, 0, Rbx);
        a.load(B64, Rbp, Rsi, 0);
        a.add_ri(B64, Rsi, 8);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let (t, cfg) = run(a);

        let irf = irf_ace_per_bit(&t, &cfg);
        assert_eq!(irf.len(), 64);
        assert_eq!(irf.iter().sum::<u64>(), irf_ace(&t, &cfg).ace_bit_cycles);
        // Low bits are observed by the B8 reads too, so they accumulate
        // at least as much residency as nothing.
        assert!(irf.iter().any(|&x| x > 0));

        let l1d = l1d_ace_per_bit(&t, &cfg);
        assert_eq!(l1d.len(), cfg.l1d_line as usize * 8);
        assert_eq!(l1d.iter().sum::<u64>(), l1d_ace(&t, &cfg).ace_bit_cycles);

        let xrf = xrf_ace_per_bit(&t, &cfg);
        assert_eq!(xrf.len(), 128);
        assert_eq!(xrf.iter().sum::<u64>(), xrf_ace(&t, &cfg).ace_bit_cycles);
    }

    #[test]
    fn overlay_dispatch_matches_structures() {
        let t = ExecutionTrace::default();
        let cfg = CoreConfig::default();
        use crate::TargetStructure as S;
        assert_eq!(ace_overlay_of(S::Irf, &t, &cfg).unwrap().len(), 64);
        assert_eq!(ace_overlay_of(S::Xrf, &t, &cfg).unwrap().len(), 128);
        assert!(ace_overlay_of(S::L1d, &t, &cfg).is_some());
        assert!(ace_overlay_of(S::IntAdder, &t, &cfg).is_none());
    }
}
