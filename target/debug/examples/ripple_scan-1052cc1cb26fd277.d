/root/repo/target/debug/examples/ripple_scan-1052cc1cb26fd277.d: examples/ripple_scan.rs

/root/repo/target/debug/examples/ripple_scan-1052cc1cb26fd277: examples/ripple_scan.rs

examples/ripple_scan.rs:
