//! Fig. 11 — maximum and average fault detection per framework for all
//! six structures, with the Harpocrates champion included.
//!
//! Headline paper numbers this reproduces in shape: IRF ≈10× the other
//! frameworks; L1D approaching 90%; integer multiplier ≈100% vs
//! SiliFuzz's 87% best; both SSE FP units ≈99.8% vs sparse baselines.

use harpo_bench::{
    baseline_suites, print_structure_table, write_csv, Cli, GradedProgram, Harness,
    GRADE_CSV_HEADER,
};
use harpo_coverage::TargetStructure;
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("fig11_detection", &cli);
    let core = OooCore::default();
    let ccfg = cli.campaign();
    let suites = baseline_suites(cli.scale);

    let mut csv = Vec::new();
    for structure in TargetStructure::ALL {
        let mut rows = Vec::new();
        for (fw, progs) in &suites {
            rows.extend(harness.grade_suite(fw, progs, structure, &core, &ccfg));
        }
        // The Harpocrates champion for this structure.
        let report = harness.run_harpocrates(structure, cli.scale, cli.threads);
        let (coverage, detection, cycles) =
            harness.grade(&report.champion, structure, &core, &ccfg);
        rows.push(GradedProgram {
            framework: "Harpocrates",
            name: report.champion.name.clone(),
            coverage,
            detection,
            cycles,
        });
        csv.extend(print_structure_table(structure, &rows));
    }
    write_csv(&cli.out_dir, "fig11_detection.csv", GRADE_CSV_HEADER, &csv);
    harness.finish();
}
