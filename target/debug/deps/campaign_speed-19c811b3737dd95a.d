/root/repo/target/debug/deps/campaign_speed-19c811b3737dd95a.d: crates/bench/src/bin/campaign_speed.rs

/root/repo/target/debug/deps/campaign_speed-19c811b3737dd95a: crates/bench/src/bin/campaign_speed.rs

crates/bench/src/bin/campaign_speed.rs:
