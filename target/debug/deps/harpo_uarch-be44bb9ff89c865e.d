/root/repo/target/debug/deps/harpo_uarch-be44bb9ff89c865e.d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/debug/deps/libharpo_uarch-be44bb9ff89c865e.rlib: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/debug/deps/libharpo_uarch-be44bb9ff89c865e.rmeta: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

crates/uarch/src/lib.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/config.rs:
crates/uarch/src/core.rs:
crates/uarch/src/trace.rs:
