//! Live-telemetry campaign integration.
//!
//! Streaming is observability, not behaviour: a campaign with the
//! monitor attached must produce bit-identical outcome tallies, close
//! its journal with a `progress` record covering every fault, and — when
//! the wall-clock budget cuts it short — leave a resumable `cursor`
//! naming each lane's next ungraded fault. The stall watchdog's exact
//! (structure, program, fault) attribution is exercised against the
//! public [`CampaignStream`] API in `stream.rs`'s own tests; here we
//! drive the real campaign entry points end to end.
//!
//! [`CampaignStream`]: harpo_faultsim::CampaignStream

use std::sync::Arc;

use harpo_coverage::TargetStructure;
use harpo_faultsim::{
    build_campaign_trail, measure_detection_streamed, CampaignConfig, CampaignResult,
    StreamSettings,
};
use harpo_museqgen::{GenConstraints, Generator};
use harpo_telemetry::{MemorySink, Telemetry};
use harpo_uarch::OooCore;

/// Keeps the comparison on outcome tallies (same shape as
/// `equivalence.rs`): perf counters are irrelevant to "streaming must
/// not change outcomes".
fn outcome_tallies(r: &CampaignResult) -> CampaignResult {
    let mut t = *r;
    t.replay_insts = 0;
    t.replay_insts_skipped = 0;
    t.checkpoint_hits = 0;
    t.early_exits = 0;
    t.replay_len = Default::default();
    t
}

/// One IRF campaign over a fixed generated program, with the given
/// streaming knobs and journal.
fn run(n_faults: usize, stream: StreamSettings, telemetry: &Telemetry) -> CampaignResult {
    let prog = Generator::new(GenConstraints {
        n_insts: 300,
        store_bias: 0.3,
        ..GenConstraints::default()
    })
    .generate(41);
    let core = OooCore::default();
    let ccfg = CampaignConfig {
        n_faults,
        seed: 0x057A_EA11,
        threads: 2,
        cap: 10_000_000,
        stream,
        ..CampaignConfig::default()
    };
    let sim = core.simulate(&prog, ccfg.cap).expect("golden run");
    let trail = build_campaign_trail(&prog, &ccfg);
    measure_detection_streamed(
        &prog,
        TargetStructure::Irf,
        &core,
        &ccfg,
        &sim.output.signature,
        &sim.trace,
        trail.as_ref(),
        telemetry,
    )
    .0
}

#[test]
fn streamed_campaign_is_tally_identical_and_closes_the_journal() {
    let sink = Arc::new(MemorySink::new());
    let settings = StreamSettings {
        // Generous cadence: on a fast machine the campaign ends before
        // the first periodic tick, and the closing tick must still
        // journal the full picture.
        cadence_ms: 25,
        ..StreamSettings::default()
    };
    let streamed = run(128, settings, &Telemetry::to(sink.clone()));
    let plain = run(128, StreamSettings::default(), &Telemetry::off());

    // Observability must not change outcomes.
    assert_eq!(outcome_tallies(&streamed), outcome_tallies(&plain));
    assert_eq!(streamed.injected, 128);

    // The journal always closes with a progress record covering every
    // fault unit, even if no periodic tick ever fired.
    let progress = sink.records_of("progress");
    assert!(!progress.is_empty());
    let last = progress.last().unwrap();
    assert_eq!(last.get("done").unwrap().as_u64(), Some(128));
    assert_eq!(last.get("total").unwrap().as_u64(), Some(128));
    assert_eq!(last.get("source").unwrap().as_str(), Some("campaign"));
    assert_eq!(last.get("structure").unwrap().as_str(), Some("IRF"));
    assert_eq!(
        last.get("program").unwrap().as_str(),
        Some("museqgen-00000029")
    );
    let outcomes: u64 = ["sdc", "crash", "masked", "corrected"]
        .iter()
        .map(|k| last.get(k).unwrap().as_u64().unwrap())
        .sum();
    assert_eq!(outcomes, 128, "per-outcome counts partition the units");

    // Both workers graded units, so both leave heartbeats.
    let beats = sink.records_of("heartbeat");
    let mut workers: Vec<u64> = beats
        .iter()
        .map(|b| b.get("worker").unwrap().as_u64().unwrap())
        .collect();
    workers.sort_unstable();
    workers.dedup();
    assert_eq!(workers, vec![0, 1]);

    // A healthy run journals neither stalls nor a cursor.
    assert!(sink.records_of("stall").is_empty());
    assert!(sink.records_of("cursor").is_empty());
}

#[test]
fn cadence_zero_streams_nothing_even_with_a_sink() {
    let sink = Arc::new(MemorySink::new());
    let result = run(64, StreamSettings::default(), &Telemetry::to(sink.clone()));
    assert_eq!(result.injected, 64);
    assert!(sink.records().is_empty(), "cadence 0 must stream nothing");
}

#[test]
fn wall_budget_stops_at_a_unit_boundary_with_a_cursor() {
    let sink = Arc::new(MemorySink::new());
    let settings = StreamSettings {
        cadence_ms: 1,
        wall_budget_ms: 5,
        ..StreamSettings::default()
    };
    // Enough faults that 5 ms cannot grade them all; the budget must
    // stop the campaign early at a unit boundary.
    const N: u64 = 500_000;
    let result = run(N as usize, settings, &Telemetry::to(sink.clone()));
    assert!(result.injected < N, "budget failed to stop the campaign");
    assert!(result.injected > 0, "stopped before any unit was graded");

    let cursors = sink.records_of("cursor");
    assert_eq!(cursors.len(), 1);
    let c = &cursors[0];
    assert_eq!(c.get("structure").unwrap().as_str(), Some("IRF"));
    assert_eq!(
        c.get("program").unwrap().as_str(),
        Some("museqgen-00000029")
    );
    assert_eq!(c.get("total").unwrap().as_u64(), Some(N));
    assert_eq!(c.get("completed").unwrap().as_u64(), Some(result.injected));
    assert_eq!(c.get("stride").unwrap().as_u64(), Some(2));
    let next = c.get("next").unwrap().as_arr().unwrap();
    assert_eq!(next.len(), 2);
    for (w, v) in next.iter().enumerate() {
        let n = v.as_u64().unwrap();
        assert_eq!(n % 2, w as u64, "cursor stays in its stride lane");
        assert!(n < N + 2);
    }
    // Lane w graded exactly next[w] / stride units (its strided prefix),
    // so the cursor alone reconstructs the merged tally.
    let graded: u64 = next.iter().map(|v| v.as_u64().unwrap() / 2).sum();
    assert_eq!(graded, result.injected);
}
