//! The graded 64-bit integer adder circuit.
//!
//! A ripple-carry adder with carry-in and carry-out: the unit every
//! `ADD`/`ADC`/`SUB`/`SBB`/`CMP`/`INC`/`DEC`/`NEG`/`PADDQ`/`PSUBQ`
//! instruction passes through (the semantics layer pre-inverts the second
//! operand for subtraction, exactly as ALU hardware does).

use crate::components::ripple_add;
use crate::eval::{bit_of, Evaluator, FaultSet};
use crate::netlist::{Netlist, NetlistBuilder, WireId};
use std::sync::OnceLock;

/// The 64-bit adder: 64+64+carry-in inputs, 64-bit sum + carry-out.
#[derive(Debug)]
pub struct AdderCircuit {
    net: Netlist,
    sum: Vec<WireId>,
    cout: WireId,
}

impl AdderCircuit {
    /// Builds the circuit (prefer the shared [`int_adder`] instance).
    pub fn build() -> AdderCircuit {
        let mut b = NetlistBuilder::new("int-adder-64");
        let a = b.input_bus(64);
        let bb = b.input_bus(64);
        let cin = b.input();
        let (sum, cout) = ripple_add(&mut b, &a, &bb, cin);
        let mut outs = sum.clone();
        outs.push(cout);
        let net = b.finish(outs);
        AdderCircuit { net, sum, cout }
    }

    /// The underlying netlist (gate population for fault sampling).
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Evaluates lane 0 with an optional fault set.
    pub fn eval(
        &self,
        ev: &mut Evaluator,
        a: u64,
        b: u64,
        cin: bool,
        faults: &FaultSet,
    ) -> (u64, bool) {
        ev.run(
            &self.net,
            |i| match i {
                0..=63 => bit_of(a, i),
                64..=127 => bit_of(b, i - 64),
                _ => cin,
            },
            faults,
        );
        (ev.bus(&self.sum, 0), ev.wire(self.cout, 0))
    }

    /// Packed evaluation: grades up to 64 faults (fault *i* in lane *i*)
    /// in a single pass, writing each lane's `(sum, carry)` into `out`.
    pub fn eval_lanes(
        &self,
        ev: &mut Evaluator,
        a: u64,
        b: u64,
        cin: bool,
        faults: &FaultSet,
        out: &mut [(u64, bool); 64],
    ) {
        ev.run(
            &self.net,
            |i| match i {
                0..=63 => bit_of(a, i),
                64..=127 => bit_of(b, i - 64),
                _ => cin,
            },
            faults,
        );
        let mut sums = [0u64; 64];
        ev.bus_all_lanes(&self.sum, &mut sums);
        for lane in 0..64 {
            out[lane] = (sums[lane], ev.wire(self.cout, lane as u8));
        }
    }
}

/// The process-wide adder circuit (built once).
pub fn int_adder() -> &'static AdderCircuit {
    static C: OnceLock<AdderCircuit> = OnceLock::new();
    C.get_or_init(AdderCircuit::build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::fu::{FuProvider, NativeFu};

    #[test]
    fn matches_native_adder() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        let mut native = NativeFu;
        let cases = [
            (0u64, 0u64, false),
            (u64::MAX, 1, false),
            (u64::MAX, u64::MAX, true),
            (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210, false),
            (1 << 63, 1 << 63, false),
            (42, !42, true),
        ];
        for (a, b, cin) in cases {
            assert_eq!(
                c.eval(&mut ev, a, b, cin, &FaultSet::none()),
                native.int_add(a, b, cin),
                "{a:#x} + {b:#x} + {cin}"
            );
        }
    }

    #[test]
    fn seeded_random_equivalence() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        let mut native = NativeFu;
        let mut s = 0x1234_5678u64;
        for _ in 0..500 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = s;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = s;
            let cin = s & 1 == 1;
            assert_eq!(
                c.eval(&mut ev, a, b, cin, &FaultSet::none()),
                native.int_add(a, b, cin)
            );
        }
    }

    #[test]
    fn stuck_carry_gate_corrupts_sums() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        // Find some gate whose stuck-at-1 changes 1+1.
        let mut affected = 0;
        for g in 0..c.netlist().gate_count() as u32 {
            let (s, _) = c.eval(&mut ev, 1, 1, false, &FaultSet::single(g, true));
            if s != 2 {
                affected += 1;
            }
        }
        assert!(affected > 0, "no gate fault ever activates");
    }

    #[test]
    fn packed_lanes_match_individual_faults() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        let faults: Vec<(u32, bool)> = (0..64u32).map(|g| (g * 3, g % 2 == 0)).collect();
        let fs = FaultSet::lanes(&faults);
        let mut out = [(0u64, false); 64];
        c.eval_lanes(&mut ev, 0xAAAA_5555, 0x1111_2222, true, &fs, &mut out);
        for (i, &(g, s1)) in faults.iter().enumerate() {
            let single = c.eval(
                &mut ev,
                0xAAAA_5555,
                0x1111_2222,
                true,
                &FaultSet::single(g, s1),
            );
            assert_eq!(out[i], single, "lane {i} fault ({g},{s1})");
        }
    }
}
