//! §VI-D regression: Harpocrates-generated programs exposed a gem5 bug in
//! `RCR` emulation — a crash when the rotate amount equals the register
//! size. This differential test pins the corner-case semantics of our
//! engine against a from-first-principles step-by-step reference (the
//! Intel SDM's per-bit RCR/RCL definition), for every width and every
//! count, including count == width.

use harpocrates::isa::asm::Asm;
use harpocrates::isa::exec::Machine;
use harpocrates::isa::form::Mnemonic;
use harpocrates::isa::fu::NativeFu;
use harpocrates::isa::reg::Gpr::*;
use harpocrates::isa::reg::Width;

/// The SDM's step-by-step RCR reference: one bit per iteration through
/// the CF ring.
fn rcr_reference(width: u32, mut v: u64, mut cf: bool, count: u32) -> (u64, bool) {
    let masked = count & if width == 64 { 63 } else { 31 };
    let n = masked % (width + 1);
    for _ in 0..n {
        let new_cf = v & 1 != 0;
        v = (v >> 1) | ((cf as u64) << (width - 1));
        cf = new_cf;
    }
    (
        v & if width == 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        },
        cf,
    )
}

fn rcl_reference(width: u32, mut v: u64, mut cf: bool, count: u32) -> (u64, bool) {
    let masked = count & if width == 64 { 63 } else { 31 };
    let n = masked % (width + 1);
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    for _ in 0..n {
        let new_cf = v >> (width - 1) & 1 != 0;
        v = ((v << 1) | cf as u64) & mask;
        cf = new_cf;
    }
    (v, cf)
}

fn run_rotate(m: Mnemonic, w: Width, v: u64, cf_in: bool, count: u8) -> (u64, bool) {
    let mut a = Asm::new("rcr-diff");
    a.mov_ri64(Rax, v);
    if cf_in {
        // Set CF: 0xFF..F + 1 carries at the chosen width.
        a.mov_ri(Width::B64, Rbx, -1);
        a.add_ri(Width::B8, Rbx, 1);
    } else {
        // Clear CF: 0 + 0.
        a.mov_ri(Width::B64, Rbx, 0);
        a.add_ri(Width::B8, Rbx, 0);
    }
    a.op_shift_i(m, w, Rax, count);
    a.halt();
    let p = a.finish().unwrap();
    let out = Machine::new(&p, NativeFu).run(1000).unwrap();
    (out.state.gpr(Rax), out.state.flags.cf)
}

#[test]
fn rcr_matches_reference_at_every_count_and_width() {
    for w in [Width::B8, Width::B16, Width::B32, Width::B64] {
        let bits = w.bits();
        let v = 0xA5A5_A5A5_A5A5_A5A5u64 & w.mask();
        for cf in [false, true] {
            for count in 0..=bits.min(66) {
                let got = run_rotate(Mnemonic::Rcr, w, v, cf, count as u8);
                let want = rcr_reference(bits, v, cf, count);
                assert_eq!(
                    got, want,
                    "RCR width {bits} count {count} cf {cf} — the gem5 v22 bug \
                     surfaced exactly at count == width"
                );
            }
        }
    }
}

#[test]
fn rcl_matches_reference_at_every_count_and_width() {
    for w in [Width::B8, Width::B16, Width::B32, Width::B64] {
        let bits = w.bits();
        let v = 0x1234_5678_9ABC_DEF0u64 & w.mask();
        for cf in [false, true] {
            for count in 0..=bits.min(66) {
                let got = run_rotate(Mnemonic::Rcl, w, v, cf, count as u8);
                let want = rcl_reference(bits, v, cf, count);
                assert_eq!(got, want, "RCL width {bits} count {count} cf {cf}");
            }
        }
    }
}

#[test]
fn generated_programs_exercise_rcr_corner() {
    // A constrained generation whose domain is rotate-heavy produces the
    // corner case organically — the way Harpocrates found the gem5 bug.
    use harpocrates::isa::form::Catalog;
    use harpocrates::museqgen::{GenConstraints, Generator};
    let gen = Generator::new(GenConstraints {
        n_insts: 3_000,
        allow_memory: false,
        allow_sse: false,
        mnemonic_whitelist: vec![Mnemonic::Rcr, Mnemonic::Rcl, Mnemonic::Mov, Mnemonic::Add],
        ..GenConstraints::default()
    });
    let p = gen.generate(0xC0);
    let cat = Catalog::get();
    let corner = p.insts.iter().any(|i| {
        let f = cat.form(i.form);
        matches!(f.mnemonic, Mnemonic::Rcr | Mnemonic::Rcl)
            && f.mode == harpocrates::isa::form::OpMode::RiB
            && (i.imm as u32 & if f.width == Width::B64 { 63 } else { 31 }) % (f.width.bits() + 1)
                == f.width.bits()
    });
    assert!(
        corner,
        "3K rotate-heavy instructions should hit count==width"
    );
    // And the program still runs deterministically.
    Machine::new(&p, NativeFu).run(100_000).expect("clean run");
}
