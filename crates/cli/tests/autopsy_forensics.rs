//! End-to-end tests of the `harpo autopsy` pipeline: the forensic
//! record stream is deterministic, renders through `harpo report`, and
//! the committed golden forensics journal reproduces its committed
//! report byte-for-byte. Regenerate the golden report with:
//!
//! ```text
//! cargo run -p harpo-cli --bin harpo -- report \
//!     tests/data/golden_forensics.jsonl \
//!     --out tests/data/golden_forensics_report.md
//! ```
//!
//! (`golden_forensics.jsonl` is hand-written, not harvested from a run,
//! so it never moves when the sampler or the RNG implementation does.)

use harpo_cli::autopsy::forensic_records;
use harpo_cli::report::render;
use harpo_coverage::TargetStructure;
use harpo_faultsim::{CampaignConfig, StructureHeatmap};
use harpo_museqgen::{GenConstraints, Generator};
use harpo_telemetry::json;

fn repo_file(rel: &str) -> String {
    let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn campaign_journal(structure: TargetStructure, threads: usize) -> String {
    let prog = Generator::new(GenConstraints {
        n_insts: 200,
        allow_sse: true,
        store_bias: 0.3,
        ..GenConstraints::default()
    })
    .generate(0xA07);
    let ccfg = CampaignConfig {
        n_faults: 48,
        seed: 0xF0DA,
        threads,
        cap: 10_000_000,
        ..CampaignConfig::default()
    };
    let (_, _, records) = forensic_records(&prog, structure, &ccfg).expect("campaign runs");
    records
        .iter()
        .map(|r| r.to_json())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn golden_forensics_report_is_byte_identical() {
    let inputs = [(
        "tests/data/golden_forensics.jsonl".to_string(),
        repo_file("tests/data/golden_forensics.jsonl"),
    )];
    let rendered = render(&inputs).expect("golden forensics journal renders");
    let committed = repo_file("tests/data/golden_forensics_report.md");
    assert_eq!(
        rendered, committed,
        "forensics report drifted from tests/data/golden_forensics_report.md — \
         if the change is intentional, regenerate the golden report \
         (see this test's module docs)"
    );
}

#[test]
fn autopsy_record_stream_is_deterministic() {
    for structure in [TargetStructure::Irf, TargetStructure::IntAdder] {
        let a = campaign_journal(structure, 2);
        let b = campaign_journal(structure, 2);
        assert_eq!(a, b, "{structure}: same config must emit identical JSONL");
    }
}

#[test]
fn autopsy_journal_renders_the_forensics_section() {
    let journal = campaign_journal(TargetStructure::Irf, 2);
    let md = render(&[("autopsy.jsonl".to_string(), journal.clone())]).expect("journal renders");
    assert!(md.contains("### Fault-injection campaigns"), "{md}");
    assert!(md.contains("### Fault forensics"), "{md}");
    assert!(
        md.contains("| masking mechanism | faults | share |"),
        "{md}"
    );

    // Every heatmap record in the live stream round-trips through the
    // report's parser into an equal heatmap.
    let mut saw_heatmap = false;
    for line in journal.lines() {
        let v = json::parse(line).expect("journal line is valid JSON");
        if v.get("kind").and_then(harpo_telemetry::Value::as_str) != Some("heatmap") {
            continue;
        }
        saw_heatmap = true;
        let map = StructureHeatmap::from_value(&v).expect("heatmap record parses");
        let again = StructureHeatmap::from_value(&map.to_value()).unwrap();
        assert_eq!(map, again);
        assert_eq!(map.structure, TargetStructure::Irf.label());
    }
    assert!(
        saw_heatmap,
        "campaign emitted no heatmap record:\n{journal}"
    );
}
