/root/repo/target/debug/deps/harpo_telemetry-09b9d0d9a87b6092.d: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libharpo_telemetry-09b9d0d9a87b6092.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/json.rs crates/telemetry/src/metrics.rs crates/telemetry/src/record.rs crates/telemetry/src/sink.rs crates/telemetry/src/span.rs crates/telemetry/src/stream.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/json.rs:
crates/telemetry/src/metrics.rs:
crates/telemetry/src/record.rs:
crates/telemetry/src/sink.rs:
crates/telemetry/src/span.rs:
crates/telemetry/src/stream.rs:
crates/telemetry/src/trace.rs:
