/root/repo/target/debug/deps/determinism-87dbc096f3560402.d: crates/core/tests/determinism.rs

/root/repo/target/debug/deps/determinism-87dbc096f3560402: crates/core/tests/determinism.rs

crates/core/tests/determinism.rs:
