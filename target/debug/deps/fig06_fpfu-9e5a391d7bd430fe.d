/root/repo/target/debug/deps/fig06_fpfu-9e5a391d7bd430fe.d: crates/bench/src/bin/fig06_fpfu.rs

/root/repo/target/debug/deps/fig06_fpfu-9e5a391d7bd430fe: crates/bench/src/bin/fig06_fpfu.rs

crates/bench/src/bin/fig06_fpfu.rs:
