/root/repo/target/debug/examples/structure_explorer-c59521e487275505.d: examples/structure_explorer.rs

/root/repo/target/debug/examples/structure_explorer-c59521e487275505: examples/structure_explorer.rs

examples/structure_explorer.rs:
