/root/repo/target/release/deps/rate_comparison-916f7847f2f88718.d: crates/bench/src/bin/rate_comparison.rs

/root/repo/target/release/deps/rate_comparison-916f7847f2f88718: crates/bench/src/bin/rate_comparison.rs

crates/bench/src/bin/rate_comparison.rs:
