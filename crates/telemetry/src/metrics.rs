//! The global-free metrics registry: named atomic counters and
//! log-bucketed histograms.
//!
//! There is deliberately no `static` registry — a [`Metrics`] value is
//! created by whoever owns a run (CLI command, bench binary, test),
//! cloned into each pipeline layer (it is an `Arc` inside) and
//! snapshotted at the end. Two runs never share state by accident, and
//! tests can assert on exact counts.

use crate::json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter (registered ones come from
    /// [`Metrics::counter`]).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per significant-bit count of a
/// `u64`, plus bucket 0 for zeros. Public so layers that pre-aggregate
/// observations off the hot path (e.g. per-worker campaign tallies) can
/// build a compatible bucket array and merge it in with
/// [`Histogram::merge_counts`].
pub const HIST_BUCKETS: usize = 65;

const BUCKETS: usize = HIST_BUCKETS;

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Bucket `i` counts observations with `i` significant bits, i.e.
    /// values in `[2^(i-1), 2^i)`; bucket 0 counts zeros. Powers of two
    /// keep `observe` branch-free and cover the full `u64` range.
    buckets: [AtomicU64; BUCKETS],
}

/// A log₂-bucketed histogram of `u64` observations (durations in
/// nanoseconds, work counts, ...).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistInner {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
        }
    }
}

impl Histogram {
    /// A fresh, unregistered histogram (registered ones come from
    /// [`Metrics::histogram`]).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Bucket index of a value: its significant-bit count.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let h = &*self.inner;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
        h.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Merges a pre-aggregated bucket array into this histogram: each
    /// `buckets[i]` count lands in bucket `i`, `sum` is added to the
    /// running sum and `max` folded into the running max. This is how
    /// layers that tally observations locally (lock- and atomic-free)
    /// publish into a shared registry at the end of a run.
    pub fn merge_counts(&self, buckets: &[u64; HIST_BUCKETS], sum: u64, max: u64) {
        let h = &*self.inner;
        let mut count = 0;
        for (slot, &n) in h.buckets.iter().zip(buckets) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
                count += n;
            }
        }
        h.count.fetch_add(count, Ordering::Relaxed);
        h.sum.fetch_add(sum, Ordering::Relaxed);
        h.max.fetch_max(max, Ordering::Relaxed);
    }

    /// A consistent-enough copy for reporting (individual loads are
    /// atomic; the histogram may be concurrently updated).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.inner;
        HistogramSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts (see [`Histogram`] for the bucket layout).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `(0, 1]`), as the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` observation, clamped to
    /// the observed max. Log₂ buckets bound the error to 2× — plenty for
    /// the latency-distribution questions the journal answers (is p99 a
    /// few times p50, or orders of magnitude above it?). Deterministic:
    /// same buckets, same answer. Returns 0 on an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i holds values with i significant bits, so its
                // inclusive upper bound is 2^i − 1 (bucket 0 holds zeros).
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

/// Point-in-time copy of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// A counter value.
    Counter(u64),
    /// A histogram state (boxed: the bucket array dwarfs the counter
    /// variant).
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

/// The registry: a name → metric map shared by clone.
///
/// ```
/// use harpo_telemetry::Metrics;
/// let m = Metrics::new();
/// m.counter("evaluator.programs").add(3);
/// m.histogram("engine.stage.evaluation_ns").observe(1_500);
/// assert_eq!(m.counter("evaluator.programs").get(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Registration takes the lock; the returned handle is lock-free —
    /// resolve once outside hot loops.
    ///
    /// # Panics
    /// Panics if `name` is already a histogram.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            Metric::Histogram(_) => panic!("metric `{name}` is a histogram, not a counter"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already a counter.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            Metric::Counter(_) => panic!("metric `{name}` is a counter, not a histogram"),
        }
    }

    /// Whether anything has been registered.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .is_empty()
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let map = self.inner.lock().expect("metrics registry poisoned");
        map.iter()
            .map(|(name, m)| {
                let snap = match m {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), snap)
            })
            .collect()
    }

    /// The registry as one JSON object: counters become numbers,
    /// histograms become `{count, sum, max, mean, p50, p90, p99}`
    /// objects — the `counters` payload of journal summaries and bench
    /// manifests.
    pub fn to_value(&self) -> Value {
        let fields = self
            .snapshot()
            .into_iter()
            .map(|(name, snap)| {
                let v = match snap {
                    MetricSnapshot::Counter(n) => Value::U64(n),
                    MetricSnapshot::Histogram(h) => Value::Obj(vec![
                        ("count".to_string(), Value::U64(h.count)),
                        ("sum".to_string(), Value::U64(h.sum)),
                        ("max".to_string(), Value::U64(h.max)),
                        ("mean".to_string(), Value::F64(h.mean())),
                        ("p50".to_string(), Value::U64(h.percentile(0.50))),
                        ("p90".to_string(), Value::U64(h.percentile(0.90))),
                        ("p99".to_string(), Value::U64(h.percentile(0.99))),
                    ]),
                };
                (name, v)
            })
            .collect();
        Value::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let m = Metrics::new();
        let a = m.counter("x");
        let b = m.clone().counter("x");
        a.inc();
        b.add(2);
        assert_eq!(m.counter("x").get(), 3);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[10], 1, "1000 has 10 significant bits");
        assert!((s.mean() - 201.2).abs() < 1e-9);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let h = Histogram::new();
        // 98 small observations and 2 enormous ones: p50/p90 must stay
        // in the small bucket, p99 must reach the big one.
        for _ in 0..98 {
            h.observe(100);
        }
        h.observe(1_000_000);
        h.observe(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.50), 127, "upper bound of bucket ⌈log₂ 100⌉");
        assert_eq!(s.percentile(0.90), 127);
        assert_eq!(s.percentile(0.99), 1_000_000, "clamped to observed max");
        assert_eq!(s.percentile(1.0), 1_000_000);
    }

    #[test]
    fn percentiles_of_empty_and_zero_histograms() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().percentile(0.5), 0);
        h.observe(0);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.percentile(0.99), 0);
    }

    #[test]
    fn percentile_of_a_single_observation_is_that_value() {
        let h = Histogram::new();
        h.observe(1000);
        let s = h.snapshot();
        // Rank math degenerates to the one observation at every q; the
        // bucket upper bound (1023) is clamped to the observed max.
        for q in [0.001, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 1000, "q={q}");
        }
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean(), 1000.0);
    }

    #[test]
    fn top_bucket_saturation_does_not_overflow() {
        // Values with 64 significant bits land in the last bucket, whose
        // nominal upper bound (2^64) doesn't fit a u64 — the percentile
        // walk must saturate at u64::MAX, then clamp to the observed max.
        assert_eq!(Histogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        let h = Histogram::new();
        h.observe(u64::MAX - 5);
        h.observe(1 << 63);
        let s = h.snapshot();
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 2);
        assert_eq!(s.percentile(0.5), u64::MAX - 5);
        assert_eq!(s.percentile(1.0), u64::MAX - 5);
    }

    #[test]
    fn merge_counts_is_equivalent_to_observing() {
        let direct = Histogram::new();
        let mut buckets = [0u64; HIST_BUCKETS];
        let (mut sum, mut max) = (0u64, 0u64);
        for v in [0u64, 3, 17, 17, 4096, 70_000] {
            direct.observe(v);
            buckets[Histogram::bucket_of(v)] += 1;
            sum += v;
            max = max.max(v);
        }
        let merged = Histogram::new();
        merged.merge_counts(&buckets, sum, max);
        assert_eq!(merged.snapshot(), direct.snapshot());
        // Merging again doubles counts and sum but keeps the max.
        merged.merge_counts(&buckets, sum, max);
        let s = merged.snapshot();
        assert_eq!(s.count, 12);
        assert_eq!(s.sum, 2 * sum);
        assert_eq!(s.max, max);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let m = Metrics::new();
        m.counter("b.count").inc();
        m.histogram("a.hist").observe(5);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "a.hist");
        assert!(matches!(snap[1].1, MetricSnapshot::Counter(1)));
    }

    #[test]
    fn to_value_round_trips_as_json() {
        let m = Metrics::new();
        m.counter("runs").add(2);
        m.histogram("ns").observe(7);
        let v = crate::json::parse(&m.to_value().to_json()).unwrap();
        assert_eq!(v.get("runs").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("ns").unwrap().get("count").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("ns").unwrap().get("sum").unwrap().as_u64(), Some(7));
    }

    #[test]
    #[should_panic(expected = "is a histogram")]
    fn kind_mismatch_panics() {
        let m = Metrics::new();
        m.histogram("x");
        m.counter("x");
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    let c = m.counter("n");
                    let h = m.histogram("h");
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(m.counter("n").get(), 4000);
        assert_eq!(m.histogram("h").count(), 4000);
    }
}
