/root/repo/target/debug/deps/fig01_dppm-66bd4436a8714c94.d: crates/bench/src/bin/fig01_dppm.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_dppm-66bd4436a8714c94.rmeta: crates/bench/src/bin/fig01_dppm.rs Cargo.toml

crates/bench/src/bin/fig01_dppm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
