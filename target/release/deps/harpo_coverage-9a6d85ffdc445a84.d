/root/repo/target/release/deps/harpo_coverage-9a6d85ffdc445a84.d: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/release/deps/libharpo_coverage-9a6d85ffdc445a84.rlib: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/release/deps/libharpo_coverage-9a6d85ffdc445a84.rmeta: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

crates/coverage/src/lib.rs:
crates/coverage/src/ace.rs:
crates/coverage/src/ibr.rs:
crates/coverage/src/liveness.rs:
crates/coverage/src/objective.rs:
