/root/repo/target/debug/deps/autopsy_forensics-f9470937bf86339a.d: crates/faultsim/tests/autopsy_forensics.rs Cargo.toml

/root/repo/target/debug/deps/libautopsy_forensics-f9470937bf86339a.rmeta: crates/faultsim/tests/autopsy_forensics.rs Cargo.toml

crates/faultsim/tests/autopsy_forensics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
