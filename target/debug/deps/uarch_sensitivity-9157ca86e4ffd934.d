/root/repo/target/debug/deps/uarch_sensitivity-9157ca86e4ffd934.d: tests/uarch_sensitivity.rs

/root/repo/target/debug/deps/uarch_sensitivity-9157ca86e4ffd934: tests/uarch_sensitivity.rs

tests/uarch_sensitivity.rs:
