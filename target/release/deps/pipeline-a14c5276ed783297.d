/root/repo/target/release/deps/pipeline-a14c5276ed783297.d: crates/bench/benches/pipeline.rs

/root/repo/target/release/deps/pipeline-a14c5276ed783297: crates/bench/benches/pipeline.rs

crates/bench/benches/pipeline.rs:
