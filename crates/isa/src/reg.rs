//! Architectural registers and operand widths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// General-purpose (integer) architectural registers, matching x86-64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // register names are the documentation
#[repr(u8)]
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    /// All sixteen GPRs in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Decodes a 4-bit register field. Values above 15 wrap.
    #[inline]
    pub fn from_nibble(n: u8) -> Gpr {
        Gpr::ALL[(n & 0xF) as usize]
    }

    /// The 4-bit encoding of this register.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ][self.index()];
        f.write_str(s)
    }
}

/// SSE vector registers. Each holds 128 bits, viewed by HX86 as four
/// single-precision floating-point lanes (or two 64-bit integer lanes for
/// the `MOVQ`/`PADDQ` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // register names are the documentation
#[repr(u8)]
pub enum Xmm {
    Xmm0 = 0,
    Xmm1 = 1,
    Xmm2 = 2,
    Xmm3 = 3,
    Xmm4 = 4,
    Xmm5 = 5,
    Xmm6 = 6,
    Xmm7 = 7,
    Xmm8 = 8,
    Xmm9 = 9,
    Xmm10 = 10,
    Xmm11 = 11,
    Xmm12 = 12,
    Xmm13 = 13,
    Xmm14 = 14,
    Xmm15 = 15,
}

impl Xmm {
    /// All sixteen XMM registers in encoding order.
    pub const ALL: [Xmm; 16] = [
        Xmm::Xmm0,
        Xmm::Xmm1,
        Xmm::Xmm2,
        Xmm::Xmm3,
        Xmm::Xmm4,
        Xmm::Xmm5,
        Xmm::Xmm6,
        Xmm::Xmm7,
        Xmm::Xmm8,
        Xmm::Xmm9,
        Xmm::Xmm10,
        Xmm::Xmm11,
        Xmm::Xmm12,
        Xmm::Xmm13,
        Xmm::Xmm14,
        Xmm::Xmm15,
    ];

    /// Decodes a 4-bit register field. Values above 15 wrap.
    #[inline]
    pub fn from_nibble(n: u8) -> Xmm {
        Xmm::ALL[(n & 0xF) as usize]
    }

    /// The 4-bit encoding of this register.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.index())
    }
}

/// Integer operand width. HX86, like x86-64, offers most ALU operations at
/// four widths; narrow writes zero-extend into the full 64-bit register
/// (the 32-bit zero-extension rule generalised down to 8/16 bits — a
/// deliberate simplification over x86's partial-register merging, noted in
/// DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // widths named by their bit count
#[repr(u8)]
pub enum Width {
    B8 = 0,
    B16 = 1,
    B32 = 2,
    B64 = 3,
}

impl Width {
    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::B8, Width::B16, Width::B32, Width::B64];

    /// Width in bits (8, 16, 32 or 64).
    #[inline]
    pub fn bits(self) -> u32 {
        8 << (self as u32)
    }

    /// Width in bytes (1, 2, 4 or 8).
    #[inline]
    pub fn bytes(self) -> u32 {
        1 << (self as u32)
    }

    /// Mask selecting the low `bits()` bits of a 64-bit value.
    #[inline]
    pub fn mask(self) -> u64 {
        match self {
            Width::B64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// Mask selecting only the sign bit at this width.
    #[inline]
    pub fn sign_bit(self) -> u64 {
        1u64 << (self.bits() - 1)
    }

    /// Truncates `v` to this width.
    #[inline]
    pub fn trunc(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Sign-extends the low `bits()` bits of `v` to 64 bits.
    #[inline]
    pub fn sext(self, v: u64) -> u64 {
        let b = self.bits();
        if b == 64 {
            v
        } else {
            (((v as i64) << (64 - b)) >> (64 - b)) as u64
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_roundtrip() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Gpr::from_nibble(i as u8), *r);
        }
        // Nibble decoding wraps rather than failing.
        assert_eq!(Gpr::from_nibble(0x1F), Gpr::R15);
    }

    #[test]
    fn xmm_roundtrip() {
        for (i, r) in Xmm::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Xmm::from_nibble(i as u8), *r);
        }
    }

    #[test]
    fn width_masks() {
        assert_eq!(Width::B8.mask(), 0xFF);
        assert_eq!(Width::B16.mask(), 0xFFFF);
        assert_eq!(Width::B32.mask(), 0xFFFF_FFFF);
        assert_eq!(Width::B64.mask(), u64::MAX);
        assert_eq!(Width::B8.bits(), 8);
        assert_eq!(Width::B64.bytes(), 8);
    }

    #[test]
    fn width_sext() {
        assert_eq!(Width::B8.sext(0x80), 0xFFFF_FFFF_FFFF_FF80);
        assert_eq!(Width::B8.sext(0x7F), 0x7F);
        assert_eq!(Width::B32.sext(0x8000_0000), 0xFFFF_FFFF_8000_0000);
        assert_eq!(Width::B64.sext(0xDEAD), 0xDEAD);
    }

    #[test]
    fn width_sign_bit() {
        assert_eq!(Width::B8.sign_bit(), 0x80);
        assert_eq!(Width::B64.sign_bit(), 1 << 63);
    }
}
