/root/repo/target/debug/examples/bug_hunt-d8da001c8e545ed8.d: examples/bug_hunt.rs

/root/repo/target/debug/examples/bug_hunt-d8da001c8e545ed8: examples/bug_hunt.rs

examples/bug_hunt.rs:
