/root/repo/target/debug/examples/structure_explorer-dbb13f877904dd64.d: examples/structure_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libstructure_explorer-dbb13f877904dd64.rmeta: examples/structure_explorer.rs Cargo.toml

examples/structure_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
