/root/repo/target/debug/deps/ablation_mutation-c5da354406c19b96.d: crates/bench/src/bin/ablation_mutation.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mutation-c5da354406c19b96.rmeta: crates/bench/src/bin/ablation_mutation.rs Cargo.toml

crates/bench/src/bin/ablation_mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
