/root/repo/target/debug/deps/rand-186110fd2d45fd9e.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-186110fd2d45fd9e.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
