/root/repo/target/debug/deps/ablation_mutation-3fc158de14a2b5fc.d: crates/bench/src/bin/ablation_mutation.rs Cargo.toml

/root/repo/target/debug/deps/libablation_mutation-3fc158de14a2b5fc.rmeta: crates/bench/src/bin/ablation_mutation.rs Cargo.toml

crates/bench/src/bin/ablation_mutation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
