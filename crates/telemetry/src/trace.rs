//! Chrome / Perfetto `trace_event` export.
//!
//! Renders journal activity as a trace file loadable in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`: the JSON
//! object format `{"traceEvents":[...]}` with complete (`"ph":"X"`),
//! instant (`"ph":"i"`), counter (`"ph":"C"`) and metadata (`"ph":"M"`)
//! events. Timestamps
//! are kept internally in nanoseconds and emitted in microseconds (the
//! format's unit) as exact `ns/1000` fractions, so building a trace is
//! deterministic: no clocks are read here.
//!
//! Two layers:
//!
//! * [`TraceEvent`] / [`TraceBuilder`] — the generic writer, usable by
//!   any producer that wants to lay events on `(pid, tid)` tracks.
//! * [`trace_from_journal`] — the offline converter from parsed journal
//!   records (`iteration`, `campaign`, `autopsy`) to a trace: refine
//!   stage spans on one process track, campaign timelines and
//!   individual fault replays (per-worker rows, virtual time in
//!   dynamic instructions) on others.

use crate::json::{write_string, Value};

/// One `trace_event` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name, shown on the slice.
    pub name: String,
    /// Category tag (comma-separated list in the format; we use one).
    pub cat: String,
    /// Phase: `'X'` complete, `'i'` instant, `'C'` counter, `'M'`
    /// metadata.
    pub ph: char,
    /// Start timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Duration in nanoseconds (complete events only).
    pub dur_ns: u64,
    /// Process track.
    pub pid: u64,
    /// Thread track within the process.
    pub tid: u64,
    /// Free-form `args` payload shown in the slice details pane.
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    /// A complete (`"ph":"X"`) event spanning `[ts_ns, ts_ns+dur_ns)`.
    pub fn complete(
        pid: u64,
        tid: u64,
        cat: &str,
        name: impl Into<String>,
        ts_ns: u64,
        dur_ns: u64,
    ) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat.to_string(),
            ph: 'X',
            ts_ns,
            dur_ns,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// An instant (`"ph":"i"`) event at `ts_ns`.
    pub fn instant(
        pid: u64,
        tid: u64,
        cat: &str,
        name: impl Into<String>,
        ts_ns: u64,
    ) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat.to_string(),
            ph: 'i',
            ts_ns,
            dur_ns: 0,
            pid,
            tid,
            args: Vec::new(),
        }
    }

    /// A counter (`"ph":"C"`) sample: one point on the named counter
    /// track, rendered by Perfetto as a step graph. The sample value
    /// rides in `args` under `"value"`.
    pub fn counter(
        pid: u64,
        cat: &str,
        name: impl Into<String>,
        ts_ns: u64,
        value: f64,
    ) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat.to_string(),
            ph: 'C',
            ts_ns,
            dur_ns: 0,
            pid,
            tid: 0,
            args: vec![("value".to_string(), Value::from(value))],
        }
    }

    /// Appends an `args` field (builder style).
    pub fn arg(mut self, key: impl Into<String>, value: impl Into<Value>) -> TraceEvent {
        self.args.push((key.into(), value.into()));
        self
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_string(out, &self.name);
        out.push_str(",\"cat\":");
        write_string(out, &self.cat);
        out.push_str(",\"ph\":\"");
        out.push(self.ph);
        out.push('"');
        out.push_str(",\"ts\":");
        write_us(out, self.ts_ns);
        if self.ph == 'X' {
            out.push_str(",\"dur\":");
            write_us(out, self.dur_ns);
        }
        out.push_str(&format!(",\"pid\":{},\"tid\":{}", self.pid, self.tid));
        if self.ph == 'i' {
            // Instant scope: thread-local marker.
            out.push_str(",\"s\":\"t\"");
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                out.push_str(&v.to_json());
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// Writes nanoseconds as microseconds: integral when exact, else with
/// the sub-microsecond remainder as a three-digit fraction.
fn write_us(out: &mut String, ns: u64) {
    let us = ns / 1000;
    let rem = ns % 1000;
    if rem == 0 {
        out.push_str(&us.to_string());
    } else {
        out.push_str(&format!("{us}.{rem:03}"));
    }
}

/// Accumulates [`TraceEvent`]s and serialises the trace file.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<TraceEvent>,
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> TraceBuilder {
        TraceBuilder::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Names a process track (metadata event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(TraceEvent {
            name: "process_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_ns: 0,
            dur_ns: 0,
            pid,
            tid: 0,
            args: vec![("name".to_string(), Value::from(name))],
        });
    }

    /// Names a thread track (metadata event).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(TraceEvent {
            name: "thread_name".to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_ns: 0,
            dur_ns: 0,
            pid,
            tid,
            args: vec![("name".to_string(), Value::from(name))],
        });
    }

    /// Number of events accumulated so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been pushed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The accumulated events, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serialises the whole trace as the JSON object format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }
}

// Process tracks used by the journal converter.
const PID_REFINE: u64 = 1;
const PID_CAMPAIGN: u64 = 2;
const PID_FAULTS: u64 = 3;
const PID_COUNTERS: u64 = 4;

/// Converts parsed journal records into a trace.
///
/// * `iteration` records become per-round stage spans (generation →
///   mutation → compilation → evaluation) laid end-to-end in journal
///   order on the "refine" process — real wall time.
/// * `campaign` records become one slice each on the "campaigns"
///   process, in *virtual time*: 1 replayed dynamic instruction = 1 ns.
/// * `autopsy` records become per-fault replay slices on the "fault
///   replays" process, one thread row per campaign worker, again in
///   virtual dynamic-instruction time; faults with no propagation
///   window render as instant markers.
/// * streaming `progress` / `resource` records (schema v4) become
///   counter tracks on a "live counters" process — faults done,
///   faults/s, replay instructions skipped, memo-cache hit rate —
///   timestamped with the record's own `elapsed_ns`, so the counters
///   line up with real wall time.
///
/// Unknown record kinds are skipped, so any journal converts.
pub fn trace_from_journal(records: &[Value]) -> TraceBuilder {
    let mut t = TraceBuilder::new();
    let u = |r: &Value, k: &str| r.get(k).and_then(Value::as_u64).unwrap_or(0);

    let mut refine_clock = 0u64;
    let mut saw_refine = false;
    let mut campaign_clock = 0u64;
    let mut campaigns = 0u64;
    let mut counters = 0u64;
    let mut fault_tids: Vec<u64> = Vec::new();

    for r in records {
        match r.get("kind").and_then(Value::as_str) {
            Some("iteration") => {
                saw_refine = true;
                let round = u(r, "iter");
                let start = refine_clock;
                for stage in ["generation", "mutation", "compilation", "evaluation"] {
                    let ns = u(r, &format!("{stage}_ns"));
                    if ns == 0 {
                        continue;
                    }
                    t.push(TraceEvent::complete(
                        PID_REFINE,
                        0,
                        "stage",
                        stage,
                        refine_clock,
                        ns,
                    ));
                    refine_clock += ns;
                }
                let total = refine_clock - start;
                if total > 0 {
                    let best = r.get("best").and_then(Value::as_f64).unwrap_or(0.0);
                    t.push(
                        TraceEvent::complete(
                            PID_REFINE,
                            1,
                            "round",
                            format!("round {round}"),
                            start,
                            total,
                        )
                        .arg("best", best),
                    );
                }
            }
            Some("campaign") => {
                campaigns += 1;
                let dur = u(r, "replay_insts").max(1);
                let name = format!(
                    "{} vs {}",
                    r.get("structure").and_then(Value::as_str).unwrap_or("?"),
                    r.get("program").and_then(Value::as_str).unwrap_or("?"),
                );
                t.push(
                    TraceEvent::complete(PID_CAMPAIGN, 0, "campaign", name, campaign_clock, dur)
                        .arg("faults", u(r, "faults"))
                        .arg(
                            "detection",
                            r.get("detection").and_then(Value::as_f64).unwrap_or(0.0),
                        )
                        .arg("sdc", u(r, "sdc"))
                        .arg("crash", u(r, "crash"))
                        .arg("masked", u(r, "masked")),
                );
                campaign_clock += dur;
            }
            Some("autopsy") => {
                let tid = u(r, "worker");
                if !fault_tids.contains(&tid) {
                    fault_tids.push(tid);
                }
                let outcome = r.get("outcome").and_then(Value::as_str).unwrap_or("?");
                let mechanism = r.get("mechanism").and_then(Value::as_str).unwrap_or("?");
                let name = format!(
                    "{}#{} {}",
                    r.get("structure").and_then(Value::as_str).unwrap_or("?"),
                    u(r, "fault"),
                    outcome,
                );
                // Virtual time: 1 dynamic instruction = 1 ns.
                let ts = u(r, "injected_dyn");
                let dur = u(r, "propagation_insts");
                let e = if dur == 0 {
                    TraceEvent::instant(PID_FAULTS, tid, "fault", name, ts)
                } else {
                    TraceEvent::complete(PID_FAULTS, tid, "fault", name, ts, dur)
                };
                t.push(
                    e.arg("mechanism", mechanism)
                        .arg("bit", u(r, "bit"))
                        .arg("detection_latency", u(r, "detection_latency")),
                );
            }
            Some("progress") => {
                let ts = u(r, "elapsed_ns");
                counters += 1;
                t.push(TraceEvent::counter(
                    PID_COUNTERS,
                    "live",
                    "done",
                    ts,
                    u(r, "done") as f64,
                ));
                if let Some(rate) = r.get("units_per_sec").and_then(Value::as_f64) {
                    t.push(TraceEvent::counter(
                        PID_COUNTERS,
                        "live",
                        "faults/s",
                        ts,
                        rate,
                    ));
                }
                if let Some(skipped) = r.get("replay_insts_skipped").and_then(Value::as_u64) {
                    t.push(TraceEvent::counter(
                        PID_COUNTERS,
                        "live",
                        "replay_insts_skipped",
                        ts,
                        skipped as f64,
                    ));
                }
            }
            Some("resource") => {
                let ts = u(r, "elapsed_ns");
                if let Some(rate) = r.get("hit_rate").and_then(Value::as_f64) {
                    counters += 1;
                    t.push(TraceEvent::counter(
                        PID_COUNTERS,
                        "live",
                        "cache hit rate",
                        ts,
                        rate,
                    ));
                }
            }
            _ => {}
        }
    }

    if saw_refine {
        t.process_name(PID_REFINE, "harpo refine");
        t.thread_name(PID_REFINE, 0, "stages");
        t.thread_name(PID_REFINE, 1, "rounds");
    }
    if campaigns > 0 {
        t.process_name(PID_CAMPAIGN, "campaigns (virtual time: 1 inst = 1ns)");
        t.thread_name(PID_CAMPAIGN, 0, "campaigns");
    }
    if !fault_tids.is_empty() {
        t.process_name(PID_FAULTS, "fault replays (virtual time: 1 inst = 1ns)");
        fault_tids.sort_unstable();
        for tid in fault_tids {
            t.thread_name(PID_FAULTS, tid, &format!("worker {tid}"));
        }
    }
    if counters > 0 {
        t.process_name(PID_COUNTERS, "live counters");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    /// The exported file must be valid JSON with the Chrome
    /// `trace_event` object-format shape: a `traceEvents` array whose
    /// entries all carry `name`/`ph`/`ts`/`pid`/`tid`, with `dur` on
    /// every complete event and a numeric `args.value` on every counter
    /// sample.
    fn assert_trace_shape(json: &str) -> usize {
        let v = parse(json).expect("trace is valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_arr)
            .expect("traceEvents array");
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph");
            assert!(matches!(ph, "X" | "i" | "C" | "M"), "unexpected phase {ph}");
            assert!(e.get("name").and_then(Value::as_str).is_some());
            assert!(e.get("ts").and_then(Value::as_f64).is_some());
            assert!(e.get("pid").and_then(Value::as_u64).is_some());
            assert!(e.get("tid").and_then(Value::as_u64).is_some());
            if ph == "X" {
                assert!(
                    e.get("dur").and_then(Value::as_f64).is_some(),
                    "X needs dur"
                );
            }
            if ph == "C" {
                let value = e.get("args").and_then(|a| a.get("value"));
                assert!(
                    value.and_then(Value::as_f64).is_some(),
                    "C needs args.value"
                );
            }
        }
        events.len()
    }

    #[test]
    fn builder_emits_valid_trace_event_json() {
        let mut t = TraceBuilder::new();
        t.process_name(7, "campaign \"quoted\"");
        t.thread_name(7, 2, "worker 2");
        t.push(
            TraceEvent::complete(7, 2, "fault", "irf#3 sdc", 1500, 2750)
                .arg("bit", 17u64)
                .arg("mechanism", "signature"),
        );
        t.push(TraceEvent::instant(7, 2, "fault", "irf#4 masked", 9000));
        let json = t.to_json();
        assert_eq!(assert_trace_shape(&json), 4);
        // Sub-microsecond timestamps render as exact fractions.
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":2.750"), "{json}");
        // Instant events carry a scope, not a duration.
        assert!(json.contains("\"s\":\"t\""), "{json}");
    }

    #[test]
    fn exact_microseconds_render_integral() {
        let mut t = TraceBuilder::new();
        t.push(TraceEvent::complete(1, 0, "c", "n", 2_000, 5_000));
        let json = t.to_json();
        assert!(json.contains("\"ts\":2,"), "{json}");
        assert!(json.contains("\"dur\":5,"), "{json}");
    }

    #[test]
    fn journal_converter_builds_all_three_tracks() {
        let lines = [
            r#"{"kind":"iteration","v":3,"iter":0,"best":0.25,"generation_ns":4000,"mutation_ns":0,"compilation_ns":1000,"evaluation_ns":7000}"#,
            r#"{"kind":"campaign","v":3,"program":"p0","structure":"irf","faults":64,"detection":0.5,"sdc":8,"crash":24,"masked":32,"replay_insts":4096}"#,
            r#"{"kind":"autopsy","v":3,"fault":0,"worker":1,"structure":"irf","bit":17,"outcome":"sdc","mechanism":"signature","injected_dyn":100,"propagation_insts":40,"detection_latency":40}"#,
            r#"{"kind":"autopsy","v":3,"fault":1,"worker":0,"structure":"irf","bit":3,"outcome":"masked","mechanism":"never-activated","injected_dyn":0,"propagation_insts":0,"detection_latency":0}"#,
            r#"{"kind":"mystery","v":3}"#,
        ];
        let records: Vec<Value> = lines.iter().map(|l| parse(l).unwrap()).collect();
        let t = trace_from_journal(&records);
        let json = t.to_json();
        assert_trace_shape(&json);
        // Stage spans: generation + compilation + evaluation (mutation_ns=0
        // skipped), plus the round slice.
        let stages = t
            .events()
            .iter()
            .filter(|e| e.cat == "stage")
            .collect::<Vec<_>>();
        assert_eq!(stages.len(), 3);
        // Stages lay end-to-end.
        assert_eq!(stages[0].ts_ns, 0);
        assert_eq!(stages[1].ts_ns, 4000);
        assert_eq!(stages[2].ts_ns, 5000);
        assert!(t.events().iter().any(|e| e.cat == "campaign"));
        // One complete replay slice + one instant (no propagation).
        assert_eq!(t.events().iter().filter(|e| e.cat == "fault").count(), 2);
        assert!(t.events().iter().any(|e| e.cat == "fault" && e.ph == 'i'));
        // Both workers get named thread rows.
        assert!(
            json.contains("worker 0") && json.contains("worker 1"),
            "{json}"
        );
    }

    #[test]
    fn streaming_records_become_counter_tracks() {
        let lines = [
            r#"{"kind":"progress","v":4,"source":"campaign","done":32,"total":96,"elapsed_ns":5000000,"units_per_sec":6400.0,"replay_insts_skipped":1200,"eta_ns":10000000}"#,
            r#"{"kind":"progress","v":4,"source":"campaign","done":96,"total":96,"elapsed_ns":15000000,"units_per_sec":6100.0,"replay_insts_skipped":4800}"#,
            r#"{"kind":"resource","v":4,"source":"refine","elapsed_ns":7000000,"cache_hits_delta":10,"cache_misses_delta":30,"hit_rate":0.25}"#,
            r#"{"kind":"heartbeat","v":4,"worker":0,"last_unit":31}"#,
        ];
        let records: Vec<Value> = lines.iter().map(|l| parse(l).unwrap()).collect();
        let t = trace_from_journal(&records);
        let json = t.to_json();
        assert_trace_shape(&json);
        let samples: Vec<&TraceEvent> = t.events().iter().filter(|e| e.ph == 'C').collect();
        // 2 progress records × (done + faults/s + skipped) + 1 hit rate.
        assert_eq!(samples.len(), 7);
        assert!(samples.iter().all(|e| e.pid == PID_COUNTERS));
        for name in ["done", "faults/s", "replay_insts_skipped", "cache hit rate"] {
            assert!(samples.iter().any(|e| e.name == name), "missing {name}");
        }
        // Counter samples sit at the record's own elapsed_ns wall time.
        assert!(samples.iter().any(|e| e.ts_ns == 5_000_000));
        assert!(samples.iter().any(|e| e.ts_ns == 7_000_000));
        // The counter process track is named; heartbeats add nothing.
        assert!(json.contains("live counters"), "{json}");
    }

    #[test]
    fn empty_journal_converts_to_empty_trace() {
        let t = trace_from_journal(&[]);
        assert!(t.is_empty());
        assert_eq!(t.to_json(), r#"{"traceEvents":[],"displayTimeUnit":"ns"}"#);
    }
}
