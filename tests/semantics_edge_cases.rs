//! Edge-case conformance tests for HX86 instruction semantics — the long
//! tail of behaviours that fault-free correctness (and therefore fault
//! *grading* correctness) depends on.

use harpocrates::isa::asm::Asm;
use harpocrates::isa::exec::Machine;
use harpocrates::isa::form::{Catalog, Cond, FormId, Mnemonic, OpMode};
use harpocrates::isa::fu::NativeFu;
use harpocrates::isa::inst::Inst;
use harpocrates::isa::program::Program;
use harpocrates::isa::reg::Gpr::{self, *};
use harpocrates::isa::reg::Width::{self, *};
use harpocrates::isa::reg::Xmm;
use harpocrates::isa::state::ArchState;

fn f(m: Mnemonic, mode: OpMode, w: Width) -> FormId {
    Catalog::get().lookup(m, mode, w, false).unwrap()
}

fn run(build: impl FnOnce(&mut Asm)) -> ArchState {
    let mut a = Asm::new("edge");
    build(&mut a);
    a.halt();
    let p = a.finish().unwrap();
    Machine::new(&p, NativeFu).run(100_000).unwrap().state
}

#[test]
fn sbb_chains_borrow() {
    // 0 - 1 at 64 bits sets borrow; SBB then subtracts an extra 1.
    let s = run(|a| {
        a.mov_ri(B64, Rax, 0);
        a.mov_ri(B64, Rbx, 10);
        a.sub_ri(B64, Rax, 1); // borrow out
        a.op_ri(Mnemonic::Sbb, B64, Rbx, 3); // 10 - 3 - 1
    });
    assert_eq!(s.gpr(Rbx), 6);
}

#[test]
fn cmp_does_not_write() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, 5);
        a.cmp_ri(B64, Rax, 9);
    });
    assert_eq!(s.gpr(Rax), 5);
    assert!(s.flags.cf, "5 < 9 borrows");
}

#[test]
fn test_does_not_write() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, 0b1100);
        a.op_ri(Mnemonic::Test, B64, Rax, 0b0011);
    });
    assert_eq!(s.gpr(Rax), 0b1100);
    assert!(s.flags.zf, "no common bits");
}

#[test]
fn neg_zero_clears_cf() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, 0);
        a.op_r(Mnemonic::Neg, B64, Rax);
    });
    assert!(!s.flags.cf, "NEG 0 leaves CF clear");
    assert!(s.flags.zf);
    let s = run(|a| {
        a.mov_ri(B64, Rax, 5);
        a.op_r(Mnemonic::Neg, B64, Rax);
    });
    assert!(s.flags.cf, "NEG nonzero sets CF");
    assert_eq!(s.gpr(Rax) as i64, -5);
}

#[test]
fn movzx_movsx_widths() {
    let s = run(|a| {
        a.mov_ri(B64, Rbx, 0x80); // sign bit of a byte
        a.op_rr(Mnemonic::Movzx, B8, Rax, Rbx);
        a.op_rr(Mnemonic::Movsx, B8, Rcx, Rbx);
        a.mov_ri(B64, Rbx, 0x8000);
        a.op_rr(Mnemonic::Movsx, B16, Rdx, Rbx);
    });
    assert_eq!(s.gpr(Rax), 0x80);
    assert_eq!(s.gpr(Rcx), 0xFFFF_FFFF_FFFF_FF80);
    assert_eq!(s.gpr(Rdx), 0xFFFF_FFFF_FFFF_8000);
}

#[test]
fn bswap_32_and_64() {
    let s = run(|a| {
        a.mov_ri64(Rax, 0x1122_3344_5566_7788);
        a.mov_rr(B64, Rbx, Rax);
        a.op_r(Mnemonic::Bswap, B64, Rax);
        a.op_r(Mnemonic::Bswap, B32, Rbx);
    });
    assert_eq!(s.gpr(Rax), 0x8877_6655_4433_2211);
    // 32-bit BSWAP swaps the low dword and zero-extends (HX86 rule).
    assert_eq!(s.gpr(Rbx), 0x8877_6655);
}

#[test]
fn count_instructions_edge_values() {
    let s = run(|a| {
        a.mov_ri(B64, Rbx, 0);
        a.op_rr(Mnemonic::Lzcnt, B64, Rax, Rbx); // 64 for zero
        a.op_rr(Mnemonic::Tzcnt, B32, Rcx, Rbx); // 32 for zero
        a.mov_ri(B64, Rbx, 1);
        a.op_rr(Mnemonic::Lzcnt, B16, Rdx, Rbx); // 15
        a.mov_ri64(Rbx, u64::MAX);
        a.op_rr(Mnemonic::Popcnt, B64, Rbp, Rbx); // 64
    });
    assert_eq!(s.gpr(Rax), 64);
    assert_eq!(s.gpr(Rcx), 32);
    assert_eq!(s.gpr(Rdx), 15);
    assert_eq!(s.gpr(Rbp), 64);
}

#[test]
fn bt_family_reads_and_mutates() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, 0b0100);
        a.op_shift_i(Mnemonic::Bts, B64, Rax, 0); // set bit 0
        a.op_shift_i(Mnemonic::Btr, B64, Rax, 2); // clear bit 2
        a.op_shift_i(Mnemonic::Btc, B64, Rax, 3); // toggle bit 3
        a.op_shift_i(Mnemonic::Bt, B64, Rax, 3); // read bit 3 → CF
    });
    assert_eq!(s.gpr(Rax), 0b1001);
    assert!(s.flags.cf);
}

#[test]
fn bt_index_masks_to_width() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, 1);
        // Bit index 64 masks to 0 at 64-bit width.
        a.op_shift_i(Mnemonic::Bt, B64, Rax, 64);
    });
    assert!(s.flags.cf, "index 64 wraps to bit 0");
}

#[test]
fn cmov_narrow_width_truncates() {
    let s = run(|a| {
        a.mov_ri64(Rbx, 0xFFFF_FFFF_1234_5678);
        a.mov_ri(B64, Rax, 0);
        a.cmp_ri(B64, Rax, 0); // ZF=1
        a.op_rr(Mnemonic::Cmovz, B32, Rax, Rbx);
    });
    assert_eq!(s.gpr(Rax), 0x1234_5678, "32-bit cmov zero-extends");
}

#[test]
fn setcc_writes_one_byte() {
    let s = run(|a| {
        a.mov_ri64(Rax, 0xAABB_CCDD_EEFF_0011);
        a.cmp_ri(B64, Rax, 0); // nonzero → ZF=0
        a.op_r(Mnemonic::Setnz, B8, Rax);
    });
    assert_eq!(s.gpr(Rax), 1, "byte write zero-extends under HX86 rule");
}

#[test]
fn xchg_narrow() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, 0x1111);
        a.mov_ri(B64, Rbx, 0x2222);
        a.op_rr(Mnemonic::Xchg, B16, Rax, Rbx);
    });
    assert_eq!(s.gpr(Rax), 0x2222);
    assert_eq!(s.gpr(Rbx), 0x1111);
}

#[test]
fn lea_computes_without_memory_access() {
    // LEA with a base pointing outside the region must NOT trap.
    let s = run(|a| {
        a.mov_ri(B64, Rbx, 0x10); // invalid as a load address
        a.op_rm(Mnemonic::Lea, B64, Rax, Rbx, 0x30);
    });
    assert_eq!(s.gpr(Rax), 0x40);
}

#[test]
fn shifts_by_zero_preserve_flags() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, -1);
        a.add_ri(B64, Rax, 1); // CF=1, ZF=1
        a.op_shift_i(Mnemonic::Shl, B64, Rax, 0); // no-op
    });
    assert!(s.flags.cf && s.flags.zf, "zero-count shift leaves flags");
}

#[test]
fn rol_ror_full_width_identity() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, 0xBEEF);
        a.op_shift_i(Mnemonic::Rol, B16, Rax, 16); // count % 16 == 0
    });
    assert_eq!(s.gpr(Rax), 0xBEEF);
}

#[test]
fn imul_rax_8bit_uses_rdx_low_byte() {
    // HX86's documented deviation: the 8-bit widening multiply writes
    // the high half to DL rather than AH.
    let s = run(|a| {
        a.mov_ri(B64, Rax, 0x40);
        a.mov_ri(B64, Rbx, 0x40);
        a.op_r(Mnemonic::MulRax, B8, Rbx);
    });
    assert_eq!(s.gpr(Rax), 0x00, "low byte of 0x1000");
    assert_eq!(s.gpr(Rdx), 0x10, "high byte of 0x1000");
}

#[test]
fn idiv_signed_rounding_toward_zero() {
    let s = run(|a| {
        a.mov_ri(B64, Rax, -7);
        a.mov_ri(B64, Rdx, -1); // sign extension of RAX
        a.mov_ri(B64, Rbx, 2);
        a.op_r(Mnemonic::IdivRax, B64, Rbx);
    });
    assert_eq!(s.gpr(Rax) as i64, -3, "C-style truncation");
    assert_eq!(s.gpr(Rdx) as i64, -1, "remainder keeps dividend sign");
}

#[test]
fn jcc_taken_and_fallthrough_cover_all_conditions() {
    type Case = (Cond, fn(&mut Asm), bool);
    let cases: Vec<Case> = vec![
        (Cond::Z, |a| a.cmp_ri(B64, Rax, 0), true),
        (Cond::Nz, |a| a.cmp_ri(B64, Rax, 0), false),
        (Cond::C, |a| a.cmp_ri(B64, Rax, 1), true),
        (Cond::Nc, |a| a.cmp_ri(B64, Rax, 1), false),
        (Cond::S, |a| a.cmp_ri(B64, Rax, 1), true),
        (Cond::Ns, |a| a.cmp_ri(B64, Rax, 1), false),
    ];
    for (cond, prep, expect_taken) in cases {
        let s = run(|a| {
            a.mov_ri(B64, Rax, 0);
            prep(a);
            a.jcc(cond, "skip");
            a.mov_ri(B64, Rbx, 99);
            a.label("skip");
        });
        let taken = s.gpr(Rbx) != 99;
        assert_eq!(taken, expect_taken, "{cond:?}");
    }
}

#[test]
fn overflow_conditions() {
    let s = run(|a| {
        a.mov_ri64(Rax, i64::MAX as u64);
        a.add_ri(B64, Rax, 1); // signed overflow
        a.jcc(Cond::O, "ovf");
        a.mov_ri(B64, Rbx, 1);
        a.label("ovf");
    });
    assert_eq!(s.gpr(Rbx), 0, "JO taken on signed overflow");
}

#[test]
fn packed_min_max_per_lane() {
    let mut a = Asm::new("minmax");
    a.reg_init.xmms[0] = [
        1.0f32.to_bits() as u64 | (9.0f32.to_bits() as u64) << 32,
        5.0f32.to_bits() as u64 | (2.0f32.to_bits() as u64) << 32,
    ];
    a.reg_init.xmms[1] = [
        3.0f32.to_bits() as u64 | (4.0f32.to_bits() as u64) << 32,
        5.0f32.to_bits() as u64 | (8.0f32.to_bits() as u64) << 32,
    ];
    let minps = Catalog::get()
        .lookup(Mnemonic::Minps, OpMode::Xx, B32, true)
        .unwrap();
    a.push(Inst::new(minps, 0, 1, 0));
    a.halt();
    let p = a.finish().unwrap();
    let out = Machine::new(&p, NativeFu).run(100).unwrap();
    let lanes = out.state.xmm_lanes(Xmm::Xmm0).map(f32::from_bits);
    assert_eq!(lanes, [1.0, 4.0, 5.0, 2.0]);
}

#[test]
fn psubq_wraps() {
    let mut a = Asm::new("psubq");
    a.reg_init.xmms[0] = [0, 5];
    a.reg_init.xmms[1] = [1, 2];
    let psubq = Catalog::get()
        .lookup(Mnemonic::Psubq, OpMode::Xx, B32, true)
        .unwrap();
    a.push(Inst::new(psubq, 0, 1, 0));
    a.halt();
    let p = a.finish().unwrap();
    let out = Machine::new(&p, NativeFu).run(100).unwrap();
    assert_eq!(out.state.xmm(Xmm::Xmm0), [u64::MAX, 3]);
}

#[test]
fn push_imm_and_stack_layout() {
    let mut a = Asm::new("pushimm");
    let push_i = Catalog::get()
        .lookup(Mnemonic::Push, OpMode::I, B64, false)
        .unwrap();
    a.push(Inst::new(push_i, 0, 0, -5));
    a.op_r(Mnemonic::Pop, B64, Rcx);
    a.halt();
    let p = a.finish().unwrap();
    let out = Machine::new(&p, NativeFu).run(100).unwrap();
    assert_eq!(out.state.gpr(Rcx) as i64, -5, "imm sign-extends to 64");
    assert_eq!(out.state.gpr(Gpr::Rsp), p.initial_rsp(), "balanced stack");
}

#[test]
fn rip_relative_store_load_roundtrip_all_widths() {
    for w in [B32, B64] {
        let s = run(move |a| {
            a.mov_ri(B64, Rax, 0x0BAD_CAFE);
            a.push(Inst::new(
                f(Mnemonic::Mov, OpMode::MrRip, w),
                Rax.index() as u8,
                0,
                0x200,
            ));
            a.push(Inst::new(
                f(Mnemonic::Mov, OpMode::RmRip, w),
                Rbx.index() as u8,
                0,
                0x200,
            ));
        });
        assert_eq!(s.gpr(Rbx), 0x0BAD_CAFE, "width {w}");
    }
}

#[test]
fn cpuid_is_deterministic_but_flagged() {
    let cat = Catalog::get();
    let cpuid = cat
        .lookup(Mnemonic::Cpuid, OpMode::None, B64, false)
        .unwrap();
    assert!(!cat.form(cpuid).deterministic, "flagged non-deterministic");
    // Inside the simulator it still produces fixed values (it models an
    // identification leaf, not a timer).
    let p = Program::new("cpuid", vec![Inst::new(cpuid, 0, 0, 0), Inst::halt()]);
    let a = Machine::new(&p, NativeFu).run(10).unwrap();
    let b = Machine::new(&p, NativeFu).run(10).unwrap();
    assert_eq!(a.signature, b.signature);
}
