/root/repo/target/debug/deps/equivalence-207e81d97b646387.d: crates/faultsim/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-207e81d97b646387.rmeta: crates/faultsim/tests/equivalence.rs Cargo.toml

crates/faultsim/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
