//! The MiBench-like baseline: twelve general-purpose embedded kernels
//! (paper §III-C; MiBench, Guthaus et al. 2001).
//!
//! These model *ordinary workloads* rather than checking tests: loops,
//! pointer chasing, table lookups, modest arithmetic. Exactly four of
//! the twelve use SSE floating point (`basicmath_fp`, `susan_fp`,
//! `fft_fp`, `gsm_fp`), matching the paper's observation that only four
//! MiBench programs show non-zero SSE-unit fault detection.

use crate::kern::{byte_patch, f32_patch, fold_words, u64_patch};
use harpo_isa::asm::Asm;
use harpo_isa::form::{Cond, Mnemonic};
use harpo_isa::program::Program;
use harpo_isa::reg::Gpr::*;
use harpo_isa::reg::Width::*;
use harpo_isa::reg::Xmm;

/// All twelve MiBench-like kernels.
pub fn all() -> Vec<Program> {
    vec![
        basicmath_fp(),
        bitcount(),
        qsort_like(),
        susan_fp(),
        jpeg_dct(),
        dijkstra(),
        patricia_like(),
        stringsearch(),
        blowfish_like(),
        sha_like(),
        fft_fp(),
        gsm_fp(),
    ]
}

fn base(a: &mut Asm) {
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
}

/// Newton–Raphson square roots of 64 floats (basicmath's math loops).
pub fn basicmath_fp() -> Program {
    let mut a = Asm::new("mib-basicmath");
    a.mem.patches.push((0, f32_patch(0xBA51C, 256, 6)));
    base(&mut a);
    a.zero(R8);
    // 0.5 constant in xmm7.
    a.mov_ri(B64, Rax, 0x3F00_0000);
    a.op_xx(Mnemonic::Xorps, true, Xmm::Xmm7, Xmm::Xmm7);
    let xr = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::MovqXr, harpo_isa::form::OpMode::Xr, B64, false)
        .unwrap();
    a.push(harpo_isa::inst::Inst::new(xr, 7, Rax.index() as u8, 0));
    a.label("val");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 2);
    a.add_rr(B64, Rbp, Rsi);
    a.op_xm(Mnemonic::Movss, false, Xmm::Xmm0, Rbp, 0); // a
    a.op_xx(Mnemonic::Movss, false, Xmm::Xmm1, Xmm::Xmm0); // x = a
    a.mov_ri(B64, R9, 8);
    a.label("newton");
    // x = 0.5 * (x + a / x)
    a.op_xx(Mnemonic::Movss, false, Xmm::Xmm2, Xmm::Xmm0);
    a.op_xx(Mnemonic::Divss, false, Xmm::Xmm2, Xmm::Xmm1);
    a.op_xx(Mnemonic::Addss, false, Xmm::Xmm2, Xmm::Xmm1);
    a.op_xx(Mnemonic::Mulss, false, Xmm::Xmm2, Xmm::Xmm7);
    a.op_xx(Mnemonic::Movss, false, Xmm::Xmm1, Xmm::Xmm2);
    a.sub_ri(B64, R9, 1);
    a.jnz("newton");
    let mx = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::Movss, harpo_isa::form::OpMode::Mx, B32, false)
        .unwrap();
    a.push(harpo_isa::inst::Inst::new(mx, 1, Rbp.index() as u8, 1024));
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 256);
    a.jnz("val");
    fold_words(&mut a, Rsi, 1024, 128, R11, R12, 2100);
    a.halt();
    a.finish().expect("basicmath assembles")
}

/// Three bit-counting strategies over 256 words.
pub fn bitcount() -> Program {
    let mut a = Asm::new("mib-bitcount");
    a.mem.patches.push((0, u64_patch(0xB17C, 1024)));
    base(&mut a);
    a.zero(Rax); // total
    a.zero(R8);
    a.label("word");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rbx, Rbp, 0);
    // Method 1: POPCNT.
    a.op_rr(Mnemonic::Popcnt, B64, Rcx, Rbx);
    a.add_rr(B64, Rax, Rcx);
    // Method 2: Kernighan loop.
    a.mov_rr(B64, Rdx, Rbx);
    a.zero(R9);
    a.label("kern");
    a.op_rr(Mnemonic::Test, B64, Rdx, Rdx);
    a.jz("kdone");
    a.mov_rr(B64, R10, Rdx);
    a.sub_ri(B64, R10, 1);
    a.op_rr(Mnemonic::And, B64, Rdx, R10);
    a.add_ri(B64, R9, 1);
    a.jmp("kern");
    a.label("kdone");
    a.add_rr(B64, Rax, R9);
    // Method 3: nibble shifts.
    a.mov_rr(B64, Rdx, Rbx);
    a.op_shift_i(Mnemonic::Shr, B64, Rdx, 32);
    a.op_rr(Mnemonic::Xor, B64, Rdx, Rbx);
    a.op_rr(Mnemonic::Popcnt, B32, Rcx, Rdx);
    a.add_rr(B64, Rax, Rcx);
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 1024);
    a.jnz("word");
    a.store(B64, Rsi, 8192, Rax);
    a.halt();
    a.finish().expect("bitcount assembles")
}

/// Insertion sort of 96 words (qsort's small-partition behaviour).
pub fn qsort_like() -> Program {
    let mut a = Asm::new("mib-qsort");
    a.mem.patches.push((0, u64_patch(0x45067, 256)));
    base(&mut a);
    a.mov_ri(B64, R8, 1);
    a.label("outer");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rax, Rbp, 0);
    a.mov_rr(B64, R9, R8);
    a.label("inner");
    a.cmp_ri(B64, R9, 0);
    a.jz("place");
    a.mov_rr(B64, Rbp, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rbx, Rbp, -8);
    a.cmp_rr(B64, Rbx, Rax);
    a.jcc(Cond::C, "place");
    a.jz("place");
    a.store(B64, Rbp, 0, Rbx);
    a.sub_ri(B64, R9, 1);
    a.jmp("inner");
    a.label("place");
    a.mov_rr(B64, Rbp, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.store(B64, Rbp, 0, Rax);
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 256);
    a.jnz("outer");
    fold_words(&mut a, Rsi, 0, 256, R11, R12, 2100);
    a.halt();
    a.finish().expect("qsort assembles")
}

/// SUSAN-style 1D smoothing filter over 512 floats.
pub fn susan_fp() -> Program {
    let mut a = Asm::new("mib-susan");
    a.mem.patches.push((0, f32_patch(0x5A5A, 2048, 4)));
    base(&mut a);
    // 1/3 ≈ 0.3333 constant.
    a.mov_ri(B64, Rax, 0x3EAA_AAAB);
    let xr = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::MovqXr, harpo_isa::form::OpMode::Xr, B64, false)
        .unwrap();
    a.push(harpo_isa::inst::Inst::new(xr, 7, Rax.index() as u8, 0));
    a.mov_ri(B64, R8, 1);
    a.label("pix");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 2);
    a.add_rr(B64, Rbp, Rsi);
    a.op_xm(Mnemonic::Movss, false, Xmm::Xmm0, Rbp, -4);
    let xm_add = |a: &mut Asm, disp: i16| {
        a.op_xm(Mnemonic::Addss, false, Xmm::Xmm0, Rbp, disp);
    };
    xm_add(&mut a, 0);
    xm_add(&mut a, 4);
    a.op_xx(Mnemonic::Mulss, false, Xmm::Xmm0, Xmm::Xmm7);
    let mx = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::Movss, harpo_isa::form::OpMode::Mx, B32, false)
        .unwrap();
    a.push(harpo_isa::inst::Inst::new(mx, 0, Rbp.index() as u8, 8192));
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 2047);
    a.jnz("pix");
    fold_words(&mut a, Rsi, 8192, 256, R11, R12, 16500);
    a.halt();
    a.finish().expect("susan assembles")
}

/// Integer 8-point DCT butterflies over 32 rows (jpeg's hot loop).
pub fn jpeg_dct() -> Program {
    let mut a = Asm::new("mib-jpeg");
    a.mem.patches.push((0, u64_patch(0x06CF, 512)));
    base(&mut a);
    a.zero(R8); // row
    a.label("row");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 6);
    a.add_rr(B64, Rbp, Rsi);
    // Butterfly pairs (k, 7-k) with integer rotation-ish mixing.
    for k in 0..4i16 {
        a.load(B64, Rax, Rbp, k * 8);
        a.load(B64, Rbx, Rbp, (7 - k) * 8);
        a.mov_rr(B64, Rcx, Rax);
        a.add_rr(B64, Rcx, Rbx); // s = a + b
        a.sub_rr(B64, Rax, Rbx); // d = a - b
        a.imul_rr(B64, Rax, Rcx); // mix
        a.op_shift_i(Mnemonic::Sar, B64, Rax, 3);
        a.store(B64, Rbp, k * 8, Rcx);
        a.store(B64, Rbp, (7 - k) * 8, Rax);
    }
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 64);
    a.jnz("row");
    fold_words(&mut a, Rsi, 0, 512, R11, R12, 4200);
    a.halt();
    a.finish().expect("jpeg assembles")
}

/// Dijkstra relaxation over a 16-node dense graph.
pub fn dijkstra() -> Program {
    let mut a = Asm::new("mib-dijkstra");
    // Adjacency matrix of small positive weights.
    let w: Vec<u8> = u64_patch(0xD1357, 1024)
        .chunks(8)
        .flat_map(|c| {
            let v = u64::from_le_bytes(c.try_into().unwrap()) % 64 + 1;
            v.to_le_bytes()
        })
        .collect();
    a.mem.patches.push((0, w));
    base(&mut a);
    // dist[] at 2048: dist[0] = 0, others large.
    a.mov_ri(B64, Rax, 1 << 20);
    a.zero(R8);
    a.label("init");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.store(B64, Rbp, 8192, Rax);
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 32);
    a.jnz("init");
    a.zero(Rax);
    a.store(B64, Rsi, 8192, Rax);
    // Bellman-Ford style relaxation rounds (Dijkstra's effect on a dense
    // graph without a priority queue).
    a.zero(R13); // round
    a.label("round");
    a.zero(R8); // u
    a.label("u");
    a.zero(R9); // v
    a.label("v");
    // cand = dist[u] + w[u][v]
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rax, Rbp, 8192);
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 8); // u*32*8
    a.mov_rr(B64, Rbx, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbx, 3);
    a.add_rr(B64, Rbp, Rbx);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rbx, Rbp, 0);
    a.add_rr(B64, Rax, Rbx);
    // if cand < dist[v]: dist[v] = cand  (branchless via CMOV).
    a.mov_rr(B64, Rbp, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rcx, Rbp, 8192);
    a.cmp_rr(B64, Rax, Rcx);
    a.op_rr(Mnemonic::Cmovnc, B64, Rax, Rcx); // keep min
    a.store(B64, Rbp, 8192, Rax);
    a.add_ri(B64, R9, 1);
    a.cmp_ri(B64, R9, 32);
    a.jnz("v");
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 32);
    a.jnz("u");
    a.add_ri(B64, R13, 1);
    a.cmp_ri(B64, R13, 31);
    a.jnz("round");
    fold_words(&mut a, Rsi, 8192, 32, R11, R12, 8600);
    a.halt();
    a.finish().expect("dijkstra assembles")
}

/// Patricia-trie-style key insertion using bit tests over an array trie.
pub fn patricia_like() -> Program {
    let mut a = Asm::new("mib-patricia");
    a.mem.patches.push((0, u64_patch(0x9A78, 256))); // keys
    base(&mut a);
    // Trie nodes at 4096 (clear of the 2 KiB key array): 16 B/node.
    a.zero(R8); // key index
    a.mov_ri(B64, R13, 1); // next free node
    a.label("key");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rax, Rbp, 0); // key
    a.zero(R9); // node = root
    a.mov_ri(B64, R10, 12); // depth budget
    a.label("walk");
    // bit = key & 1; key >>= 1.
    a.mov_rr(B64, Rbx, Rax);
    a.op_ri(Mnemonic::And, B64, Rbx, 1);
    a.op_shift_i(Mnemonic::Shr, B64, Rax, 1);
    // child slot address = 1024 + node*16 + bit*8.
    a.mov_rr(B64, Rbp, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 4);
    a.mov_rr(B64, Rcx, Rbx);
    a.op_shift_i(Mnemonic::Shl, B64, Rcx, 3);
    a.add_rr(B64, Rbp, Rcx);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rdx, Rbp, 4096);
    a.op_rr(Mnemonic::Test, B64, Rdx, Rdx);
    a.jnz("descend");
    // Allocate a node (bounded to 120 nodes).
    a.cmp_ri(B64, R13, 1000);
    a.jz("next_key");
    a.store(B64, Rbp, 4096, R13);
    a.mov_rr(B64, Rdx, R13);
    a.add_ri(B64, R13, 1);
    a.label("descend");
    a.mov_rr(B64, R9, Rdx);
    a.sub_ri(B64, R10, 1);
    a.jnz("walk");
    a.label("next_key");
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 256);
    a.jnz("key");
    fold_words(&mut a, Rsi, 4096, 1024, R11, R12, 22000);
    a.halt();
    a.finish().expect("patricia assembles")
}

/// Naive substring search of 8 patterns over 1 KiB of text.
pub fn stringsearch() -> Program {
    let mut a = Asm::new("mib-stringsearch");
    let text: Vec<u8> = byte_patch(0x7E87, 4096)
        .iter()
        .map(|b| b % 26 + 97)
        .collect();
    let pats: Vec<u8> = byte_patch(0x9A7, 32).iter().map(|b| b % 26 + 97).collect();
    a.mem.patches.push((0, text));
    a.mem.patches.push((4096, pats));
    base(&mut a);
    a.zero(R13); // match count
    a.zero(R8); // pattern index (8 patterns × 4 bytes)
    a.label("pat");
    a.zero(R9); // text position
    a.label("pos");
    a.zero(R10); // offset in pattern
    a.label("cmp");
    // text[pos + off] vs pattern[pat*4 + off]
    a.mov_rr(B64, Rbp, R9);
    a.add_rr(B64, Rbp, R10);
    a.add_rr(B64, Rbp, Rsi);
    a.op_rm(Mnemonic::Movzx, B8, Rax, Rbp, 0);
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 2);
    a.add_rr(B64, Rbp, R10);
    a.add_rr(B64, Rbp, Rsi);
    a.op_rm(Mnemonic::Movzx, B8, Rbx, Rbp, 4096);
    a.cmp_rr(B64, Rax, Rbx);
    a.jnz("miss");
    a.add_ri(B64, R10, 1);
    a.cmp_ri(B64, R10, 4);
    a.jnz("cmp");
    a.add_ri(B64, R13, 1); // full match
    a.label("miss");
    a.add_ri(B64, R9, 1);
    a.cmp_ri(B64, R9, 4090);
    a.jnz("pos");
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 6);
    a.jnz("pat");
    a.store(B64, Rsi, 8192, R13);
    a.halt();
    a.finish().expect("stringsearch assembles")
}

/// Blowfish-style Feistel rounds with S-box lookups over 32 blocks.
pub fn blowfish_like() -> Program {
    let mut a = Asm::new("mib-blowfish");
    a.mem.patches.push((0, u64_patch(0xB10F, 256))); // blocks
    a.mem.patches.push((8192, u64_patch(0x5B0C5, 256))); // S-boxes
    base(&mut a);
    a.zero(R8);
    a.label("block");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B32, Rax, Rbp, 0); // L
    a.load(B32, Rbx, Rbp, 4); // R
    a.mov_ri(B64, R9, 16);
    a.label("round");
    // F(R) = sbox[R & 0xFF] ^ sbox[(R >> 8) & 0xFF rotated]
    a.mov_rr(B64, Rcx, Rbx);
    a.op_ri(Mnemonic::And, B64, Rcx, 0xFF);
    a.op_shift_i(Mnemonic::Shl, B64, Rcx, 3);
    a.add_rr(B64, Rcx, Rsi);
    a.load(B64, Rdx, Rcx, 8192);
    a.mov_rr(B64, Rcx, Rbx);
    a.op_shift_i(Mnemonic::Shr, B32, Rcx, 8);
    a.op_ri(Mnemonic::And, B64, Rcx, 0xFF);
    a.op_shift_i(Mnemonic::Shl, B64, Rcx, 3);
    a.add_rr(B64, Rcx, Rsi);
    a.load(B64, R10, Rcx, 8192);
    a.op_rr(Mnemonic::Xor, B64, Rdx, R10);
    a.op_rr(Mnemonic::Xor, B32, Rax, Rdx);
    // Swap L and R.
    a.op_rr(Mnemonic::Xchg, B32, Rax, Rbx);
    a.sub_ri(B64, R9, 1);
    a.jnz("round");
    a.store(B32, Rbp, 4096, Rax);
    a.store(B32, Rbp, 4100, Rbx);
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 256);
    a.jnz("block");
    fold_words(&mut a, Rsi, 4096, 256, R11, R12, 6800);
    a.halt();
    a.finish().expect("blowfish assembles")
}

/// SHA-style rotate/xor/add mixing over 64 rounds × 8 blocks.
pub fn sha_like() -> Program {
    let mut a = Asm::new("mib-sha");
    a.mem.patches.push((0, u64_patch(0x58A2, 1024)));
    base(&mut a);
    a.mov_ri64(Rax, 0x6A09_E667_F3BC_C908); // h0
    a.mov_ri64(Rbx, 0xBB67_AE85_84CA_A73B); // h1
    a.zero(R8);
    a.label("word");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rcx, Rbp, 0);
    // Mix: h0 = ror(h0, 13) ^ w + h1; h1 = rol(h1, 7) + (h0 & w).
    a.op_shift_i(Mnemonic::Ror, B64, Rax, 13);
    a.op_rr(Mnemonic::Xor, B64, Rax, Rcx);
    a.add_rr(B64, Rax, Rbx);
    a.op_shift_i(Mnemonic::Rol, B64, Rbx, 7);
    a.mov_rr(B64, Rdx, Rax);
    a.op_rr(Mnemonic::And, B64, Rdx, Rcx);
    a.add_rr(B64, Rbx, Rdx);
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 1024);
    a.jnz("word");
    a.store(B64, Rsi, 8192, Rax);
    a.store(B64, Rsi, 8200, Rbx);
    a.halt();
    a.finish().expect("sha assembles")
}

/// Radix-2 FFT-style butterfly passes over 64 complex floats.
pub fn fft_fp() -> Program {
    let mut a = Asm::new("mib-fft");
    a.mem.patches.push((0, f32_patch(0xFF7, 2048, 3))); // interleaved re/im
    base(&mut a);
    // Three butterfly passes with stride 8, 16, 32 floats; twiddle ~0.7.
    a.mov_ri(B64, Rax, 0x3F35_04F3); // cos(π/4)
    let xr = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::MovqXr, harpo_isa::form::OpMode::Xr, B64, false)
        .unwrap();
    a.push(harpo_isa::inst::Inst::new(xr, 7, Rax.index() as u8, 0));
    for (pass, stride) in [(0i32, 512i32), (1, 1024), (2, 2048)] {
        let label_top = format!("bf{pass}");
        a.zero(R8);
        a.label(label_top.clone());
        a.mov_rr(B64, Rbp, R8);
        a.add_rr(B64, Rbp, Rsi);
        // u = x[i]; v = x[i+stride] * w
        a.op_xm(Mnemonic::Movss, false, Xmm::Xmm0, Rbp, 0);
        a.op_xm(Mnemonic::Movss, false, Xmm::Xmm1, Rbp, stride as i16);
        a.op_xx(Mnemonic::Mulss, false, Xmm::Xmm1, Xmm::Xmm7);
        // x[i] = u + v; x[i+stride] = u - v.
        a.op_xx(Mnemonic::Movss, false, Xmm::Xmm2, Xmm::Xmm0);
        a.op_xx(Mnemonic::Addss, false, Xmm::Xmm2, Xmm::Xmm1);
        a.op_xx(Mnemonic::Subss, false, Xmm::Xmm0, Xmm::Xmm1);
        let mx = harpo_isa::form::Catalog::get()
            .lookup(Mnemonic::Movss, harpo_isa::form::OpMode::Mx, B32, false)
            .unwrap();
        a.push(harpo_isa::inst::Inst::new(mx, 2, Rbp.index() as u8, 0));
        a.push(harpo_isa::inst::Inst::new(mx, 0, Rbp.index() as u8, stride));
        a.add_ri(B64, R8, 4);
        a.cmp_ri(B64, R8, 8192 - stride);
        a.jcc(Cond::C, label_top);
    }
    fold_words(&mut a, Rsi, 0, 1024, R11, R12, 8600);
    a.halt();
    a.finish().expect("fft assembles")
}

/// GSM-style one-pole IIR filter over 512 samples.
pub fn gsm_fp() -> Program {
    let mut a = Asm::new("mib-gsm");
    a.mem.patches.push((0, f32_patch(0x65A, 2048, 2)));
    base(&mut a);
    // y = 0.Constants: a = 0.25, b = 0.75.
    a.mov_ri(B64, Rax, 0x3E80_0000);
    let xr = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::MovqXr, harpo_isa::form::OpMode::Xr, B64, false)
        .unwrap();
    a.push(harpo_isa::inst::Inst::new(xr, 6, Rax.index() as u8, 0)); // 0.25
    a.mov_ri(B64, Rax, 0x3F40_0000);
    a.push(harpo_isa::inst::Inst::new(xr, 7, Rax.index() as u8, 0)); // 0.75
    a.op_xx(Mnemonic::Xorps, true, Xmm::Xmm0, Xmm::Xmm0); // y
    a.zero(R8);
    a.label("sample");
    a.mov_rr(B64, Rbp, R8);
    a.add_rr(B64, Rbp, Rsi);
    a.op_xm(Mnemonic::Movss, false, Xmm::Xmm1, Rbp, 0);
    a.op_xx(Mnemonic::Mulss, false, Xmm::Xmm1, Xmm::Xmm6); // a*x
    a.op_xx(Mnemonic::Mulss, false, Xmm::Xmm0, Xmm::Xmm7); // b*y
    a.op_xx(Mnemonic::Addss, false, Xmm::Xmm0, Xmm::Xmm1);
    let mx = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::Movss, harpo_isa::form::OpMode::Mx, B32, false)
        .unwrap();
    a.push(harpo_isa::inst::Inst::new(mx, 0, Rbp.index() as u8, 8192));
    a.add_ri(B64, R8, 4);
    a.cmp_ri(B64, R8, 8192);
    a.jnz("sample");
    fold_words(&mut a, Rsi, 8192, 256, R11, R12, 16500);
    a.halt();
    a.finish().expect("gsm assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::exec::Machine;
    use harpo_isa::form::FuKind;
    use harpo_isa::fu::NativeFu;
    use harpo_uarch::OooCore;

    #[test]
    fn twelve_kernels_run_cleanly() {
        let suite = all();
        assert_eq!(suite.len(), 12);
        for p in &suite {
            let o1 = Machine::new(p, NativeFu)
                .run(20_000_000)
                .unwrap_or_else(|t| panic!("{} trapped: {t}", p.name));
            let o2 = Machine::new(p, NativeFu).run(20_000_000).unwrap();
            assert_eq!(o1.signature, o2.signature, "{} nondeterministic", p.name);
            assert!(o1.dyn_count > 1_000, "{} too trivial", p.name);
        }
    }

    #[test]
    fn exactly_four_kernels_use_sse_fp() {
        let mut fp_users = Vec::new();
        for p in all() {
            let r = OooCore::default().simulate(&p, 20_000_000).unwrap();
            let fp = r.trace.fu_op_count(FuKind::FpAdd) + r.trace.fu_op_count(FuKind::FpMul);
            if fp > 0 {
                fp_users.push(p.name.clone());
            }
        }
        assert_eq!(
            fp_users.len(),
            4,
            "paper: 4 of 12 MiBench use FP; got {:?}",
            fp_users
        );
    }

    #[test]
    fn dijkstra_distances_bounded() {
        let p = dijkstra();
        let mut m = Machine::new(&p, NativeFu);
        m.run(20_000_000).unwrap();
        for v in 0..32 {
            let d = m
                .mem()
                .read(harpo_isa::mem::DATA_BASE + 8192 + v * 8, 8)
                .unwrap();
            assert!(d < 1 << 20, "node {v} unreachable");
        }
    }

    #[test]
    fn stringsearch_finds_some_matches_deterministically() {
        let p = stringsearch();
        let mut m = Machine::new(&p, NativeFu);
        m.run(20_000_000).unwrap();
        let count = m.mem().read(harpo_isa::mem::DATA_BASE + 8192, 8).unwrap();
        assert!(count < 6 * 4090, "sane match count: {count}");
    }
}
