/root/repo/target/debug/deps/property_suite-8110e91c16371cb0.d: tests/property_suite.rs

/root/repo/target/debug/deps/property_suite-8110e91c16371cb0: tests/property_suite.rs

tests/property_suite.rs:
