/root/repo/target/debug/examples/golden_journal-7207db41e59cc0c0.d: examples/golden_journal.rs Cargo.toml

/root/repo/target/debug/examples/libgolden_journal-7207db41e59cc0c0.rmeta: examples/golden_journal.rs Cargo.toml

examples/golden_journal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
