/root/repo/target/release/deps/harpo_cli-abc7f19aec762eb3.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/release/deps/libharpo_cli-abc7f19aec762eb3.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/release/deps/libharpo_cli-abc7f19aec762eb3.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
