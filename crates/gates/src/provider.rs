//! [`FuProvider`] implementations backed by the gate-level circuits.
//!
//! * [`NetlistFu`] routes **every** graded operation through the
//!   interpreted netlists (used by equivalence tests and as the
//!   authoritative semantics);
//! * [`FaultyFu`] computes natively except on the single faulted unit.
//!   By default the faulted unit runs a **fault-specialized compiled
//!   circuit** ([`CompiledNet::compile_with_fault`]) with a per-replay
//!   operand-triple memo in front of it; [`FaultyFu::new_legacy`] keeps
//!   the pre-compilation interpreted path for differential testing and
//!   benchmarking.

use crate::adder::{faulty_add_word, int_adder, AdderScreenWords, WORD_KERNEL_OPS};
use crate::compiled::{CompiledExec, CompiledNet};
use crate::eval::{bit_of, Evaluator, FaultSet};
use crate::fpadd::fp_adder;
use crate::fpmul::fp_multiplier;
use crate::multiplier::int_multiplier;
use crate::netlist::Netlist;
use harpo_isa::fu::{FuProvider, NativeFu};
use harpo_isa::hash::MixMap;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The four graded functional units of the paper's evaluation (§III-B2,
/// structures c–f; the bit-array structures a–b are handled by the array
/// fault injector, not by netlists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GradedUnit {
    /// The 64-bit integer adder.
    IntAdder,
    /// The 32×32 integer multiplier array.
    IntMultiplier,
    /// The single-precision SSE FP adder.
    FpAdder,
    /// The single-precision SSE FP multiplier.
    FpMultiplier,
}

impl GradedUnit {
    /// All four units.
    pub const ALL: [GradedUnit; 4] = [
        GradedUnit::IntAdder,
        GradedUnit::IntMultiplier,
        GradedUnit::FpAdder,
        GradedUnit::FpMultiplier,
    ];

    /// Number of gates in this unit's netlist (the fault population).
    pub fn gate_count(self) -> usize {
        self.netlist().gate_count()
    }

    /// The unit's shared netlist.
    pub fn netlist(self) -> &'static Netlist {
        match self {
            GradedUnit::IntAdder => int_adder().netlist(),
            GradedUnit::IntMultiplier => int_multiplier().netlist(),
            GradedUnit::FpAdder => fp_adder().netlist(),
            GradedUnit::FpMultiplier => fp_multiplier().netlist(),
        }
    }

    /// Short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            GradedUnit::IntAdder => "Integer Adder",
            GradedUnit::IntMultiplier => "Integer Multiplier",
            GradedUnit::FpAdder => "SSE FP Adder",
            GradedUnit::FpMultiplier => "SSE FP Multiplier",
        }
    }
}

/// A stuck-at fault on one gate of one graded unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GateFault {
    /// Which unit is defective.
    pub unit: GradedUnit,
    /// Gate index within the unit's netlist.
    pub gate: u32,
    /// `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck_one: bool,
}

/// Scratch evaluators for all four circuits (one per thread).
#[derive(Debug)]
pub struct UnitEvaluators {
    adder: Evaluator,
    mul: Evaluator,
    fpadd: Evaluator,
    fpmul: Evaluator,
}

impl UnitEvaluators {
    /// Allocates evaluators sized for the shared circuits.
    pub fn new() -> UnitEvaluators {
        UnitEvaluators {
            adder: Evaluator::new(int_adder().netlist()),
            mul: Evaluator::new(int_multiplier().netlist()),
            fpadd: Evaluator::new(fp_adder().netlist()),
            fpmul: Evaluator::new(fp_multiplier().netlist()),
        }
    }
}

impl Default for UnitEvaluators {
    fn default() -> Self {
        UnitEvaluators::new()
    }
}

/// Routes all graded operations through fault-free netlists. Slow;
/// exists to prove `NativeFu` ≡ netlists (see tests) and as a debugging
/// aid.
#[derive(Debug, Default)]
pub struct NetlistFu {
    ev: UnitEvaluators,
}

impl NetlistFu {
    /// Creates the provider.
    pub fn new() -> NetlistFu {
        NetlistFu::default()
    }
}

impl FuProvider for NetlistFu {
    fn int_add(&mut self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        int_adder().eval(&mut self.ev.adder, a, b, cin, &FaultSet::none())
    }

    fn int_mul32(&mut self, a: u32, b: u32) -> u64 {
        int_multiplier().eval(&mut self.ev.mul, a, b, &FaultSet::none())
    }

    fn fp_add(&mut self, a: u32, b: u32) -> u32 {
        fp_adder().eval(&mut self.ev.fpadd, a, b, &FaultSet::none())
    }

    fn fp_mul(&mut self, a: u32, b: u32) -> u32 {
        fp_multiplier().eval(&mut self.ev.fpmul, a, b, &FaultSet::none())
    }
}

/// Replay-cost telemetry reported by [`FaultyFu::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuStats {
    /// Wall-clock nanoseconds spent compiling the specialized circuit.
    pub compile_ns: u64,
    /// Ops in the specialized circuit after folding and dead-gate
    /// elimination (0 for the legacy interpreted engine).
    pub compiled_ops: u64,
    /// Gates in the source netlist.
    pub source_gates: u64,
    /// Faulted-unit evaluations answered from the operand-triple memo.
    pub memo_hits: u64,
    /// Faulted-unit evaluations that consulted the memo.
    pub memo_lookups: u64,
}

/// How the faulted unit is evaluated.
#[derive(Debug)]
enum Engine {
    /// Word-level fault-specialized kernel — the adder's ripple
    /// structure makes every internal carry free in word arithmetic
    /// ([`faulty_add_word`]), so a faulted pass costs a handful of
    /// scalar ops and needs no memo (a lookup would cost more than the
    /// kernel).
    Word,
    /// Fault-specialized compiled circuit (the default for units
    /// without a word-level kernel).
    Compiled { net: CompiledNet, ex: CompiledExec },
    /// Interpreted full-netlist evaluation with a runtime force mask —
    /// the pre-compilation pipeline, kept for differential tests and
    /// the benchmark baseline.
    Legacy { faults: FaultSet, ev: Evaluator },
}

/// Native arithmetic everywhere except the single faulted unit, which is
/// evaluated with the stuck-at fault applied. `active` can be toggled to
/// model intermittent faults (outside the burst the unit behaves
/// fault-free).
#[derive(Debug)]
pub struct FaultyFu {
    fault: GateFault,
    /// Whether the fault is currently asserted (intermittent bursts
    /// toggle this; permanent faults leave it `true`).
    pub active: bool,
    native: NativeFu,
    engine: Engine,
    /// Operand-triple → faulted-result memo. A replay revisits the same
    /// operand pairs constantly (loop counters, repeated addresses), so
    /// most faulted evaluations after the first few are table lookups.
    /// Only the compiled engine consults it — the legacy engine models
    /// the pre-compilation pipeline exactly.
    memo: MixMap<(u64, u64, bool), (u64, bool)>,
    stats: FuStats,
}

impl FaultyFu {
    /// Creates a provider with the given permanent fault asserted,
    /// compiling a circuit specialized for that fault.
    pub fn new(fault: GateFault) -> FaultyFu {
        let net = fault.unit.netlist();
        Self::check(fault, net);
        // The adder's fault-specialized form is a closed-form word
        // kernel: nothing to compile, and per-pass cost below a memo
        // lookup's.
        if fault.unit == GradedUnit::IntAdder {
            return FaultyFu {
                fault,
                active: true,
                native: NativeFu,
                engine: Engine::Word,
                memo: MixMap::default(),
                stats: FuStats {
                    compiled_ops: WORD_KERNEL_OPS as u64,
                    source_gates: net.gate_count() as u64,
                    ..FuStats::default()
                },
            };
        }
        let t0 = Instant::now();
        let compiled = CompiledNet::compile_with_fault(net, fault.gate, fault.stuck_one);
        let compile_ns = t0.elapsed().as_nanos() as u64;
        let stats = FuStats {
            compile_ns,
            compiled_ops: compiled.op_count() as u64,
            source_gates: compiled.source_gate_count() as u64,
            memo_hits: 0,
            memo_lookups: 0,
        };
        let ex = compiled.exec();
        FaultyFu {
            fault,
            active: true,
            native: NativeFu,
            engine: Engine::Compiled { net: compiled, ex },
            memo: MixMap::default(),
            stats,
        }
    }

    /// Creates a provider using the interpreted engine (no
    /// specialization, no memo) — the exact pre-compilation behaviour.
    pub fn new_legacy(fault: GateFault) -> FaultyFu {
        let net = fault.unit.netlist();
        Self::check(fault, net);
        FaultyFu {
            fault,
            active: true,
            native: NativeFu,
            engine: Engine::Legacy {
                faults: FaultSet::single(fault.gate, fault.stuck_one),
                ev: Evaluator::new(net),
            },
            memo: MixMap::default(),
            stats: FuStats {
                source_gates: net.gate_count() as u64,
                ..FuStats::default()
            },
        }
    }

    fn check(fault: GateFault, net: &Netlist) {
        assert!(
            (fault.gate as usize) < net.gate_count(),
            "gate {} outside {} ({} gates)",
            fault.gate,
            net.name(),
            net.gate_count()
        );
    }

    /// The injected fault.
    pub fn fault(&self) -> GateFault {
        self.fault
    }

    /// Replay-cost telemetry accumulated so far.
    pub fn stats(&self) -> FuStats {
        self.stats
    }
}

impl FuProvider for FaultyFu {
    fn int_add(&mut self, a: u64, b: u64, cin: bool) -> (u64, bool) {
        if !(self.active && self.fault.unit == GradedUnit::IntAdder) {
            return self.native.int_add(a, b, cin);
        }
        match &mut self.engine {
            Engine::Word => faulty_add_word(self.fault.gate, self.fault.stuck_one, a, b, cin),
            Engine::Compiled { net, ex } => {
                self.stats.memo_lookups += 1;
                if let Some(&r) = self.memo.get(&(a, b, cin)) {
                    self.stats.memo_hits += 1;
                    return r;
                }
                net.run(ex, |i| match i {
                    0..=63 => bit_of(a, i),
                    64..=127 => bit_of(b, i - 64),
                    _ => cin,
                });
                let r = (net.out_word(ex, 0, 64), net.out_bit(ex, 64));
                self.memo.insert((a, b, cin), r);
                r
            }
            Engine::Legacy { faults, ev } => int_adder().eval(ev, a, b, cin, faults),
        }
    }

    fn int_mul32(&mut self, a: u32, b: u32) -> u64 {
        if !(self.active && self.fault.unit == GradedUnit::IntMultiplier) {
            return self.native.int_mul32(a, b);
        }
        match &mut self.engine {
            Engine::Word => unreachable!("the word engine is adder-only"),
            Engine::Compiled { net, ex } => {
                self.stats.memo_lookups += 1;
                if let Some(&(r, _)) = self.memo.get(&(a as u64, b as u64, false)) {
                    self.stats.memo_hits += 1;
                    return r;
                }
                net.run(ex, |i| {
                    if i < 32 {
                        bit_of(a as u64, i)
                    } else {
                        bit_of(b as u64, i - 32)
                    }
                });
                let r = net.out_word(ex, 0, 64);
                self.memo.insert((a as u64, b as u64, false), (r, false));
                r
            }
            Engine::Legacy { faults, ev } => int_multiplier().eval(ev, a, b, faults),
        }
    }

    fn fp_add(&mut self, a: u32, b: u32) -> u32 {
        if !(self.active && self.fault.unit == GradedUnit::FpAdder) {
            return self.native.fp_add(a, b);
        }
        match &mut self.engine {
            Engine::Word => unreachable!("the word engine is adder-only"),
            Engine::Compiled { net, ex } => {
                self.stats.memo_lookups += 1;
                if let Some(&(r, _)) = self.memo.get(&(a as u64, b as u64, false)) {
                    self.stats.memo_hits += 1;
                    return r as u32;
                }
                net.run(ex, |i| {
                    if i < 32 {
                        bit_of(a as u64, i)
                    } else {
                        bit_of(b as u64, i - 32)
                    }
                });
                let r = net.out_word(ex, 0, 32) as u32;
                self.memo
                    .insert((a as u64, b as u64, false), (r as u64, false));
                r
            }
            Engine::Legacy { faults, ev } => fp_adder().eval(ev, a, b, faults),
        }
    }

    fn fp_mul(&mut self, a: u32, b: u32) -> u32 {
        if !(self.active && self.fault.unit == GradedUnit::FpMultiplier) {
            return self.native.fp_mul(a, b);
        }
        match &mut self.engine {
            Engine::Word => unreachable!("the word engine is adder-only"),
            Engine::Compiled { net, ex } => {
                self.stats.memo_lookups += 1;
                if let Some(&(r, _)) = self.memo.get(&(a as u64, b as u64, false)) {
                    self.stats.memo_hits += 1;
                    return r as u32;
                }
                net.run(ex, |i| {
                    if i < 32 {
                        bit_of(a as u64, i)
                    } else {
                        bit_of(b as u64, i - 32)
                    }
                });
                let r = net.out_word(ex, 0, 32) as u32;
                self.memo
                    .insert((a as u64, b as u64, false), (r as u64, false));
                r
            }
            Engine::Legacy { faults, ev } => fp_multiplier().eval(ev, a, b, faults),
        }
    }
}

/// Packed activation screen returning lane **masks**: evaluates one
/// operand pair against up to 64 candidate faults of `unit` in a single
/// netlist pass. Bit *i* of the first mask is set when fault *i*'s
/// output differs from the fault-free result at all; bit *i* of the
/// second ("value") mask is set when the *architectural result value*
/// differs. The two masks differ only for the adder, whose carry-out is
/// a separate output: a carry-only activation raises the activation bit
/// but not the value bit.
///
/// The fault-free side uses [`NativeFu`] — bit-identical to the
/// netlists (test-enforced) and one netlist pass cheaper.
pub fn screen_activation_masks(
    unit: GradedUnit,
    ev: &mut UnitEvaluators,
    a: u64,
    b: u64,
    cin: bool,
    faults: &[(u32, bool)],
) -> (u64, u64) {
    assert!(faults.len() <= 64);
    let mut activated = 0u64;
    let mut value = 0u64;
    match unit {
        GradedUnit::IntAdder => {
            // Word-screen fast path: the golden gate-output words answer
            // each candidate with a few branchless bit tests — beating
            // both the 64-lane interpreted pass and a per-fault kernel
            // evaluation. `screen_matches_packed_evaluator` pins it
            // bit-identical to the packed evaluator.
            let words = AdderScreenWords::new(a, b, cin);
            for (i, &(gate, stuck_one)) in faults.iter().enumerate() {
                let (act, val) = words.test(gate, stuck_one);
                activated |= (act as u64) << i;
                value |= (val as u64) << i;
            }
        }
        GradedUnit::IntMultiplier => {
            let golden = NativeFu.int_mul32(a as u32, b as u32);
            let mut lanes = [0u64; 64];
            let fs = FaultSet::lanes(faults);
            int_multiplier().eval_lanes(&mut ev.mul, a as u32, b as u32, &fs, &mut lanes);
            for (i, &l) in lanes.iter().take(faults.len()).enumerate() {
                if l != golden {
                    activated |= 1 << i;
                }
            }
            value = activated;
        }
        GradedUnit::FpAdder => {
            let golden = NativeFu.fp_add(a as u32, b as u32);
            let mut lanes = [0u64; 64];
            let fs = FaultSet::lanes(faults);
            fp_adder().eval_lanes(&mut ev.fpadd, a as u32, b as u32, &fs, &mut lanes);
            for (i, &l) in lanes.iter().take(faults.len()).enumerate() {
                if l as u32 != golden {
                    activated |= 1 << i;
                }
            }
            value = activated;
        }
        GradedUnit::FpMultiplier => {
            let golden = NativeFu.fp_mul(a as u32, b as u32);
            let mut lanes = [0u64; 64];
            let fs = FaultSet::lanes(faults);
            fp_multiplier().eval_lanes(&mut ev.fpmul, a as u32, b as u32, &fs, &mut lanes);
            for (i, &l) in lanes.iter().take(faults.len()).enumerate() {
                if l as u32 != golden {
                    activated |= 1 << i;
                }
            }
            value = activated;
        }
    }
    (activated, value)
}

/// Packed activation screen: evaluates one operand pair against up to 64
/// candidate faults of `unit` in a single netlist pass, writing for each
/// fault whether its output differs from the fault-free result.
///
/// This is the 64× speed-up that makes statistical gate-fault campaigns
/// tractable (DESIGN.md §6).
pub fn screen_activation(
    unit: GradedUnit,
    ev: &mut UnitEvaluators,
    a: u64,
    b: u64,
    cin: bool,
    faults: &[(u32, bool)],
    activated: &mut [bool],
) {
    assert!(activated.len() >= faults.len());
    let (act, _) = screen_activation_masks(unit, ev, a, b, cin, faults);
    for (i, slot) in activated.iter_mut().take(faults.len()).enumerate() {
        *slot = act >> i & 1 == 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The adder arm of [`screen_activation_masks`] runs the word
    /// kernel per fault instead of a packed netlist pass; this pins the
    /// two bit-identical over random fault sets and operand triples.
    #[test]
    fn screen_matches_packed_evaluator() {
        let net = int_adder().netlist();
        let mut ev = UnitEvaluators::new();
        let mut s = 0x5C2E_E41Du64;
        let mut rand = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..16 {
            let pairs: Vec<(u32, bool)> = (0..64)
                .map(|_| {
                    let r = rand();
                    ((r % net.gate_count() as u64) as u32, r >> 32 & 1 == 1)
                })
                .collect();
            let (a, b) = (rand(), rand());
            let cin = rand() & 1 == 1;
            let (act, value) =
                screen_activation_masks(GradedUnit::IntAdder, &mut ev, a, b, cin, &pairs);
            // Reference: the packed 64-lane interpreted evaluation.
            let fs = FaultSet::lanes(&pairs);
            let (gs, gc) = NativeFu.int_add(a, b, cin);
            let mut out = [(0u64, false); 64];
            int_adder().eval_lanes(&mut ev.adder, a, b, cin, &fs, &mut out);
            let (mut ract, mut rvalue) = (0u64, 0u64);
            for (i, &(lane_s, lane_c)) in out.iter().enumerate() {
                if lane_s != gs {
                    rvalue |= 1 << i;
                }
                if lane_s != gs || lane_c != gc {
                    ract |= 1 << i;
                }
            }
            assert_eq!((act, value), (ract, rvalue), "{a:#x}+{b:#x}+{cin}");
        }
    }

    #[test]
    fn netlist_fu_equals_native_fu() {
        let mut net = NetlistFu::new();
        let mut nat = NativeFu;
        let mut s = 7u64;
        for _ in 0..100 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = s;
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = s;
            assert_eq!(net.int_add(a, b, s & 1 == 1), nat.int_add(a, b, s & 1 == 1));
            assert_eq!(
                net.int_mul32(a as u32, b as u32),
                nat.int_mul32(a as u32, b as u32)
            );
            assert_eq!(
                net.fp_add(a as u32, b as u32),
                nat.fp_add(a as u32, b as u32)
            );
            assert_eq!(
                net.fp_mul(a as u32, b as u32),
                nat.fp_mul(a as u32, b as u32)
            );
        }
    }

    #[test]
    fn faulty_fu_only_affects_its_unit() {
        let mut fu = FaultyFu::new(GateFault {
            unit: GradedUnit::IntMultiplier,
            gate: 100,
            stuck_one: true,
        });
        let mut nat = NativeFu;
        // Non-faulted units behave natively.
        assert_eq!(fu.int_add(5, 7, false), nat.int_add(5, 7, false));
        assert_eq!(
            fu.fp_add(0x3F80_0000, 0x4000_0000),
            nat.fp_add(0x3F80_0000, 0x4000_0000)
        );
        // Deactivated fault behaves natively too.
        fu.active = false;
        assert_eq!(fu.int_mul32(1234, 5678), nat.int_mul32(1234, 5678));
    }

    #[test]
    fn compiled_engine_matches_legacy_engine() {
        let mut s = 0x5EED_u64;
        for unit in GradedUnit::ALL {
            let n = unit.gate_count() as u32;
            for f in 0..12u32 {
                let fault = GateFault {
                    unit,
                    gate: f.wrapping_mul(2654435761) % n,
                    stuck_one: f % 2 == 0,
                };
                let mut new = FaultyFu::new(fault);
                let mut old = FaultyFu::new_legacy(fault);
                for _ in 0..20 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = s;
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let b = s;
                    match unit {
                        GradedUnit::IntAdder => assert_eq!(
                            new.int_add(a, b, s & 1 == 1),
                            old.int_add(a, b, s & 1 == 1),
                            "{fault:?}"
                        ),
                        GradedUnit::IntMultiplier => assert_eq!(
                            new.int_mul32(a as u32, b as u32),
                            old.int_mul32(a as u32, b as u32),
                            "{fault:?}"
                        ),
                        GradedUnit::FpAdder => assert_eq!(
                            new.fp_add(a as u32, b as u32),
                            old.fp_add(a as u32, b as u32),
                            "{fault:?}"
                        ),
                        GradedUnit::FpMultiplier => assert_eq!(
                            new.fp_mul(a as u32, b as u32),
                            old.fp_mul(a as u32, b as u32),
                            "{fault:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn memo_short_circuits_repeated_operands() {
        let mut fu = FaultyFu::new(GateFault {
            unit: GradedUnit::IntMultiplier,
            gate: 7,
            stuck_one: true,
        });
        let first = fu.int_mul32(40, 2);
        let again = fu.int_mul32(40, 2);
        assert_eq!(first, again);
        let st = fu.stats();
        assert_eq!(st.memo_lookups, 2);
        assert_eq!(st.memo_hits, 1);
        assert!(st.compiled_ops > 0 && st.compiled_ops <= st.source_gates);
        // The legacy engine never memoizes.
        let mut old = FaultyFu::new_legacy(fu.fault());
        old.int_mul32(40, 2);
        old.int_mul32(40, 2);
        assert_eq!(old.stats().memo_lookups, 0);
    }

    /// The adder's word engine never consults the memo — the kernel is
    /// cheaper than a lookup — but still reports its nominal op count.
    #[test]
    fn word_engine_skips_the_memo() {
        let mut fu = FaultyFu::new(GateFault {
            unit: GradedUnit::IntAdder,
            gate: 7,
            stuck_one: true,
        });
        fu.int_add(40, 2, false);
        fu.int_add(40, 2, false);
        let st = fu.stats();
        assert_eq!(st.memo_lookups, 0);
        assert_eq!(st.compile_ns, 0);
        assert_eq!(st.compiled_ops, WORD_KERNEL_OPS as u64);
    }

    #[test]
    fn screen_matches_single_fault_eval() {
        let mut ev = UnitEvaluators::new();
        let n = int_adder().netlist().gate_count() as u32;
        let faults: Vec<(u32, bool)> = (0..48u32).map(|i| (i * 11 % n, i % 3 == 0)).collect();
        let mut act = vec![false; faults.len()];
        screen_activation(
            GradedUnit::IntAdder,
            &mut ev,
            0xFF00,
            0x00FF,
            false,
            &faults,
            &mut act,
        );
        for (i, &(g, s1)) in faults.iter().enumerate() {
            let mut fu = FaultyFu::new(GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: s1,
            });
            let got = fu.int_add(0xFF00, 0x00FF, false);
            let golden = NativeFu.int_add(0xFF00, 0x00FF, false);
            assert_eq!(act[i], got != golden, "fault ({g},{s1})");
        }
    }

    #[test]
    fn value_mask_is_subset_of_activation_mask() {
        let mut ev = UnitEvaluators::new();
        for unit in GradedUnit::ALL {
            let n = unit.gate_count() as u32;
            let faults: Vec<(u32, bool)> = (0..64u32).map(|i| (i * 13 % n, i % 2 == 0)).collect();
            let (act, val) = screen_activation_masks(
                unit,
                &mut ev,
                0xDEAD_BEEF_1234_5678,
                0x0F0F_F0F0_55AA_AA55,
                true,
                &faults,
            );
            assert_eq!(val & !act, 0, "{unit:?}: value bit without activation");
            if unit != GradedUnit::IntAdder {
                assert_eq!(val, act, "{unit:?}: no separate carry output");
            }
        }
    }

    #[test]
    fn all_units_report_gate_counts() {
        for u in GradedUnit::ALL {
            assert!(u.gate_count() > 100, "{} too small", u.label());
        }
    }
}
