/root/repo/target/debug/deps/ablation_l1d-46ae396957091c93.d: crates/bench/src/bin/ablation_l1d.rs Cargo.toml

/root/repo/target/debug/deps/libablation_l1d-46ae396957091c93.rmeta: crates/bench/src/bin/ablation_l1d.rs Cargo.toml

crates/bench/src/bin/ablation_l1d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
