/root/repo/target/release/deps/fig04_arrays-685124eb9508aa58.d: crates/bench/src/bin/fig04_arrays.rs

/root/repo/target/release/deps/fig04_arrays-685124eb9508aa58: crates/bench/src/bin/fig04_arrays.rs

crates/bench/src/bin/fig04_arrays.rs:
