//! `harpo archive` / `harpo history` — the append-only run index.
//!
//! `archive` ingests run journals and `BENCH_*.json` snapshots and
//! appends one compact `run` record per input to a JSONL index
//! (default `results/history.jsonl`): detection/coverage per campaign,
//! refinement summary, masking-mechanism tallies, and the bench keys.
//! `history` renders the index as Markdown trend tables (speedups,
//! detection rates, mechanism shares across runs) — and `harpo report`
//! embeds the same tables when a journal input carries `run` records.
//!
//! The index is plain schema-v5 journal lines, so everything that reads
//! journals (report, watch, diff's schema guard) handles it unchanged.
//! Rendering sorts runs by id, making the tables independent of ingest
//! order — shards can append concurrently and the history still renders
//! identically.

use crate::args::Args;
use crate::report::MECHANISM_LABELS;
use harpo_telemetry::json::Value;
use harpo_telemetry::{Journal, Record};
use std::fmt::Write as _;

/// Default index path, under the `results/` artifact directory.
pub const DEFAULT_INDEX: &str = "results/history.jsonl";

/// `harpo archive` entry point: append one `run` record per input.
pub fn archive(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    if args.positional.is_empty() {
        return Err(
            "archive needs at least one journal (.jsonl) or bench (.json) file".to_string(),
        );
    }
    let index = args.get("index").unwrap_or(DEFAULT_INDEX);
    let mut lines = String::new();
    for path in &args.positional {
        let content = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let id = run_id(path, args.get("id"), args.positional.len());
        let rec = run_record(path, &content, &id)?;
        lines.push_str(&rec.to_json());
        lines.push('\n');
    }
    if let Some(dir) = std::path::Path::new(index).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(index)
        .map_err(|e| format!("{index}: {e}"))?;
    f.write_all(lines.as_bytes())
        .map_err(|e| format!("{index}: {e}"))?;
    println!("archived {} run(s) into {index}", args.positional.len());
    Ok(())
}

/// `harpo history` entry point: render the index as Markdown.
pub fn history(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let index = args.get("index").unwrap_or(DEFAULT_INDEX);
    let content = std::fs::read_to_string(index).map_err(|e| format!("{index}: {e}"))?;
    let md = render_history_md(index, &content)?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &md).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{md}"),
    }
    Ok(())
}

/// The run id stamped into the index: `--id` verbatim for a single
/// input, `--id` plus the file stem when archiving several at once,
/// the stem alone otherwise.
fn run_id(path: &str, flag: Option<&str>, inputs: usize) -> String {
    let stem = std::path::Path::new(path)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or(path)
        .trim_end_matches(".jsonl")
        .trim_end_matches(".json")
        .to_string();
    match flag {
        Some(id) if inputs == 1 => id.to_string(),
        Some(id) => format!("{id}-{stem}"),
        None => stem,
    }
}

/// Distills one input file into its `run` index record.
///
/// # Errors
/// Unreadable journals (interior corruption, newer schema) and files
/// that are neither a journal nor a flat bench snapshot.
pub fn run_record(path: &str, content: &str, id: &str) -> Result<Record, String> {
    let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(format!("{path}: empty file"));
    }
    let first = harpo_telemetry::json::parse(lines[0]).map_err(|e| format!("{path}:1: {e}"))?;
    let mut rec = Record::new("run").field("id", id).field("source", path);
    if first.get("kind").is_none() {
        // Bench snapshot: keep the whole flat object.
        if lines.len() > 1 {
            return Err(format!("{path}: multi-line file without journal records"));
        }
        let Value::Obj(_) = first else {
            return Err(format!("{path}: expected a JSON object"));
        };
        return Ok(rec.field("bench", first));
    }
    let journal = Journal::parse(path, content)?;
    if let Some(s) = journal.of_kind("summary").first() {
        if let Some(iters) = s.get("iterations").and_then(Value::as_u64) {
            rec = rec.field("iterations", iters);
        }
        if let Some(cov) = s.get("champion_coverage").and_then(Value::as_f64) {
            rec = rec.field("champion_coverage", cov);
        }
    }
    let campaigns: Vec<Value> = journal
        .of_kind("campaign")
        .into_iter()
        .map(|c| {
            let copy = |key: &str| (key.to_string(), c.get(key).cloned().unwrap_or(Value::Null));
            Value::Obj(vec![
                copy("program"),
                copy("structure"),
                copy("coverage"),
                copy("detection"),
                copy("faults"),
                copy("sdc"),
                copy("crash"),
                copy("masked"),
            ])
        })
        .collect();
    if !campaigns.is_empty() {
        rec = rec.field("campaigns", campaigns);
    }
    let autopsies = journal.of_kind("autopsy");
    if !autopsies.is_empty() {
        let tally: Vec<(String, Value)> = MECHANISM_LABELS
            .iter()
            .filter_map(|&label| {
                let n = autopsies
                    .iter()
                    .filter(|a| a.get("mechanism").and_then(Value::as_str) == Some(label))
                    .count();
                (n > 0).then(|| (label.to_string(), Value::from(n)))
            })
            .collect();
        rec = rec.field("mechanisms", Value::Obj(tally));
    }
    Ok(rec)
}

/// Renders the full `harpo history` document from the index text.
///
/// # Errors
/// Unreadable index lines or an index with no `run` records.
pub fn render_history_md(path: &str, content: &str) -> Result<String, String> {
    let journal = Journal::parse(path, content)?;
    let runs = journal.of_kind("run");
    if runs.is_empty() {
        return Err(format!(
            "{path}: no run records — `harpo archive` some first"
        ));
    }
    let mut out = String::new();
    out.push_str("# Harpocrates run history\n\n");
    let _ = writeln!(out, "Index: `{path}` ({} runs).\n", runs.len());
    render_history(&mut out, &runs);
    Ok(out)
}

/// Renders the trend tables for a set of `run` records (shared between
/// `harpo history` and the `harpo report` embedding). Runs render
/// sorted by id (ties by full record), so the output is independent of
/// the order they were archived in.
pub fn render_history(out: &mut String, runs: &[&Value]) {
    let mut sorted: Vec<&Value> = runs.to_vec();
    sorted.sort_by_cached_key(|r| (id_of(r).to_string(), r.to_json()));

    out.push_str("### Run history\n\n");
    out.push_str("| run | source | iterations | champion coverage |\n|---|---|---|---|\n");
    for r in &sorted {
        let iters = r
            .get("iterations")
            .and_then(Value::as_u64)
            .map(|n| n.to_string())
            .unwrap_or_else(|| "—".to_string());
        let cov = r
            .get("champion_coverage")
            .and_then(Value::as_f64)
            .map(|x| format!("{:.2}%", x * 100.0))
            .unwrap_or_else(|| "—".to_string());
        let _ = writeln!(
            out,
            "| {} | `{}` | {iters} | {cov} |",
            id_of(r),
            r.get("source").and_then(Value::as_str).unwrap_or("?"),
        );
    }
    out.push('\n');

    // Detection-rate trends: one row per archived campaign.
    let campaign_rows: Vec<(&Value, &Value)> = sorted
        .iter()
        .flat_map(|r| {
            r.get("campaigns")
                .and_then(Value::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(move |c| (*r, c))
        })
        .collect();
    if !campaign_rows.is_empty() {
        out.push_str("#### Detection trends\n\n");
        out.push_str(
            "| run | program | structure | detection | coverage | faults |\n|---|---|---|---|---|---|\n",
        );
        for (r, c) in &campaign_rows {
            let pct = |key: &str| {
                c.get(key)
                    .and_then(Value::as_f64)
                    .map(|x| format!("{:.2}%", x * 100.0))
                    .unwrap_or_else(|| "—".to_string())
            };
            let _ = writeln!(
                out,
                "| {} | `{}` | {} | {} | {} | {} |",
                id_of(r),
                c.get("program").and_then(Value::as_str).unwrap_or("?"),
                c.get("structure").and_then(Value::as_str).unwrap_or("?"),
                pct("detection"),
                pct("coverage"),
                c.get("faults").and_then(Value::as_u64).unwrap_or(0),
            );
        }
        out.push('\n');
    }

    // Speedup trends: one column per run carrying bench keys.
    let bench_runs: Vec<&Value> = sorted
        .iter()
        .copied()
        .filter(|r| r.get("bench").is_some())
        .collect();
    let mut speedup_keys: Vec<&str> = bench_runs
        .iter()
        .filter_map(|r| r.get("bench"))
        .flat_map(|b| match b {
            Value::Obj(fields) => fields.as_slice(),
            _ => &[],
        })
        .map(|(k, _)| k.as_str())
        .filter(|k| k.contains("speedup"))
        .collect();
    speedup_keys.sort_unstable();
    speedup_keys.dedup();
    if !speedup_keys.is_empty() {
        out.push_str("#### Speedup trends\n\n");
        let _ = write!(out, "| key |");
        for r in &bench_runs {
            let _ = write!(out, " {} |", id_of(r));
        }
        let _ = write!(out, "\n|---|");
        for _ in &bench_runs {
            out.push_str("---|");
        }
        out.push('\n');
        for key in &speedup_keys {
            let _ = write!(out, "| `{key}` |");
            for r in &bench_runs {
                let cell = r
                    .get("bench")
                    .and_then(|b| b.get(key))
                    .and_then(Value::as_f64)
                    .map(|x| format!("{x:.3}×"))
                    .unwrap_or_else(|| "—".to_string());
                let _ = write!(out, " {cell} |");
            }
            out.push('\n');
        }
        out.push('\n');
    }

    // Mechanism shares: how each run's faults were masked or caught.
    let mech_runs: Vec<&Value> = sorted
        .iter()
        .copied()
        .filter(|r| r.get("mechanisms").is_some())
        .collect();
    if !mech_runs.is_empty() {
        out.push_str("#### Mechanism shares\n\n");
        let _ = write!(out, "| run |");
        for label in MECHANISM_LABELS {
            let _ = write!(out, " {label} |");
        }
        let _ = write!(out, "\n|---|");
        for _ in MECHANISM_LABELS {
            out.push_str("---|");
        }
        out.push('\n');
        for r in &mech_runs {
            let m = r.get("mechanisms");
            let total: f64 = MECHANISM_LABELS
                .iter()
                .filter_map(|&l| m.and_then(|m| m.get(l)).and_then(Value::as_f64))
                .sum();
            let _ = write!(out, "| {} |", id_of(r));
            for label in MECHANISM_LABELS {
                let n = m
                    .and_then(|m| m.get(label))
                    .and_then(Value::as_f64)
                    .unwrap_or(0.0);
                let cell = if total == 0.0 {
                    "—".to_string()
                } else {
                    format!("{:.1}%", n / total * 100.0)
                };
                let _ = write!(out, " {cell} |");
            }
            out.push('\n');
        }
        out.push('\n');
    }
}

fn id_of(r: &Value) -> &str {
    r.get("id").and_then(Value::as_str).unwrap_or("?")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grade_journal() -> String {
        [
            r#"{"kind":"meta","v":5,"schema":5,"git_commit":"abc","threads":2,"config_hash":"f00d"}"#,
            r#"{"kind":"campaign","v":5,"program":"t0","structure":"IRF","coverage":0.8,"detection":0.7,"faults":128,"sdc":60,"crash":30,"masked":38}"#,
            r#"{"kind":"autopsy","v":5,"fault":0,"structure":"IRF","outcome":"sdc","mechanism":"signature","key":"IRF/00/p1.b2.c3/transient"}"#,
            r#"{"kind":"autopsy","v":5,"fault":1,"structure":"IRF","outcome":"masked","mechanism":"overwrite","key":"IRF/00/p4.b5.c6/transient"}"#,
        ]
        .join("\n")
    }

    #[test]
    fn journal_distills_to_a_run_record() {
        let rec = run_record("results/irf.jsonl", &grade_journal(), "run-a").unwrap();
        let v = harpo_telemetry::json::parse(&rec.to_json()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("id").unwrap().as_str(), Some("run-a"));
        let campaigns = v.get("campaigns").unwrap().as_arr().unwrap();
        assert_eq!(campaigns.len(), 1);
        assert_eq!(campaigns[0].get("detection").unwrap().as_f64(), Some(0.7));
        let mech = v.get("mechanisms").unwrap();
        assert_eq!(mech.get("signature").unwrap().as_u64(), Some(1));
        assert_eq!(mech.get("overwrite").unwrap().as_u64(), Some(1));
        assert!(mech.get("trap").is_none(), "zero tallies are omitted");
    }

    #[test]
    fn bench_snapshot_distills_to_a_run_record() {
        let rec = run_record(
            "BENCH_pipeline.json",
            r#"{"population_speedup_t4":2.3,"evaluate_ns":1000}"#,
            "seed",
        )
        .unwrap();
        let v = harpo_telemetry::json::parse(&rec.to_json()).unwrap();
        assert_eq!(
            v.get("bench")
                .unwrap()
                .get("population_speedup_t4")
                .unwrap()
                .as_f64(),
            Some(2.3)
        );
    }

    #[test]
    fn history_renders_order_independently() {
        let a = run_record("a.jsonl", &grade_journal(), "run-a")
            .unwrap()
            .to_json();
        let b = run_record(
            "BENCH_pipeline.json",
            r#"{"population_speedup_t4":2.3}"#,
            "seed-bench",
        )
        .unwrap()
        .to_json();
        let ab = render_history_md("h.jsonl", &format!("{a}\n{b}\n")).unwrap();
        let ba = render_history_md("h.jsonl", &format!("{b}\n{a}\n")).unwrap();
        assert_eq!(ab, ba, "archive ingest must be order-independent");
        assert!(ab.contains("#### Detection trends"), "{ab}");
        assert!(ab.contains("| `population_speedup_t4` | 2.300× |"), "{ab}");
        assert!(ab.contains("#### Mechanism shares"), "{ab}");
        assert!(ab.contains("| run-a |"), "{ab}");
    }

    #[test]
    fn empty_index_errors() {
        assert!(render_history_md("h.jsonl", "").is_err());
        let no_runs = r#"{"kind":"summary","v":5,"iterations":1}"#;
        assert!(render_history_md("h.jsonl", no_runs).is_err());
    }

    #[test]
    fn run_ids_default_to_file_stems() {
        assert_eq!(run_id("results/irf.jsonl", None, 1), "irf");
        assert_eq!(run_id("BENCH_pipeline.json", None, 2), "BENCH_pipeline");
        assert_eq!(run_id("a.jsonl", Some("nightly"), 1), "nightly");
        assert_eq!(run_id("a.jsonl", Some("nightly"), 2), "nightly-a");
    }
}
