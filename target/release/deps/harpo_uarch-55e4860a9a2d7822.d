/root/repo/target/release/deps/harpo_uarch-55e4860a9a2d7822.d: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/release/deps/libharpo_uarch-55e4860a9a2d7822.rlib: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

/root/repo/target/release/deps/libharpo_uarch-55e4860a9a2d7822.rmeta: crates/uarch/src/lib.rs crates/uarch/src/cache.rs crates/uarch/src/config.rs crates/uarch/src/core.rs crates/uarch/src/trace.rs

crates/uarch/src/lib.rs:
crates/uarch/src/cache.rs:
crates/uarch/src/config.rs:
crates/uarch/src/core.rs:
crates/uarch/src/trace.rs:
