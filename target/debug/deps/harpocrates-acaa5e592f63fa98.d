/root/repo/target/debug/deps/harpocrates-acaa5e592f63fa98.d: src/lib.rs

/root/repo/target/debug/deps/libharpocrates-acaa5e592f63fa98.rlib: src/lib.rs

/root/repo/target/debug/deps/libharpocrates-acaa5e592f63fa98.rmeta: src/lib.rs

src/lib.rs:
