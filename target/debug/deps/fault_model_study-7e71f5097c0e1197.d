/root/repo/target/debug/deps/fault_model_study-7e71f5097c0e1197.d: crates/bench/src/bin/fault_model_study.rs Cargo.toml

/root/repo/target/debug/deps/libfault_model_study-7e71f5097c0e1197.rmeta: crates/bench/src/bin/fault_model_study.rs Cargo.toml

crates/bench/src/bin/fault_model_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
