(function() {
    const implementors = Object.fromEntries([["harpo_telemetry",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"harpo_telemetry/sink/struct.JsonlSink.html\" title=\"struct harpo_telemetry::sink::JsonlSink\">JsonlSink</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/drop/trait.Drop.html\" title=\"trait core::ops::drop::Drop\">Drop</a> for <a class=\"struct\" href=\"harpo_telemetry/span/struct.Span.html\" title=\"struct harpo_telemetry::span::Span\">Span</a>&lt;'_&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[594]}