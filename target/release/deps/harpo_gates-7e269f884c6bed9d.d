/root/repo/target/release/deps/harpo_gates-7e269f884c6bed9d.d: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs

/root/repo/target/release/deps/libharpo_gates-7e269f884c6bed9d.rlib: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs

/root/repo/target/release/deps/libharpo_gates-7e269f884c6bed9d.rmeta: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs

crates/gates/src/lib.rs:
crates/gates/src/adder.rs:
crates/gates/src/compiled.rs:
crates/gates/src/components.rs:
crates/gates/src/eval.rs:
crates/gates/src/fp_common.rs:
crates/gates/src/fpadd.rs:
crates/gates/src/fpmul.rs:
crates/gates/src/multiplier.rs:
crates/gates/src/netlist.rs:
crates/gates/src/provider.rs:
