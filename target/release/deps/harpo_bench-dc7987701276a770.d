/root/repo/target/release/deps/harpo_bench-dc7987701276a770.d: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/release/deps/libharpo_bench-dc7987701276a770.rlib: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/release/deps/libharpo_bench-dc7987701276a770.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
