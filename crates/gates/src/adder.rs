//! The graded 64-bit integer adder circuit.
//!
//! A ripple-carry adder with carry-in and carry-out: the unit every
//! `ADD`/`ADC`/`SUB`/`SBB`/`CMP`/`INC`/`DEC`/`NEG`/`PADDQ`/`PSUBQ`
//! instruction passes through (the semantics layer pre-inverts the second
//! operand for subtraction, exactly as ALU hardware does).

use crate::components::ripple_add;
use crate::eval::{bit_of, Evaluator, FaultSet};
use crate::netlist::{Netlist, NetlistBuilder, WireId};
use std::sync::OnceLock;

/// The 64-bit adder: 64+64+carry-in inputs, 64-bit sum + carry-out.
#[derive(Debug)]
pub struct AdderCircuit {
    net: Netlist,
    sum: Vec<WireId>,
    cout: WireId,
}

impl AdderCircuit {
    /// Builds the circuit (prefer the shared [`int_adder`] instance).
    pub fn build() -> AdderCircuit {
        let mut b = NetlistBuilder::new("int-adder-64");
        let a = b.input_bus(64);
        let bb = b.input_bus(64);
        let cin = b.input();
        let (sum, cout) = ripple_add(&mut b, &a, &bb, cin);
        let mut outs = sum.clone();
        outs.push(cout);
        let net = b.finish(outs);
        AdderCircuit { net, sum, cout }
    }

    /// The underlying netlist (gate population for fault sampling).
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// Evaluates lane 0 with an optional fault set.
    pub fn eval(
        &self,
        ev: &mut Evaluator,
        a: u64,
        b: u64,
        cin: bool,
        faults: &FaultSet,
    ) -> (u64, bool) {
        ev.run(
            &self.net,
            |i| match i {
                0..=63 => bit_of(a, i),
                64..=127 => bit_of(b, i - 64),
                _ => cin,
            },
            faults,
        );
        (ev.bus(&self.sum, 0), ev.wire(self.cout, 0))
    }

    /// Packed evaluation: grades up to 64 faults (fault *i* in lane *i*)
    /// in a single pass, writing each lane's `(sum, carry)` into `out`.
    pub fn eval_lanes(
        &self,
        ev: &mut Evaluator,
        a: u64,
        b: u64,
        cin: bool,
        faults: &FaultSet,
        out: &mut [(u64, bool); 64],
    ) {
        ev.run(
            &self.net,
            |i| match i {
                0..=63 => bit_of(a, i),
                64..=127 => bit_of(b, i - 64),
                _ => cin,
            },
            faults,
        );
        let mut sums = [0u64; 64];
        ev.bus_all_lanes(&self.sum, &mut sums);
        for lane in 0..64 {
            out[lane] = (sums[lane], ev.wire(self.cout, lane as u8));
        }
    }
}

/// The process-wide adder circuit (built once).
pub fn int_adder() -> &'static AdderCircuit {
    static C: OnceLock<AdderCircuit> = OnceLock::new();
    C.get_or_init(AdderCircuit::build)
}

/// Nominal operation count of the [`faulty_add_word`] kernel, reported
/// as the specialized-op telemetry for word-specialized adder replays.
pub const WORD_KERNEL_OPS: usize = 20;

/// Word-level fault-specialized adder evaluation: the faulty `(sum,
/// carry_out)` of the graded ripple-carry adder with a single stuck-at
/// on `gate`, in ~[`WORD_KERNEL_OPS`] scalar operations instead of a
/// netlist pass.
///
/// [`ripple_add`] emits exactly five gates per bit slice `k`, in order:
/// `x = a_k ^ b_k`, `s_k = x ^ c_k`, `g = a_k & b_k`, `p = x & c_k`,
/// `c_{k+1} = g | p` — so `gate / 5` names the slice and `gate % 5` the
/// role. Every golden carry is free in word arithmetic (`s = a ^ b ^ c`
/// per slice ⇒ `c = a ^ b ^ sum`), so the kernel forces the faulted
/// gate's output, re-derives the slice's `s_k` and `c_{k+1}`, keeps the
/// golden low bits and natively re-adds the upper field with the
/// corrupted carry. Bit-identity with the interpreted netlist under
/// every `(gate, polarity)` is pinned by `word_kernel_matches_netlist_
/// for_every_gate`; the layout assumption fails loudly there if
/// [`ripple_add`] ever changes its emission order.
pub fn faulty_add_word(gate: u32, stuck_one: bool, a: u64, b: u64, cin: bool) -> (u64, bool) {
    debug_assert!((gate as usize) < 5 * 64);
    let k = (gate / 5) as u64;
    let role = gate % 5;
    let gs = a.wrapping_add(b).wrapping_add(cin as u64);
    // Golden carry-in vector: s_i = a_i ^ b_i ^ c_i ⇒ c = a ^ b ^ s.
    let carries = a ^ b ^ gs;
    let ak = a >> k & 1;
    let bk = b >> k & 1;
    let ck = carries >> k & 1;
    let v = stuck_one as u64;
    let x = ak ^ bk;
    let g = ak & bk;
    // Faulty slice outputs after forcing the faulted gate. Deliberately
    // branchless past the role dispatch (fixed per fault, so perfectly
    // predicted in a replay): a "silent fault" early exit would be a
    // 50/50 data-dependent branch whose mispredictions cost more than
    // the slice rebuild it skips.
    let (sk, ck1) = match role {
        0 => (v ^ ck, g | (v & ck)), // x stuck
        1 => (v, g | (x & ck)),      // s stuck
        2 => (x ^ ck, v | (x & ck)), // g stuck
        3 => (x ^ ck, g | v),        // p stuck
        _ => (x ^ ck, v),            // carry stuck
    };
    if k == 63 {
        return ((gs & !(1u64 << 63)) | (sk << 63), ck1 != 0);
    }
    // Upper field: native re-add of the remaining bits with the
    // (possibly corrupted) carry into slice k + 1. The field is at most
    // 63 bits wide, so the sum cannot wrap u64.
    let w = 63 - k;
    let us = (a >> (k + 1)) + (b >> (k + 1)) + ck1;
    let sum = (gs & ((1u64 << k) - 1)) | (sk << k) | ((us & ((1u64 << w) - 1)) << (k + 1));
    (sum, us >> w & 1 != 0)
}

/// Golden per-slice gate-output words of one adder operand triple — the
/// word-parallel form of the activation screen. Because [`ripple_add`]'s
/// five per-slice gates each have a closed word form (`x = a ^ b`,
/// `s = a + b + cin`, `g = a & b`, `p = x & carries`, `c' = g | p`), a
/// single stuck-at's effect on the architectural outputs reduces to a
/// few bit tests against these words — no netlist pass and no per-fault
/// kernel:
///
/// * forcing `x` or `s` to a value it does not hold flips sum bit `k`;
/// * forcing `g` (resp. `p`) changes `c' = g | p` only when the other
///   input is 0 and the forced value differs;
/// * forcing `c'` corrupts iff the forced value differs from the golden
///   carry — and a corrupted carry into slice `k + 1` always flips
///   `s_{k+1}` (`s = x ^ c`), so any carry corruption below the top
///   slice reaches the sum. At slice 63 the three carry-side roles
///   corrupt only the carry-out.
#[derive(Debug, Clone, Copy)]
pub struct AdderScreenWords {
    x: u64,
    s: u64,
    g: u64,
    p: u64,
    gp: u64,
}

impl AdderScreenWords {
    /// Precomputes the golden gate-output words for one operand triple.
    #[inline]
    pub fn new(a: u64, b: u64, cin: bool) -> AdderScreenWords {
        let s = a.wrapping_add(b).wrapping_add(cin as u64);
        let x = a ^ b;
        let g = a & b;
        let p = x & (x ^ s); // x & carries
        AdderScreenWords {
            x,
            s,
            g,
            p,
            gp: g | p,
        }
    }

    /// Whether the given stuck-at corrupts the pass: returns
    /// `(activated, value)` — sum **or** carry-out differ from golden,
    /// and sum alone differs — matching the interpreted screen
    /// bit-for-bit (pinned by `screen_words_match_netlist_for_every_
    /// gate`). Branchless: the role dispatch is an array index.
    #[inline]
    pub fn test(&self, gate: u32, stuck_one: bool) -> (bool, bool) {
        let k = gate / 5;
        let role = (gate % 5) as usize;
        let w = [self.x, self.s, self.g, self.p, self.gp][role];
        let blocked = [0, 0, self.p, self.g, 0][role];
        let diff = ((w >> k) ^ stuck_one as u64) & !(blocked >> k) & 1;
        // Sum-visible unless the fault only reaches the top carry-out:
        // the `x`/`s` roles flip sum bit k directly, and any corrupted
        // carry below slice 63 flips the next slice's sum bit.
        let deep = (role < 2) as u64 | (k < 63) as u64;
        (diff != 0, diff & deep != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::fu::{FuProvider, NativeFu};

    #[test]
    fn matches_native_adder() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        let mut native = NativeFu;
        let cases = [
            (0u64, 0u64, false),
            (u64::MAX, 1, false),
            (u64::MAX, u64::MAX, true),
            (0x0123_4567_89AB_CDEF, 0xFEDC_BA98_7654_3210, false),
            (1 << 63, 1 << 63, false),
            (42, !42, true),
        ];
        for (a, b, cin) in cases {
            assert_eq!(
                c.eval(&mut ev, a, b, cin, &FaultSet::none()),
                native.int_add(a, b, cin),
                "{a:#x} + {b:#x} + {cin}"
            );
        }
    }

    #[test]
    fn seeded_random_equivalence() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        let mut native = NativeFu;
        let mut s = 0x1234_5678u64;
        for _ in 0..500 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = s;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = s;
            let cin = s & 1 == 1;
            assert_eq!(
                c.eval(&mut ev, a, b, cin, &FaultSet::none()),
                native.int_add(a, b, cin)
            );
        }
    }

    /// The word kernel's whole soundness case: for **every** gate of the
    /// adder netlist, both stuck-at polarities, over corner and random
    /// operand triples, [`faulty_add_word`] matches the interpreted
    /// evaluator with the same fault forced. This is also the pin on the
    /// `ripple_add` five-gates-per-slice emission order the kernel
    /// decodes — reordering the builder fails here, not silently in a
    /// campaign.
    #[test]
    fn word_kernel_matches_netlist_for_every_gate() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        let mut triples = vec![
            (0u64, 0u64, false),
            (0, 0, true),
            (u64::MAX, u64::MAX, true),
            (u64::MAX, 1, false),
            (1, u64::MAX, false),
            (0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555, true),
            (1 << 63, 1 << 63, false),
        ];
        let mut s = 0xADD3_2BADu64;
        for _ in 0..8 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let a = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let b = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
            triples.push((a, b, s & 1 == 1));
        }
        for gate in 0..c.netlist().gate_count() as u32 {
            for stuck_one in [false, true] {
                let fs = FaultSet::single(gate, stuck_one);
                for &(a, b, cin) in &triples {
                    assert_eq!(
                        faulty_add_word(gate, stuck_one, a, b, cin),
                        c.eval(&mut ev, a, b, cin, &fs),
                        "gate {gate} s@{} on {a:#x}+{b:#x}+{cin}",
                        stuck_one as u8
                    );
                }
            }
        }
    }

    /// The word screen's whole soundness case: for every gate and both
    /// polarities, over corner and random triples, [`AdderScreenWords`]
    /// reports exactly whether the interpreted netlist's faulted
    /// `(sum, cout)` / `sum` differ from golden.
    #[test]
    fn screen_words_match_netlist_for_every_gate() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        let mut native = NativeFu;
        let mut triples = vec![
            (0u64, 0u64, false),
            (0, 0, true),
            (u64::MAX, u64::MAX, true),
            (u64::MAX, 1, false),
            (0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555, true),
            (1 << 63, 1 << 63, false),
        ];
        let mut s = 0x5C12_EE2Du64;
        for _ in 0..8 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let a = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let b = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
            triples.push((a, b, s & 1 == 1));
        }
        for &(a, b, cin) in &triples {
            let words = AdderScreenWords::new(a, b, cin);
            let (gs, gc) = native.int_add(a, b, cin);
            for gate in 0..c.netlist().gate_count() as u32 {
                for stuck_one in [false, true] {
                    let (fs, fc) = c.eval(&mut ev, a, b, cin, &FaultSet::single(gate, stuck_one));
                    let want = ((fs, fc) != (gs, gc), fs != gs);
                    assert_eq!(
                        words.test(gate, stuck_one),
                        want,
                        "gate {gate} s@{} on {a:#x}+{b:#x}+{cin}",
                        stuck_one as u8
                    );
                }
            }
        }
    }

    #[test]
    fn stuck_carry_gate_corrupts_sums() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        // Find some gate whose stuck-at-1 changes 1+1.
        let mut affected = 0;
        for g in 0..c.netlist().gate_count() as u32 {
            let (s, _) = c.eval(&mut ev, 1, 1, false, &FaultSet::single(g, true));
            if s != 2 {
                affected += 1;
            }
        }
        assert!(affected > 0, "no gate fault ever activates");
    }

    #[test]
    fn packed_lanes_match_individual_faults() {
        let c = int_adder();
        let mut ev = Evaluator::new(c.netlist());
        let faults: Vec<(u32, bool)> = (0..64u32).map(|g| (g * 3, g % 2 == 0)).collect();
        let fs = FaultSet::lanes(&faults);
        let mut out = [(0u64, false); 64];
        c.eval_lanes(&mut ev, 0xAAAA_5555, 0x1111_2222, true, &fs, &mut out);
        for (i, &(g, s1)) in faults.iter().enumerate() {
            let single = c.eval(
                &mut ev,
                0xAAAA_5555,
                0x1111_2222,
                true,
                &FaultSet::single(g, s1),
            );
            assert_eq!(out[i], single, "lane {i} fault ({g},{s1})");
        }
    }
}
