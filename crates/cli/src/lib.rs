#![warn(missing_docs)]

//! # harpo-cli — library surface of the `harpo` command-line driver
//!
//! The binary's argument parsing and subcommands are exposed as a
//! library so they can be unit-tested.

pub mod archive;
pub mod args;
pub mod autopsy;
pub mod commands;
pub mod diff;
pub mod profile;
pub mod report;
pub mod watch;
