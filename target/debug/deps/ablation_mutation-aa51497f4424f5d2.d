/root/repo/target/debug/deps/ablation_mutation-aa51497f4424f5d2.d: crates/bench/src/bin/ablation_mutation.rs

/root/repo/target/debug/deps/ablation_mutation-aa51497f4424f5d2: crates/bench/src/bin/ablation_mutation.rs

crates/bench/src/bin/ablation_mutation.rs:
