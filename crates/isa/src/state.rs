//! Architectural register state and the program output signature.

use crate::flags::Flags;
use crate::mem::{fnv1a, Memory};
use crate::reg::{Gpr, Width, Xmm};
use serde::{Deserialize, Serialize};

/// The complete architectural register state of an HX86 hart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchState {
    gprs: [u64; 16],
    xmms: [[u64; 2]; 16],
    /// Condition flags.
    pub flags: Flags,
    /// Instruction pointer, as an *instruction index* into the program.
    pub rip: u32,
    /// Set once a `HALT` retires.
    pub halted: bool,
}

impl ArchState {
    /// Fresh state: all registers zero, flags clear, RIP at instruction 0.
    pub fn new() -> ArchState {
        ArchState {
            gprs: [0; 16],
            xmms: [[0; 2]; 16],
            flags: Flags::default(),
            rip: 0,
            halted: false,
        }
    }

    /// Full 64-bit value of a GPR.
    #[inline]
    pub fn gpr(&self, r: Gpr) -> u64 {
        self.gprs[r.index()]
    }

    /// Sets the full 64-bit value of a GPR.
    #[inline]
    pub fn set_gpr(&mut self, r: Gpr, v: u64) {
        self.gprs[r.index()] = v;
    }

    /// Reads a GPR at `width` (low bits, zero-extended).
    #[inline]
    pub fn gpr_w(&self, w: Width, r: Gpr) -> u64 {
        w.trunc(self.gprs[r.index()])
    }

    /// Writes a GPR at `width`.
    ///
    /// HX86 zero-extends *all* narrow writes into the 64-bit register
    /// (generalising x86-64's 32-bit rule down to 8/16 bits; this removes
    /// partial-register merge state from the rename model — see DESIGN.md).
    #[inline]
    pub fn set_gpr_w(&mut self, w: Width, r: Gpr, v: u64) {
        self.gprs[r.index()] = w.trunc(v);
    }

    /// The 128-bit value of an XMM register as two 64-bit lanes.
    #[inline]
    pub fn xmm(&self, r: Xmm) -> [u64; 2] {
        self.xmms[r.index()]
    }

    /// Sets the 128-bit value of an XMM register.
    #[inline]
    pub fn set_xmm(&mut self, r: Xmm, v: [u64; 2]) {
        self.xmms[r.index()] = v;
    }

    /// The four single-precision lanes of an XMM register.
    #[inline]
    pub fn xmm_lanes(&self, r: Xmm) -> [u32; 4] {
        let [lo, hi] = self.xmms[r.index()];
        [lo as u32, (lo >> 32) as u32, hi as u32, (hi >> 32) as u32]
    }

    /// Sets the four single-precision lanes of an XMM register.
    #[inline]
    pub fn set_xmm_lanes(&mut self, r: Xmm, l: [u32; 4]) {
        self.xmms[r.index()] = [
            l[0] as u64 | (l[1] as u64) << 32,
            l[2] as u64 | (l[3] as u64) << 32,
        ];
    }

    /// The scalar (lane-0) single-precision value of an XMM register.
    #[inline]
    pub fn xmm_scalar(&self, r: Xmm) -> u32 {
        self.xmms[r.index()][0] as u32
    }

    /// Sets lane 0, preserving the other lanes (`MOVSS`/scalar-op rule).
    #[inline]
    pub fn set_xmm_scalar(&mut self, r: Xmm, v: u32) {
        let x = &mut self.xmms[r.index()];
        x[0] = (x[0] & !0xFFFF_FFFF) | v as u64;
    }

    /// Iterates over all GPR values in index order.
    pub fn gprs(&self) -> &[u64; 16] {
        &self.gprs
    }

    /// Iterates over all XMM values in index order.
    pub fn xmms(&self) -> &[[u64; 2]; 16] {
        &self.xmms
    }
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new()
    }
}

/// The output signature of a completed run: the architecturally visible
/// end state. Two runs of a deterministic program produce equal
/// signatures; a mismatch between a faulty and a golden run is a **silent
/// data corruption** in the paper's outcome taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Hash over all GPRs.
    pub gpr_hash: u64,
    /// Hash over all XMM registers.
    pub xmm_hash: u64,
    /// Packed condition flags.
    pub flags: u8,
    /// Hash over the whole memory region.
    pub mem_hash: u64,
}

impl Signature {
    /// Computes the signature of a final state + memory.
    pub fn capture(state: &ArchState, mem: &Memory) -> Signature {
        let mut gb = [0u8; 16 * 8];
        for (i, v) in state.gprs.iter().enumerate() {
            gb[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        let mut xb = [0u8; 16 * 16];
        for (i, v) in state.xmms.iter().enumerate() {
            xb[i * 16..i * 16 + 8].copy_from_slice(&v[0].to_le_bytes());
            xb[i * 16 + 8..i * 16 + 16].copy_from_slice(&v[1].to_le_bytes());
        }
        Signature {
            gpr_hash: fnv1a(&gb),
            xmm_hash: fnv1a(&xb),
            flags: state.flags.pack(),
            mem_hash: mem.signature(),
        }
    }

    /// Collapses the signature to a single 64-bit digest.
    pub fn digest(&self) -> u64 {
        let mut b = [0u8; 25];
        b[..8].copy_from_slice(&self.gpr_hash.to_le_bytes());
        b[8..16].copy_from_slice(&self.xmm_hash.to_le_bytes());
        b[16..24].copy_from_slice(&self.mem_hash.to_le_bytes());
        b[24] = self.flags;
        fnv1a(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemImage;

    #[test]
    fn narrow_writes_zero_extend() {
        let mut s = ArchState::new();
        s.set_gpr(Gpr::Rax, u64::MAX);
        s.set_gpr_w(Width::B8, Gpr::Rax, 0xAB);
        assert_eq!(s.gpr(Gpr::Rax), 0xAB);
        s.set_gpr(Gpr::Rbx, u64::MAX);
        s.set_gpr_w(Width::B32, Gpr::Rbx, 0x1234);
        assert_eq!(s.gpr(Gpr::Rbx), 0x1234);
    }

    #[test]
    fn xmm_lane_accessors() {
        let mut s = ArchState::new();
        s.set_xmm_lanes(Xmm::Xmm3, [1, 2, 3, 4]);
        assert_eq!(s.xmm_lanes(Xmm::Xmm3), [1, 2, 3, 4]);
        assert_eq!(s.xmm_scalar(Xmm::Xmm3), 1);
        s.set_xmm_scalar(Xmm::Xmm3, 9);
        assert_eq!(
            s.xmm_lanes(Xmm::Xmm3),
            [9, 2, 3, 4],
            "other lanes preserved"
        );
    }

    #[test]
    fn signature_detects_every_component() {
        let mem = MemImage::new(64, 0).build();
        let base_state = ArchState::new();
        let base = Signature::capture(&base_state, &mem);

        let mut s = base_state.clone();
        s.set_gpr(Gpr::R9, 1);
        assert_ne!(Signature::capture(&s, &mem).digest(), base.digest());

        let mut s = base_state.clone();
        s.set_xmm(Xmm::Xmm0, [0, 1]);
        assert_ne!(Signature::capture(&s, &mem).digest(), base.digest());

        let mut s = base_state;
        s.flags.cf = true;
        assert_ne!(Signature::capture(&s, &mem).digest(), base.digest());

        let mut m2 = MemImage::new(64, 0).build();
        m2.write(crate::mem::DATA_BASE, 1, 7).unwrap();
        assert_ne!(
            Signature::capture(&ArchState::new(), &m2).digest(),
            base.digest()
        );
    }
}
