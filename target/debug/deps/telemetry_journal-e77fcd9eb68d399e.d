/root/repo/target/debug/deps/telemetry_journal-e77fcd9eb68d399e.d: tests/telemetry_journal.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_journal-e77fcd9eb68d399e.rmeta: tests/telemetry_journal.rs Cargo.toml

tests/telemetry_journal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
