/root/repo/target/release/deps/harpocrates-316a8d74d4b8e5af.d: src/lib.rs

/root/repo/target/release/deps/libharpocrates-316a8d74d4b8e5af.rlib: src/lib.rs

/root/repo/target/release/deps/libharpocrates-316a8d74d4b8e5af.rmeta: src/lib.rs

src/lib.rs:
