/root/repo/target/debug/deps/harpo_faultsim-0fa8f8fe736e8636.d: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

/root/repo/target/debug/deps/libharpo_faultsim-0fa8f8fe736e8636.rlib: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

/root/repo/target/debug/deps/libharpo_faultsim-0fa8f8fe736e8636.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/autopsy.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/checkpoint.rs:
crates/faultsim/src/cohort.rs:
crates/faultsim/src/fault.rs:
crates/faultsim/src/gate.rs:
crates/faultsim/src/outcome.rs:
crates/faultsim/src/plan.rs:
crates/faultsim/src/replay.rs:
crates/faultsim/src/stream.rs:
