//! The architectural flags register (a reduced RFLAGS).
//!
//! HX86 models the four arithmetic flags that drive conditional behaviour:
//! carry, zero, sign and overflow. Parity/adjust flags are omitted (no HX86
//! instruction consumes them). Where x86 leaves a flag *undefined*, HX86
//! defines a deterministic value — HX86 is its own specification, and
//! determinism is required for the output-signature comparison used in
//! fault detection (§V-B of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Condition flags produced by arithmetic instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Flags {
    /// Carry flag.
    pub cf: bool,
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Overflow flag.
    pub of: bool,
}

impl Flags {
    /// Packs the flags into a 4-bit value (`OF:SF:ZF:CF`, CF at bit 0),
    /// used by the output signature.
    #[inline]
    pub fn pack(self) -> u8 {
        (self.cf as u8) | (self.zf as u8) << 1 | (self.sf as u8) << 2 | (self.of as u8) << 3
    }

    /// Inverse of [`Flags::pack`].
    #[inline]
    pub fn unpack(v: u8) -> Flags {
        Flags {
            cf: v & 1 != 0,
            zf: v & 2 != 0,
            sf: v & 4 != 0,
            of: v & 8 != 0,
        }
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}{}{}{}]",
            if self.cf { 'C' } else { '-' },
            if self.zf { 'Z' } else { '-' },
            if self.sf { 'S' } else { '-' },
            if self.of { 'O' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for v in 0..16u8 {
            assert_eq!(Flags::unpack(v).pack(), v);
        }
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(Flags::default().to_string(), "[----]");
        let all = Flags {
            cf: true,
            zf: true,
            sf: true,
            of: true,
        };
        assert_eq!(all.to_string(), "[CZSO]");
    }
}
