//! Forensics invariants: autopsies are a pure observation layer.
//!
//! Turning [`CampaignConfig::forensics`] on must not change any campaign
//! tally, the log must carry exactly one autopsy per injected fault in a
//! thread-count-independent order, and the per-structure heatmaps must
//! re-derive the aggregate outcome counts exactly.

use harpo_coverage::TargetStructure;
use harpo_faultsim::{
    build_campaign_trail, heatmaps_of, measure_detection_forensic, CampaignConfig, CampaignResult,
    FaultAutopsy, FaultOutcome, Mechanism,
};
use harpo_isa::program::Program;
use harpo_museqgen::{GenConstraints, Generator};
use harpo_uarch::OooCore;

const STRUCTURES: [TargetStructure; 4] = [
    TargetStructure::Irf,
    TargetStructure::Xrf,
    TargetStructure::L1d,
    TargetStructure::IntAdder,
];

fn program() -> Program {
    let c = GenConstraints {
        n_insts: 300,
        allow_sse: true,
        store_bias: 0.3,
        ..GenConstraints::default()
    };
    Generator::new(c).generate(0xF0E)
}

fn cfg(threads: usize, forensics: bool) -> CampaignConfig {
    CampaignConfig {
        n_faults: 96,
        seed: 0xDEC0DE,
        threads,
        cap: 10_000_000,
        forensics,
        ..CampaignConfig::default()
    }
}

fn run(
    prog: &Program,
    s: TargetStructure,
    ccfg: &CampaignConfig,
) -> (CampaignResult, Vec<FaultAutopsy>) {
    let core = OooCore::default();
    let sim = core.simulate(prog, ccfg.cap).expect("golden run");
    let trail = build_campaign_trail(prog, ccfg);
    let (res, log) = measure_detection_forensic(
        prog,
        s,
        &core,
        ccfg,
        &sim.output.signature,
        &sim.trace,
        trail.as_ref(),
    );
    (res, log)
}

#[test]
fn forensics_never_changes_the_tally() {
    let p = program();
    for s in STRUCTURES {
        let (off, log_off) = run(&p, s, &cfg(2, false));
        let (on, log_on) = run(&p, s, &cfg(2, true));
        assert_eq!(off, on, "{s}: forensics changed the campaign result");
        assert!(log_off.is_empty(), "{s}: forensics off must log nothing");
        assert_eq!(log_on.len(), 96, "{s}: one autopsy per injected fault");
    }
}

#[test]
fn autopsy_log_is_thread_count_independent_modulo_worker() {
    let p = program();
    for s in STRUCTURES {
        let (_, one) = run(&p, s, &cfg(1, true));
        let (_, three) = run(&p, s, &cfg(3, true));
        assert_eq!(one.len(), three.len());
        for (a, b) in one.iter().zip(&three) {
            let mut b = b.clone();
            b.worker = a.worker; // the only field tied to the fan-out
            assert_eq!(*a, b, "{s}: autopsy differs across thread counts");
        }
    }
}

#[test]
fn autopsies_agree_with_the_tally_and_heatmaps() {
    let p = program();
    for s in STRUCTURES {
        let ccfg = cfg(2, true);
        let (res, log) = run(&p, s, &ccfg);
        // Fault indices form exactly 0..n.
        for (i, a) in log.iter().enumerate() {
            assert_eq!(a.fault, i as u64);
            assert_eq!(a.structure, s.label());
            if a.outcome.detected() {
                assert_eq!(a.detection_latency, a.propagation_insts);
                assert!(matches!(
                    a.mechanism,
                    Mechanism::Signature | Mechanism::Trap
                ));
            } else {
                assert_eq!(a.detection_latency, 0);
            }
        }
        let count = |o: FaultOutcome| log.iter().filter(|a| a.outcome == o).count() as u64;
        let maps = heatmaps_of(&log);
        assert_eq!(maps.len(), 1, "{s}: one structure, one heatmap");
        let m = &maps[0];
        assert_eq!(m.structure, s.label());
        assert_eq!(m.sdc.iter().sum::<u64>(), count(FaultOutcome::Sdc));
        assert_eq!(m.crash.iter().sum::<u64>(), count(FaultOutcome::Crash));
        assert_eq!(m.masked.iter().sum::<u64>(), count(FaultOutcome::Masked));
        // And the heatmap re-derives the campaign's headline tallies.
        let obs: u64 = (0..m.bits()).map(|b| m.observed(b)).sum();
        let det: u64 = (0..m.bits()).map(|b| m.detected(b)).sum();
        assert_eq!(obs, res.injected, "{s}");
        assert_eq!(det, res.sdc + res.crash, "{s}");
        assert_eq!(count(FaultOutcome::Sdc), res.sdc, "{s}");
        assert_eq!(count(FaultOutcome::Masked), res.masked, "{s}");
        assert_eq!(count(FaultOutcome::Corrected), res.corrected, "{s}");
    }
}
