//! Performance-architecture speed harness (DESIGN.md, "Performance
//! architecture").
//!
//! A dependency-free timing harness for the allocation-free simulation
//! contexts, the work-stealing population evaluator and the evaluation
//! memo cache. Unlike the criterion benches (which need `cargo bench`),
//! this binary runs anywhere the workspace builds and writes
//! `BENCH_pipeline.json` (median ns/op per benchmark plus the
//! throughput ratio against the pre-optimisation evaluator) into the
//! output directory.
//!
//! The `evaluate_population_static_fresh_*` baseline reproduces the old
//! evaluator's *scheduling*: static `chunks_mut` partitioning with one
//! fresh `simulate()` (allocating a new timing model, memory image and
//! trace) per program. It still runs on the current simulator internals,
//! so the ratio against it isolates the scheduling + context-reuse gain
//! and UNDERSTATES the full speedup of this PR (the SoA trace arena,
//! sparse `StepInfo` reset and word-wise signature hashing sped up the
//! baseline's `simulate()` calls too). To record the end-to-end speedup,
//! measure the pre-PR commit on the same workload — build the parent
//! commit and time `Evaluator::evaluate_population` over 64 programs of
//! 300 instructions (generator seeds 0..64, `TargetStructure::IntAdder`,
//! median of 7 runs after one warm-up) — and pass the ns/op in via
//! `--baseline-t1/--baseline-t4/--baseline-t8`; the summary then reports
//! `population_speedup_tN` against those measurements.

use harpo_core::{fingerprint, Evaluator};
use harpo_coverage::TargetStructure;
use harpo_isa::program::Program;
use harpo_museqgen::{GenConstraints, Generator};
use harpo_telemetry::Value;
use harpo_uarch::{OooCore, SimContext};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

/// Times `reps` runs of `f` and returns the median nanoseconds per run.
fn median_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    assert!(reps >= 1);
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// The old evaluator's population loop: static chunks, one fresh
/// allocating simulation per program.
fn evaluate_population_static_fresh(
    core: &OooCore,
    structure: TargetStructure,
    progs: &[Program],
    threads: usize,
) -> Vec<f64> {
    let threads = threads.min(progs.len().max(1));
    let chunk_size = progs.len().div_ceil(threads);
    let mut out = vec![0.0; progs.len()];
    std::thread::scope(|s| {
        for (t, chunk) in out.chunks_mut(chunk_size).enumerate() {
            let start = t * chunk_size;
            let progs = &progs[start..start + chunk.len()];
            s.spawn(move || {
                for (score, p) in chunk.iter_mut().zip(progs) {
                    if let Ok(sim) = core.simulate(p, 50_000_000) {
                        *score = structure.coverage(&sim.trace, core.config());
                        black_box((sim.output.signature, sim.trace));
                    }
                }
            });
        }
    });
    out
}

/// CLI: `--out DIR` plus optional externally measured pre-PR ns/op
/// (`--baseline-tN NS`, see the module docs for the measurement recipe).
struct Args {
    out_dir: std::path::PathBuf,
    baseline: HashMap<usize, u64>,
}

fn parse_args() -> Args {
    let mut out = Args {
        out_dir: std::path::PathBuf::from("results"),
        baseline: HashMap::new(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let take = |i: usize| -> &str { args.get(i + 1).expect("flag needs a value") };
        match args[i].as_str() {
            "--out" => out.out_dir = std::path::PathBuf::from(take(i)),
            "--baseline-t1" => {
                out.baseline.insert(1, take(i).parse().expect("ns"));
            }
            "--baseline-t4" => {
                out.baseline.insert(4, take(i).parse().expect("ns"));
            }
            "--baseline-t8" => {
                out.baseline.insert(8, take(i).parse().expect("ns"));
            }
            other => panic!("unknown argument {other}"),
        }
        i += 2;
    }
    out
}

fn main() {
    let cli = parse_args();
    let core = OooCore::default();
    let structure = TargetStructure::IntAdder;
    let mut results: Vec<(String, Value)> = Vec::new();
    let mut record = |name: &str, ns: u64| {
        println!("{name:<44} {ns:>12} ns/op");
        results.push((name.to_string(), ns.into()));
    };

    // --- single-program simulation: fresh vs warm context ------------
    let gen1k = Generator::new(GenConstraints {
        n_insts: 1_000,
        ..GenConstraints::default()
    });
    let prog1k = gen1k.generate(7);
    let sim_fresh = median_ns(30, || {
        black_box(core.simulate(&prog1k, 50_000_000).unwrap());
    });
    record("simulate_fresh_context_1k_inst", sim_fresh);
    let mut ctx = SimContext::new();
    core.simulate_into(&prog1k, 50_000_000, &mut ctx).unwrap();
    let sim_warm = median_ns(30, || {
        core.simulate_into(&prog1k, 50_000_000, &mut ctx).unwrap();
        black_box(ctx.result().unwrap().output.dyn_count);
    });
    record("simulate_into_warm_context_1k_inst", sim_warm);

    // --- population evaluation: 64 programs, 1/4/8 threads -----------
    let popgen = Generator::new(GenConstraints {
        n_insts: 300,
        ..GenConstraints::default()
    });
    let pop: Vec<Program> = (0..64u64).map(|s| popgen.generate(s)).collect();
    let ev = Evaluator::new(core.clone(), structure);
    // Warm the evaluator's context pool so steady-state reuse is
    // measured, matching a mid-run loop iteration.
    black_box(ev.evaluate_population(&pop, 8));
    let mut per_thread: Vec<(usize, u64, u64)> = Vec::new();
    for threads in [1usize, 4, 8] {
        let stealing = median_ns(7, || {
            black_box(ev.evaluate_population(&pop, threads));
        });
        record(&format!("evaluate_population_64x300_t{threads}"), stealing);
        let baseline = median_ns(7, || {
            black_box(evaluate_population_static_fresh(
                &core, structure, &pop, threads,
            ));
        });
        record(
            &format!("evaluate_population_static_fresh_64x300_t{threads}"),
            baseline,
        );
        per_thread.push((threads, stealing, baseline));
    }

    // --- a cache-hit-heavy round --------------------------------------
    let mut memo: HashMap<u128, f64> = HashMap::new();
    for p in &pop {
        memo.insert(fingerprint(p), 0.5);
    }
    let cache_round = median_ns(30, || {
        let mut acc = 0.0f64;
        for p in &pop {
            acc += memo[&fingerprint(p)];
        }
        black_box(acc);
    });
    record("memo_round_64_programs_all_hits", cache_round);

    // --- summary ratios -----------------------------------------------
    for (threads, stealing, static_fresh) in &per_thread {
        let sched = *static_fresh as f64 / (*stealing).max(1) as f64;
        println!(
            "population throughput at {threads} threads: {sched:.2}x vs in-binary static+fresh"
        );
        results.push((
            format!("population_speedup_t{threads}_scheduling_only"),
            sched.into(),
        ));
        if let Some(&pre) = cli.baseline.get(threads) {
            let full = pre as f64 / (*stealing).max(1) as f64;
            println!("population throughput at {threads} threads: {full:.2}x vs pre-PR build");
            results.push((
                format!("evaluate_population_prepr_64x300_t{threads}"),
                pre.into(),
            ));
            results.push((format!("population_speedup_t{threads}"), full.into()));
        }
    }
    let sim_ratio = sim_fresh as f64 / sim_warm.max(1) as f64;
    println!("warm-context simulation: {sim_ratio:.2}x vs fresh");
    results.push(("simulate_into_speedup".to_string(), sim_ratio.into()));

    std::fs::create_dir_all(&cli.out_dir).expect("create results dir");
    let path = cli.out_dir.join("BENCH_pipeline.json");
    let mut json = Value::Obj(results).to_json();
    json.push('\n');
    std::fs::write(&path, json).expect("write BENCH_pipeline.json");
    println!("↳ wrote {}", path.display());
}
