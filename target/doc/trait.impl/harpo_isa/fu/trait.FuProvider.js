(function() {
    const implementors = Object.fromEntries([["harpo_gates",[["impl <a class=\"trait\" href=\"harpo_isa/fu/trait.FuProvider.html\" title=\"trait harpo_isa::fu::FuProvider\">FuProvider</a> for <a class=\"struct\" href=\"harpo_gates/provider/struct.FaultyFu.html\" title=\"struct harpo_gates::provider::FaultyFu\">FaultyFu</a>",0],["impl <a class=\"trait\" href=\"harpo_isa/fu/trait.FuProvider.html\" title=\"trait harpo_isa::fu::FuProvider\">FuProvider</a> for <a class=\"struct\" href=\"harpo_gates/provider/struct.NetlistFu.html\" title=\"struct harpo_gates::provider::NetlistFu\">NetlistFu</a>",0]]],["harpo_gates",[["impl FuProvider for <a class=\"struct\" href=\"harpo_gates/provider/struct.FaultyFu.html\" title=\"struct harpo_gates::provider::FaultyFu\">FaultyFu</a>",0],["impl FuProvider for <a class=\"struct\" href=\"harpo_gates/provider/struct.NetlistFu.html\" title=\"struct harpo_gates::provider::NetlistFu\">NetlistFu</a>",0]]],["harpo_isa",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[556,339,17]}