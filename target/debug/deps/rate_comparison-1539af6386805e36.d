/root/repo/target/debug/deps/rate_comparison-1539af6386805e36.d: crates/bench/src/bin/rate_comparison.rs Cargo.toml

/root/repo/target/debug/deps/librate_comparison-1539af6386805e36.rmeta: crates/bench/src/bin/rate_comparison.rs Cargo.toml

crates/bench/src/bin/rate_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
