//! `bench_diff` — the benchmark regression gate.
//!
//! ```text
//! bench_diff <baseline.json> <fresh.json> [--threshold 0.10] [--keys a,b,...]
//!            [--md summary.md]
//! ```
//!
//! Compares a fresh `BENCH_*.json` snapshot against the committed
//! baseline on the gated keys (by default, every shared `*speedup*`
//! key, skipping `*_cov` noise companions) and exits non-zero if any
//! dropped by more than the threshold. Improvements beyond the
//! threshold are listed too (informational — a cue to re-baseline),
//! keys whose `<key>_cov` companion shows unstable timings (CoV > 10%)
//! are flagged as noisy, and `--md` writes the whole comparison as a
//! Markdown summary for the CI artifact. CI runs this after the manual
//! bench job so a change that quietly costs more than 10% of a
//! headline speedup fails the build.

use harpo_bench::diff::{diff, DEFAULT_THRESHOLD};

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff <baseline.json> <fresh.json> [--threshold {DEFAULT_THRESHOLD}] [--keys a,b,...] [--md summary.md]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut keys: Option<Vec<String>> = None;
    let mut md_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--keys" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                keys = Some(list.split(',').map(str::to_string).collect());
            }
            "--md" => {
                i += 1;
                md_out = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            "--help" | "-h" => usage(),
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        usage();
    };

    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("bench_diff: {p}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read(baseline_path);
    let fresh = read(fresh_path);
    let report = match diff(
        baseline_path,
        &baseline,
        fresh_path,
        &fresh,
        threshold,
        keys.as_deref(),
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "{:<44} {:>12} {:>12} {:>8}  verdict",
        "key", "baseline", "fresh", "ratio"
    );
    for row in &report.rows {
        println!(
            "{:<44} {:>12.4} {:>12.4} {:>7.1}%  {}",
            row.key,
            row.baseline,
            row.fresh,
            row.ratio * 100.0,
            if row.regressed { "REGRESSED" } else { "ok" }
        );
    }
    if let Some(path) = &md_out {
        let md = report.to_markdown(baseline_path, fresh_path);
        if let Err(e) = std::fs::write(path, md) {
            eprintln!("bench_diff: {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }
    for line in report.improvement_lines() {
        println!("bench_diff: improved: {line}");
    }
    for line in report.noisy_lines() {
        println!("bench_diff: noisy: {line}");
    }
    if report.regressed() {
        let lines = report.regression_lines();
        eprintln!(
            "bench_diff: regression beyond {:.0}% on {} of {} gated keys:",
            report.threshold * 100.0,
            lines.len(),
            report.rows.len()
        );
        for line in lines {
            eprintln!("bench_diff:   {line}");
        }
        std::process::exit(1);
    }
    println!(
        "all {} gated keys within {:.0}% of baseline",
        report.rows.len(),
        report.threshold * 100.0
    );
}
