/root/repo/target/release/deps/seventh_structure-344d829dbec8a03f.d: crates/bench/src/bin/seventh_structure.rs

/root/repo/target/release/deps/seventh_structure-344d829dbec8a03f: crates/bench/src/bin/seventh_structure.rs

crates/bench/src/bin/seventh_structure.rs:
