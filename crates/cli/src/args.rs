//! Minimal flag parsing shared by the subcommands (no external deps).

use harpo_coverage::TargetStructure;
use std::collections::HashMap;

/// Parsed flags plus positional arguments.
pub struct Args {
    flags: HashMap<String, String>,
    /// Positional (non-flag) arguments in order.
    pub positional: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs; everything else is positional.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        Args::parse_with_switches(argv, &[])
    }

    /// Parses `--key value` pairs plus valueless boolean switches (e.g.
    /// `--quiet`); everything else is positional.
    pub fn parse_with_switches(argv: &[String], switches: &[&str]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if switches.contains(&key) {
                    flags.insert(key.to_string(), String::new());
                } else {
                    i += 1;
                    let val = argv
                        .get(i)
                        .ok_or_else(|| format!("flag --{key} needs a value"))?;
                    flags.insert(key.to_string(), val.clone());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Args { flags, positional })
    }

    /// A string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// A numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    /// The target-structure flag.
    pub fn structure(&self) -> Result<TargetStructure, String> {
        let name = self
            .get("structure")
            .ok_or("missing --structure (irf|l1d|int-adder|int-mul|fp-adder|fp-mul)")?;
        parse_structure(name)
    }
}

/// Parses a structure name.
pub fn parse_structure(name: &str) -> Result<TargetStructure, String> {
    Ok(match name {
        "irf" => TargetStructure::Irf,
        "l1d" => TargetStructure::L1d,
        "int-adder" => TargetStructure::IntAdder,
        "int-mul" | "int-multiplier" => TargetStructure::IntMultiplier,
        "fp-adder" => TargetStructure::FpAdder,
        "fp-mul" | "fp-multiplier" => TargetStructure::FpMultiplier,
        other => return Err(format!("unknown structure `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_and_positionals_split() {
        let a = Args::parse(&argv(&[
            "--structure",
            "irf",
            "file.hxpf",
            "--faults",
            "64",
        ]))
        .unwrap();
        assert_eq!(a.get("structure"), Some("irf"));
        assert_eq!(a.num::<usize>("faults", 0).unwrap(), 64);
        assert_eq!(a.positional, vec!["file.hxpf".to_string()]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&argv(&["--faults"])).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse_with_switches(
            &argv(&["--quiet", "--journal", "run.jsonl", "t.hxpf"]),
            &["quiet", "verbose"],
        )
        .unwrap();
        assert!(a.has("quiet"));
        assert!(!a.has("verbose"));
        assert_eq!(a.get("journal"), Some("run.jsonl"));
        assert_eq!(a.positional, vec!["t.hxpf".to_string()]);
        // A trailing switch is fine (it never consumes a value).
        let a = Args::parse_with_switches(&argv(&["--verbose"]), &["verbose"]).unwrap();
        assert!(a.has("verbose"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert_eq!(a.num::<u64>("seed", 7).unwrap(), 7);
        assert!(a.structure().is_err());
    }

    #[test]
    fn bad_number_reported() {
        let a = Args::parse(&argv(&["--faults", "many"])).unwrap();
        assert!(a.num::<usize>("faults", 1).is_err());
    }

    #[test]
    fn all_structures_parse() {
        for (name, want) in [
            ("irf", TargetStructure::Irf),
            ("l1d", TargetStructure::L1d),
            ("int-adder", TargetStructure::IntAdder),
            ("int-mul", TargetStructure::IntMultiplier),
            ("fp-adder", TargetStructure::FpAdder),
            ("fp-mul", TargetStructure::FpMultiplier),
        ] {
            assert_eq!(parse_structure(name).unwrap(), want);
        }
        assert!(parse_structure("rob").is_err());
    }
}
