//! Extension — the "any structure" claim of §IV-B, demonstrated: the
//! Harpocrates loop retargeted at a structure *outside* the paper's six,
//! the physical **XMM register file** (transient faults, ACE coverage).
//!
//! Nothing structure-specific was added to the engine for this: the XRF
//! plugs in exactly like the IRF — a lifetime record in the trace, an ACE
//! objective, and a planner. The harness compares the refined champion
//! against the baselines, the same experiment shape as Fig. 11.

use harpo_bench::{
    baseline_suites, print_structure_table, write_csv, Cli, GradedProgram, Harness,
    GRADE_CSV_HEADER,
};
use harpo_coverage::TargetStructure;
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("seventh_structure", &cli);
    let core = OooCore::default();
    let ccfg = cli.campaign();
    let structure = TargetStructure::Xrf;

    let mut rows = Vec::new();
    for (fw, progs) in baseline_suites(cli.scale) {
        rows.extend(harness.grade_suite(fw, &progs, structure, &core, &ccfg));
    }
    let report = harness.run_harpocrates(structure, cli.scale, cli.threads);
    let (coverage, detection, cycles) = harness.grade(&report.champion, structure, &core, &ccfg);
    rows.push(GradedProgram {
        framework: "Harpocrates",
        name: report.champion.name.clone(),
        coverage,
        detection,
        cycles,
    });
    let csv = print_structure_table(structure, &rows);
    write_csv(
        &cli.out_dir,
        "seventh_structure.csv",
        GRADE_CSV_HEADER,
        &csv,
    );
    println!(
        "\nThe XRF was targeted with zero engine changes — the §IV-B claim \
that any simulated structure can be optimised against."
    );
    harness.finish();
}
