/root/repo/target/release/deps/fault_model_study-e9be4186b71dea72.d: crates/bench/src/bin/fault_model_study.rs

/root/repo/target/release/deps/fault_model_study-e9be4186b71dea72: crates/bench/src/bin/fault_model_study.rs

crates/bench/src/bin/fault_model_study.rs:
