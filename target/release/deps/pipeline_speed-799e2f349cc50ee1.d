/root/repo/target/release/deps/pipeline_speed-799e2f349cc50ee1.d: crates/bench/src/bin/pipeline_speed.rs

/root/repo/target/release/deps/pipeline_speed-799e2f349cc50ee1: crates/bench/src/bin/pipeline_speed.rs

crates/bench/src/bin/pipeline_speed.rs:
