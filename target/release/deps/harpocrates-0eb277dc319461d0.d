/root/repo/target/release/deps/harpocrates-0eb277dc319461d0.d: src/lib.rs

/root/repo/target/release/deps/harpocrates-0eb277dc319461d0: src/lib.rs

src/lib.rs:
