//! The functional execution engine.
//!
//! [`Machine`] runs a [`Program`] instruction by instruction, producing a
//! [`StepInfo`] record per dynamic instruction. The record carries
//! everything the microarchitectural timing model (crate `harpo-uarch`)
//! and the coverage metrics need: architectural register reads/writes,
//! the memory access, functional-unit operand passes and branch outcomes.
//!
//! Two extension points make the same engine serve as both the golden
//! reference and the fault-injection replay vehicle:
//!
//! * the [`crate::fu::FuProvider`] type parameter supplies functional-unit
//!   results (native arithmetic, or a gate-level netlist with stuck-at
//!   faults);
//! * the [`ExecHooks`] type parameter observes and may *corrupt* register
//!   reads and memory loads (transient bit flips planned from the golden
//!   trace).

use crate::form::FormId;
use crate::fu::{FuPass, FuProvider};
use crate::mem::{MemFault, Memory};
use crate::program::Program;
use crate::reg::Gpr;
use crate::state::{ArchState, Signature};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Abnormal termination of a run. In the fault-injection outcome taxonomy
/// every trap is a **Crash** (a detected fault); the golden run of a
/// well-formed program never traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trap {
    /// Out-of-bounds memory access.
    Mem(MemFault),
    /// Division by zero or quotient overflow (`#DE`).
    DivideError,
    /// Branch to an instruction index outside the program.
    WildBranch {
        /// The invalid target, as a possibly-negative index.
        target: i64,
    },
    /// `MOVAPS` with a non-16-byte-aligned address.
    UnalignedSse {
        /// The misaligned address.
        addr: u64,
    },
    /// The dynamic instruction cap was reached (runaway loop).
    InstructionCap,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Mem(m) => write!(f, "{}", m),
            Trap::DivideError => write!(f, "divide error"),
            Trap::WildBranch { target } => write!(f, "wild branch to instruction {}", target),
            Trap::UnalignedSse { addr } => write!(f, "unaligned SSE access at {:#x}", addr),
            Trap::InstructionCap => write!(f, "dynamic instruction cap exceeded"),
        }
    }
}

impl std::error::Error for Trap {}

impl From<MemFault> for Trap {
    fn from(m: MemFault) -> Trap {
        Trap::Mem(m)
    }
}

/// A single data-memory access made by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, 8 or 16).
    pub size: u8,
    /// True for stores.
    pub is_store: bool,
}

/// Branch resolution of a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchOut {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The next instruction index actually executed.
    pub target: u32,
    /// True when taken and fall-through targets coincide (`rel == 0`, the
    /// §V-D generated-test idiom): the branch direction can never affect
    /// execution, so liveness analysis treats it as dead.
    pub trivial: bool,
}

/// Maximum functional-unit passes a single instruction can make (packed
/// SSE = 4 lanes; 64-bit wide multiply = 4 array passes).
pub const MAX_PASSES: usize = 6;

/// Fixed-capacity list of functional-unit passes (avoids per-step heap
/// allocation on the simulation hot path).
#[derive(Debug, Clone, Copy)]
pub struct PassList {
    items: [FuPass; MAX_PASSES],
    len: u8,
}

impl PassList {
    fn new() -> PassList {
        PassList {
            items: [FuPass {
                kind: crate::form::FuKind::Alu,
                a: 0,
                b: 0,
                cin: false,
            }; MAX_PASSES],
            len: 0,
        }
    }

    fn push(&mut self, p: FuPass) {
        assert!((self.len as usize) < MAX_PASSES, "too many FU passes");
        self.items[self.len as usize] = p;
        self.len += 1;
    }

    /// The recorded passes.
    #[inline]
    pub fn as_slice(&self) -> &[FuPass] {
        &self.items[..self.len as usize]
    }

    /// Number of recorded passes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the instruction used no graded unit.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Per-dynamic-instruction execution record.
#[derive(Debug, Clone, Copy)]
pub struct StepInfo {
    /// Dynamic instruction number (0-based).
    pub dyn_idx: u64,
    /// Static instruction index in the program.
    pub static_idx: u32,
    /// The instruction's form.
    pub form: FormId,
    /// Bitmask of GPRs read (bit = register index).
    pub reads_gpr: u16,
    /// Per-GPR *observation mask*: which bits of the read value can
    /// influence this instruction's results (OR over the instruction's
    /// reads of that register). `AND` observes only where the other
    /// operand has ones, `SHL k` drops the top `k` bits, narrow widths
    /// observe only the low bits — exact per-bit ACE derating needs this.
    pub gpr_read_mask: [u64; 16],
    /// Per-XMM observation mask over the two 64-bit lanes.
    pub xmm_read_mask: [[u64; 2]; 16],
    /// Bitmask of GPRs written.
    pub writes_gpr: u16,
    /// Bitmask of XMM registers read.
    pub reads_xmm: u16,
    /// Bitmask of XMM registers written.
    pub writes_xmm: u16,
    /// Whether the condition flags were read.
    pub reads_flags: bool,
    /// Whether the condition flags were written.
    pub writes_flags: bool,
    /// The data-memory access, if any.
    pub mem: Option<MemAccess>,
    /// Graded functional-unit passes made by this instruction.
    pub passes: PassList,
    /// Branch resolution, for control-flow instructions.
    pub branch: Option<BranchOut>,
}

impl StepInfo {
    fn new(dyn_idx: u64, static_idx: u32, form: FormId) -> StepInfo {
        StepInfo {
            dyn_idx,
            static_idx,
            form,
            reads_gpr: 0,
            gpr_read_mask: [0; 16],
            xmm_read_mask: [[0; 2]; 16],
            writes_gpr: 0,
            reads_xmm: 0,
            writes_xmm: 0,
            reads_flags: false,
            writes_flags: false,
            mem: None,
            passes: PassList::new(),
            branch: None,
        }
    }

    /// Re-initialises the record in place for the next instruction. The
    /// struct is several hundred bytes (dominated by the observation-mask
    /// arrays), so rebuilding it wholesale every step is a measurable
    /// memset on the simulation hot path; instead only the mask entries
    /// the *previous* instruction touched are cleared. Masks are only
    /// ever set together with the corresponding read bit (and only mask
    /// entries with a set read bit are consumed), so this is equivalent
    /// to a full clear.
    fn reset(&mut self, dyn_idx: u64, static_idx: u32, form: FormId) {
        let mut rd = self.reads_gpr;
        while rd != 0 {
            let r = rd.trailing_zeros() as usize;
            rd &= rd - 1;
            self.gpr_read_mask[r] = 0;
        }
        let mut rx = self.reads_xmm;
        while rx != 0 {
            let r = rx.trailing_zeros() as usize;
            rx &= rx - 1;
            self.xmm_read_mask[r] = [0; 2];
        }
        self.dyn_idx = dyn_idx;
        self.static_idx = static_idx;
        self.form = form;
        self.reads_gpr = 0;
        self.writes_gpr = 0;
        self.reads_xmm = 0;
        self.writes_xmm = 0;
        self.reads_flags = false;
        self.writes_flags = false;
        self.mem = None;
        self.passes.len = 0;
        self.branch = None;
    }
}

/// Observation/corruption hooks called during execution. The default
/// methods are identity functions; the fault injector overrides them to
/// flip bits at planned (dynamic instruction, location) points.
pub trait ExecHooks {
    /// Called on every GPR operand read (explicit and implicit) with the
    /// full 64-bit value; the returned value is what the instruction sees.
    #[inline]
    fn on_gpr_read(&mut self, _dyn_idx: u64, _reg: Gpr, val: u64) -> u64 {
        val
    }

    /// Called on every XMM operand read with the full 128-bit value (two
    /// 64-bit lanes); the returned value is what the instruction sees.
    #[inline]
    fn on_xmm_read(&mut self, _dyn_idx: u64, _reg: crate::reg::Xmm, val: [u64; 2]) -> [u64; 2] {
        val
    }

    /// Called on every data load (per 8-byte half for 16-byte loads) with
    /// the loaded value; the returned value is what the instruction sees.
    #[inline]
    fn on_load(&mut self, _dyn_idx: u64, _addr: u64, _size: u8, val: u64) -> u64 {
        val
    }

    /// Called on every data store *before* it is performed.
    #[inline]
    fn on_store(&mut self, _dyn_idx: u64, _addr: u64, _size: u8) {}
}

/// The no-op hook set used for golden runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl ExecHooks for NoHooks {}

/// Control-flow outcome of one instruction (crate-internal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    Next,
    Jump(u32),
    Halt,
}

/// Result of a completed (non-trapping) run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Final architectural state.
    pub state: ArchState,
    /// Output signature (registers + flags + memory hash).
    pub signature: Signature,
    /// Number of dynamic instructions retired.
    pub dyn_count: u64,
}

/// The functional execution engine. See the module docs for the role of
/// the two type parameters.
pub struct Machine<'p, F: FuProvider, H: ExecHooks = NoHooks> {
    pub(crate) prog: &'p Program,
    pub(crate) state: ArchState,
    pub(crate) mem: Memory,
    pub(crate) fu: F,
    pub(crate) hooks: H,
    pub(crate) dyn_count: u64,
    pub(crate) info: StepInfo,
}

impl<'p, F: FuProvider> Machine<'p, F, NoHooks> {
    /// Creates a machine with no corruption hooks.
    pub fn new(prog: &'p Program, fu: F) -> Machine<'p, F, NoHooks> {
        Machine::with_hooks(prog, fu, NoHooks)
    }

    /// [`Machine::new`] recycling a [`Memory`] buffer from an earlier run.
    /// The buffer is rebuilt from `prog.mem`, so the machine starts from
    /// exactly the state [`Machine::new`] would produce.
    pub fn new_in(prog: &'p Program, fu: F, recycle: Memory) -> Machine<'p, F, NoHooks> {
        Machine::with_hooks_in(prog, fu, NoHooks, recycle)
    }

    /// [`Machine::new`] taking a memory image the caller has already
    /// initialized to exactly `prog.mem.build()` (see
    /// [`Machine::with_hooks_premade`]).
    pub fn new_premade(prog: &'p Program, fu: F, mem: Memory) -> Machine<'p, F, NoHooks> {
        Machine::with_hooks_premade(prog, fu, NoHooks, mem)
    }
}

impl<'p, F: FuProvider, H: ExecHooks> Machine<'p, F, H> {
    /// Creates a machine with explicit hooks (fault-injection replays).
    pub fn with_hooks(prog: &'p Program, fu: F, hooks: H) -> Machine<'p, F, H> {
        Machine {
            prog,
            state: prog.initial_state(),
            mem: prog.mem.build(),
            fu,
            hooks,
            dyn_count: 0,
            info: StepInfo::new(0, 0, FormId(0)),
        }
    }

    /// [`Machine::with_hooks`] recycling a [`Memory`] buffer from an
    /// earlier run (replay campaigns reuse one buffer per worker instead
    /// of allocating the full region per fault).
    pub fn with_hooks_in(
        prog: &'p Program,
        fu: F,
        hooks: H,
        mut recycle: Memory,
    ) -> Machine<'p, F, H> {
        prog.mem.build_into(&mut recycle);
        Machine {
            prog,
            state: prog.initial_state(),
            mem: recycle,
            fu,
            hooks,
            dyn_count: 0,
            info: StepInfo::new(0, 0, FormId(0)),
        }
    }

    /// [`Machine::with_hooks`] taking a memory image the caller has
    /// already initialized to exactly `prog.mem.build()` — the
    /// template-clone fast path of replay contexts, which memcpy a
    /// per-program template instead of re-running the image fill for
    /// every fault. Passing anything else diverges from golden
    /// semantics; campaigns source the image from
    /// [`MemImage`](crate::mem::MemImage)-keyed templates only.
    pub fn with_hooks_premade(
        prog: &'p Program,
        fu: F,
        hooks: H,
        mem: Memory,
    ) -> Machine<'p, F, H> {
        debug_assert_eq!(mem.len(), prog.mem.total_size() as usize);
        Machine {
            prog,
            state: prog.initial_state(),
            mem,
            fu,
            hooks,
            dyn_count: 0,
            info: StepInfo::new(0, 0, FormId(0)),
        }
    }

    /// Releases the machine's memory buffer for recycling into the next
    /// [`Machine::new_in`] / [`Machine::with_hooks_in`].
    #[inline]
    pub fn into_memory(self) -> Memory {
        self.mem
    }

    /// The current architectural state.
    #[inline]
    pub fn state(&self) -> &ArchState {
        &self.state
    }

    /// The program memory (mutable: the fault injector uses this to apply
    /// pre-run or mid-run persistent corruption).
    #[inline]
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The program memory.
    #[inline]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Dynamic instructions retired so far.
    #[inline]
    pub fn dyn_count(&self) -> u64 {
        self.dyn_count
    }

    /// The functional-unit provider (mutable: intermittent-fault replay
    /// toggles a faulty provider's burst window between steps).
    #[inline]
    pub fn fu_mut(&mut self) -> &mut F {
        &mut self.fu
    }

    /// Whether the machine has retired a `HALT` (or fallen off the end).
    #[inline]
    pub fn halted(&self) -> bool {
        self.state.halted
    }

    /// Restores the machine to a recorded mid-run architectural state (a
    /// [`crate::trail::GoldenTrail`] checkpoint seek). Memory must be
    /// brought to the matching point separately via
    /// [`crate::trail::GoldenTrail::apply_deltas`]; the dynamic
    /// instruction counter continues from `dyn_idx` so caps and
    /// per-instruction hooks see the same indices a full run would.
    pub fn restore(&mut self, state: &ArchState, dyn_idx: u64) {
        self.state.clone_from(state);
        self.dyn_count = dyn_idx;
    }

    /// Executes one instruction and returns a reference to its
    /// [`StepInfo`] (valid until the next step; copy it out — the struct
    /// is `Copy` — to keep it longer).
    ///
    /// Returns `Ok(None)` if the machine is already halted.
    ///
    /// # Errors
    /// Any [`Trap`] raised by the instruction.
    pub fn step(&mut self) -> Result<Option<&StepInfo>, Trap> {
        if self.state.halted {
            return Ok(None);
        }
        let rip = self.state.rip;
        if rip as usize >= self.prog.insts.len() {
            self.state.halted = true;
            return Ok(None);
        }
        let inst = self.prog.insts[rip as usize];
        self.info.reset(self.dyn_count, rip, inst.form);
        let flow = self.exec_inst(inst)?;
        self.dyn_count += 1;
        match flow {
            Flow::Next => self.state.rip = rip + 1,
            Flow::Jump(t) => self.state.rip = t,
            Flow::Halt => self.state.halted = true,
        }
        Ok(Some(&self.info))
    }

    /// Runs until `HALT`, a trap, or the dynamic instruction cap.
    ///
    /// # Errors
    /// The trap that terminated execution, including
    /// [`Trap::InstructionCap`] when the cap is hit.
    pub fn run(&mut self, cap: u64) -> Result<RunOutput, Trap> {
        while !self.state.halted {
            if self.dyn_count >= cap {
                return Err(Trap::InstructionCap);
            }
            self.step()?;
        }
        Ok(self.output())
    }

    /// Captures the output of the (halted) machine.
    pub fn output(&self) -> RunOutput {
        RunOutput {
            state: self.state.clone(),
            signature: Signature::capture(&self.state, &self.mem),
            dyn_count: self.dyn_count,
        }
    }

    // ---- helpers shared with semantics.rs ----

    /// Reads a GPR through the corruption hook, recording the read as a
    /// full 64-bit observation.
    #[inline]
    pub(crate) fn read_gpr64(&mut self, r: Gpr) -> u64 {
        self.read_gpr_masked(r, u64::MAX)
    }

    /// Reads a GPR recording the given observation mask (which bits of
    /// the value can influence this instruction's results). The returned
    /// value is the full 64-bit register; the caller truncates.
    #[inline]
    pub(crate) fn read_gpr_masked(&mut self, r: Gpr, mask: u64) -> u64 {
        self.info.reads_gpr |= 1 << r.index();
        self.info.gpr_read_mask[r.index()] |= mask;
        let v = self.state.gpr(r);
        self.hooks.on_gpr_read(self.info.dyn_idx, r, v)
    }

    /// Widens a GPR observation mask after the fact (data-dependent
    /// observations, e.g. `AND` masks computed from the other operand).
    #[inline]
    pub(crate) fn note_gpr_obs(&mut self, r: Gpr, mask: u64) {
        self.info.gpr_read_mask[r.index()] |= mask;
    }

    /// Writes a GPR at width, recording the write.
    #[inline]
    pub(crate) fn write_gpr(&mut self, w: crate::reg::Width, r: Gpr, v: u64) {
        self.info.writes_gpr |= 1 << r.index();
        self.state.set_gpr_w(w, r, v);
    }

    /// Loads through the hook, recording the access.
    pub(crate) fn load(&mut self, addr: u64, size: u8) -> Result<u64, Trap> {
        let v = self.mem.read(addr, size as u32)?;
        self.info.mem = Some(MemAccess {
            addr,
            size,
            is_store: false,
        });
        Ok(self.hooks.on_load(self.info.dyn_idx, addr, size, v))
    }

    /// Stores through the hook, recording the access.
    pub(crate) fn store(&mut self, addr: u64, size: u8, v: u64) -> Result<(), Trap> {
        self.hooks.on_store(self.info.dyn_idx, addr, size);
        self.mem.write(addr, size as u32, v)?;
        self.info.mem = Some(MemAccess {
            addr,
            size,
            is_store: true,
        });
        Ok(())
    }

    /// Records a graded-unit pass.
    #[inline]
    pub(crate) fn record_pass(&mut self, p: FuPass) {
        self.info.passes.push(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::NativeFu;
    use crate::inst::Inst;

    #[test]
    fn empty_program_halts_immediately() {
        let p = Program::new("empty", vec![]);
        let mut m = Machine::new(&p, NativeFu);
        let out = m.run(10).unwrap();
        assert_eq!(out.dyn_count, 0);
    }

    #[test]
    fn falling_off_the_end_halts() {
        let p = Program::new("nop", vec![Inst::nop()]);
        let mut m = Machine::new(&p, NativeFu);
        let out = m.run(10).unwrap();
        assert_eq!(out.dyn_count, 1);
    }

    #[test]
    fn instruction_cap_traps() {
        use crate::form::{Catalog, Mnemonic, OpMode};
        use crate::reg::Width;
        let jmp = Catalog::get()
            .lookup(Mnemonic::Jmp, OpMode::Rel, Width::B64, false)
            .unwrap();
        // An infinite self-loop.
        let p = Program::new("spin", vec![Inst::new(jmp, 0, 0, -1)]);
        let mut m = Machine::new(&p, NativeFu);
        assert_eq!(m.run(100).unwrap_err(), Trap::InstructionCap);
        assert_eq!(m.dyn_count(), 100);
    }

    #[test]
    fn step_after_halt_returns_none() {
        let p = Program::new("h", vec![Inst::halt()]);
        let mut m = Machine::new(&p, NativeFu);
        assert!(m.step().unwrap().is_some());
        assert!(m.halted());
        assert!(m.step().unwrap().is_none());
    }
}
