/root/repo/target/debug/deps/fault_model_study-cd014125e620ed53.d: crates/bench/src/bin/fault_model_study.rs

/root/repo/target/debug/deps/fault_model_study-cd014125e620ed53: crates/bench/src/bin/fault_model_study.rs

crates/bench/src/bin/fault_model_study.rs:
