/root/repo/target/release/deps/harpo_cli-388b0feb21254def.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/release/deps/harpo_cli-388b0feb21254def: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
