/root/repo/target/debug/examples/ripple_scan-d61b117ccf3292c8.d: examples/ripple_scan.rs Cargo.toml

/root/repo/target/debug/examples/libripple_scan-d61b117ccf3292c8.rmeta: examples/ripple_scan.rs Cargo.toml

examples/ripple_scan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
