/root/repo/target/release/deps/harpo_baselines-55ce2a7bf710db34.d: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/release/deps/libharpo_baselines-55ce2a7bf710db34.rlib: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/release/deps/libharpo_baselines-55ce2a7bf710db34.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kern.rs:
crates/baselines/src/mibench.rs:
crates/baselines/src/opendcdiag.rs:
crates/baselines/src/silifuzz.rs:
