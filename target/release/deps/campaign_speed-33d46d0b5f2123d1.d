/root/repo/target/release/deps/campaign_speed-33d46d0b5f2123d1.d: crates/bench/src/bin/campaign_speed.rs

/root/repo/target/release/deps/campaign_speed-33d46d0b5f2123d1: crates/bench/src/bin/campaign_speed.rs

crates/bench/src/bin/campaign_speed.rs:
