/root/repo/target/debug/deps/harpo_core-f272196eb8521196.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_core-f272196eb8521196.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/evaluator.rs:
crates/core/src/memo.rs:
crates/core/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
