/root/repo/target/release/deps/fig10_convergence-33797322d06ac3d7.d: crates/bench/src/bin/fig10_convergence.rs

/root/repo/target/release/deps/fig10_convergence-33797322d06ac3d7: crates/bench/src/bin/fig10_convergence.rs

crates/bench/src/bin/fig10_convergence.rs:
