/root/repo/target/release/deps/detection_speed-bf356668621b7ed1.d: crates/bench/src/bin/detection_speed.rs

/root/repo/target/release/deps/detection_speed-bf356668621b7ed1: crates/bench/src/bin/detection_speed.rs

crates/bench/src/bin/detection_speed.rs:
