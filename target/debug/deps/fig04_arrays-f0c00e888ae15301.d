/root/repo/target/debug/deps/fig04_arrays-f0c00e888ae15301.d: crates/bench/src/bin/fig04_arrays.rs

/root/repo/target/debug/deps/fig04_arrays-f0c00e888ae15301: crates/bench/src/bin/fig04_arrays.rs

crates/bench/src/bin/fig04_arrays.rs:
