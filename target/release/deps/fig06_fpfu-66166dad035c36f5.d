/root/repo/target/release/deps/fig06_fpfu-66166dad035c36f5.d: crates/bench/src/bin/fig06_fpfu.rs

/root/repo/target/release/deps/fig06_fpfu-66166dad035c36f5: crates/bench/src/bin/fig06_fpfu.rs

crates/bench/src/bin/fig06_fpfu.rs:
