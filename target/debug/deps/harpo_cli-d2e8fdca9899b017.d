/root/repo/target/debug/deps/harpo_cli-d2e8fdca9899b017.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/libharpo_cli-d2e8fdca9899b017.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/libharpo_cli-d2e8fdca9899b017.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
