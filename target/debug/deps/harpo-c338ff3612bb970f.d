/root/repo/target/debug/deps/harpo-c338ff3612bb970f.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/harpo-c338ff3612bb970f: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
