#![warn(missing_docs)]

//! # harpo-faultsim — statistical fault injection
//!
//! The GeFIN substitute (DESIGN.md substitution table): grades the fault
//! detection capability of HX86 test programs by statistical fault
//! injection (paper §II-E). Transient single-bit flips target the
//! physical integer register file and the L1D data array; permanent and
//! intermittent stuck-at faults target gate-level netlists of the four
//! graded functional units. Outcomes are classified **Masked / SDC /
//! Crash**; detection capability is n/N.
//!
//! Engineering notes:
//! * transient faults are *planned* from the golden execution trace —
//!   faults whose bit is never consumed resolve Masked with no replay;
//! * gate faults are screened with the 64-lane packed netlist evaluator
//!   before any replay is paid for;
//! * campaigns fan out across threads (`std::thread::scope`), mirroring
//!   the paper's use of all 96 host threads;
//! * replays are *checkpointed* ([`checkpoint`]): a golden trail of
//!   architectural snapshots plus a store-delta log lets every replay
//!   seek to the fault's first corruption point and early-exit once the
//!   faulty run provably reconverges with the golden one, with
//!   bit-identical outcomes;
//! * opt-in **live telemetry** ([`stream`]): a monitor thread journals
//!   schema-v4 `progress`/`heartbeat` records on a cadence, a watchdog
//!   flags stalled workers, and a wall-clock budget stops gracefully at
//!   a unit boundary with a resumable `cursor`;
//! * opt-in **forensics** ([`autopsy`]): campaigns can additionally
//!   record a per-fault [`FaultAutopsy`] — divergence site, masking
//!   mechanism, propagation span, detection latency — aggregated into
//!   per-structure bit-level [`StructureHeatmap`]s.

pub mod autopsy;
pub mod campaign;
pub mod checkpoint;
pub mod cohort;
pub mod fault;
pub mod gate;
pub mod outcome;
pub mod plan;
pub mod replay;
pub mod stream;

pub use autopsy::{heatmaps_of, DivergenceSite, FaultAutopsy, Mechanism, StructureHeatmap};
pub use campaign::{
    build_campaign_trail, graded_unit_of, measure_detection, measure_detection_forensic,
    measure_detection_streamed, measure_detection_with_golden, measure_detection_with_trail,
    CampaignConfig, L1dProtection,
};
pub use checkpoint::ReplayStats;
pub use cohort::{screen_fault_cohorts, DynFates, Fate, GateVerdict};
pub use fault::{
    sample_gate_faults, sample_irf_faults, sample_l1d_faults, sample_xrf_faults, FaultSpec,
    IrfFault, L1dFault, XrfFault,
};
pub use gate::{
    replay_gate_intermittent, replay_gate_intermittent_counted_ctx, replay_gate_permanent,
    replay_gate_permanent_bounded, replay_gate_permanent_counted,
    replay_gate_permanent_counted_ctx, screen_fault_spans, screen_faults, ActivationSpan,
};
pub use outcome::{CampaignResult, FaultOutcome, ReplayLenHist};
pub use plan::{
    plan_irf, plan_irf_intermittent, plan_l1d, plan_xrf, CorruptKind, CorruptionPlan, LoadFlip,
    RegFlip, XmmFlip,
};
pub use replay::{
    replay_with_plan, replay_with_plan_bounded, replay_with_plan_counted,
    replay_with_plan_counted_ctx, PlanHooks, ReplayCtx,
};
pub use stream::{CampaignStream, StreamMonitor, StreamSettings};
