/root/repo/target/debug/deps/compiled_equiv-deaa51c15e729350.d: crates/gates/tests/compiled_equiv.rs

/root/repo/target/debug/deps/compiled_equiv-deaa51c15e729350: crates/gates/tests/compiled_equiv.rs

crates/gates/tests/compiled_equiv.rs:
