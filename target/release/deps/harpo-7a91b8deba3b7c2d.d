/root/repo/target/release/deps/harpo-7a91b8deba3b7c2d.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/release/deps/harpo-7a91b8deba3b7c2d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
