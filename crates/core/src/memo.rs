//! Evaluation memoisation.
//!
//! The (μ+λ) loop re-evaluates every offspring each round, but replace-all
//! mutation occasionally reproduces a program the loop has already graded
//! (and survivors re-enter the pool verbatim when selection is stable).
//! Since evaluation is deterministic — same program, same core config,
//! same coverage — a score computed once can be replayed from a table
//! instead of re-simulated.
//!
//! The fingerprint itself lives in [`mod@harpo_isa::fingerprint`] (re-exported
//! here for compatibility): the Mutator stamps every offspring with its
//! parent's fingerprint, so the memo key and the lineage flight recorder
//! must agree on one definition of program identity. A memo hit therefore
//! preserves operator attribution for free — the cached score is keyed by
//! the same fingerprint the provenance tag refers to, and the program
//! object (with its tag) is never replaced by the cache.

pub use harpo_isa::fingerprint::{fingerprint, Fnv128};

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_museqgen::{GenConstraints, Generator};

    fn gen() -> Generator {
        Generator::new(GenConstraints {
            n_insts: 60,
            ..GenConstraints::default()
        })
    }

    #[test]
    fn fingerprint_is_stable() {
        let p = gen().generate(42);
        assert_eq!(fingerprint(&p), fingerprint(&p.clone()));
    }

    #[test]
    fn fingerprint_ignores_the_name() {
        let p = gen().generate(42);
        let mut q = p.clone();
        q.name = "renamed".into();
        assert_eq!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn distinct_programs_have_distinct_fingerprints() {
        let g = gen();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            assert!(seen.insert(fingerprint(&g.generate(seed))));
        }
    }

    #[test]
    fn single_instruction_change_moves_the_fingerprint() {
        let p = gen().generate(7);
        let mut q = p.clone();
        // Swap two instructions (the generated tail always ends in halt,
        // so swap within the body).
        q.insts.swap(0, 1);
        if q.insts == p.insts {
            return; // degenerate: identical neighbours
        }
        assert_ne!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn fingerprint_sees_reg_and_mem_state() {
        let p = gen().generate(9);
        let mut q = p.clone();
        q.reg_init.gprs[3] ^= 1;
        assert_ne!(fingerprint(&p), fingerprint(&q));
    }
}
