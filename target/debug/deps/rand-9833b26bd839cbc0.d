/root/repo/target/debug/deps/rand-9833b26bd839cbc0.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9833b26bd839cbc0.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-9833b26bd839cbc0.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
