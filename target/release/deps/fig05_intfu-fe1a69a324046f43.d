/root/repo/target/release/deps/fig05_intfu-fe1a69a324046f43.d: crates/bench/src/bin/fig05_intfu.rs

/root/repo/target/release/deps/fig05_intfu-fe1a69a324046f43: crates/bench/src/bin/fig05_intfu.rs

crates/bench/src/bin/fig05_intfu.rs:
