/root/repo/target/debug/deps/determinism-7d98ce39760e83dd.d: crates/core/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-7d98ce39760e83dd.rmeta: crates/core/tests/determinism.rs Cargo.toml

crates/core/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
