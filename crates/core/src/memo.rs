//! Evaluation memoisation.
//!
//! The (μ+λ) loop re-evaluates every offspring each round, but replace-all
//! mutation occasionally reproduces a program the loop has already graded
//! (and survivors re-enter the pool verbatim when selection is stable).
//! Since evaluation is deterministic — same program, same core config,
//! same coverage — a score computed once can be replayed from a table
//! instead of re-simulated.
//!
//! Programs are keyed by a 128-bit FNV-style fingerprint of their
//! *semantic* content: the instruction sequence, the initial register
//! state and the memory image. The `name` field is deliberately excluded
//! — it is a human label and two programs differing only in name execute
//! identically. 128 bits keeps the collision probability negligible at
//! any realistic population size (birthday bound ≈ 2⁻⁶⁴ per pair), so the
//! engine treats a fingerprint hit as a definitive score.

use harpo_isa::program::Program;
use std::hash::{Hash, Hasher};

/// A 128-bit streaming hasher: two independent 64-bit FNV-1a-style
/// accumulators with distinct offset bases and odd multipliers. Not
/// cryptographic — just wide enough that accidental collisions are out
/// of reach for the memo table's lifetime.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    lo: u64,
    hi: u64,
}

impl Fnv128 {
    const LO_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const LO_PRIME: u64 = 0x0000_0100_0000_01b3;
    const HI_OFFSET: u64 = 0x6c62_272e_07bb_0142;
    const HI_PRIME: u64 = 0x0000_0001_0000_01b5;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv128 {
        Fnv128 {
            lo: Self::LO_OFFSET,
            hi: Self::HI_OFFSET,
        }
    }

    /// The 128-bit digest of everything written so far.
    pub fn fingerprint(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Hasher for Fnv128 {
    fn finish(&self) -> u64 {
        self.lo ^ self.hi
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ b as u64).wrapping_mul(Self::LO_PRIME);
            self.hi = (self.hi ^ b as u64).wrapping_mul(Self::HI_PRIME);
        }
    }
}

/// The memo key of a program: a 128-bit fingerprint of its instructions,
/// initial register state and memory image (the name is excluded).
pub fn fingerprint(prog: &Program) -> u128 {
    let mut h = Fnv128::new();
    prog.insts.hash(&mut h);
    prog.reg_init.hash(&mut h);
    prog.mem.hash(&mut h);
    h.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_museqgen::{GenConstraints, Generator};

    fn gen() -> Generator {
        Generator::new(GenConstraints {
            n_insts: 60,
            ..GenConstraints::default()
        })
    }

    #[test]
    fn fingerprint_is_stable() {
        let p = gen().generate(42);
        assert_eq!(fingerprint(&p), fingerprint(&p.clone()));
    }

    #[test]
    fn fingerprint_ignores_the_name() {
        let p = gen().generate(42);
        let mut q = p.clone();
        q.name = "renamed".into();
        assert_eq!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn distinct_programs_have_distinct_fingerprints() {
        let g = gen();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            assert!(seen.insert(fingerprint(&g.generate(seed))));
        }
    }

    #[test]
    fn single_instruction_change_moves_the_fingerprint() {
        let p = gen().generate(7);
        let mut q = p.clone();
        // Swap two instructions (the generated tail always ends in halt,
        // so swap within the body).
        q.insts.swap(0, 1);
        if q.insts == p.insts {
            return; // degenerate: identical neighbours
        }
        assert_ne!(fingerprint(&p), fingerprint(&q));
    }

    #[test]
    fn fingerprint_sees_reg_and_mem_state() {
        let p = gen().generate(9);
        let mut q = p.clone();
        q.reg_init.gprs[3] ^= 1;
        assert_ne!(fingerprint(&p), fingerprint(&q));
    }
}
