/root/repo/target/debug/deps/ablation_l1d-3fa5237780c3538d.d: crates/bench/src/bin/ablation_l1d.rs

/root/repo/target/debug/deps/ablation_l1d-3fa5237780c3538d: crates/bench/src/bin/ablation_l1d.rs

crates/bench/src/bin/ablation_l1d.rs:
