//! Extension study — the fault-type interplay of paper §II-D (Fig. 2)
//! and the protection modelling of §II-E:
//!
//! 1. the same gate fault injected as **permanent** vs **intermittent**
//!    bursts of decreasing length: detection decays with burst length,
//!    illustrating why a program that detects transients detects the
//!    rest (permanent ⊂ intermittent ⊂ transient in Fig. 2's diagram);
//! 2. the L1D campaign re-run with **SECDED ECC** modelled: every
//!    single-bit transient is Corrected, detection drops to zero — the
//!    §II-E "Masked (Corrected)" case.

use harpo_baselines::opendcdiag;
use harpo_bench::{pct, write_csv, Cli, Harness};
use harpo_coverage::TargetStructure;
use harpo_faultsim::{
    build_campaign_trail, measure_detection, replay_gate_intermittent_counted_ctx,
    sample_gate_faults, CampaignConfig, CampaignResult, L1dProtection, ReplayCtx,
};
use harpo_gates::GradedUnit;
use harpo_uarch::OooCore;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("fault_model_study", &cli);
    let core = OooCore::default();

    // --- Part 1: permanent vs intermittent gate faults. ---
    println!("=== Fault-type interplay (integer adder, MxM test) ===");
    let prog = opendcdiag::mxm_int();
    let sim = core.simulate(&prog, 50_000_000).expect("golden");
    let golden = sim.output.signature;
    let total_dyn = sim.trace.stats.insts;
    let mut rng = StdRng::seed_from_u64(cli.campaign().seed);
    let faults = sample_gate_faults(&mut rng, GradedUnit::IntAdder, cli.faults.min(48));
    let trail = build_campaign_trail(&prog, &cli.campaign());
    let mut ctx = ReplayCtx::new();

    let mut csv = Vec::new();
    println!("{:>22} {:>11}", "burst (dyn insts)", "detection");
    for burst_frac in [1.0f64, 0.5, 0.25, 0.1, 0.02] {
        let burst = ((total_dyn as f64 * burst_frac) as u64).max(1);
        let from = (total_dyn - burst) / 2;
        let mut tally = CampaignResult::default();
        for f in &faults {
            let (out, stats) = replay_gate_intermittent_counted_ctx(
                &prog,
                *f,
                from,
                from + burst,
                &golden,
                50_000_000,
                trail.as_ref(),
                &mut ctx,
            );
            tally.record_replay_stats(out, &stats);
        }
        let label = if burst_frac == 1.0 {
            "permanent".to_string()
        } else {
            format!("{burst} of {total_dyn}")
        };
        tally.publish(harness.metrics());
        println!("{label:>22} {:>11}", pct(tally.detection()));
        csv.push(format!(
            "intermittent,{burst_frac},{:.6}",
            tally.detection()
        ));
    }

    // --- Part 2: SECDED ECC on the L1D. ---
    println!("\n=== L1D protection (memcheck test) ===");
    let mem = opendcdiag::mem_check();
    for (label, prot) in [
        ("unprotected", L1dProtection::None),
        ("SECDED", L1dProtection::Secded),
    ] {
        let ccfg = CampaignConfig {
            n_faults: cli.faults,
            l1d_protection: prot,
            ..cli.campaign()
        };
        let r = measure_detection(&mem, TargetStructure::L1d, &core, &ccfg).expect("campaign");
        r.publish(harness.metrics());
        println!("{label:<12} {r}");
        csv.push(format!("l1d,{label},{:.6}", r.detection()));
    }
    write_csv(
        &cli.out_dir,
        "fault_model_study.csv",
        "study,param,detection",
        &csv,
    );
    harness.finish();
}
