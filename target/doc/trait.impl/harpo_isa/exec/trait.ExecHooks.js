(function() {
    const implementors = Object.fromEntries([["harpo_faultsim",[["impl <a class=\"trait\" href=\"harpo_isa/exec/trait.ExecHooks.html\" title=\"trait harpo_isa::exec::ExecHooks\">ExecHooks</a> for <a class=\"struct\" href=\"harpo_faultsim/replay/struct.PlanHooks.html\" title=\"struct harpo_faultsim::replay::PlanHooks\">PlanHooks</a>&lt;'_&gt;",0]]],["harpo_faultsim",[["impl ExecHooks for <a class=\"struct\" href=\"harpo_faultsim/replay/struct.PlanHooks.html\" title=\"struct harpo_faultsim::replay::PlanHooks\">PlanHooks</a>&lt;'_&gt;",0]]],["harpo_isa",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[304,194,17]}