/root/repo/target/debug/deps/report_snapshot-4c588d60a79291de.d: crates/cli/tests/report_snapshot.rs

/root/repo/target/debug/deps/report_snapshot-4c588d60a79291de: crates/cli/tests/report_snapshot.rs

crates/cli/tests/report_snapshot.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/cli
