/root/repo/target/debug/examples/quickstart-0524aad82486a70a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0524aad82486a70a: examples/quickstart.rs

examples/quickstart.rs:
