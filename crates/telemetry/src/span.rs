//! RAII stage timers.

use crate::metrics::Histogram;
use std::time::{Duration, Instant};

/// Times a scope: on drop, the elapsed wall time is added to a
/// `Duration` accumulator and/or observed (in nanoseconds) by a
/// [`Histogram`].
///
/// ```
/// use harpo_telemetry::Span;
/// use std::time::Duration;
/// let mut evaluation = Duration::ZERO;
/// {
///     let _span = Span::enter(&mut evaluation);
///     // ... the stage ...
/// }
/// assert!(evaluation > Duration::ZERO || evaluation == evaluation);
/// ```
#[derive(Debug)]
pub struct Span<'a> {
    start: Instant,
    acc: Option<&'a mut Duration>,
    hist: Option<Histogram>,
}

impl<'a> Span<'a> {
    /// A span accumulating into a duration.
    pub fn enter(acc: &'a mut Duration) -> Span<'a> {
        Span {
            start: Instant::now(),
            acc: Some(acc),
            hist: None,
        }
    }

    /// A span observed only by a histogram.
    pub fn observe(hist: Histogram) -> Span<'static> {
        Span {
            start: Instant::now(),
            acc: None,
            hist: Some(hist),
        }
    }

    /// Additionally records the elapsed nanoseconds into `hist`.
    pub fn with_histogram(mut self, hist: Histogram) -> Span<'a> {
        self.hist = Some(hist);
        self
    }

    /// Elapsed time so far (the span keeps running).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        if let Some(acc) = self.acc.as_deref_mut() {
            *acc += elapsed;
        }
        if let Some(hist) = &self.hist {
            hist.observe(elapsed.as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accumulates_duration() {
        let mut acc = Duration::ZERO;
        {
            let _s = Span::enter(&mut acc);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(acc >= Duration::from_millis(1));
        let before = acc;
        {
            let _s = Span::enter(&mut acc);
        }
        assert!(acc >= before, "second span adds, never resets");
    }

    #[test]
    fn span_feeds_histogram() {
        let h = Histogram::new();
        {
            let _s = Span::observe(h.clone());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_can_do_both() {
        let h = Histogram::new();
        let mut acc = Duration::ZERO;
        {
            let _s = Span::enter(&mut acc).with_histogram(h.clone());
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() > 0);
        assert!(acc > Duration::ZERO);
    }
}
