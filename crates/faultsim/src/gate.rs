//! Gate-level fault injection in functional units.
//!
//! Permanent stuck-at faults follow a two-stage flow:
//!
//! 1. **activation screening** — the packed 64-lane evaluator replays the
//!    golden run's operand stream through the unit's netlist, grading 64
//!    candidate faults per pass; faults whose output never differs from
//!    the golden result over the whole run are **Masked** without any
//!    functional replay;
//! 2. **propagation replay** — activated faults get a full functional
//!    replay with [`harpo_gates::FaultyFu`] substituting the faulty
//!    netlist on every pass through the defective unit, so second-order
//!    effects (corrupted values re-entering the unit with *different*
//!    operands) are modelled exactly.
//!
//! Intermittent faults assert the stuck-at only within a dynamic-
//! instruction burst, toggling the provider between steps.

use crate::checkpoint::{drive, ReplayStats, RunEnd};
use crate::outcome::FaultOutcome;
use crate::replay::ReplayCtx;
use harpo_gates::{screen_activation_masks, FaultyFu, GateFault, GradedUnit, UnitEvaluators};
use harpo_isa::exec::Machine;
use harpo_isa::form::FuKind;
use harpo_isa::hash::MixMap;
use harpo_isa::program::Program;
use harpo_isa::state::Signature;
use harpo_isa::trail::GoldenTrail;
use harpo_uarch::ExecutionTrace;

/// The `FuKind` whose passes feed a graded unit.
pub fn fu_kind_of(unit: GradedUnit) -> FuKind {
    match unit {
        GradedUnit::IntAdder => FuKind::IntAdd,
        GradedUnit::IntMultiplier => FuKind::IntMul,
        GradedUnit::FpAdder => FuKind::FpAdd,
        GradedUnit::FpMultiplier => FuKind::FpMul,
    }
}

/// Memoised packed screening: generated programs reuse operand values
/// heavily (loop bodies re-add the same accumulators), so the 64-lane
/// activation mask is cached per unique `(a, b, cin)` triple and the
/// netlist is evaluated once per distinct operand pattern instead of
/// once per dynamic pass.
struct TripleMemo {
    pairs: Vec<(u32, bool)>,
    masks: MixMap<(u64, u64, bool), u64>,
}

impl TripleMemo {
    fn new(faults: &[GateFault]) -> TripleMemo {
        assert!(faults.len() <= 64);
        TripleMemo {
            pairs: faults.iter().map(|f| (f.gate, f.stuck_one)).collect(),
            masks: MixMap::default(),
        }
    }

    /// Activation mask (bit `i` = fault `i` changes the output) for one
    /// operand triple, evaluating the netlist only on a cache miss.
    fn mask(
        &mut self,
        unit: GradedUnit,
        ev: &mut UnitEvaluators,
        a: u64,
        b: u64,
        cin: bool,
    ) -> u64 {
        let pairs = &self.pairs;
        *self
            .masks
            .entry((a, b, cin))
            .or_insert_with(|| screen_activation_masks(unit, ev, a, b, cin, pairs).0)
    }
}

/// Screens a batch of candidate faults (≤ 64) against the golden operand
/// stream; `activated[i]` is set if fault `i` ever changes the unit's
/// output during the run. Unique operand triples are evaluated once.
pub fn screen_faults(
    trace: &ExecutionTrace,
    unit: GradedUnit,
    faults: &[GateFault],
    ev: &mut UnitEvaluators,
) -> Vec<bool> {
    let mut memo = TripleMemo::new(faults);
    let all = if faults.len() == 64 {
        u64::MAX
    } else {
        (1u64 << faults.len()) - 1
    };
    let mut activated = 0u64;
    let kind = fu_kind_of(unit);
    for op in trace.fu_ops_of(kind) {
        activated |= memo.mask(unit, ev, op.a, op.b, op.cin);
        if activated == all {
            break; // every candidate already activated
        }
    }
    (0..faults.len()).map(|i| activated >> i & 1 != 0).collect()
}

/// First/last activation of one gate fault over the golden operand
/// stream, in dynamic instruction indices. The checkpointed replay seeks
/// to before `first_dyn` (the prefix cannot activate the fault, so it is
/// golden) and treats `last_dyn + 1` as the quiesce point: a faulty run
/// whose state reconverges to the golden trail past it replays golden
/// instructions with golden operands, none of which activate the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationSpan {
    /// Dynamic index of the first activating pass.
    pub first_dyn: u64,
    /// Dynamic index of the last activating pass.
    pub last_dyn: u64,
    /// Issue cycle of the first activating pass — the fault's effective
    /// injection cycle for forensics.
    pub first_cycle: u64,
}

/// [`screen_faults`] variant reporting each fault's activation *span*
/// (`None` = never activated ⇒ Masked without replay). Scans the whole
/// stream — no all-activated early break — but the triple memo makes a
/// full scan one netlist evaluation per unique operand pattern.
pub fn screen_fault_spans(
    trace: &ExecutionTrace,
    unit: GradedUnit,
    faults: &[GateFault],
    ev: &mut UnitEvaluators,
) -> Vec<Option<ActivationSpan>> {
    let mut memo = TripleMemo::new(faults);
    let mut spans: Vec<Option<ActivationSpan>> = vec![None; faults.len()];
    let kind = fu_kind_of(unit);
    for op in trace.fu_ops_of(kind) {
        let mut mask = memo.mask(unit, ev, op.a, op.b, op.cin);
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            match &mut spans[i] {
                Some(s) => {
                    // FU ops are recorded at issue, so the stream is not
                    // strictly dyn-ordered; track min/max explicitly.
                    if op.dyn_idx < s.first_dyn {
                        s.first_dyn = op.dyn_idx;
                        s.first_cycle = op.cycle;
                    }
                    s.last_dyn = s.last_dyn.max(op.dyn_idx);
                }
                slot => {
                    *slot = Some(ActivationSpan {
                        first_dyn: op.dyn_idx,
                        last_dyn: op.dyn_idx,
                        first_cycle: op.cycle,
                    });
                }
            }
        }
    }
    spans
}

/// Full propagation replay of one permanent gate fault.
pub fn replay_gate_permanent(
    prog: &Program,
    fault: GateFault,
    golden: &Signature,
    cap: u64,
) -> FaultOutcome {
    replay_gate_permanent_counted(prog, fault, golden, cap).0
}

/// [`replay_gate_permanent`] variant that also reports the dynamic
/// instructions the faulty run executed — the unit of replay cost that
/// campaign telemetry aggregates.
pub fn replay_gate_permanent_counted(
    prog: &Program,
    fault: GateFault,
    golden: &Signature,
    cap: u64,
) -> (FaultOutcome, u64) {
    replay_gate_permanent_counted_ctx(prog, fault, golden, cap, &mut ReplayCtx::new())
}

/// [`replay_gate_permanent_counted`] variant that recycles the machine's
/// memory buffer through `ctx` across replays.
pub fn replay_gate_permanent_counted_ctx(
    prog: &Program,
    fault: GateFault,
    golden: &Signature,
    cap: u64,
    ctx: &mut ReplayCtx,
) -> (FaultOutcome, u64) {
    let (outcome, stats) =
        replay_gate_permanent_bounded(prog, fault, golden, cap, None, false, ctx);
    (outcome, stats.executed_insts)
}

/// Checkpointed [`replay_gate_permanent_counted_ctx`]: given the fault's
/// [`ActivationSpan`] from the packed screen, the replay seeks to the
/// checkpoint before the first activation (the prefix passes golden
/// operands that never activate the fault, so it is bit-identical to the
/// golden run) and early-exits Masked on reconvergence past the last
/// activation. With `trail == None` this is the full replay.
///
/// `legacy` selects the interpreted [`FaultyFu`] engine (no fault
/// specialization, no output memo) — the pre-compilation baseline that
/// benchmarks replay against; outcomes are bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub fn replay_gate_permanent_bounded(
    prog: &Program,
    fault: GateFault,
    golden: &Signature,
    cap: u64,
    trail: Option<(&GoldenTrail, ActivationSpan)>,
    legacy: bool,
    ctx: &mut ReplayCtx,
) -> (FaultOutcome, ReplayStats) {
    let mut stats = ReplayStats::default();
    let fu = if legacy {
        FaultyFu::new_legacy(fault)
    } else {
        FaultyFu::new(fault)
    };
    let mut m = Machine::new_premade(prog, fu, ctx.mem_for(&prog.mem));
    // A trail only pays its way when the seek can skip at least one
    // checkpoint interval of golden prefix, or the quiesce point leaves
    // a substantial tail for a reconvergence early-exit (a permanent
    // fault still activating near the end almost never reconverges, so
    // a short tail does not buy back the divergence tracking). The
    // specialized engine makes each faulty-unit pass cheaper, which
    // *raises* the relative cost of divergence tracking — so the bar
    // for taking the trail stays deliberately high: skip at least one
    // full interval, or leave a four-interval tail for the early exit.
    let (trail, first, quiesce) = match trail {
        Some((t, span))
            if span.first_dyn >= t.interval()
                || span.last_dyn + 1 + 4 * t.interval() <= t.end_dyn() =>
        {
            (Some(t), span.first_dyn, span.last_dyn + 1)
        }
        _ => (None, 0, u64::MAX),
    };
    let end = drive(
        &mut m,
        trail,
        cap,
        first,
        quiesce,
        &mut ctx.cursor,
        &mut ctx.dirty,
        &mut stats,
        |_| {},
    );
    let outcome = grade_run_end(&m, end, golden);
    harvest_fu_stats(&mut m, &mut stats);
    ctx.park_mem(m.into_memory());
    (outcome, stats)
}

/// Folds the faulted unit's engine statistics into the replay's.
fn harvest_fu_stats<H: harpo_isa::exec::ExecHooks>(
    m: &mut Machine<'_, FaultyFu, H>,
    stats: &mut ReplayStats,
) {
    let fs = m.fu_mut().stats();
    stats.fu_memo_hits = fs.memo_hits;
    stats.fu_memo_lookups = fs.memo_lookups;
    stats.specialized_ops = fs.compiled_ops;
    stats.compile_ns = fs.compile_ns;
}

/// Propagation replay of an intermittent gate fault asserted only for
/// dynamic instructions in `[from_dyn, to_dyn)`.
pub fn replay_gate_intermittent(
    prog: &Program,
    fault: GateFault,
    from_dyn: u64,
    to_dyn: u64,
    golden: &Signature,
    cap: u64,
) -> FaultOutcome {
    replay_gate_intermittent_counted_ctx(
        prog,
        fault,
        from_dyn,
        to_dyn,
        golden,
        cap,
        None,
        &mut ReplayCtx::new(),
    )
    .0
}

/// [`replay_gate_intermittent`] at parity with the permanent path:
/// recycles [`ReplayCtx`] buffers, reports replay cost for campaign
/// telemetry, and — with a trail — seeks to the checkpoint before the
/// burst opens (the fault is inert before `from_dyn`, so the prefix is
/// golden) and early-exits Masked on reconvergence after the burst
/// closes at `to_dyn`.
#[allow(clippy::too_many_arguments)]
pub fn replay_gate_intermittent_counted_ctx(
    prog: &Program,
    fault: GateFault,
    from_dyn: u64,
    to_dyn: u64,
    golden: &Signature,
    cap: u64,
    trail: Option<&GoldenTrail>,
    ctx: &mut ReplayCtx,
) -> (FaultOutcome, ReplayStats) {
    let mut stats = ReplayStats::default();
    let mut m = Machine::new_premade(prog, FaultyFu::new(fault), ctx.mem_for(&prog.mem));
    // Same profitability condition as the permanent path: the burst must
    // open at least one interval in, or close at least one interval
    // before the end, for the trail to beat a plain replay.
    let trail = trail
        .filter(|t| from_dyn >= t.interval() || to_dyn.saturating_add(t.interval()) <= t.end_dyn());
    let end = drive(
        &mut m,
        trail,
        cap,
        from_dyn,
        to_dyn,
        &mut ctx.cursor,
        &mut ctx.dirty,
        &mut stats,
        |m| {
            let dyn_idx = m.dyn_count();
            m.fu_mut().active = dyn_idx >= from_dyn && dyn_idx < to_dyn;
        },
    );
    let outcome = grade_run_end(&m, end, golden);
    harvest_fu_stats(&mut m, &mut stats);
    ctx.park_mem(m.into_memory());
    (outcome, stats)
}

/// Grades a driven gate replay: trap ⇒ Crash, reconvergence ⇒ Masked,
/// halt ⇒ signature comparison.
fn grade_run_end<F: harpo_isa::fu::FuProvider, H: harpo_isa::exec::ExecHooks>(
    m: &Machine<'_, F, H>,
    end: RunEnd,
    golden: &Signature,
) -> FaultOutcome {
    match end {
        RunEnd::Trapped => FaultOutcome::Crash,
        RunEnd::Reconverged => FaultOutcome::Masked,
        RunEnd::Halted => {
            if m.output().signature == *golden {
                FaultOutcome::Masked
            } else {
                FaultOutcome::Sdc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::fu::NativeFu;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_uarch::OooCore;

    fn adder_heavy() -> Program {
        let mut a = Asm::new("adds");
        a.mov_ri64(Rax, 0x0123_4567_89AB_CDEF);
        a.mov_ri64(Rbx, 0xFEDC_BA98_7654_3210);
        for _ in 0..32 {
            a.add_rr(B64, Rcx, Rax);
            a.add_rr(B64, Rdx, Rbx);
            a.add_rr(B64, Rcx, Rdx);
        }
        a.halt();
        a.finish().unwrap()
    }

    fn golden_of(p: &Program) -> (Signature, ExecutionTrace) {
        let r = OooCore::default().simulate(p, 1_000_000).unwrap();
        (r.output.signature, r.trace)
    }

    #[test]
    fn screening_agrees_with_replay_for_adder() {
        let p = adder_heavy();
        let (golden, trace) = golden_of(&p);
        let faults: Vec<GateFault> = (0..64u32)
            .map(|i| GateFault {
                unit: GradedUnit::IntAdder,
                gate: (i * 5) % GradedUnit::IntAdder.gate_count() as u32,
                stuck_one: i % 2 == 0,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let mut some_active = false;
        for (i, f) in faults.iter().enumerate() {
            let out = replay_gate_permanent(&p, *f, &golden, 1_000_000);
            if !act[i] {
                // Never-activated faults must be masked.
                assert_eq!(
                    out,
                    FaultOutcome::Masked,
                    "fault {:?} inactive but {:?}",
                    f,
                    out
                );
            } else {
                some_active = true;
            }
        }
        assert!(some_active, "wide operands must activate some faults");
    }

    #[test]
    fn narrow_operands_leave_high_gates_inactive() {
        // With small operands the upper carry chain never toggles, so
        // stuck-at-0 faults there never activate and the screen proves
        // them Masked without a replay.
        let mut a = Asm::new("narrow");
        a.mov_ri(B64, Rax, 0xFF);
        for _ in 0..20 {
            a.add_ri(B8, Rbx, 3);
            a.add_rr(B8, Rbx, Rax);
        }
        a.halt();
        let p = a.finish().unwrap();
        let (_, trace) = golden_of(&p);
        // Gates of the top bits: the ripple adder allocates 5 gates per
        // bit from LSB, so bit-60 logic sits near gate 300.
        let faults: Vec<GateFault> = (300..320u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: false,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        assert!(act.iter().all(|&x| !x), "high stuck-at-0 gates inactive");
    }

    #[test]
    fn adder_fault_detected_by_add_chain() {
        let p = adder_heavy();
        let (golden, trace) = golden_of(&p);
        // Find a fault that activates, then check it is detected (the
        // chain propagates every sum into the output registers).
        let faults: Vec<GateFault> = (0..64u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: true,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let idx = act.iter().position(|&x| x).expect("some fault activates");
        let out = replay_gate_permanent(&p, faults[idx], &golden, 1_000_000);
        assert_eq!(out, FaultOutcome::Sdc);
    }

    #[test]
    fn mul_fault_invisible_to_add_only_program() {
        let p = adder_heavy();
        let (golden, _) = golden_of(&p);
        let f = GateFault {
            unit: GradedUnit::IntMultiplier,
            gate: 1000,
            stuck_one: true,
        };
        assert_eq!(
            replay_gate_permanent(&p, f, &golden, 1_000_000),
            FaultOutcome::Masked
        );
    }

    #[test]
    fn intermittent_outside_burst_is_masked() {
        let p = adder_heavy();
        let (golden, trace) = golden_of(&p);
        // Pick an activating fault.
        let faults: Vec<GateFault> = (0..64u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: true,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let f = faults[act.iter().position(|&x| x).unwrap()];
        // Burst entirely after the program end: no effect.
        let out = replay_gate_intermittent(&p, f, 1_000_000, 2_000_000, &golden, 10_000_000);
        assert_eq!(out, FaultOutcome::Masked);
        // Burst covering the whole run behaves like a permanent fault.
        let out = replay_gate_intermittent(&p, f, 0, u64::MAX, &golden, 10_000_000);
        assert_eq!(out, replay_gate_permanent(&p, f, &golden, 1_000_000));
    }

    #[test]
    fn spans_agree_with_bool_screen_and_bound_replay() {
        let p = adder_heavy();
        let (golden, trace) = golden_of(&p);
        let faults: Vec<GateFault> = (0..64u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g * 3 % GradedUnit::IntAdder.gate_count() as u32,
                stuck_one: g % 2 == 1,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let act = screen_faults(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let spans = screen_fault_spans(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let trail = harpo_isa::trail::GoldenTrail::record(&p, 1_000_000, 16).unwrap();
        let mut ctx = crate::replay::ReplayCtx::new();
        for (i, f) in faults.iter().enumerate() {
            // A span exists exactly when the bool screen activates —
            // the masked fast-path tally is identical on both paths.
            assert_eq!(act[i], spans[i].is_some(), "fault {i}");
            let Some(span) = spans[i] else { continue };
            assert!(span.first_dyn <= span.last_dyn);
            let (full, _) =
                replay_gate_permanent_bounded(&p, *f, &golden, 1_000_000, None, false, &mut ctx);
            let (ck, stats) = replay_gate_permanent_bounded(
                &p,
                *f,
                &golden,
                1_000_000,
                Some((&trail, span)),
                false,
                &mut ctx,
            );
            assert_eq!(ck, full, "fault {i}: checkpointed outcome differs");
            if span.first_dyn >= 16 {
                assert!(stats.checkpoint_hit, "fault {i} should seek");
            }
        }
    }

    #[test]
    fn legacy_engine_matches_compiled_engine() {
        // The interpreted baseline and the fault-specialized compiled
        // engine must grade every fault identically — the bench's full
        // leg runs legacy, the checkpointed leg runs compiled, and the
        // cross-leg tally assertion depends on this.
        let p = adder_heavy();
        let (golden, _) = golden_of(&p);
        let mut ctx = ReplayCtx::new();
        for g in (0..GradedUnit::IntAdder.gate_count() as u32).step_by(17) {
            for stuck_one in [false, true] {
                let f = GateFault {
                    unit: GradedUnit::IntAdder,
                    gate: g,
                    stuck_one,
                };
                let (new, ns) =
                    replay_gate_permanent_bounded(&p, f, &golden, 1_000_000, None, false, &mut ctx);
                let (old, os) =
                    replay_gate_permanent_bounded(&p, f, &golden, 1_000_000, None, true, &mut ctx);
                assert_eq!(new, old, "gate {g} stuck_one={stuck_one}");
                assert_eq!(ns.executed_insts, os.executed_insts);
                assert!(ns.specialized_ops > 0, "compiled engine reports its ops");
                assert_eq!(os.specialized_ops, 0, "legacy engine has no circuit");
                assert_eq!(os.fu_memo_lookups, 0, "legacy engine skips the memo");
            }
        }
    }

    #[test]
    fn trail_profitability_threshold_is_pinned() {
        // The bounded replay takes the trail only when the seek skips a
        // full checkpoint interval of golden prefix, or the quiesce
        // point leaves at least four intervals of tail for the
        // reconvergence early-exit. Pin both edges so the heuristic
        // cannot drift silently: a span starting exactly at `interval`
        // seeks, one instruction earlier (with no tail either) does not.
        let p = adder_heavy();
        let (golden, trace) = golden_of(&p);
        let trail = GoldenTrail::record(&p, 1_000_000, 8).unwrap();
        let end = trail.end_dyn();
        let faults: Vec<GateFault> = (0..64u32)
            .map(|g| GateFault {
                unit: GradedUnit::IntAdder,
                gate: g,
                stuck_one: true,
            })
            .collect();
        let mut ev = UnitEvaluators::new();
        let spans = screen_fault_spans(&trace, GradedUnit::IntAdder, &faults, &mut ev);
        let (i, span) = spans
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.map(|s| (i, s)))
            .expect("some fault activates");
        let mut ctx = ReplayCtx::new();
        // Accepted: prefix ≥ one interval.
        let early = ActivationSpan {
            first_dyn: trail.interval(),
            last_dyn: end,
            ..span
        };
        let (_, s) = replay_gate_permanent_bounded(
            &p,
            faults[i],
            &golden,
            1_000_000,
            Some((&trail, early)),
            false,
            &mut ctx,
        );
        assert!(s.checkpoint_hit, "interval-deep prefix must seek");
        // Rejected: prefix one short of an interval and no four-interval
        // tail — the trail is dropped entirely, so no seek happens.
        let late = ActivationSpan {
            first_dyn: trail.interval() - 1,
            last_dyn: end,
            ..span
        };
        let (_, s) = replay_gate_permanent_bounded(
            &p,
            faults[i],
            &golden,
            1_000_000,
            Some((&trail, late)),
            false,
            &mut ctx,
        );
        assert!(!s.checkpoint_hit, "sub-interval prefix must not seek");
        assert!(!s.early_exit);
        // Accepted via the tail edge: zero prefix but the whole run
        // minus four intervals as quiesce tail.
        let tail = ActivationSpan {
            first_dyn: 0,
            last_dyn: end.saturating_sub(1 + 4 * trail.interval()),
            ..span
        };
        let (out, _) = replay_gate_permanent_bounded(
            &p,
            faults[i],
            &golden,
            1_000_000,
            Some((&trail, tail)),
            false,
            &mut ctx,
        );
        let (full, _) =
            replay_gate_permanent_bounded(&p, faults[i], &golden, 1_000_000, None, false, &mut ctx);
        assert_eq!(out, full, "tail-edge trail must stay outcome-identical");
    }

    #[test]
    fn golden_machine_matches_ooo_output() {
        // Machine (functional) and OooCore (timed) must agree on outputs.
        let p = adder_heavy();
        let (golden, _) = golden_of(&p);
        let m = Machine::new(&p, NativeFu).run(1_000_000).unwrap();
        assert_eq!(m.signature, golden);
    }
}
