/root/repo/target/debug/deps/lineage-a3fe215eed95db79.d: crates/core/tests/lineage.rs Cargo.toml

/root/repo/target/debug/deps/liblineage-a3fe215eed95db79.rmeta: crates/core/tests/lineage.rs Cargo.toml

crates/core/tests/lineage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
