/root/repo/target/debug/deps/bench_diff-b290ea2126c23ebe.d: crates/bench/src/bin/bench_diff.rs

/root/repo/target/debug/deps/bench_diff-b290ea2126c23ebe: crates/bench/src/bin/bench_diff.rs

crates/bench/src/bin/bench_diff.rs:
