/root/repo/target/release/deps/harpo_core-bd7b03e3e886068c.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/release/deps/libharpo_core-bd7b03e3e886068c.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/release/deps/libharpo_core-bd7b03e3e886068c.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/evaluator.rs:
crates/core/src/memo.rs:
crates/core/src/presets.rs:
