//! Divergence-bounded replay over a golden checkpoint trail.
//!
//! The shared driver behind every checkpointed replay path
//! ([`crate::replay`] for planned transients, [`crate::gate`] for gate
//! faults). Given a [`GoldenTrail`] and the fault's corruption window
//! `[first_corruption, quiesce)`:
//!
//! 1. **seek** — the machine is restored to the latest checkpoint at or
//!    before `first_corruption` (memory via the store-delta log,
//!    registers via [`Machine::restore`]) instead of re-executing the
//!    golden prefix, which is bit-identical to the golden run by
//!    construction;
//! 2. **bounded run** — past `quiesce` (the dynamic index from which no
//!    further corruption can be introduced), the faulty state is
//!    compared against the trail at every checkpoint boundary. Equal
//!    registers *and* equal touched memory prove the continuation is
//!    deterministic and golden, so the replay stops early
//!    (`RunEnd::Reconverged` ⇒ Masked) with the outcome the full run
//!    would have produced.
//!
//! The memory comparison tracks a *divergence frontier*: the set of
//! (address, size) ranges where the faulty run and the golden cursor may
//! differ — faulty stores since the seek plus golden deltas applied to
//! the cursor. Ranges that compare equal at a checkpoint are pruned (a
//! byte that is equal and untouched stays equal), so the frontier stays
//! proportional to the *live* divergence, not the run length.
//!
//! Outcome bit-identity with full replays (the equivalence-test
//! invariant) holds because a seek only skips state the replay could
//! never observe, the dynamic instruction counter is restored so caps
//! and hook indices are unchanged, and an early exit fires only when the
//! remaining execution is provably identical to the golden run.

use harpo_isa::exec::{ExecHooks, Machine};
use harpo_isa::fu::FuProvider;
use harpo_isa::mem::Memory;
use harpo_isa::trail::GoldenTrail;

/// Per-replay statistics of the checkpointed engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Dynamic instructions the faulty run actually executed.
    pub executed_insts: u64,
    /// Golden instructions *not* executed thanks to the trail: the
    /// seeked-over prefix plus, on an early exit, the reconverged
    /// suffix.
    pub skipped_insts: u64,
    /// Whether the replay seeked to a mid-run checkpoint.
    pub checkpoint_hit: bool,
    /// Whether the replay early-exited on reconvergence.
    pub early_exit: bool,
    /// Dynamic index at which the replay stopped (halt, trap,
    /// reconvergence or cap) — forensics measures propagation spans
    /// against it.
    pub end_dyn: u64,
    /// Faulted-unit evaluations answered by the [`harpo_gates::FaultyFu`]
    /// operand-triple memo (gate replays only).
    pub fu_memo_hits: u64,
    /// Faulted-unit evaluations that consulted the memo (gate replays
    /// only).
    pub fu_memo_lookups: u64,
    /// Ops in the fault-specialized compiled circuit (gate replays
    /// only; 0 for the legacy interpreted engine).
    pub specialized_ops: u64,
    /// Wall-clock nanoseconds compiling the specialized circuit (gate
    /// replays only). Excluded from result equality — see
    /// [`crate::CampaignResult`].
    pub compile_ns: u64,
}

/// How a driven replay ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RunEnd {
    /// Ran to halt; the caller grades via the output signature.
    Halted,
    /// Reconverged to the golden trail past the corruption window: the
    /// outcome is exactly **Masked**.
    Reconverged,
    /// Trapped (including the instruction cap): **Crash**.
    Trapped,
}

/// Runs `m` (a freshly constructed replay machine) to completion,
/// seeking and early-exiting over `trail` when one is supplied.
/// `pre_step` runs before every executed instruction (intermittent
/// faults toggle their burst window there). `stats` accumulates the
/// executed/skipped instruction split.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive<F: FuProvider, H: ExecHooks>(
    m: &mut Machine<'_, F, H>,
    trail: Option<&GoldenTrail>,
    cap: u64,
    first_corruption: u64,
    quiesce: u64,
    cursor_slot: &mut Option<Memory>,
    dirty: &mut Vec<(u64, u8)>,
    stats: &mut ReplayStats,
    mut pre_step: impl FnMut(&mut Machine<'_, F, H>),
) -> RunEnd {
    // A trail longer than the replay cap could seek over a cap trap the
    // full replay would have hit; campaigns always size the cap past the
    // golden run, but stay bit-identical for pathological callers too.
    let trail = trail.filter(|t| t.end_dyn() <= cap);
    let mut seek_deltas = 0;
    if let Some(t) = trail {
        let ck = t.checkpoint_before(first_corruption);
        if ck.dyn_idx > 0 {
            t.apply_deltas(0, ck.deltas, m.mem_mut());
            m.restore(&ck.state, ck.dyn_idx);
            stats.checkpoint_hit = true;
            stats.skipped_insts += ck.dyn_idx;
        }
        seek_deltas = ck.deltas;
    }
    let start_dyn = m.dyn_count();
    let end = match trail {
        // Reconvergence is only worth checking when the quiesce point
        // lies within the golden run (end-of-run corruption pushes it to
        // u64::MAX: such replays must reach the signature check).
        Some(t) if quiesce <= t.end_dyn() => {
            let cursor = match cursor_slot {
                Some(c) => {
                    c.clone_from(m.mem());
                    c
                }
                None => cursor_slot.insert(m.mem().clone()),
            };
            bounded_loop(
                m,
                t,
                cap,
                quiesce,
                seek_deltas,
                cursor,
                dirty,
                &mut pre_step,
            )
        }
        _ => plain_loop(m, cap, &mut pre_step),
    };
    stats.executed_insts += m.dyn_count() - start_dyn;
    stats.end_dyn = m.dyn_count();
    if end == RunEnd::Reconverged {
        stats.early_exit = true;
        stats.skipped_insts += trail.expect("reconverged ⇒ trail").end_dyn() - m.dyn_count();
    }
    end
}

/// The uncheckpointed run loop; semantics match [`Machine::run`] with
/// `pre_step` interposed.
fn plain_loop<F: FuProvider, H: ExecHooks>(
    m: &mut Machine<'_, F, H>,
    cap: u64,
    pre_step: &mut impl FnMut(&mut Machine<'_, F, H>),
) -> RunEnd {
    loop {
        if m.halted() {
            return RunEnd::Halted;
        }
        if m.dyn_count() >= cap {
            return RunEnd::Trapped;
        }
        pre_step(m);
        match m.step() {
            Err(_) => return RunEnd::Trapped,
            Ok(None) => return RunEnd::Halted,
            Ok(Some(_)) => {}
        }
    }
}

/// Frontier size past which reconvergence tracking stops paying: a run
/// this divergent is headed for the signature check anyway, so the loop
/// degrades to [`plain_loop`] (forfeiting only the early exit, never
/// changing the outcome). Replays that do reconverge prune toward an
/// empty frontier and stay far below the bound.
const GIVE_UP_RANGES: usize = 64;

/// The checkpoint-compared run loop. `cursor` starts as the golden
/// memory at the seek point (`seek_deltas` log entries applied) and is
/// advanced along the delta log; `dirty` accumulates the divergence
/// frontier.
#[allow(clippy::too_many_arguments)]
fn bounded_loop<F: FuProvider, H: ExecHooks>(
    m: &mut Machine<'_, F, H>,
    trail: &GoldenTrail,
    cap: u64,
    quiesce: u64,
    seek_deltas: usize,
    cursor: &mut Memory,
    dirty: &mut Vec<(u64, u8)>,
    pre_step: &mut impl FnMut(&mut Machine<'_, F, H>),
) -> RunEnd {
    dirty.clear();
    let cks = trail.checkpoints();
    let mut next = trail.next_checkpoint_idx(m.dyn_count());
    let mut applied = seek_deltas;
    loop {
        if next < cks.len() && m.dyn_count() == cks[next].dyn_idx {
            let ck = &cks[next];
            next += 1;
            for d in trail.deltas(applied, ck.deltas) {
                d.apply(cursor);
                dirty.push((d.addr, d.size));
            }
            applied = ck.deltas;
            // Prune ranges that agree: an equal, untouched byte stays
            // equal, and any later write re-enters it into the frontier.
            let (fb, gb, base) = (m.mem().as_bytes(), cursor.as_bytes(), cursor.base());
            dirty.retain(|&(addr, size)| {
                let off = (addr - base) as usize;
                fb[off..off + size as usize] != gb[off..off + size as usize]
            });
            if m.dyn_count() >= quiesce && dirty.is_empty() && m.state() == &ck.state {
                return RunEnd::Reconverged;
            }
            if dirty.len() > GIVE_UP_RANGES {
                return plain_loop(m, cap, pre_step);
            }
        }
        if m.halted() {
            return RunEnd::Halted;
        }
        if m.dyn_count() >= cap {
            return RunEnd::Trapped;
        }
        pre_step(m);
        match m.step() {
            Err(_) => return RunEnd::Trapped,
            Ok(None) => return RunEnd::Halted,
            Ok(Some(info)) => {
                if let Some(a) = info.mem.filter(|a| a.is_store) {
                    dirty.push((a.addr, a.size));
                }
            }
        }
    }
}
