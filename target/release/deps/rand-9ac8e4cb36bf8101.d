/root/repo/target/release/deps/rand-9ac8e4cb36bf8101.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-9ac8e4cb36bf8101.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-9ac8e4cb36bf8101.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
