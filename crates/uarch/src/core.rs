//! The out-of-order core timing model.
//!
//! An execution-driven, timestamp-based OoO model: the functional engine
//! (`harpo_isa::exec::Machine`) supplies per-instruction [`StepInfo`]
//! records in program order; the timing model assigns each instruction
//! its fetch/dispatch/issue/complete/commit cycles under the structural
//! constraints of [`CoreConfig`] (dispatch width, ROB/IQ occupancy,
//! physical-register availability, FU pipes, cache ports, branch
//! redirects) and records the microarchitectural observables into an
//! [`ExecutionTrace`].
//!
//! This style of model computes the same quantities Harpocrates consumes
//! from gem5 — per-cycle physical-register lifetimes, cache residency,
//! FU operand streams — at a fraction of the cost, which is what the
//! hardware-in-the-loop evaluation step needs (thousands of simulations
//! per genetic run; see DESIGN.md substitution table).

use crate::cache::{CacheAccess, L1Dcache, LineEvent};
use crate::config::CoreConfig;
use crate::trace::{DynRecord, ExecutionTrace, FuOp, RegInstance, RegRead, SimStats, XmmInstance};
use harpo_isa::exec::{Machine, RunOutput, StepInfo, Trap};
use harpo_isa::form::{Catalog, FuKind};
use harpo_isa::fu::NativeFu;
use harpo_isa::mem::Memory;
use harpo_isa::program::Program;
use harpo_isa::reg::{Gpr, Xmm};
use std::collections::{HashMap, VecDeque};

// The store-commit byte map keys small byte addresses, is probed on
// every load byte and written on every store byte, and nothing ever
// iterates it — so the shared two-instruction multiply-mix hasher beats
// SipHash by an order of magnitude without affecting results (lookups
// are point queries; iteration order is never observed).
type AddrMap<V> = HashMap<u64, V, harpo_isa::hash::MixBuild>;

/// Result of a golden simulation: the architectural output plus the full
/// microarchitectural trace.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Architectural output of the run.
    pub output: RunOutput,
    /// Microarchitectural observables.
    pub trace: ExecutionTrace,
}

/// Reusable per-thread simulation scratch state: the timing model's
/// rename tables, predictor, cache frames and trace arenas, plus the
/// functional machine's memory buffer. A fresh context allocates
/// everything on its first simulation; every later
/// [`OooCore::simulate_into`] clears-and-reuses the same buffers, so the
/// evaluation hot loop performs O(1) large allocations per program
/// instead of thousands of small ones (see DESIGN.md, "Performance
/// architecture").
///
/// A context is *not* tied to one core: simulating on a core with a
/// different [`CoreConfig`] simply re-sizes the affected buffers.
/// Results are bit-identical to [`OooCore::simulate`] regardless of what
/// the context ran before.
#[derive(Debug, Default)]
pub struct SimContext {
    timing: Option<Timing>,
    mem: Option<Memory>,
    result: Option<SimResult>,
}

impl SimContext {
    /// An empty context; buffers are allocated lazily by the first
    /// simulation.
    pub fn new() -> SimContext {
        SimContext::default()
    }

    /// The result of the most recent successful simulation, if any.
    pub fn result(&self) -> Option<&SimResult> {
        self.result.as_ref()
    }

    /// Takes ownership of the most recent result. The buffers inside it
    /// leave the context for good; prefer [`SimContext::result`] on hot
    /// paths so the next simulation can recycle them.
    pub fn take_result(&mut self) -> Option<SimResult> {
        self.result.take()
    }
}

/// The out-of-order core simulator. Stateless between runs; create once
/// and call [`OooCore::simulate`] per program (or
/// [`OooCore::simulate_into`] with a reused [`SimContext`] on hot
/// loops).
#[derive(Debug, Clone)]
pub struct OooCore {
    cfg: CoreConfig,
}

impl OooCore {
    /// Creates a core with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (see
    /// [`CoreConfig::validate`]).
    pub fn new(cfg: CoreConfig) -> OooCore {
        cfg.validate();
        OooCore { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Runs `prog` to completion, producing output and trace.
    ///
    /// # Errors
    /// Any [`Trap`] raised by the program (including the dynamic
    /// instruction cap).
    pub fn simulate(&self, prog: &Program, cap: u64) -> Result<SimResult, Trap> {
        let mut ctx = SimContext::new();
        self.simulate_into(prog, cap, &mut ctx)?;
        Ok(ctx.take_result().expect("simulation succeeded"))
    }

    /// Runs `prog` to completion inside a reusable context, returning a
    /// borrow of the result stored in the context. This is the same code
    /// path as [`OooCore::simulate`] (which is a thin wrapper over a
    /// fresh context), so outputs are bit-identical; the difference is
    /// purely allocation reuse.
    ///
    /// # Errors
    /// Any [`Trap`] raised by the program (including the dynamic
    /// instruction cap). The context remains reusable after a trap.
    pub fn simulate_into<'c>(
        &self,
        prog: &Program,
        cap: u64,
        ctx: &'c mut SimContext,
    ) -> Result<&'c SimResult, Trap> {
        // Reclaim the trace buffers parked in the previous result.
        let recycle = ctx.result.take().map(|r| r.trace).unwrap_or_default();
        let mut t = match ctx.timing.take() {
            Some(mut t) => {
                t.reset(&self.cfg);
                t
            }
            None => Timing::new(&self.cfg),
        };
        let mut machine = match ctx.mem.take() {
            Some(mem) => Machine::new_in(prog, NativeFu, mem),
            None => Machine::new(prog, NativeFu),
        };
        let run = loop {
            if machine.dyn_count() >= cap {
                break Err(Trap::InstructionCap);
            }
            match machine.step() {
                Err(trap) => break Err(trap),
                Ok(None) => break Ok(()),
                Ok(Some(si)) => t.retire(si),
            }
        };
        match run {
            Err(trap) => {
                ctx.mem = Some(machine.into_memory());
                ctx.timing = Some(t);
                Err(trap)
            }
            Ok(()) => {
                let output = machine.output();
                ctx.mem = Some(machine.into_memory());
                let trace = t.finish(output.dyn_count, recycle);
                ctx.timing = Some(t);
                ctx.result = Some(SimResult { output, trace });
                Ok(ctx.result.as_ref().expect("just stored"))
            }
        }
    }
}

impl Default for OooCore {
    fn default() -> Self {
        OooCore::new(CoreConfig::default())
    }
}

/// A pool of identical pipelined execution pipes.
#[derive(Debug)]
struct PipePool {
    next_free: Vec<u64>,
}

impl PipePool {
    fn new(n: u32) -> PipePool {
        PipePool {
            next_free: vec![0; n.max(1) as usize],
        }
    }

    /// Returns all pipes to the free state, reusing the allocation.
    fn reset(&mut self, n: u32) {
        self.next_free.clear();
        self.next_free.resize(n.max(1) as usize, 0);
    }

    /// Issues at the earliest cycle ≥ `ready` with a free pipe, occupying
    /// it for `occupancy` cycles.
    fn issue(&mut self, ready: u64, occupancy: u64) -> u64 {
        let (idx, &free) = self
            .next_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .expect("pool nonempty");
        let at = ready.max(free);
        self.next_free[idx] = at + occupancy;
        at
    }
}

/// Two-bit saturating branch direction predictor.
#[derive(Debug)]
struct Bpred {
    table: Vec<u8>,
}

impl Bpred {
    fn new() -> Bpred {
        Bpred {
            table: vec![1; 1024], // weakly not-taken
        }
    }

    /// Returns every counter to weakly not-taken, reusing the table.
    fn reset(&mut self) {
        self.table.clear();
        self.table.resize(1024, 1);
    }

    fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let e = &mut self.table[pc as usize % 1024];
        let pred = *e >= 2;
        if taken {
            *e = (*e + 1).min(3);
        } else {
            *e = e.saturating_sub(1);
        }
        pred == taken
    }
}

#[derive(Debug)]
struct Timing {
    cfg: CoreConfig,
    cache: L1Dcache,
    bpred: Bpred,

    // Frontend.
    fetch_cycle: u64,
    fetched_this_cycle: u32,

    // Backend rings (freed-at times).
    rob_ring: Vec<u64>,
    iq_ring: Vec<u64>,
    dyn_idx: u64,

    // Register readiness.
    gpr_ready: [u64; 16],
    xmm_ready: [u64; 16],
    flags_ready: u64,

    // Rename state.
    freelist: VecDeque<(u64, u16)>, // (free_at, preg)
    cur_inst: [usize; 16],          // arch → index into instances
    instances: Vec<RegInstance>,
    xmm_freelist: VecDeque<(u64, u16)>,
    xmm_cur_inst: [usize; 16],
    xmm_instances: Vec<XmmInstance>,

    // Execution resources.
    alu: PipePool,
    mul: PipePool,
    div: PipePool,
    fpadd: PipePool,
    fpmul: PipePool,
    fpdiv: PipePool,
    load_ports: PipePool,
    store_ports: PipePool,
    /// Commit cycle of the most recent store to each byte: loads must not
    /// read the data array before an older overlapping store has written
    /// it (no store-to-load forwarding is modelled).
    store_commit: AddrMap<u64>,

    // Commit.
    last_commit: u64,
    committed_this_cycle: u32,

    // Trace accumulation. Register reads arrive interleaved across value
    // instances (issue order), so they accumulate as (instance, read)
    // pairs and are counting-sorted into the trace's contiguous
    // per-instance arena at `finish`.
    pending_reads: Vec<(u32, RegRead)>,
    pending_xmm_reads: Vec<(u32, RegRead)>,
    reads_arena: Vec<RegRead>,
    scatter_starts: Vec<u32>,
    dyn_records: Vec<DynRecord>,
    cache_accesses: Vec<CacheAccess>,
    line_events: Vec<LineEvent>,
    fu_ops: Vec<FuOp>,
    branches: u64,
    mispredicts: u64,
    rob_stalls: u64,
    iq_stalls: u64,
    prf_stalls: u64,
}

impl Timing {
    fn new(cfg: &CoreConfig) -> Timing {
        let mut t = Timing {
            cfg: cfg.clone(),
            cache: L1Dcache::new(cfg),
            bpred: Bpred::new(),
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            rob_ring: Vec::new(),
            iq_ring: Vec::new(),
            dyn_idx: 0,
            gpr_ready: [0; 16],
            xmm_ready: [0; 16],
            flags_ready: 0,
            freelist: VecDeque::new(),
            cur_inst: [0; 16],
            instances: Vec::with_capacity(1024),
            xmm_freelist: VecDeque::new(),
            xmm_cur_inst: [0; 16],
            xmm_instances: Vec::with_capacity(256),
            alu: PipePool::new(cfg.alu_pipes),
            mul: PipePool::new(1),
            div: PipePool::new(1),
            fpadd: PipePool::new(1),
            fpmul: PipePool::new(1),
            fpdiv: PipePool::new(1),
            load_ports: PipePool::new(cfg.load_ports),
            store_ports: PipePool::new(cfg.store_ports),
            store_commit: AddrMap::default(),
            last_commit: 0,
            committed_this_cycle: 0,
            pending_reads: Vec::new(),
            pending_xmm_reads: Vec::new(),
            reads_arena: Vec::new(),
            scatter_starts: Vec::new(),
            dyn_records: Vec::new(),
            cache_accesses: Vec::new(),
            line_events: Vec::new(),
            fu_ops: Vec::new(),
            branches: 0,
            mispredicts: 0,
            rob_stalls: 0,
            iq_stalls: 0,
            prf_stalls: 0,
        };
        t.reset(cfg);
        t
    }

    /// Returns the model to the state [`Timing::new`] produces, keeping
    /// every allocation. The clear-and-resize idiom throughout also makes
    /// a context safe to move between cores with different
    /// configurations.
    fn reset(&mut self, cfg: &CoreConfig) {
        self.cache.reset(cfg);
        self.bpred.reset();
        self.fetch_cycle = 0;
        self.fetched_this_cycle = 0;
        self.rob_ring.clear();
        self.rob_ring.resize(cfg.rob_size as usize, 0);
        self.iq_ring.clear();
        self.iq_ring.resize(cfg.iq_size as usize, 0);
        self.dyn_idx = 0;
        self.gpr_ready = [0; 16];
        self.xmm_ready = [0; 16];
        self.flags_ready = 0;
        self.freelist.clear();
        self.freelist
            .extend((16..cfg.phys_regs as u16).map(|p| (0u64, p)));
        self.instances.clear();
        for (i, slot) in self.cur_inst.iter_mut().enumerate() {
            *slot = i;
            self.instances.push(RegInstance {
                preg: i as u16,
                arch: Gpr::ALL[i],
                writer: u64::MAX,
                write_cycle: 0,
                free_cycle: u64::MAX,
                live_at_end: false,
                reads_start: 0,
                reads_len: 0,
            });
        }
        self.xmm_freelist.clear();
        self.xmm_freelist
            .extend((16..cfg.phys_xmm as u16).map(|p| (0u64, p)));
        self.xmm_instances.clear();
        for (i, slot) in self.xmm_cur_inst.iter_mut().enumerate() {
            *slot = i;
            self.xmm_instances.push(XmmInstance {
                preg: i as u16,
                arch: Xmm::ALL[i],
                writer: u64::MAX,
                write_cycle: 0,
                free_cycle: u64::MAX,
                live_at_end: false,
                reads_start: 0,
                reads_len: 0,
            });
        }
        self.alu.reset(cfg.alu_pipes);
        self.mul.reset(1);
        self.div.reset(1);
        self.fpadd.reset(1);
        self.fpmul.reset(1);
        self.fpdiv.reset(1);
        self.load_ports.reset(cfg.load_ports);
        self.store_ports.reset(cfg.store_ports);
        self.store_commit.clear();
        self.last_commit = 0;
        self.committed_this_cycle = 0;
        self.pending_reads.clear();
        self.pending_xmm_reads.clear();
        self.reads_arena.clear();
        self.scatter_starts.clear();
        self.dyn_records.clear();
        self.cache_accesses.clear();
        self.line_events.clear();
        self.fu_ops.clear();
        self.branches = 0;
        self.mispredicts = 0;
        self.rob_stalls = 0;
        self.iq_stalls = 0;
        self.prf_stalls = 0;
        self.cfg = cfg.clone();
    }

    fn retire(&mut self, si: &StepInfo) {
        let cfg_width = self.cfg.width;
        let form = Catalog::get().form(si.form);
        let idx = self.dyn_idx;
        self.dyn_idx += 1;

        // ---- Fetch (width-limited, redirected on mispredicts). ----
        if self.fetched_this_cycle >= cfg_width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        let fetch = self.fetch_cycle;
        self.fetched_this_cycle += 1;

        // ---- Dispatch: frontend depth + ROB/IQ/PRF availability. ----
        // Each structural constraint that actually delays dispatch is
        // counted as a stall of that structure.
        let mut dispatch = fetch + self.cfg.frontend_depth as u64;
        let rob_slot = (idx % self.cfg.rob_size as u64) as usize;
        if self.rob_ring[rob_slot] > dispatch {
            dispatch = self.rob_ring[rob_slot];
            self.rob_stalls += 1;
        }
        let iq_slot = (idx % self.cfg.iq_size as u64) as usize;
        if self.iq_ring[iq_slot] > dispatch {
            dispatch = self.iq_ring[iq_slot];
            self.iq_stalls += 1;
        }

        // Allocate physical destination registers (integer and XMM).
        let mut prf_stalled = false;
        let n_writes = (si.writes_gpr).count_ones() as usize;
        let mut new_pregs = [0u16; 6];
        for slot in new_pregs.iter_mut().take(n_writes) {
            let (free_at, preg) = self
                .freelist
                .pop_front()
                .expect("PRF smaller than architectural state");
            if free_at > dispatch {
                dispatch = free_at;
                prf_stalled = true;
            }
            *slot = preg;
        }
        let n_xwrites = (si.writes_xmm).count_ones() as usize;
        let mut new_xpregs = [0u16; 6];
        for slot in new_xpregs.iter_mut().take(n_xwrites) {
            let (free_at, preg) = self
                .xmm_freelist
                .pop_front()
                .expect("XMM PRF smaller than architectural state");
            if free_at > dispatch {
                dispatch = free_at;
                prf_stalled = true;
            }
            *slot = preg;
        }
        if prf_stalled {
            self.prf_stalls += 1;
        }

        // ---- Operand readiness. ----
        let mut ready = dispatch + 1;
        let mut rd = si.reads_gpr;
        while rd != 0 {
            let r = rd.trailing_zeros() as usize;
            rd &= rd - 1;
            ready = ready.max(self.gpr_ready[r]);
        }
        let mut rx = si.reads_xmm;
        while rx != 0 {
            let r = rx.trailing_zeros() as usize;
            rx &= rx - 1;
            ready = ready.max(self.xmm_ready[r]);
        }
        if si.reads_flags {
            ready = ready.max(self.flags_ready);
        }

        // ---- Split memory micro-op (if any). ----
        let is_store = si.mem.map(|m| m.is_store).unwrap_or(false);
        let mut op_ready = ready;
        let mut load_done = 0u64;
        if let Some(mem) = si.mem {
            if !mem.is_store {
                // Memory dependence: wait for older overlapping stores to
                // have written the data array (one cycle after commit).
                let mut ready = ready;
                for b in mem.addr..mem.addr + mem.size as u64 {
                    if let Some(&t) = self.store_commit.get(&b) {
                        ready = ready.max(t + 1);
                    }
                }
                let l_issue = self.load_ports.issue(ready, 1);
                let lat = self.cache_load(idx, l_issue, mem.addr, mem.size);
                load_done = l_issue + lat as u64;
                op_ready = op_ready.max(load_done);
            }
        }

        // ---- Execute micro-op. ----
        let passes = si.passes.len().max(1) as u64;
        let (issue, complete) = match form.fu {
            FuKind::Alu | FuKind::IntAdd | FuKind::Branch => {
                let at = self.alu.issue(op_ready, passes);
                (at, at + FuKind::Alu.latency() as u64 + (passes - 1))
            }
            FuKind::IntMul => {
                let at = self.mul.issue(op_ready, passes);
                (at, at + FuKind::IntMul.latency() as u64 + (passes - 1))
            }
            FuKind::IntDiv => {
                let lat = FuKind::IntDiv.latency() as u64;
                let at = self.div.issue(op_ready, lat); // unpipelined
                (at, at + lat)
            }
            FuKind::FpAdd => {
                let at = self.fpadd.issue(op_ready, passes);
                (at, at + FuKind::FpAdd.latency() as u64 + (passes - 1))
            }
            FuKind::FpMul => {
                let at = self.fpmul.issue(op_ready, passes);
                (at, at + FuKind::FpMul.latency() as u64 + (passes - 1))
            }
            FuKind::FpDiv => {
                let lat = FuKind::FpDiv.latency() as u64;
                let at = self.fpdiv.issue(op_ready, lat);
                (at, at + lat)
            }
            FuKind::Load => {
                // Pure load: the load micro-op *is* the instruction.
                if load_done > 0 {
                    (op_ready.max(ready), load_done)
                } else {
                    (ready, ready + 1)
                }
            }
            FuKind::Store => {
                let at = self.store_ports.issue(op_ready, 1);
                (at, at + 1)
            }
        };
        self.iq_ring[iq_slot] = issue + 1;

        // ---- Record graded unit passes at their issue cycles. ----
        for (i, p) in si.passes.as_slice().iter().enumerate() {
            self.fu_ops.push(FuOp {
                dyn_idx: idx,
                cycle: issue + i as u64,
                kind: p.kind,
                a: p.a,
                b: p.b,
                cin: p.cin,
            });
        }

        // ---- Record register reads at the issue cycle. ----
        let propagates =
            si.writes_gpr != 0 || si.writes_xmm != 0 || si.mem.map(|m| m.is_store).unwrap_or(false);
        let mut rd = si.reads_gpr;
        while rd != 0 {
            let r = rd.trailing_zeros() as usize;
            rd &= rd - 1;
            let inst = self.cur_inst[r] as u32;
            self.pending_reads.push((
                inst,
                RegRead {
                    dyn_idx: idx,
                    cycle: issue,
                    propagates,
                    obs: [si.gpr_read_mask[r], 0],
                },
            ));
        }
        let mut rx = si.reads_xmm;
        while rx != 0 {
            let r = rx.trailing_zeros() as usize;
            rx &= rx - 1;
            let inst = self.xmm_cur_inst[r] as u32;
            self.pending_xmm_reads.push((
                inst,
                RegRead {
                    dyn_idx: idx,
                    cycle: issue,
                    propagates,
                    obs: si.xmm_read_mask[r],
                },
            ));
        }

        // ---- Commit (in order, width-limited). ----
        let mut commit = (complete + 1).max(self.last_commit);
        if commit == self.last_commit {
            if self.committed_this_cycle >= cfg_width {
                commit += 1;
                self.committed_this_cycle = 1;
            } else {
                self.committed_this_cycle += 1;
            }
        } else {
            self.committed_this_cycle = 1;
        }
        self.last_commit = commit;
        self.rob_ring[rob_slot] = commit;

        // ---- Stores write the cache at commit. ----
        if let Some(mem) = si.mem {
            if is_store {
                self.cache_store(idx, commit, mem.addr, mem.size);
                for b in mem.addr..mem.addr + mem.size as u64 {
                    self.store_commit.insert(b, commit);
                }
            }
        }

        // ---- Register writeback + rename bookkeeping. ----
        let mut wr = si.writes_gpr;
        let mut wslot = 0;
        while wr != 0 {
            let r = wr.trailing_zeros() as usize;
            wr &= wr - 1;
            self.gpr_ready[r] = complete;
            let preg = new_pregs[wslot];
            wslot += 1;
            // The previous instance frees when this writer commits.
            let old = self.cur_inst[r];
            self.instances[old].free_cycle = commit;
            let old_preg = self.instances[old].preg;
            self.freelist.push_back((commit, old_preg));
            self.cur_inst[r] = self.instances.len();
            self.instances.push(RegInstance {
                preg,
                arch: Gpr::ALL[r],
                writer: idx,
                write_cycle: complete,
                free_cycle: u64::MAX,
                live_at_end: false,
                reads_start: 0,
                reads_len: 0,
            });
        }
        let mut wx = si.writes_xmm;
        let mut xslot = 0;
        while wx != 0 {
            let r = wx.trailing_zeros() as usize;
            wx &= wx - 1;
            self.xmm_ready[r] = complete;
            let preg = new_xpregs[xslot];
            xslot += 1;
            let old = self.xmm_cur_inst[r];
            self.xmm_instances[old].free_cycle = commit;
            let old_preg = self.xmm_instances[old].preg;
            self.xmm_freelist.push_back((commit, old_preg));
            self.xmm_cur_inst[r] = self.xmm_instances.len();
            self.xmm_instances.push(XmmInstance {
                preg,
                arch: Xmm::ALL[r],
                writer: idx,
                write_cycle: complete,
                free_cycle: u64::MAX,
                live_at_end: false,
                reads_start: 0,
                reads_len: 0,
            });
        }
        if si.writes_flags {
            self.flags_ready = complete;
        }

        // ---- Def/use record for liveness analysis. ----
        let branch_kind = match si.branch {
            None => 0,
            Some(br) if br.trivial => 1, // direction can never matter
            Some(_) => 2,
        };
        self.dyn_records.push(DynRecord {
            reads_gpr: si.reads_gpr,
            writes_gpr: si.writes_gpr,
            reads_xmm: si.reads_xmm,
            writes_xmm: si.writes_xmm,
            reads_flags: si.reads_flags,
            writes_flags: si.writes_flags,
            mem_addr: si.mem.map(|m| m.addr).unwrap_or(0),
            mem_size: si.mem.map(|m| m.size).unwrap_or(0),
            is_store: si.mem.map(|m| m.is_store).unwrap_or(false),
            branch: branch_kind,
        });

        // ---- Branch resolution. ----
        if let Some(br) = si.branch {
            self.branches += 1;
            let correct = self.bpred.predict_and_update(si.static_idx, br.taken);
            if !correct {
                self.mispredicts += 1;
                let redirect = complete + self.cfg.mispredict_penalty as u64;
                if redirect > self.fetch_cycle {
                    self.fetch_cycle = redirect;
                    self.fetched_this_cycle = 0;
                }
            }
        }
    }

    /// Accesses the cache for a load (splitting line straddles); returns
    /// the load-to-use latency.
    fn cache_load(&mut self, dyn_idx: u64, cycle: u64, addr: u64, size: u8) -> u32 {
        let line = self.cache.line_size() as u64;
        let mut lat = 0u32;
        let mut a = addr;
        let end = addr + size as u64;
        while a < end {
            let chunk_end = ((a / line) + 1) * line;
            let sz = chunk_end.min(end) - a;
            let (hit, way) = self.cache.access(a, false, cycle, &mut self.line_events);
            lat = lat.max(if hit {
                self.cfg.l1d_hit_lat
            } else {
                self.cfg.l1d_hit_lat + self.cfg.l1d_miss_lat
            });
            self.cache_accesses.push(CacheAccess {
                dyn_idx,
                cycle,
                addr: a,
                size: sz as u8,
                is_store: false,
                hit,
                set: self.cache.set_of(a),
                way,
            });
            a = chunk_end;
        }
        lat
    }

    fn cache_store(&mut self, dyn_idx: u64, cycle: u64, addr: u64, size: u8) {
        let line = self.cache.line_size() as u64;
        let mut a = addr;
        let end = addr + size as u64;
        while a < end {
            let chunk_end = ((a / line) + 1) * line;
            let sz = chunk_end.min(end) - a;
            let (hit, way) = self.cache.access(a, true, cycle, &mut self.line_events);
            self.cache_accesses.push(CacheAccess {
                dyn_idx,
                cycle,
                addr: a,
                size: sz as u8,
                is_store: true,
                hit,
                set: self.cache.set_of(a),
                way,
            });
            a = chunk_end;
        }
    }

    /// Seals the run: patches end-of-program lifetimes, flattens the
    /// pending reads into the shared arena, and moves the accumulated
    /// trace out — swapping buffers with `recycle` (a spent trace whose
    /// allocations are reclaimed for the next run) rather than
    /// allocating.
    fn finish(&mut self, insts: u64, recycle: ExecutionTrace) -> ExecutionTrace {
        let cycles = self.last_commit.max(1);
        for inst in &mut self.instances {
            if inst.free_cycle == u64::MAX {
                inst.free_cycle = cycles;
                inst.live_at_end = true;
            }
        }
        for inst in &mut self.xmm_instances {
            if inst.free_cycle == u64::MAX {
                inst.free_cycle = cycles;
                inst.live_at_end = true;
            }
        }

        // Flatten reads into the arena by counting sort over instance
        // indices: count, prefix-sum into per-instance start offsets
        // (stamped onto the instances), then a stable forward pass that
        // places each read — so every instance's reads stay contiguous
        // and in program order. GPR instances take the front of the
        // arena, XMM instances the back; `scatter_starts` is consumed as
        // the write cursor.
        const EMPTY: RegRead = RegRead {
            dyn_idx: 0,
            cycle: 0,
            propagates: false,
            obs: [0, 0],
        };
        let n_gpr = self.pending_reads.len() as u32;
        let total = self.pending_reads.len() + self.pending_xmm_reads.len();
        self.reads_arena.clear();
        self.reads_arena.resize(total, EMPTY);

        let starts = &mut self.scatter_starts;
        starts.clear();
        starts.resize(self.instances.len() + 1, 0);
        for &(i, _) in &self.pending_reads {
            starts[i as usize + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        for (i, inst) in self.instances.iter_mut().enumerate() {
            inst.reads_start = starts[i];
            inst.reads_len = starts[i + 1] - starts[i];
        }
        for &(i, r) in &self.pending_reads {
            let at = starts[i as usize];
            self.reads_arena[at as usize] = r;
            starts[i as usize] = at + 1;
        }

        starts.clear();
        starts.resize(self.xmm_instances.len() + 1, 0);
        for &(i, _) in &self.pending_xmm_reads {
            starts[i as usize + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        for (i, inst) in self.xmm_instances.iter_mut().enumerate() {
            inst.reads_start = n_gpr + starts[i];
            inst.reads_len = starts[i + 1] - starts[i];
        }
        for &(i, r) in &self.pending_xmm_reads {
            let at = starts[i as usize];
            self.reads_arena[(n_gpr + at) as usize] = r;
            starts[i as usize] = at + 1;
        }
        self.pending_reads.clear();
        self.pending_xmm_reads.clear();

        let (h, m, wb) = self.cache.stats();
        let mut out = recycle;
        out.stats = SimStats {
            cycles,
            insts,
            l1d_hits: h,
            l1d_misses: m,
            l1d_writebacks: wb,
            branches: self.branches,
            mispredicts: self.mispredicts,
            rob_stalls: self.rob_stalls,
            iq_stalls: self.iq_stalls,
            prf_stalls: self.prf_stalls,
        };
        out.reg_instances.clear();
        std::mem::swap(&mut out.reg_instances, &mut self.instances);
        out.xmm_instances.clear();
        std::mem::swap(&mut out.xmm_instances, &mut self.xmm_instances);
        out.reads.clear();
        std::mem::swap(&mut out.reads, &mut self.reads_arena);
        out.dyn_records.clear();
        std::mem::swap(&mut out.dyn_records, &mut self.dyn_records);
        out.cache_accesses.clear();
        std::mem::swap(&mut out.cache_accesses, &mut self.cache_accesses);
        out.line_events.clear();
        std::mem::swap(&mut out.line_events, &mut self.line_events);
        out.fu_ops.clear();
        std::mem::swap(&mut out.fu_ops, &mut self.fu_ops);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::form::Mnemonic;
    use harpo_isa::mem::DATA_BASE;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_isa::reg::Xmm;

    fn simulate(prog: &harpo_isa::program::Program) -> SimResult {
        OooCore::default()
            .simulate(prog, 10_000_000)
            .expect("clean run")
    }

    #[test]
    fn timing_and_function_agree() {
        let mut a = Asm::new("loop");
        a.mov_ri(B64, Rax, 0);
        a.mov_ri(B64, Rcx, 100);
        a.label("l");
        a.add_ri(B64, Rax, 2);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let p = a.finish().unwrap();
        let r = simulate(&p);
        assert_eq!(r.output.state.gpr(Rax), 200);
        assert!(r.trace.stats.cycles > 100, "loop takes real time");
        assert_eq!(r.trace.stats.insts, r.output.dyn_count);
        assert!(r.trace.stats.ipc() > 0.1 && r.trace.stats.ipc() < 4.0);
    }

    #[test]
    fn dependent_chain_slower_than_independent() {
        // Serial dependency chain.
        let mut a = Asm::new("serial");
        a.mov_ri(B64, Rax, 1);
        for _ in 0..200 {
            a.add_ri(B64, Rax, 1);
        }
        a.halt();
        let serial = simulate(&a.finish().unwrap()).trace.stats.cycles;

        // Same op count spread over 8 independent registers.
        let mut a = Asm::new("parallel");
        for (i, r) in [Rax, Rbx, Rcx, Rdx, Rsi, Rdi, R8, R9].iter().enumerate() {
            a.mov_ri(B64, *r, i as i32);
        }
        for i in 0..200 {
            let r = [Rax, Rbx, Rcx, Rdx, Rsi, Rdi, R8, R9][i % 8];
            a.add_ri(B64, r, 1);
        }
        a.halt();
        let parallel = simulate(&a.finish().unwrap()).trace.stats.cycles;
        assert!(
            parallel * 3 < serial * 2,
            "ILP must pay off: serial={serial}, parallel={parallel}"
        );
    }

    #[test]
    fn cache_misses_cost_cycles() {
        // Stride-64 over 32 KiB misses everywhere on the first pass.
        let mut a = Asm::new("stream");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 512);
        a.label("l");
        a.load(B64, Rax, Rsi, 0);
        a.add_ri(B64, Rsi, 64);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let r = simulate(&a.finish().unwrap());
        assert_eq!(r.trace.stats.l1d_misses, 512);
        assert_eq!(r.trace.stats.l1d_hits, 0);
        // Hit-only version is much faster.
        let mut a = Asm::new("hot");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 512);
        a.label("l");
        a.load(B64, Rax, Rsi, 0);
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let hot = simulate(&a.finish().unwrap());
        assert!(hot.trace.stats.cycles < r.trace.stats.cycles);
    }

    #[test]
    fn reg_instances_track_lifetimes() {
        let mut a = Asm::new("life");
        a.mov_ri(B64, Rax, 1); // instance A
        a.add_ri(B64, Rbx, 0); // reads rbx
        a.mov_rr(B64, Rcx, Rax); // reads instance A
        a.mov_ri(B64, Rax, 2); // instance B; frees A at commit
        a.halt();
        let r = simulate(&a.finish().unwrap());
        // Find the instance written by dyn instruction 0 (mov rax, 1).
        let inst_a = r
            .trace
            .reg_instances
            .iter()
            .find(|i| i.writer == 0)
            .expect("instance exists");
        assert_eq!(inst_a.arch, Rax);
        let reads = r.trace.reads_of(inst_a);
        assert_eq!(reads.len(), 1, "read once by mov rcx, rax");
        assert!(inst_a.free_cycle < r.trace.stats.cycles + 1);
        // Bypass allows a consumer to issue in the producer's completion
        // cycle, so equality is legal.
        assert!(inst_a.write_cycle <= reads[0].cycle);
        assert!(reads[0].cycle <= inst_a.free_cycle);
        // Never-rewritten architectural registers stay live to the end.
        let rbx_init = r
            .trace
            .reg_instances
            .iter()
            .find(|i| i.arch == Rbx && i.writer == u64::MAX);
        assert!(rbx_init.is_none() || rbx_init.unwrap().free_cycle <= r.trace.stats.cycles);
    }

    #[test]
    fn fu_ops_recorded_with_cycles() {
        let mut a = Asm::new("fu");
        a.mov_ri(B64, Rax, 7);
        a.mov_ri(B64, Rbx, 9);
        a.imul_rr(B64, Rax, Rbx);
        a.add_rr(B64, Rax, Rbx);
        a.halt();
        let r = simulate(&a.finish().unwrap());
        let muls = r.trace.fu_op_count(FuKind::IntMul);
        assert_eq!(muls, 4, "64-bit signed imul decomposes into 4 passes");
        let adds = r.trace.fu_op_count(FuKind::IntAdd);
        assert_eq!(adds, 1);
        // Pass cycles are ordered within the instruction.
        let mul_ops: Vec<_> = r.trace.fu_ops_of(FuKind::IntMul).collect();
        for w in mul_ops.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
    }

    #[test]
    fn branch_mispredicts_counted() {
        // A data-dependent alternating branch defeats the 2-bit predictor.
        let mut a = Asm::new("alt");
        a.mov_ri(B64, Rcx, 200);
        a.mov_ri(B64, Rax, 0);
        a.label("l");
        a.op_ri(Mnemonic::Xor, B64, Rax, 1);
        a.op_ri(Mnemonic::Test, B64, Rax, 1);
        a.jz("skip");
        a.add_ri(B64, Rbx, 1);
        a.label("skip");
        a.sub_ri(B64, Rcx, 1);
        a.jnz("l");
        a.halt();
        let r = simulate(&a.finish().unwrap());
        assert!(r.trace.stats.branches >= 400);
        assert!(
            r.trace.stats.mispredicts > 50,
            "alternating pattern mispredicts: {}",
            r.trace.stats.mispredicts
        );
    }

    #[test]
    fn sse_ops_use_fp_units() {
        let mut a = Asm::new("sse");
        a.reg_init.xmms[0][0] = 1.5f32.to_bits() as u64;
        a.reg_init.xmms[1][0] = 2.5f32.to_bits() as u64;
        a.op_xx(Mnemonic::Addss, false, Xmm::Xmm0, Xmm::Xmm1);
        a.op_xx(Mnemonic::Mulss, false, Xmm::Xmm0, Xmm::Xmm1);
        a.halt();
        let r = simulate(&a.finish().unwrap());
        assert_eq!(r.trace.fu_op_count(FuKind::FpAdd), 1);
        assert_eq!(r.trace.fu_op_count(FuKind::FpMul), 1);
        assert_eq!(
            r.output.state.xmm_scalar(Xmm::Xmm0),
            10.0f32.to_bits() // (1.5 + 2.5) * 2.5
        );
    }

    #[test]
    fn prf_pressure_stalls_but_completes() {
        // More in-flight writes than physical registers forces recycling.
        let cfg = CoreConfig {
            phys_regs: 34,
            ..CoreConfig::default()
        };
        let core = OooCore::new(cfg);
        let mut a = Asm::new("prf");
        for i in 0..500 {
            a.mov_ri(B64, Gpr::ALL[i % 4], i as i32);
        }
        a.halt();
        let p = a.finish().unwrap();
        let r = core.simulate(&p, 100_000).unwrap();
        assert_eq!(r.trace.stats.insts, 501);
        // Physical registers stay within the configured population.
        assert!(r.trace.reg_instances.iter().all(|i| (i.preg as u32) < 34));
        assert!(
            r.trace.stats.prf_stalls > 0,
            "recycling the tiny PRF must register as dispatch stalls"
        );
    }

    #[test]
    fn structural_stalls_counted_under_pressure() {
        // A long serial chain keeps instructions in flight far longer than
        // a 16-entry ROB can hold, so dispatch must repeatedly wait on ROB
        // slot reuse.
        let cfg = CoreConfig {
            rob_size: 16,
            ..CoreConfig::default()
        };
        let core = OooCore::new(cfg);
        let mut a = Asm::new("chain");
        a.mov_ri(B64, Rax, 1);
        a.mov_ri(B64, Rbx, 3);
        for _ in 0..300 {
            a.imul_rr(B64, Rax, Rbx);
        }
        a.halt();
        let p = a.finish().unwrap();
        let r = core.simulate(&p, 100_000).unwrap();
        assert!(
            r.trace.stats.rob_stalls > 0,
            "serial multiply chain must fill a 16-entry ROB"
        );
        // A trivial straight-line program on the default core stalls on
        // nothing.
        let mut a = Asm::new("tiny");
        a.mov_ri(B64, Rax, 1);
        a.halt();
        let r = OooCore::default()
            .simulate(&a.finish().unwrap(), 100)
            .unwrap();
        let s = r.trace.stats;
        assert_eq!(s.rob_stalls + s.iq_stalls + s.prf_stalls, 0);
    }

    #[test]
    fn trap_propagates() {
        let mut a = Asm::new("oob");
        a.mov_ri(B64, Rsi, 0x100); // below DATA_BASE
        a.load(B64, Rax, Rsi, 0);
        a.halt();
        let p = a.finish().unwrap();
        assert!(OooCore::default().simulate(&p, 1000).is_err());
    }

    #[test]
    fn reused_context_matches_fresh_simulation() {
        // Three structurally different programs through ONE context, each
        // compared field-by-field against a fresh `simulate` — buffer
        // reuse must never leak state across runs.
        let progs: Vec<_> = (0..3)
            .map(|k| {
                let mut a = Asm::new("ctx");
                a.reg_init.gprs[Rsi.index()] = DATA_BASE;
                a.mov_ri(B64, Rcx, 40 + 30 * k);
                a.label("l");
                a.load(B64, Rax, Rsi, 0);
                a.add_rr(B64, Rax, Rcx);
                a.imul_rr(B64, Rax, Rcx);
                a.add_ri(B64, Rsi, 64 * (k + 1));
                a.op_xx(Mnemonic::Addss, false, Xmm::Xmm0, Xmm::Xmm1);
                a.sub_ri(B64, Rcx, 1);
                a.jnz("l");
                a.halt();
                a.finish().unwrap()
            })
            .collect();
        let core = OooCore::default();
        let mut ctx = SimContext::new();
        for p in &progs {
            let fresh = core.simulate(p, 10_000_000).unwrap();
            let reused = core.simulate_into(p, 10_000_000, &mut ctx).unwrap();
            assert_eq!(reused.output.signature, fresh.output.signature);
            assert_eq!(reused.output.dyn_count, fresh.output.dyn_count);
            assert_eq!(reused.trace.stats, fresh.trace.stats);
            assert_eq!(reused.trace.reg_instances, fresh.trace.reg_instances);
            assert_eq!(reused.trace.xmm_instances, fresh.trace.xmm_instances);
            assert_eq!(reused.trace.reads, fresh.trace.reads);
            assert_eq!(reused.trace.dyn_records, fresh.trace.dyn_records);
            assert_eq!(reused.trace.cache_accesses, fresh.trace.cache_accesses);
            assert_eq!(reused.trace.line_events, fresh.trace.line_events);
            assert_eq!(reused.trace.fu_ops, fresh.trace.fu_ops);
        }
    }

    #[test]
    fn context_survives_a_trap() {
        let core = OooCore::default();
        let mut ctx = SimContext::new();
        let mut a = Asm::new("oob");
        a.mov_ri(B64, Rsi, 0x100);
        a.load(B64, Rax, Rsi, 0);
        a.halt();
        let bad = a.finish().unwrap();
        assert!(core.simulate_into(&bad, 1000, &mut ctx).is_err());
        // The context is reusable and produces clean results afterwards.
        let mut a = Asm::new("ok");
        a.mov_ri(B64, Rax, 5);
        a.halt();
        let good = a.finish().unwrap();
        let fresh = core.simulate(&good, 1000).unwrap();
        let reused = core.simulate_into(&good, 1000, &mut ctx).unwrap();
        assert_eq!(reused.output.signature, fresh.output.signature);
        assert_eq!(reused.trace.stats, fresh.trace.stats);
    }
}
