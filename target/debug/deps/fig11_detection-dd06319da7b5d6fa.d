/root/repo/target/debug/deps/fig11_detection-dd06319da7b5d6fa.d: crates/bench/src/bin/fig11_detection.rs

/root/repo/target/debug/deps/fig11_detection-dd06319da7b5d6fa: crates/bench/src/bin/fig11_detection.rs

crates/bench/src/bin/fig11_detection.rs:
