/root/repo/target/debug/deps/harpo_gates-bc7bb9e12f605ec6.d: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs

/root/repo/target/debug/deps/harpo_gates-bc7bb9e12f605ec6: crates/gates/src/lib.rs crates/gates/src/adder.rs crates/gates/src/compiled.rs crates/gates/src/components.rs crates/gates/src/eval.rs crates/gates/src/fp_common.rs crates/gates/src/fpadd.rs crates/gates/src/fpmul.rs crates/gates/src/multiplier.rs crates/gates/src/netlist.rs crates/gates/src/provider.rs

crates/gates/src/lib.rs:
crates/gates/src/adder.rs:
crates/gates/src/compiled.rs:
crates/gates/src/components.rs:
crates/gates/src/eval.rs:
crates/gates/src/fp_common.rs:
crates/gates/src/fpadd.rs:
crates/gates/src/fpmul.rs:
crates/gates/src/multiplier.rs:
crates/gates/src/netlist.rs:
crates/gates/src/provider.rs:
