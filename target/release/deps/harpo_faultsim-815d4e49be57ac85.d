/root/repo/target/release/deps/harpo_faultsim-815d4e49be57ac85.d: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

/root/repo/target/release/deps/libharpo_faultsim-815d4e49be57ac85.rlib: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

/root/repo/target/release/deps/libharpo_faultsim-815d4e49be57ac85.rmeta: crates/faultsim/src/lib.rs crates/faultsim/src/autopsy.rs crates/faultsim/src/campaign.rs crates/faultsim/src/checkpoint.rs crates/faultsim/src/cohort.rs crates/faultsim/src/fault.rs crates/faultsim/src/gate.rs crates/faultsim/src/outcome.rs crates/faultsim/src/plan.rs crates/faultsim/src/replay.rs crates/faultsim/src/stream.rs

crates/faultsim/src/lib.rs:
crates/faultsim/src/autopsy.rs:
crates/faultsim/src/campaign.rs:
crates/faultsim/src/checkpoint.rs:
crates/faultsim/src/cohort.rs:
crates/faultsim/src/fault.rs:
crates/faultsim/src/gate.rs:
crates/faultsim/src/outcome.rs:
crates/faultsim/src/plan.rs:
crates/faultsim/src/replay.rs:
crates/faultsim/src/stream.rs:
