/root/repo/target/release/deps/harpo_coverage-a28ce14c7e77031d.d: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/release/deps/libharpo_coverage-a28ce14c7e77031d.rlib: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/release/deps/libharpo_coverage-a28ce14c7e77031d.rmeta: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

crates/coverage/src/lib.rs:
crates/coverage/src/ace.rs:
crates/coverage/src/ibr.rs:
crates/coverage/src/liveness.rs:
crates/coverage/src/objective.rs:
