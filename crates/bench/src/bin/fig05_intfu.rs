//! Fig. 5 — IBR coverage and permanent-gate-fault detection of the
//! baselines for the **integer adder** and **integer multiplier**.
//!
//! Expected shape (paper §III-C): adder detection averages around 80%
//! with near-99% outliers; multiplier detection is far more variable
//! (the paper reports MiBench avg 53%, SiliFuzz 70%, OpenDCDiag 37%).

use harpo_bench::{
    baseline_suites, print_structure_table, write_csv, Cli, Harness, GRADE_CSV_HEADER,
};
use harpo_coverage::TargetStructure;
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("fig05_intfu", &cli);
    let core = OooCore::default();
    let ccfg = cli.campaign();
    let suites = baseline_suites(cli.scale);

    let mut csv = Vec::new();
    for structure in [TargetStructure::IntAdder, TargetStructure::IntMultiplier] {
        let mut rows = Vec::new();
        for (fw, progs) in &suites {
            rows.extend(harness.grade_suite(fw, progs, structure, &core, &ccfg));
        }
        csv.extend(print_structure_table(structure, &rows));
    }
    write_csv(&cli.out_dir, "fig05_intfu.csv", GRADE_CSV_HEADER, &csv);
    harness.finish();
}
