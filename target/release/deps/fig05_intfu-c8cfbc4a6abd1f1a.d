/root/repo/target/release/deps/fig05_intfu-c8cfbc4a6abd1f1a.d: crates/bench/src/bin/fig05_intfu.rs

/root/repo/target/release/deps/fig05_intfu-c8cfbc4a6abd1f1a: crates/bench/src/bin/fig05_intfu.rs

crates/bench/src/bin/fig05_intfu.rs:
