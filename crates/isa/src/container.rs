//! The HXPF program container — a self-contained on-disk format for
//! HX86 test programs.
//!
//! Machine code alone (`Program::encode`) is not a deployable test: the
//! paper's wrapper concept (§V-D) makes the *initial state* part of the
//! artefact, because detection compares against a golden signature that
//! depends on it. HXPF serialises the complete [`Program`] — name,
//! register init, memory image and code — with explicit little-endian
//! layout and a checksum, so fleets can ship and re-verify tests.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "HXPF"            4 bytes
//! version                  u16
//! name length | name       u16 + bytes (UTF-8)
//! provenance (v2+)         flags u8 (bit 0: has parent),
//!                          parent u128 as lo/hi u64 if present,
//!                          operator length u16 + bytes (0 = none),
//!                          seed u64, birth_round u32
//! gprs                     16 × u64
//! xmms                     16 × 2 × u64
//! data_size, stack_size    u32, u32
//! fill_seed                u64
//! patch count              u32
//!   per patch: offset u32, len u32, bytes
//! code length | code       u32 + bytes (HX86 machine code)
//! fnv64 of everything above
//! ```
//!
//! Version 1 containers (no provenance section) still load; the lineage
//! tag defaults to "unknown origin".

use crate::encode::{decode_stream, encode_program, DecodeError};
use crate::mem::{fnv1a, MemImage};
use crate::program::{Program, Provenance, RegInit};
use std::fmt;

const MAGIC: &[u8; 4] = b"HXPF";
const VERSION: u16 = 2;

/// Errors loading an HXPF container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The file ended prematurely.
    Truncated,
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// The embedded machine code failed to decode.
    BadCode(DecodeError),
    /// The program name is not valid UTF-8.
    BadName,
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::BadMagic => write!(f, "not an HXPF container"),
            ContainerError::BadVersion(v) => write!(f, "unsupported HXPF version {v}"),
            ContainerError::Truncated => write!(f, "truncated HXPF container"),
            ContainerError::ChecksumMismatch => write!(f, "HXPF checksum mismatch"),
            ContainerError::BadCode(e) => write!(f, "invalid machine code: {e}"),
            ContainerError::BadName => write!(f, "program name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Serialises a program into an HXPF container.
pub fn to_container(prog: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(prog.len() * 4 + 512);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let name = prog.name.as_bytes();
    out.extend_from_slice(&(name.len() as u16).to_le_bytes());
    out.extend_from_slice(name);
    let prov = &prog.provenance;
    out.push(prov.parent.is_some() as u8);
    if let Some(parent) = prov.parent {
        out.extend_from_slice(&(parent as u64).to_le_bytes());
        out.extend_from_slice(&((parent >> 64) as u64).to_le_bytes());
    }
    let op = prov.operator.as_deref().unwrap_or("").as_bytes();
    out.extend_from_slice(&(op.len() as u16).to_le_bytes());
    out.extend_from_slice(op);
    out.extend_from_slice(&prov.seed.to_le_bytes());
    out.extend_from_slice(&prov.birth_round.to_le_bytes());
    for g in prog.reg_init.gprs {
        out.extend_from_slice(&g.to_le_bytes());
    }
    for x in prog.reg_init.xmms {
        out.extend_from_slice(&x[0].to_le_bytes());
        out.extend_from_slice(&x[1].to_le_bytes());
    }
    out.extend_from_slice(&prog.mem.data_size.to_le_bytes());
    out.extend_from_slice(&prog.mem.stack_size.to_le_bytes());
    out.extend_from_slice(&prog.mem.fill_seed.to_le_bytes());
    out.extend_from_slice(&(prog.mem.patches.len() as u32).to_le_bytes());
    for (off, bytes) in &prog.mem.patches {
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    let code = encode_program(&prog.insts);
    out.extend_from_slice(&(code.len() as u32).to_le_bytes());
    out.extend_from_slice(&code);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ContainerError> {
        if self.pos + n > self.buf.len() {
            return Err(ContainerError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, ContainerError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ContainerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ContainerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Loads a program from an HXPF container.
///
/// # Errors
/// Any [`ContainerError`] describing the malformation.
pub fn from_container(bytes: &[u8]) -> Result<Program, ContainerError> {
    if bytes.len() < 12 {
        return Err(ContainerError::Truncated);
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let expect = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv1a(body) != expect {
        return Err(ContainerError::ChecksumMismatch);
    }

    let mut r = Reader { buf: body, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = r.u16()?;
    if version == 0 || version > VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let name_len = r.u16()? as usize;
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| ContainerError::BadName)?
        .to_string();

    let provenance = if version >= 2 {
        let has_parent = r.take(1)?[0] != 0;
        let parent = if has_parent {
            let lo = r.u64()? as u128;
            let hi = r.u64()? as u128;
            Some((hi << 64) | lo)
        } else {
            None
        };
        let op_len = r.u16()? as usize;
        let op = std::str::from_utf8(r.take(op_len)?)
            .map_err(|_| ContainerError::BadName)?
            .to_string();
        let seed = r.u64()?;
        let birth_round = r.u32()?;
        Provenance {
            parent,
            operator: (!op.is_empty()).then_some(op),
            seed,
            birth_round,
        }
    } else {
        Provenance::default()
    };

    let mut reg_init = RegInit::zeroed();
    for g in reg_init.gprs.iter_mut() {
        *g = r.u64()?;
    }
    for x in reg_init.xmms.iter_mut() {
        x[0] = r.u64()?;
        x[1] = r.u64()?;
    }
    let data_size = r.u32()?;
    let stack_size = r.u32()?;
    let fill_seed = r.u64()?;
    let n_patches = r.u32()? as usize;
    let mut patches = Vec::with_capacity(n_patches.min(1024));
    for _ in 0..n_patches {
        let off = r.u32()?;
        let len = r.u32()? as usize;
        patches.push((off, r.take(len)?.to_vec()));
    }
    let code_len = r.u32()? as usize;
    let code = r.take(code_len)?;
    let insts = decode_stream(code).map_err(ContainerError::BadCode)?;
    Ok(Program {
        name,
        insts,
        reg_init,
        mem: MemImage {
            data_size,
            stack_size,
            fill_seed,
            patches,
        },
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Gpr::*;
    use crate::reg::Width::*;

    fn sample() -> Program {
        let mut a = Asm::new("container-sample");
        a.reg_init.gprs[3] = 0xDEAD_BEEF;
        a.reg_init.xmms[5] = [1, 2];
        a.mem.fill_seed = 77;
        a.mem.patches.push((16, vec![9, 8, 7]));
        a.mov_ri(B64, Rax, 42);
        a.add_rr(B64, Rax, Rbx);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample();
        let bytes = to_container(&p);
        let back = from_container(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn roundtrip_preserves_provenance() {
        let mut p = sample();
        p.provenance = Provenance {
            parent: Some(0xDEAD_BEEF_0000_0001_FFFF_0000_1234_5678),
            operator: Some("replace-all".into()),
            seed: 0xA1C0,
            birth_round: 17,
        };
        let back = from_container(&to_container(&p)).unwrap();
        assert_eq!(back, p);
        // Genesis tags (no parent, no operator) round-trip too.
        p.provenance = Provenance::genesis(7);
        assert_eq!(from_container(&to_container(&p)).unwrap(), p);
    }

    #[test]
    fn version_1_containers_still_load() {
        // Build a v2 container, strip the provenance section and rewrite
        // the version word + checksum — the shape old tools produced.
        let p = sample();
        let v2 = to_container(&p);
        let name_len = p.name.len();
        let prov_at = 4 + 2 + 2 + name_len;
        // Default tag: no-parent flag (1) + operator len (2) + seed (8)
        // + birth_round (4).
        let prov_len = 1 + 2 + 8 + 4;
        let mut v1: Vec<u8> = Vec::new();
        v1.extend_from_slice(&v2[..prov_at]);
        v1.extend_from_slice(&v2[prov_at + prov_len..v2.len() - 8]);
        v1[4..6].copy_from_slice(&1u16.to_le_bytes());
        let sum = crate::mem::fnv1a(&v1);
        v1.extend_from_slice(&sum.to_le_bytes());
        let back = from_container(&v1).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.provenance, Provenance::default());
    }

    #[test]
    fn future_versions_are_rejected() {
        let p = sample();
        let mut bytes = to_container(&p);
        bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
        let n = bytes.len() - 8;
        let sum = crate::mem::fnv1a(&bytes[..n]);
        bytes[n..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            from_container(&bytes).unwrap_err(),
            ContainerError::BadVersion(9)
        );
    }

    #[test]
    fn checksum_detects_corruption() {
        let p = sample();
        let mut bytes = to_container(&p);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            from_container(&bytes).unwrap_err(),
            ContainerError::ChecksumMismatch
        );
    }

    #[test]
    fn truncation_detected() {
        let p = sample();
        let bytes = to_container(&p);
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_container(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_detected() {
        let p = sample();
        let mut bytes = to_container(&p);
        bytes[0] = b'X';
        // Checksum was computed over the original; fix it up so magic is
        // the failure actually reported.
        let n = bytes.len() - 8;
        let sum = crate::mem::fnv1a(&bytes[..n]);
        bytes[n..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            from_container(&bytes).unwrap_err(),
            ContainerError::BadMagic
        );
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            ContainerError::BadMagic,
            ContainerError::BadVersion(9),
            ContainerError::Truncated,
            ContainerError::ChecksumMismatch,
            ContainerError::BadName,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
