/root/repo/target/debug/deps/detection_speed-5e019ccfc5587ffb.d: crates/bench/src/bin/detection_speed.rs Cargo.toml

/root/repo/target/debug/deps/libdetection_speed-5e019ccfc5587ffb.rmeta: crates/bench/src/bin/detection_speed.rs Cargo.toml

crates/bench/src/bin/detection_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
