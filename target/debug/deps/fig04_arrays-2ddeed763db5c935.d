/root/repo/target/debug/deps/fig04_arrays-2ddeed763db5c935.d: crates/bench/src/bin/fig04_arrays.rs

/root/repo/target/debug/deps/fig04_arrays-2ddeed763db5c935: crates/bench/src/bin/fig04_arrays.rs

crates/bench/src/bin/fig04_arrays.rs:
