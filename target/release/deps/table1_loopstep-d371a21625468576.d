/root/repo/target/release/deps/table1_loopstep-d371a21625468576.d: crates/bench/src/bin/table1_loopstep.rs

/root/repo/target/release/deps/table1_loopstep-d371a21625468576: crates/bench/src/bin/table1_loopstep.rs

crates/bench/src/bin/table1_loopstep.rs:
