/root/repo/target/release/deps/bench_diff-7dc70d1c0c0e2466.d: crates/bench/src/bin/bench_diff.rs

/root/repo/target/release/deps/bench_diff-7dc70d1c0c0e2466: crates/bench/src/bin/bench_diff.rs

crates/bench/src/bin/bench_diff.rs:
