/root/repo/target/release/deps/ablation_l1d-d66b532282e111c1.d: crates/bench/src/bin/ablation_l1d.rs

/root/repo/target/release/deps/ablation_l1d-d66b532282e111c1: crates/bench/src/bin/ablation_l1d.rs

crates/bench/src/bin/ablation_l1d.rs:
