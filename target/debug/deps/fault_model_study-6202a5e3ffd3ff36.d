/root/repo/target/debug/deps/fault_model_study-6202a5e3ffd3ff36.d: crates/bench/src/bin/fault_model_study.rs

/root/repo/target/debug/deps/fault_model_study-6202a5e3ffd3ff36: crates/bench/src/bin/fault_model_study.rs

crates/bench/src/bin/fault_model_study.rs:
