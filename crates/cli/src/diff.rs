//! `harpo diff` — cross-run drift analysis.
//!
//! Compares two run journals fault-for-fault through their stamped
//! [`harpo_telemetry::FaultKey`]s and renders a Markdown drift report: an outcome
//! **transition matrix** (SDC→Masked, Masked→Crash, …), the newly
//! silent / newly detected fault lists with autopsy context, counter
//! deltas, and — for determinism auditing — the *first divergent
//! canonical record* (the [`canonical_journal`] filtering that the
//! bit-identity tests use), so a failed byte-identity assert becomes an
//! explainable report instead of a bare boolean. Two `BENCH_*.json`
//! snapshots diff as a per-key %-delta table instead.
//!
//! Exit status is the drift verdict: 0 when the runs agree (no outcome
//! transitions off the diagonal and identical canonical journals),
//! 1 otherwise — CI diffs the fresh golden journal against the
//! committed baseline on every push and uploads the report.
//!
//! Rendering is a pure function of the input bytes (no clocks, no
//! environment), so the golden diff snapshot test pins it byte for
//! byte.

use crate::args::Args;
use harpo_telemetry::json::{self, Value};
use harpo_telemetry::{canonical_journal, Journal};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// `harpo diff` entry point.
pub fn diff_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv)?;
    let [a, b] = &args.positional[..] else {
        return Err(
            "diff needs exactly two files: harpo diff <a.jsonl> <b.jsonl> [--out DIFF.md]"
                .to_string(),
        );
    };
    let ca = std::fs::read_to_string(a).map_err(|e| format!("{a}: {e}"))?;
    let cb = std::fs::read_to_string(b).map_err(|e| format!("{b}: {e}"))?;
    let (md, drift) = render_diff((a, &ca), (b, &cb))?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &md).map_err(|e| format!("{path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{md}"),
    }
    if drift {
        Err(format!(
            "drift detected between `{a}` and `{b}` (see report)"
        ))
    } else {
        Ok(())
    }
}

/// One classified input side.
enum Side {
    /// A JSONL run journal.
    Journal(Journal),
    /// A flat `BENCH_*.json` snapshot: name → number.
    Bench(Vec<(String, Value)>),
}

fn classify(path: &str, content: &str) -> Result<Side, String> {
    let lines: Vec<&str> = content.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(format!("{path}: empty file"));
    }
    let first = json::parse(lines[0]).map_err(|e| format!("{path}:1: {e}"))?;
    if first.get("kind").is_none() {
        if lines.len() > 1 {
            return Err(format!("{path}: multi-line file without journal records"));
        }
        return match first {
            Value::Obj(fields) => Ok(Side::Bench(fields)),
            _ => Err(format!("{path}: expected a JSON object")),
        };
    }
    Ok(Side::Journal(Journal::parse(path, content)?))
}

/// Renders the diff of two `(path, content)` inputs; returns the
/// Markdown report and the drift verdict. Pure: same bytes in, same
/// bytes (and verdict) out.
pub fn render_diff(a: (&str, &str), b: (&str, &str)) -> Result<(String, bool), String> {
    match (classify(a.0, a.1)?, classify(b.0, b.1)?) {
        (Side::Journal(ja), Side::Journal(jb)) => Ok(diff_journals(a, b, &ja, &jb)),
        (Side::Bench(fa), Side::Bench(fb)) => Ok((diff_benches(a.0, b.0, &fa, &fb), false)),
        _ => Err(format!(
            "cannot diff a journal against a bench snapshot (`{}` vs `{}`)",
            a.0, b.0
        )),
    }
}

/// Outcome labels in fixed presentation order: undetected first.
const OUTCOMES: [&str; 4] = ["masked", "corrected", "sdc", "crash"];

fn outcome_index(label: &str) -> Option<usize> {
    OUTCOMES.iter().position(|&o| o == label)
}

fn detected(label: &str) -> bool {
    matches!(label, "sdc" | "crash")
}

/// Autopsy context for a fault list entry: mechanism and divergence
/// site, e.g. `signature via register rax`.
fn outcome_ctx(rec: &Value) -> String {
    let mech = rec.get("mechanism").and_then(Value::as_str).unwrap_or("?");
    let site = rec.get("site").and_then(Value::as_str).unwrap_or("?");
    let detail = rec.get("site_detail").and_then(Value::as_str).unwrap_or("");
    if detail.is_empty() {
        format!("{mech} via {site}")
    } else {
        format!("{mech} via {site} {detail}")
    }
}

/// How many faults to list per transition direction before eliding.
const MAX_LISTED_FAULTS: usize = 12;

fn diff_journals(a: (&str, &str), b: (&str, &str), ja: &Journal, jb: &Journal) -> (String, bool) {
    let mut out = String::new();
    let _ = writeln!(out, "# Journal diff: `{}` vs `{}`\n", a.0, b.0);

    // Run environment from the v5 meta headers, when present.
    let (ma, mb) = (ja.meta(), jb.meta());
    if ma.is_some() || mb.is_some() {
        out.push_str("## Run environment\n\n");
        out.push_str("| field | a | b |\n|---|---|---|\n");
        for field in ["schema", "git_commit", "threads", "config_hash"] {
            let cell = |m: Option<&Value>| -> String {
                m.and_then(|m| m.get(field))
                    .map(|v| match v {
                        Value::Str(s) => s.clone(),
                        other => other.to_json(),
                    })
                    .unwrap_or_else(|| "—".to_string())
            };
            let _ = writeln!(out, "| {field} | {} | {} |", cell(ma), cell(mb));
        }
        out.push('\n');
    }

    // Outcome transitions over the intersecting fault keys.
    let oa: BTreeMap<String, &Value> = ja.outcomes().into_iter().collect();
    let ob: BTreeMap<String, &Value> = jb.outcomes().into_iter().collect();
    let mut matrix = [[0u64; OUTCOMES.len()]; OUTCOMES.len()];
    let mut newly_silent: Vec<(&String, &Value, &Value)> = Vec::new();
    let mut newly_detected: Vec<(&String, &Value, &Value)> = Vec::new();
    let mut matched = 0u64;
    let mut changed = 0u64;
    for (key, ra) in &oa {
        let Some(rb) = ob.get(key) else { continue };
        let la = ra.get("outcome").and_then(Value::as_str).unwrap_or("?");
        let lb = rb.get("outcome").and_then(Value::as_str).unwrap_or("?");
        let (Some(i), Some(j)) = (outcome_index(la), outcome_index(lb)) else {
            continue;
        };
        matched += 1;
        matrix[i][j] += 1;
        if i != j {
            changed += 1;
            if detected(la) && !detected(lb) {
                newly_silent.push((key, ra, rb));
            } else if !detected(la) && detected(lb) {
                newly_detected.push((key, ra, rb));
            }
        }
    }
    let only_a = oa.keys().filter(|k| !ob.contains_key(*k)).count();
    let only_b = ob.keys().filter(|k| !oa.contains_key(*k)).count();

    out.push_str("## Outcome transitions\n\n");
    if oa.is_empty() && ob.is_empty() {
        out.push_str(
            "_No per-fault outcome records in either journal — run the campaigns with \
             forensics on (`harpo autopsy`) to diff outcomes fault-for-fault._\n\n",
        );
    } else {
        let _ = writeln!(
            out,
            "Matched {matched} fault key(s); {only_a} only in a, {only_b} only in b.\n"
        );
        out.push_str("| a \\ b | masked | corrected | sdc | crash |\n|---|---|---|---|---|\n");
        for (row_label, row) in OUTCOMES.iter().zip(&matrix) {
            let _ = write!(out, "| **{row_label}** |");
            for cell in row {
                let _ = write!(out, " {cell} |");
            }
            out.push('\n');
        }
        out.push('\n');
        if changed == 0 {
            out.push_str("No outcome drift: every matched fault resolved identically.\n\n");
        } else {
            let _ = writeln!(out, "**{changed} matched fault(s) changed outcome.**\n");
        }
        render_fault_list(
            &mut out,
            "Newly silent (detected in a, undetected in b)",
            &newly_silent,
        );
        render_fault_list(
            &mut out,
            "Newly detected (undetected in a, detected in b)",
            &newly_detected,
        );
    }

    // Counter deltas from the final snapshots.
    if let (Some(ca), Some(cb)) = (ja.counters(), jb.counters()) {
        render_counter_deltas(&mut out, ca, cb);
    }

    // Determinism audit: first divergent canonical record.
    let canon_a: Vec<String> = canonical_journal(a.1).lines().map(String::from).collect();
    let canon_b: Vec<String> = canonical_journal(b.1).lines().map(String::from).collect();
    out.push_str("## Determinism audit\n\n");
    let divergence = first_divergence(&canon_a, &canon_b);
    match divergence {
        None => {
            let _ = writeln!(
                out,
                "Canonical journals are identical ({} records): the runs are bit-equivalent \
                 after streaming/wall-clock filtering.\n",
                canon_a.len()
            );
        }
        Some(i) => {
            let _ = writeln!(
                out,
                "Canonical journals diverge at record {} (a has {} records, b has {}):\n",
                i + 1,
                canon_a.len(),
                canon_b.len()
            );
            let side = |lines: &[String], tag: &str| match lines.get(i) {
                Some(l) => format!("- {tag}: `{l}`"),
                None => format!("- {tag}: (end of journal)"),
            };
            let _ = writeln!(out, "{}", side(&canon_a, "a"));
            let _ = writeln!(out, "{}\n", side(&canon_b, "b"));
        }
    }

    let drift = changed > 0 || divergence.is_some();
    let _ = writeln!(
        out,
        "Verdict: **{}**.",
        if drift { "drift" } else { "no drift" }
    );
    (out, drift)
}

/// Index of the first position where the canonical record streams
/// disagree (including one ending early), or `None` when identical.
fn first_divergence(a: &[String], b: &[String]) -> Option<usize> {
    (0..a.len().max(b.len())).find(|&i| a.get(i) != b.get(i))
}

fn render_fault_list(out: &mut String, title: &str, faults: &[(&String, &Value, &Value)]) {
    if faults.is_empty() {
        return;
    }
    let _ = writeln!(out, "### {title}\n");
    for (key, ra, rb) in faults.iter().take(MAX_LISTED_FAULTS) {
        let la = ra.get("outcome").and_then(Value::as_str).unwrap_or("?");
        let lb = rb.get("outcome").and_then(Value::as_str).unwrap_or("?");
        let _ = writeln!(
            out,
            "- `{key}`: {la} → {lb} ({} → {})",
            outcome_ctx(ra),
            outcome_ctx(rb)
        );
    }
    if faults.len() > MAX_LISTED_FAULTS {
        let _ = writeln!(out, "- … and {} more", faults.len() - MAX_LISTED_FAULTS);
    }
    out.push('\n');
}

/// How many changed counters to list before eliding.
const MAX_COUNTER_ROWS: usize = 24;

fn render_counter_deltas(out: &mut String, ca: &Value, cb: &Value) {
    // Scalar counters only: histogram snapshots (objects) change shape
    // with timing and are not comparable scalars.
    let scalars = |c: &Value| -> BTreeMap<String, f64> {
        match c {
            Value::Obj(fields) => fields
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
                .collect(),
            _ => BTreeMap::new(),
        }
    };
    let sa = scalars(ca);
    let sb = scalars(cb);
    let shared: Vec<&String> = sa.keys().filter(|k| sb.contains_key(*k)).collect();
    if shared.is_empty() {
        return;
    }
    let changed: Vec<&&String> = shared.iter().filter(|k| sa[**k] != sb[**k]).collect();
    out.push_str("## Counter deltas\n\n");
    if changed.is_empty() {
        let _ = writeln!(out, "All {} shared counters identical.\n", shared.len());
        return;
    }
    out.push_str("| counter | a | b | Δ |\n|---|---|---|---|\n");
    for key in changed.iter().take(MAX_COUNTER_ROWS) {
        let (x, y) = (sa[**key], sb[**key]);
        let _ = writeln!(out, "| `{key}` | {x} | {y} | {} |", fmt_delta(x, y));
    }
    if changed.len() > MAX_COUNTER_ROWS {
        let _ = writeln!(
            out,
            "| … | | | {} more changed counter(s) |",
            changed.len() - MAX_COUNTER_ROWS
        );
    }
    let _ = writeln!(
        out,
        "\n{} of {} shared counters changed.\n",
        changed.len(),
        shared.len()
    );
}

/// Signed percent delta of `b` relative to `a`; `n/a` from zero.
fn fmt_delta(a: f64, b: f64) -> String {
    if a == 0.0 {
        "n/a".to_string()
    } else {
        format!("{:+.1}%", (b - a) / a * 100.0)
    }
}

fn diff_benches(
    path_a: &str,
    path_b: &str,
    fa: &[(String, Value)],
    fb: &[(String, Value)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Bench diff: `{path_a}` vs `{path_b}`\n");
    let nums = |fields: &[(String, Value)]| -> BTreeMap<String, f64> {
        fields
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x)))
            .collect()
    };
    let na = nums(fa);
    let nb = nums(fb);
    out.push_str("| key | a | b | Δ |\n|---|---|---|---|\n");
    for (key, &x) in &na {
        let Some(&y) = nb.get(key) else { continue };
        let _ = writeln!(out, "| `{key}` | {x} | {y} | {} |", fmt_delta(x, y));
    }
    out.push('\n');
    let only_a: Vec<&String> = na.keys().filter(|k| !nb.contains_key(*k)).collect();
    let only_b: Vec<&String> = nb.keys().filter(|k| !na.contains_key(*k)).collect();
    for (tag, only) in [("a", only_a), ("b", only_b)] {
        if !only.is_empty() {
            let list: Vec<String> = only.iter().map(|k| format!("`{k}`")).collect();
            let _ = writeln!(out, "Keys only in {tag}: {}.\n", list.join(", "));
        }
    }
    out.push_str(
        "Bench deltas are informational — the regression gate is `bench_diff` \
         (see crates/bench).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn autopsy(key: &str, outcome: &str, mechanism: &str) -> String {
        format!(
            r#"{{"kind":"autopsy","v":5,"fault":0,"worker":0,"structure":"IRF","bit":3,"outcome":"{outcome}","mechanism":"{mechanism}","site":"register","site_detail":"rax","injected_cycle":9,"injected_dyn":4,"propagation_insts":11,"detection_latency":11,"key":"{key}"}}"#
        )
    }

    #[test]
    fn self_diff_is_clean() {
        let text = format!(
            "{}\n{}\n",
            autopsy("IRF/00/p1.b3.c9/transient", "sdc", "signature"),
            r#"{"kind":"campaign","v":5,"program":"t0","structure":"IRF","coverage":0.5,"counters":{"faultsim.injected":4}}"#
        );
        let (md, drift) = render_diff(("a.jsonl", &text), ("b.jsonl", &text)).unwrap();
        assert!(!drift, "{md}");
        assert!(md.contains("No outcome drift"), "{md}");
        assert!(md.contains("Canonical journals are identical"), "{md}");
        assert!(md.contains("Verdict: **no drift**"), "{md}");
    }

    #[test]
    fn outcome_transition_is_drift_with_matrix_and_lists() {
        let a = format!(
            "{}\n{}\n",
            autopsy("IRF/00/p1.b3.c9/transient", "sdc", "signature"),
            autopsy("IRF/00/p2.b5.c11/transient", "masked", "overwrite"),
        );
        let b = format!(
            "{}\n{}\n",
            autopsy("IRF/00/p1.b3.c9/transient", "masked", "logical"),
            autopsy("IRF/00/p2.b5.c11/transient", "crash", "trap"),
        );
        let (md, drift) = render_diff(("a.jsonl", &a), ("b.jsonl", &b)).unwrap();
        assert!(drift);
        assert!(md.contains("Matched 2 fault key(s)"), "{md}");
        assert!(
            md.contains("**2 matched fault(s) changed outcome.**"),
            "{md}"
        );
        assert!(md.contains("Newly silent"), "{md}");
        assert!(
            md.contains("`IRF/00/p1.b3.c9/transient`: sdc → masked"),
            "{md}"
        );
        assert!(md.contains("Newly detected"), "{md}");
        assert!(
            md.contains("Canonical journals diverge at record 1"),
            "{md}"
        );
    }

    #[test]
    fn canonical_divergence_alone_is_drift() {
        let a = r#"{"kind":"summary","v":5,"iterations":3}"#;
        let b = r#"{"kind":"summary","v":5,"iterations":4}"#;
        let (md, drift) = render_diff(("a.jsonl", a), ("b.jsonl", b)).unwrap();
        assert!(drift);
        assert!(md.contains("diverge at record 1"), "{md}");
        assert!(
            md.contains(r#"- a: `{"kind":"summary","v":5,"iterations":3}`"#),
            "{md}"
        );
    }

    #[test]
    fn meta_and_wallclock_differences_are_not_drift() {
        let a = concat!(
            r#"{"kind":"meta","v":5,"schema":5,"git_commit":"aaa","threads":2,"config_hash":"f00d"}"#,
            "\n",
            r#"{"kind":"summary","v":5,"iterations":3,"total_ns":100}"#,
            "\n",
        );
        let b = concat!(
            r#"{"kind":"meta","v":5,"schema":5,"git_commit":"bbb","threads":8,"config_hash":"f00d"}"#,
            "\n",
            r#"{"kind":"summary","v":5,"iterations":3,"total_ns":999}"#,
            "\n",
        );
        let (md, drift) = render_diff(("a.jsonl", a), ("b.jsonl", b)).unwrap();
        assert!(!drift, "{md}");
        assert!(md.contains("| git_commit | aaa | bbb |"), "{md}");
    }

    #[test]
    fn bench_snapshots_diff_as_delta_table_and_never_drift() {
        let a = r#"{"campaign_speedup_t1":2.0,"only_a":1.0}"#;
        let b = r#"{"campaign_speedup_t1":2.5,"only_b":3.0}"#;
        let (md, drift) = render_diff(("x.json", a), ("y.json", b)).unwrap();
        assert!(!drift);
        assert!(
            md.contains("| `campaign_speedup_t1` | 2 | 2.5 | +25.0% |"),
            "{md}"
        );
        assert!(md.contains("Keys only in a: `only_a`."), "{md}");
        assert!(md.contains("Keys only in b: `only_b`."), "{md}");
    }

    #[test]
    fn mixed_inputs_are_rejected() {
        let j = r#"{"kind":"summary","v":5}"#;
        let bench = r#"{"x":1.0}"#;
        assert!(render_diff(("a.jsonl", j), ("b.json", bench)).is_err());
    }

    #[test]
    fn pre_v5_journals_match_on_fallback_keys() {
        let a = r#"{"kind":"autopsy","v":3,"fault":0,"structure":"irf","outcome":"sdc","mechanism":"signature","site":"register","site_detail":"rax"}"#;
        let b = r#"{"kind":"autopsy","v":3,"fault":0,"structure":"irf","outcome":"sdc","mechanism":"signature","site":"register","site_detail":"rax"}"#;
        let (md, drift) = render_diff(("a.jsonl", a), ("b.jsonl", b)).unwrap();
        assert!(!drift, "{md}");
        assert!(md.contains("Matched 1 fault key(s)"), "{md}");
    }
}
