/root/repo/target/debug/deps/harpocrates-726b7be842c8bccd.d: src/lib.rs

/root/repo/target/debug/deps/harpocrates-726b7be842c8bccd: src/lib.rs

src/lib.rs:
