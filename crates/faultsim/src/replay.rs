//! Faulty functional replay.
//!
//! Replays a program with a [`CorruptionPlan`] applied through the
//! execution hooks: planned register reads and loads observe the flipped
//! bit, corruption then propagates *naturally* through the program's own
//! dataflow (including into addresses — which is how wild-pointer
//! **Crash** outcomes arise). The final output signature against the
//! golden run decides **SDC** vs **Masked** (software masking: the
//! corrupted value may still be logically dead).

use crate::checkpoint::{drive, ReplayStats, RunEnd};
use crate::outcome::FaultOutcome;
use crate::plan::CorruptionPlan;
use harpo_isa::exec::{ExecHooks, Machine};
use harpo_isa::fu::NativeFu;
use harpo_isa::mem::{MemImage, Memory};
use harpo_isa::program::Program;
use harpo_isa::reg::Gpr;
use harpo_isa::state::Signature;
use harpo_isa::trail::GoldenTrail;

/// Reusable scratch state for faulty replays. A campaign worker replays
/// thousands of faults against the same program; recycling the machine's
/// memory image between replays turns the per-replay memory build into a
/// clear-and-refill of one long-lived buffer instead of a fresh
/// allocation (see DESIGN.md, "Performance architecture"). Checkpointed
/// replays additionally recycle the golden-cursor memory and the
/// divergence-frontier scratch of [`crate::checkpoint`].
#[derive(Debug, Default)]
pub struct ReplayCtx {
    mem: Option<Memory>,
    /// Initial-memory template keyed by the image that built it: the
    /// first replay materialises the image once, and every later replay
    /// of the same program memcpy-clones the template into the recycled
    /// buffer instead of re-running the fill ([`Memory::copy_from`]).
    template: Option<(MemImage, Memory)>,
    pub(crate) cursor: Option<Memory>,
    pub(crate) dirty: Vec<(u64, u8)>,
}

impl ReplayCtx {
    /// An empty context; the buffers are allocated by the first replay.
    pub fn new() -> ReplayCtx {
        ReplayCtx::default()
    }

    /// An initialized memory image for the next replay of a program
    /// whose memory image is `img` — bit-identical to `img.build()`.
    pub(crate) fn mem_for(&mut self, img: &MemImage) -> Memory {
        if self.template.as_ref().is_none_or(|(i, _)| i != img) {
            self.template = Some((img.clone(), img.build()));
        }
        let t = &self.template.as_ref().expect("template just built").1;
        match self.mem.take() {
            Some(mut m) => {
                m.copy_from(t);
                m
            }
            None => t.clone(),
        }
    }

    /// Parks a spent machine's memory for the next replay.
    pub(crate) fn park_mem(&mut self, mem: Memory) {
        self.mem = Some(mem);
    }
}

/// Hooks that apply a corruption plan during replay.
#[derive(Debug)]
pub struct PlanHooks<'a> {
    plan: &'a CorruptionPlan,
}

impl<'a> PlanHooks<'a> {
    /// Wraps a plan for replay.
    pub fn new(plan: &'a CorruptionPlan) -> PlanHooks<'a> {
        PlanHooks { plan }
    }
}

impl ExecHooks for PlanHooks<'_> {
    fn on_xmm_read(&mut self, dyn_idx: u64, reg: harpo_isa::reg::Xmm, val: [u64; 2]) -> [u64; 2] {
        let mut v = val;
        let start = self.plan.xmm_flips.partition_point(|f| f.dyn_idx < dyn_idx);
        for f in &self.plan.xmm_flips[start..] {
            if f.dyn_idx != dyn_idx {
                break;
            }
            if f.arch == reg {
                v[(f.bit / 64) as usize] ^= 1u64 << (f.bit % 64);
            }
        }
        v
    }

    fn on_gpr_read(&mut self, dyn_idx: u64, reg: Gpr, val: u64) -> u64 {
        let mut v = val;
        // Plans are short (often a handful of entries); a linear probe of
        // the dyn-ordered list via binary search keeps this cheap.
        let start = self.plan.reg_flips.partition_point(|f| f.dyn_idx < dyn_idx);
        for f in &self.plan.reg_flips[start..] {
            if f.dyn_idx != dyn_idx {
                break;
            }
            if f.arch == reg {
                match f.kind {
                    crate::plan::CorruptKind::Flip => v ^= 1u64 << f.bit,
                    crate::plan::CorruptKind::Stuck(true) => v |= 1u64 << f.bit,
                    crate::plan::CorruptKind::Stuck(false) => v &= !(1u64 << f.bit),
                }
            }
        }
        v
    }

    fn on_load(&mut self, dyn_idx: u64, addr: u64, size: u8, val: u64) -> u64 {
        let mut v = val;
        let start = self
            .plan
            .load_flips
            .partition_point(|f| f.dyn_idx < dyn_idx);
        for f in &self.plan.load_flips[start..] {
            if f.dyn_idx != dyn_idx {
                break;
            }
            if f.addr >= addr && f.addr < addr + size as u64 {
                let bitpos = (f.addr - addr) * 8 + f.bit as u64;
                v ^= 1u64 << bitpos;
            }
        }
        v
    }
}

/// Replays `prog` under `plan` and grades the outcome against the golden
/// signature.
pub fn replay_with_plan(
    prog: &Program,
    plan: &CorruptionPlan,
    golden: &Signature,
    cap: u64,
) -> FaultOutcome {
    replay_with_plan_counted(prog, plan, golden, cap).0
}

/// [`replay_with_plan`] variant that also reports the dynamic
/// instructions the faulty run executed — the unit of replay cost that
/// campaign telemetry aggregates.
pub fn replay_with_plan_counted(
    prog: &Program,
    plan: &CorruptionPlan,
    golden: &Signature,
    cap: u64,
) -> (FaultOutcome, u64) {
    replay_with_plan_counted_ctx(prog, plan, golden, cap, &mut ReplayCtx::new())
}

/// [`replay_with_plan_counted`] variant that recycles the machine's
/// memory buffer through `ctx` across replays. Outcomes are identical to
/// the context-free path.
pub fn replay_with_plan_counted_ctx(
    prog: &Program,
    plan: &CorruptionPlan,
    golden: &Signature,
    cap: u64,
    ctx: &mut ReplayCtx,
) -> (FaultOutcome, u64) {
    let (outcome, stats) = replay_with_plan_bounded(prog, plan, golden, cap, None, ctx);
    (outcome, stats.executed_insts)
}

/// Checkpointed [`replay_with_plan_counted_ctx`]: with a trail, the
/// replay seeks to the checkpoint before the plan's earliest flip
/// (plans are dyn-indexed, so the prefix is golden by construction) and
/// early-exits Masked once it reconverges past the last flip. With
/// `trail == None` this *is* the full replay; outcomes are bit-identical
/// either way.
pub fn replay_with_plan_bounded(
    prog: &Program,
    plan: &CorruptionPlan,
    golden: &Signature,
    cap: u64,
    trail: Option<&GoldenTrail>,
    ctx: &mut ReplayCtx,
) -> (FaultOutcome, ReplayStats) {
    let mut stats = ReplayStats::default();
    let mut m =
        Machine::with_hooks_premade(prog, NativeFu, PlanHooks::new(plan), ctx.mem_for(&prog.mem));
    let end = drive(
        &mut m,
        trail,
        cap,
        plan.first_flip_dyn(),
        plan.quiesce_dyn(),
        &mut ctx.cursor,
        &mut ctx.dirty,
        &mut stats,
        |_| {},
    );
    let outcome = match end {
        RunEnd::Trapped => FaultOutcome::Crash,
        RunEnd::Reconverged => FaultOutcome::Masked,
        RunEnd::Halted => {
            let out = m.output();
            let mut state = out.state;
            let mut dirty = false;
            if let Some((addr, bit)) = plan.end_corruption {
                // Residual cache/memory corruption: the checker reading
                // back through the cache observes it.
                dirty |= m.mem_mut().flip_bit(addr, bit).is_ok();
            }
            if let Some((reg, bit)) = plan.end_reg_corruption {
                // Residual register-file corruption: the checker hashes
                // the final architectural registers.
                state.set_gpr(reg, state.gpr(reg) ^ (1u64 << bit));
                dirty = true;
            }
            if let Some((reg, bit)) = plan.end_xmm_corruption {
                let mut v = state.xmm(reg);
                v[(bit / 64) as usize] ^= 1u64 << (bit % 64);
                state.set_xmm(reg, v);
                dirty = true;
            }
            let signature = if dirty {
                harpo_isa::state::Signature::capture(&state, m.mem())
            } else {
                out.signature
            };
            if signature == *golden {
                FaultOutcome::Masked
            } else {
                FaultOutcome::Sdc
            }
        }
    };
    ctx.park_mem(m.into_memory());
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{LoadFlip, RegFlip};
    use harpo_isa::asm::Asm;
    use harpo_isa::mem::DATA_BASE;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;

    fn golden(p: &Program) -> Signature {
        Machine::new(p, NativeFu).run(1_000_000).unwrap().signature
    }

    #[test]
    fn empty_plan_is_bit_identical() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 123);
        a.imul_rr(B64, Rax, Rax);
        a.halt();
        let p = a.finish().unwrap();
        let g = golden(&p);
        let out = replay_with_plan(&p, &CorruptionPlan::default(), &g, 1_000_000);
        assert_eq!(out, FaultOutcome::Masked);
    }

    #[test]
    fn reg_flip_becomes_sdc() {
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 100);
        a.add_rr(B64, Rbx, Rax); // dyn 1 reads rax
        a.halt();
        let p = a.finish().unwrap();
        let g = golden(&p);
        let plan = CorruptionPlan {
            reg_flips: vec![RegFlip {
                dyn_idx: 1,
                arch: Rax,
                bit: 2,
                kind: crate::plan::CorruptKind::Flip,
            }],
            xmm_flips: vec![],
            load_flips: vec![],
            end_corruption: None,
            end_reg_corruption: None,
            end_xmm_corruption: None,
        };
        assert_eq!(replay_with_plan(&p, &plan, &g, 1000), FaultOutcome::Sdc);
    }

    #[test]
    fn software_masked_flip() {
        // The corrupted bit is ANDed away before reaching any output.
        let mut a = Asm::new("t");
        a.mov_ri(B64, Rax, 0b1111);
        a.mov_rr(B64, Rbx, Rax); // dyn 1 reads rax (flip bit 6 here)
        a.op_ri(harpo_isa::form::Mnemonic::And, B64, Rbx, 0b1111); // kills bit 6
        a.mov_ri(B64, Rax, 0); // overwrite rax so the flip leaves no trace
        a.halt();
        let p = a.finish().unwrap();
        let g = golden(&p);
        let plan = CorruptionPlan {
            reg_flips: vec![RegFlip {
                dyn_idx: 1,
                arch: Rax,
                bit: 6,
                kind: crate::plan::CorruptKind::Flip,
            }],
            xmm_flips: vec![],
            load_flips: vec![],
            end_corruption: None,
            end_reg_corruption: None,
            end_xmm_corruption: None,
        };
        assert_eq!(replay_with_plan(&p, &plan, &g, 1000), FaultOutcome::Masked);
    }

    #[test]
    fn corrupted_address_crashes() {
        // Flip a high bit of the base register read by a load.
        let mut a = Asm::new("t");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.load(B64, Rax, Rsi, 0); // dyn 0 reads rsi as base
        a.halt();
        let p = a.finish().unwrap();
        let g = golden(&p);
        let plan = CorruptionPlan {
            reg_flips: vec![RegFlip {
                dyn_idx: 0,
                arch: Rsi,
                bit: 40,
                kind: crate::plan::CorruptKind::Flip,
            }],
            xmm_flips: vec![],
            load_flips: vec![],
            end_corruption: None,
            end_reg_corruption: None,
            end_xmm_corruption: None,
        };
        assert_eq!(replay_with_plan(&p, &plan, &g, 1000), FaultOutcome::Crash);
    }

    #[test]
    fn load_flip_becomes_sdc() {
        let mut a = Asm::new("t");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rax, 0x55);
        a.store(B64, Rsi, 0, Rax); // dyn 1
        a.load(B64, Rbx, Rsi, 0); // dyn 2
        a.halt();
        let p = a.finish().unwrap();
        let g = golden(&p);
        let plan = CorruptionPlan {
            reg_flips: vec![],
            load_flips: vec![LoadFlip {
                dyn_idx: 2,
                addr: DATA_BASE + 2,
                bit: 1,
            }],
            xmm_flips: vec![],
            end_corruption: None,
            end_reg_corruption: None,
            end_xmm_corruption: None,
        };
        assert_eq!(replay_with_plan(&p, &plan, &g, 1000), FaultOutcome::Sdc);
    }

    /// A ~400-dyn-inst loop whose per-iteration scratch (`rdx` and the
    /// store slot) is overwritten every iteration, so a transient flip
    /// of one copy reconverges within a few instructions.
    fn loop_prog() -> Program {
        let mut a = Asm::new("ckloop");
        a.reg_init.gprs[Rsi.index()] = DATA_BASE;
        a.mov_ri(B64, Rcx, 100);
        a.label("l");
        a.mov_rr(B64, Rdx, Rcx); // dyn 1+4i reads rcx
        a.store(B64, Rsi, 0, Rdx); // dyn 2+4i
        a.sub_ri(B64, Rcx, 1); // dyn 3+4i reads rcx
        a.jnz("l"); // dyn 4+4i
        a.halt();
        a.finish().unwrap()
    }

    fn flip_rcx_at(dyn_idx: u64) -> CorruptionPlan {
        CorruptionPlan {
            reg_flips: vec![RegFlip {
                dyn_idx,
                arch: Rcx,
                bit: 2,
                kind: crate::plan::CorruptKind::Flip,
            }],
            xmm_flips: vec![],
            load_flips: vec![],
            end_corruption: None,
            end_reg_corruption: None,
            end_xmm_corruption: None,
        }
    }

    #[test]
    fn checkpointed_masked_replay_early_exits_bit_identically() {
        let p = loop_prog();
        let g = golden(&p);
        let trail = GoldenTrail::record(&p, 1_000_000, 32).unwrap();
        // Transient flip of the `mov rdx, rcx` read in iteration 10:
        // the corrupt copy is dead two instructions later and the store
        // slot is rewritten next iteration — software-masked.
        let plan = flip_rcx_at(1 + 4 * 10);
        let mut ctx = ReplayCtx::new();
        let (full_o, full_s) = replay_with_plan_bounded(&p, &plan, &g, 1_000_000, None, &mut ctx);
        let (ck_o, ck_s) =
            replay_with_plan_bounded(&p, &plan, &g, 1_000_000, Some(&trail), &mut ctx);
        assert_eq!(full_o, FaultOutcome::Masked);
        assert_eq!(ck_o, full_o);
        assert!(!full_s.checkpoint_hit && !full_s.early_exit);
        assert_eq!(full_s.skipped_insts, 0);
        assert!(ck_s.checkpoint_hit, "flip at dyn 41 seeks past dyn 32");
        assert!(ck_s.early_exit, "reconverges long before halt");
        assert!(ck_s.executed_insts < full_s.executed_insts);
        // Executed + skipped partitions exactly the golden run length.
        assert_eq!(
            ck_s.executed_insts + ck_s.skipped_insts,
            full_s.executed_insts
        );
    }

    #[test]
    fn checkpointed_sdc_replay_matches_full_replay() {
        // Accumulator loop: the trip count feeds the live sum in rbx,
        // so corrupting the count is architecturally visible.
        let mut a = Asm::new("cksum");
        a.mov_ri(B64, Rcx, 100);
        a.label("l");
        a.add_rr(B64, Rbx, Rcx); // dyn 1+3i
        a.sub_ri(B64, Rcx, 1); // dyn 2+3i reads rcx
        a.jnz("l"); // dyn 3+3i
        a.halt();
        let p = a.finish().unwrap();
        let g = golden(&p);
        let trail = GoldenTrail::record(&p, 1_000_000, 32).unwrap();
        // Flip the `sub rcx, 1` read in iteration 20: every later
        // partial sum differs — the run never reconverges.
        let plan = flip_rcx_at(2 + 3 * 20);
        let mut ctx = ReplayCtx::new();
        let (full_o, _) = replay_with_plan_bounded(&p, &plan, &g, 1_000_000, None, &mut ctx);
        let (ck_o, ck_s) =
            replay_with_plan_bounded(&p, &plan, &g, 1_000_000, Some(&trail), &mut ctx);
        assert_ne!(full_o, FaultOutcome::Masked, "trip-count flip is visible");
        assert_eq!(ck_o, full_o);
        assert!(ck_s.checkpoint_hit);
        assert!(!ck_s.early_exit, "a diverged run must reach its own end");
    }

    #[test]
    fn end_corruption_plan_seeks_to_final_checkpoint() {
        let p = loop_prog();
        let g = golden(&p);
        let trail = GoldenTrail::record(&p, 1_000_000, 32).unwrap();
        // A flip that only matters at checker time (residual memory
        // corruption): the replay itself is golden, so the checkpointed
        // path seeks straight to the final snapshot and executes nothing.
        let plan = CorruptionPlan {
            reg_flips: vec![],
            xmm_flips: vec![],
            load_flips: vec![],
            end_corruption: Some((DATA_BASE, 3)),
            end_reg_corruption: None,
            end_xmm_corruption: None,
        };
        let mut ctx = ReplayCtx::new();
        let (full_o, full_s) = replay_with_plan_bounded(&p, &plan, &g, 1_000_000, None, &mut ctx);
        let (ck_o, ck_s) =
            replay_with_plan_bounded(&p, &plan, &g, 1_000_000, Some(&trail), &mut ctx);
        assert_eq!(full_o, FaultOutcome::Sdc, "residual bit reaches checker");
        assert_eq!(ck_o, full_o);
        assert_eq!(ck_s.executed_insts, 0, "nothing left to execute");
        assert_eq!(ck_s.skipped_insts, full_s.executed_insts);
    }
}
