//! Cross-run journal reading: an offline parse/index of one journal
//! plus the stable per-fault identity ([`FaultKey`]) that lets two
//! runs' outcome records be matched fault-for-fault.
//!
//! The live side of telemetry (sinks, streaming) is write-only; this
//! module is the read side that `harpo diff`, `harpo archive` and any
//! future shard-journal merger build on. Parsing follows the same
//! contract as `harpo report`: empty lines are skipped, a torn final
//! line is tolerated (a live journal may end mid-record), interior
//! corruption is an error, and journals written by a *newer* schema are
//! refused instead of mis-parsed.

use crate::json::{self, Value};
use crate::record::SCHEMA_VERSION;

/// The stable identity of one injected fault, usable across runs,
/// machines and shards.
///
/// Four coordinates pin a fault down completely:
///
/// * `structure` — the fault target ("IRF", "XRF", "L1D", or a
///   functional-unit name for gate faults);
/// * `program` — the 128-bit program fingerprint (32 hex digits),
///   covering instructions, register init and memory image but not the
///   program's name or provenance;
/// * `site` — the structure-local site/time coordinate, e.g.
///   `p12.b7.c3041` (physical register 12, bit 7, cycle 3041) or
///   `g211.sa1` (gate 211 stuck-at-1);
/// * `model` — the fault model ("transient" or "stuck-at").
///
/// Two campaigns with the same config sample the same faults (sampling
/// is seeded), so equal keys mean *the same physical experiment* — the
/// precondition for outcome-transition analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultKey {
    /// Fault target structure.
    pub structure: String,
    /// Program fingerprint, 32 lowercase hex digits.
    pub program: String,
    /// Structure-local site/time coordinate.
    pub site: String,
    /// Fault model.
    pub model: String,
}

impl FaultKey {
    /// Builds a key from its four coordinates.
    pub fn new(structure: &str, program: &str, site: &str, model: &str) -> FaultKey {
        FaultKey {
            structure: structure.to_string(),
            program: program.to_string(),
            site: site.to_string(),
            model: model.to_string(),
        }
    }

    /// Renders the canonical `structure/program/site/model` form that
    /// is stamped into `autopsy` records.
    pub fn render(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.structure, self.program, self.site, self.model
        )
    }

    /// Parses the canonical rendered form; `None` unless the string has
    /// exactly four non-empty `/`-separated components.
    pub fn parse(s: &str) -> Option<FaultKey> {
        let parts: Vec<&str> = s.split('/').collect();
        match parts[..] {
            [structure, program, site, model]
                if !structure.is_empty()
                    && !program.is_empty()
                    && !site.is_empty()
                    && !model.is_empty() =>
            {
                Some(FaultKey::new(structure, program, site, model))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.structure, self.program, self.site, self.model
        )
    }
}

/// A parsed journal: every record as a [`Value`], in file order, with
/// kind-based indexing helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// The path the journal was read from (used in error context only).
    pub path: String,
    /// Every parsed record, in file order.
    pub records: Vec<Value>,
}

impl Journal {
    /// Parses a journal's text.
    ///
    /// # Errors
    /// Interior corruption (an unparseable non-final line) and journals
    /// written by a schema newer than this build reads. The message
    /// carries `path:line` context.
    pub fn parse(path: &str, text: &str) -> Result<Journal, String> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut records = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            let rec = match json::parse(line) {
                Ok(v) => v,
                // Torn final line: a live writer may be mid-record.
                Err(_) if i + 1 == lines.len() => break,
                Err(e) => return Err(format!("{path}:{}: bad journal line: {e}", i + 1)),
            };
            let v = rec.get("v").and_then(Value::as_u64).unwrap_or(1);
            if v > SCHEMA_VERSION {
                return Err(format!(
                    "{path}:{}: journal schema v{v} is newer than this build reads (v{SCHEMA_VERSION})",
                    i + 1
                ));
            }
            records.push(rec);
        }
        Ok(Journal {
            path: path.to_string(),
            records,
        })
    }

    /// All records of one kind, in file order.
    pub fn of_kind(&self, kind: &str) -> Vec<&Value> {
        self.records
            .iter()
            .filter(|r| r.get("kind").and_then(Value::as_str) == Some(kind))
            .collect()
    }

    /// The `meta` header record, if the journal carries one (first
    /// wins; a journal restarted in place may append several).
    pub fn meta(&self) -> Option<&Value> {
        self.of_kind("meta").into_iter().next()
    }

    /// Per-fault outcome index: one `(key, autopsy record)` pair per
    /// `autopsy` record, in file order.
    ///
    /// v5 journals carry the stamped [`FaultKey`] in the record's
    /// `key` field; for older journals the fallback identity
    /// `structure#fault_index` is synthesised so pre-v5 runs remain
    /// diffable against each other (fault sampling is seeded, so the
    /// index is stable for a fixed config).
    pub fn outcomes(&self) -> Vec<(String, &Value)> {
        self.of_kind("autopsy")
            .into_iter()
            .map(|rec| {
                let key = match rec.get("key").and_then(Value::as_str) {
                    Some(k) if !k.is_empty() => k.to_string(),
                    _ => {
                        let structure = rec.get("structure").and_then(Value::as_str).unwrap_or("?");
                        let fault = rec.get("fault").and_then(Value::as_u64).unwrap_or(0);
                        format!("{structure}#{fault}")
                    }
                };
                (key, rec)
            })
            .collect()
    }

    /// The last `counters` snapshot in the journal (summary and
    /// campaign records both carry one), if any.
    pub fn counters(&self) -> Option<&Value> {
        self.records.iter().rev().find_map(|r| r.get("counters"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_key_round_trips() {
        let k = FaultKey::new("IRF", "00ab", "p3.b7.c41", "transient");
        assert_eq!(k.render(), "IRF/00ab/p3.b7.c41/transient");
        assert_eq!(FaultKey::parse(&k.render()), Some(k.clone()));
        assert_eq!(format!("{k}"), k.render());
    }

    #[test]
    fn fault_key_rejects_malformed() {
        for bad in ["", "a/b/c", "a/b/c/d/e", "a//c/d", "IRF/x/y/"] {
            assert!(FaultKey::parse(bad).is_none(), "`{bad}`");
        }
    }

    #[test]
    fn journal_parses_and_indexes() {
        let text = "\
{\"kind\":\"meta\",\"v\":5,\"schema\":5,\"git_commit\":\"abc\",\"threads\":2,\"config_hash\":\"f00d\"}\n\
\n\
{\"kind\":\"autopsy\",\"v\":5,\"fault\":0,\"structure\":\"IRF\",\"outcome\":\"sdc\",\"key\":\"IRF/00/p1.b2.c3/transient\"}\n\
{\"kind\":\"autopsy\",\"v\":5,\"fault\":1,\"structure\":\"IRF\",\"outcome\":\"masked\"}\n\
{\"kind\":\"summary\",\"v\":5,\"iterations\":3,\"counters\":{\"x\":1}}\n";
        let j = Journal::parse("t.jsonl", text).unwrap();
        assert_eq!(j.records.len(), 4);
        assert_eq!(j.of_kind("autopsy").len(), 2);
        assert_eq!(
            j.meta().unwrap().get("git_commit").unwrap().as_str(),
            Some("abc")
        );
        let outcomes = j.outcomes();
        assert_eq!(outcomes[0].0, "IRF/00/p1.b2.c3/transient");
        // Pre-v5 records (no key) fall back to structure#index.
        assert_eq!(outcomes[1].0, "IRF#1");
        assert_eq!(j.counters().unwrap().get("x").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn journal_tolerates_torn_final_line_only() {
        let torn = "{\"kind\":\"summary\",\"v\":5}\n{\"kind\":\"prog";
        assert_eq!(Journal::parse("t", torn).unwrap().records.len(), 1);
        let interior = "{\"kind\":\"prog\n{\"kind\":\"summary\",\"v\":5}\n";
        let err = Journal::parse("t.jsonl", interior).unwrap_err();
        assert!(err.contains("t.jsonl:1"), "{err}");
    }

    #[test]
    fn journal_rejects_newer_schema() {
        let future = format!("{{\"kind\":\"summary\",\"v\":{}}}\n", SCHEMA_VERSION + 1);
        let err = Journal::parse("f.jsonl", &future).unwrap_err();
        assert!(err.contains("newer than this build reads"), "{err}");
    }
}
