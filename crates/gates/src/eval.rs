//! 64-lane bit-parallel netlist evaluation with stuck-at fault injection.
//!
//! Every wire value is a `u64` whose bit *l* is the wire's logic value in
//! *lane l*. All 64 lanes share the same primary inputs (broadcast), but
//! each lane can carry a **different stuck-at fault** — so one topological
//! pass through the netlist grades 64 fault scenarios simultaneously.
//! This is the packed screening engine the fault injector uses to find
//! which gate faults *activate* (produce an output differing from the
//! fault-free lane) for a given operand pair.
//!
//! Unlike the fault-free [`crate::compiled::CompiledNet`], this
//! evaluator must keep **every** gate alive — any gate may carry a fault
//! in any lane — so it cannot fold or eliminate anything. It still
//! avoids per-gate dispatch: [`Evaluator::new`] levelizes the netlist
//! once into run-length `(level, opcode)` batches over pre-resolved
//! input slots, so the hot loop dispatches once per batch.

use crate::netlist::{GateOp, Netlist, WireId};

/// A set of stuck-at faults, each applied to a mask of lanes.
#[derive(Debug, Clone, Default)]
pub struct FaultSet {
    /// `(gate index, lane mask, stuck-at-one)` entries.
    entries: Vec<(u32, u64, bool)>,
}

impl FaultSet {
    /// The empty (fault-free) set.
    pub fn none() -> FaultSet {
        FaultSet::default()
    }

    /// A single fault applied to **all** lanes (used for single-fault
    /// replay, where only lane 0 is read back): one masked entry, not
    /// 64 per-lane entries.
    pub fn single(gate: u32, stuck_one: bool) -> FaultSet {
        FaultSet {
            entries: vec![(gate, u64::MAX, stuck_one)],
        }
    }

    /// Adds a fault on one lane.
    pub fn add(&mut self, gate: u32, lane: u8, stuck_one: bool) {
        assert!(lane < 64, "lane out of range");
        self.entries.push((gate, 1u64 << lane, stuck_one));
    }

    /// Builds a set grading up to 64 faults, fault `i` in lane `i`.
    pub fn lanes(faults: &[(u32, bool)]) -> FaultSet {
        assert!(faults.len() <= 64, "at most 64 faults per packed pass");
        let mut s = FaultSet::default();
        for (i, &(g, s1)) in faults.iter().enumerate() {
            s.add(g, i as u8, s1);
        }
        s
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Reusable evaluation scratch state for one netlist.
///
/// Keep one `Evaluator` per thread per circuit: the schedule is built
/// once in [`Evaluator::new`] and the buffers are reused across calls,
/// keeping the hot path allocation-free.
#[derive(Debug)]
pub struct Evaluator {
    /// Wire values, indexed by *slot* (schedule position), not wire id.
    values: Vec<u64>,
    /// Per-gate force masks (original gate index), rebuilt sparsely.
    force0: Vec<u64>,
    force1: Vec<u64>,
    touched: Vec<u32>,
    n_inputs: usize,
    wire_count: usize,
    /// Run-length `(opcode, count)` batches over the schedule.
    batches: Vec<(GateOp, u32)>,
    /// Pre-resolved input slots per scheduled gate: `[a, b, sel]`.
    args: Vec<[u32; 3]>,
    /// Original gate index per scheduled gate (for the force masks).
    src_gate: Vec<u32>,
    /// Original wire id → slot (for readback).
    slot_of: Vec<u32>,
}

impl Evaluator {
    /// Creates an evaluator for `net`, levelizing it into opcode
    /// batches.
    pub fn new(net: &Netlist) -> Evaluator {
        let n_in = net.input_count();
        let n_gates = net.gate_count();
        let wire_count = net.wire_count();
        // Logic level per wire: constants and inputs are level 0, a gate
        // is one past its deepest input. Gates at equal level are
        // independent, so sorting by (level, opcode) keeps topological
        // order while maximizing same-opcode runs.
        let mut level = vec![0u32; wire_count];
        let mut max_level = 0u32;
        for (g, gate) in net.gates().iter().enumerate() {
            let mut l = level[gate.a.index()].max(level[gate.b.index()]);
            if gate.op == GateOp::Mux {
                l = l.max(level[gate.sel.index()]);
            }
            level[2 + n_in + g] = l + 1;
            max_level = max_level.max(l + 1);
        }
        const OPS: usize = 8;
        let rank = |op: GateOp| op as usize;
        let key_of = |g: usize| level[2 + n_in + g] as usize * OPS + rank(net.gates()[g].op);
        let n_keys = (max_level as usize + 1) * OPS;
        let mut counts = vec![0u32; n_keys + 1];
        for g in 0..n_gates {
            counts[key_of(g) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut order = vec![0u32; n_gates];
        for g in 0..n_gates {
            let slot = &mut counts[key_of(g)];
            order[*slot as usize] = g as u32;
            *slot += 1;
        }
        // Slot assignment: constants, inputs, then gates in schedule
        // order (level-sorted, so producers precede consumers).
        let mut slot_of = vec![u32::MAX; wire_count];
        for (w, s) in slot_of.iter_mut().enumerate().take(2 + n_in) {
            *s = w as u32;
        }
        for (pos, &g) in order.iter().enumerate() {
            slot_of[2 + n_in + g as usize] = (2 + n_in + pos) as u32;
        }
        let mut args = Vec::with_capacity(n_gates);
        let mut batches: Vec<(GateOp, u32)> = Vec::new();
        for &g in &order {
            let gate = &net.gates()[g as usize];
            args.push([
                slot_of[gate.a.index()],
                slot_of[gate.b.index()],
                slot_of[gate.sel.index()],
            ]);
            match batches.last_mut() {
                Some((last, len)) if *last == gate.op => *len += 1,
                _ => batches.push((gate.op, 1)),
            }
        }
        Evaluator {
            values: vec![0; wire_count],
            force0: vec![0; n_gates],
            force1: vec![0; n_gates],
            touched: Vec::new(),
            n_inputs: n_in,
            wire_count,
            batches,
            args,
            src_gate: order,
            slot_of,
        }
    }

    /// Evaluates `net` with the given per-input broadcast bits and fault
    /// set. Input `i` of the netlist takes bit `i`'s value from the
    /// caller-provided closure.
    ///
    /// # Panics
    /// Panics if the evaluator was created for a different netlist shape.
    pub fn run(&mut self, net: &Netlist, input_bit: impl Fn(usize) -> bool, faults: &FaultSet) {
        assert_eq!(
            self.wire_count,
            net.wire_count(),
            "evaluator/netlist mismatch"
        );
        // Clear previous fault masks sparsely.
        for &g in &self.touched {
            self.force0[g as usize] = 0;
            self.force1[g as usize] = 0;
        }
        self.touched.clear();
        for &(g, mask, stuck_one) in &faults.entries {
            let gi = g as usize;
            assert!(gi < self.src_gate.len(), "fault on nonexistent gate");
            if self.force0[gi] == 0 && self.force1[gi] == 0 {
                self.touched.push(g);
            }
            if stuck_one {
                self.force1[gi] |= mask;
            } else {
                self.force0[gi] |= mask;
            }
        }

        self.values[0] = 0;
        self.values[1] = u64::MAX;
        let n_in = self.n_inputs;
        for i in 0..n_in {
            self.values[2 + i] = if input_bit(i) { u64::MAX } else { 0 };
        }
        let v = &mut self.values;
        let mut k = 2 + n_in;
        let mut i = 0usize;
        for &(op, len) in &self.batches {
            let end = i + len as usize;
            macro_rules! batch {
                (|$a:ident, $b:ident, $s:ident| $body:expr) => {
                    for j in i..end {
                        let [$a, $b, $s] = self.args[j];
                        let _ = ($b, $s);
                        let g = self.src_gate[j] as usize;
                        let val: u64 = $body;
                        v[k] = (val | self.force1[g]) & !self.force0[g];
                        k += 1;
                    }
                };
            }
            match op {
                GateOp::And => batch!(|a, b, s| v[a as usize] & v[b as usize]),
                GateOp::Or => batch!(|a, b, s| v[a as usize] | v[b as usize]),
                GateOp::Xor => batch!(|a, b, s| v[a as usize] ^ v[b as usize]),
                GateOp::Nand => batch!(|a, b, s| !(v[a as usize] & v[b as usize])),
                GateOp::Nor => batch!(|a, b, s| !(v[a as usize] | v[b as usize])),
                GateOp::Xnor => batch!(|a, b, s| !(v[a as usize] ^ v[b as usize])),
                GateOp::Not => batch!(|a, b, s| !v[a as usize]),
                GateOp::Mux => batch!(|a, b, s| {
                    let sv = v[s as usize];
                    (v[a as usize] & sv) | (v[b as usize] & !sv)
                }),
            }
            i = end;
        }
    }

    /// Logic value of `wire` in `lane` after [`Evaluator::run`].
    #[inline]
    pub fn wire(&self, wire: WireId, lane: u8) -> bool {
        self.values[self.slot_of[wire.index()] as usize] >> lane & 1 == 1
    }

    /// Collects a bus (LSB-first wire list) into an integer for `lane`.
    pub fn bus(&self, wires: &[WireId], lane: u8) -> u64 {
        assert!(wires.len() <= 64);
        let mut v = 0u64;
        for (i, w) in wires.iter().enumerate() {
            v |= (self.values[self.slot_of[w.index()] as usize] >> lane & 1) << i;
        }
        v
    }

    /// Collects a bus across **all** lanes at once (transpose), writing
    /// one value per lane into `out`.
    pub fn bus_all_lanes(&self, wires: &[WireId], out: &mut [u64; 64]) {
        out.fill(0);
        for (i, w) in wires.iter().enumerate() {
            let col = self.values[self.slot_of[w.index()] as usize];
            // Scatter column bit l into out[l] bit i.
            let mut rest = col;
            while rest != 0 {
                let l = rest.trailing_zeros() as usize;
                out[l] |= 1 << i;
                rest &= rest - 1;
            }
        }
    }
}

/// Convenience helpers to feed integer operands into input buses.
pub fn bit_of(v: u64, i: usize) -> bool {
    v >> i & 1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    /// A 2-bit adder built by hand: out = a + b (3 bits).
    fn tiny_adder() -> Netlist {
        let mut b = NetlistBuilder::new("tiny-add");
        let a0 = b.input();
        let a1 = b.input();
        let b0 = b.input();
        let b1 = b.input();
        let s0 = b.xor(a0, b0);
        let c0 = b.and(a0, b0);
        let x1 = b.xor(a1, b1);
        let s1 = b.xor(x1, c0);
        let c1a = b.and(a1, b1);
        let c1b = b.and(x1, c0);
        let c1 = b.or(c1a, c1b);
        b.finish(vec![s0, s1, c1])
    }

    #[test]
    fn adder_truth_table() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        for a in 0u64..4 {
            for bb in 0u64..4 {
                ev.run(
                    &net,
                    |i| match i {
                        0 => bit_of(a, 0),
                        1 => bit_of(a, 1),
                        2 => bit_of(bb, 0),
                        _ => bit_of(bb, 1),
                    },
                    &FaultSet::none(),
                );
                assert_eq!(ev.bus(net.outputs(), 0), a + bb, "{a}+{bb}");
            }
        }
    }

    #[test]
    fn per_lane_faults_are_independent() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        // Fault gate 0 (s0 xor) stuck-at-1 in lane 3 only; a=b=0 so the
        // fault forces sum bit 0 to 1 in lane 3.
        let mut fs = FaultSet::none();
        fs.add(0, 3, true);
        ev.run(&net, |_| false, &fs);
        assert_eq!(ev.bus(net.outputs(), 0), 0, "lane 0 fault-free");
        assert_eq!(ev.bus(net.outputs(), 3), 1, "lane 3 faulted");
        for lane in [1u8, 2, 4, 63] {
            assert_eq!(ev.bus(net.outputs(), lane), 0);
        }
    }

    #[test]
    fn stuck_at_zero_masks_ones() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        // a=1, b=0 → s0 = 1; stuck-at-0 on gate 0 flattens it in lane 5.
        let mut fs = FaultSet::none();
        fs.add(0, 5, false);
        ev.run(&net, |i| i == 0, &fs);
        assert_eq!(ev.bus(net.outputs(), 0), 1);
        assert_eq!(ev.bus(net.outputs(), 5), 0);
    }

    #[test]
    fn fault_masks_reset_between_runs() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        let mut fs = FaultSet::none();
        fs.add(0, 0, true);
        ev.run(&net, |_| false, &fs);
        assert_eq!(ev.bus(net.outputs(), 0), 1);
        ev.run(&net, |_| false, &FaultSet::none());
        assert_eq!(ev.bus(net.outputs(), 0), 0, "stale fault leaked");
    }

    #[test]
    fn single_is_one_broadcast_entry() {
        // The broadcast constructor must behave identically to a fault
        // added on every lane, without building 64 entries.
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        let single = FaultSet::single(0, true);
        assert_eq!(single.entries.len(), 1);
        ev.run(&net, |_| false, &single);
        let broadcast: Vec<u64> = (0..64).map(|l| ev.bus(net.outputs(), l)).collect();
        let mut per_lane = FaultSet::none();
        for l in 0..64 {
            per_lane.add(0, l, true);
        }
        ev.run(&net, |_| false, &per_lane);
        for (l, &want) in broadcast.iter().enumerate() {
            assert_eq!(ev.bus(net.outputs(), l as u8), want, "lane {l}");
        }
    }

    #[test]
    fn bus_all_lanes_transposes() {
        let net = tiny_adder();
        let mut ev = Evaluator::new(&net);
        let fs = FaultSet::lanes(&[(0, true), (1, true)]);
        ev.run(&net, |_| false, &fs);
        let mut out = [0u64; 64];
        ev.bus_all_lanes(net.outputs(), &mut out);
        for lane in 0..64u8 {
            assert_eq!(
                out[lane as usize],
                ev.bus(net.outputs(), lane),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn fault_set_lanes_builder() {
        let fs = FaultSet::lanes(&[(3, true), (7, false)]);
        assert!(!fs.is_empty());
        assert!(FaultSet::none().is_empty());
    }
}
