/root/repo/target/debug/deps/compiled_equiv-0fd905aed8f4cae9.d: crates/gates/tests/compiled_equiv.rs Cargo.toml

/root/repo/target/debug/deps/libcompiled_equiv-0fd905aed8f4cae9.rmeta: crates/gates/tests/compiled_equiv.rs Cargo.toml

crates/gates/tests/compiled_equiv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
