/root/repo/target/debug/deps/ablation_mutation-eaf5aa514bd3406e.d: crates/bench/src/bin/ablation_mutation.rs

/root/repo/target/debug/deps/ablation_mutation-eaf5aa514bd3406e: crates/bench/src/bin/ablation_mutation.rs

crates/bench/src/bin/ablation_mutation.rs:
