/root/repo/target/debug/deps/rcr_differential-56324cfc431c7f2f.d: tests/rcr_differential.rs Cargo.toml

/root/repo/target/debug/deps/librcr_differential-56324cfc431c7f2f.rmeta: tests/rcr_differential.rs Cargo.toml

tests/rcr_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
