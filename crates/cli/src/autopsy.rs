//! `harpo autopsy` — per-fault forensics for a stored program.
//!
//! Runs a forensics-enabled SFI campaign and emits, besides the usual
//! `campaign` record, one `autopsy` record per injected fault and one
//! `heatmap` record per structure (per-bit outcome histogram with the
//! ACE-residency overlay from `harpo-coverage`). The records are
//! schema-v3 journal lines, so `harpo report` renders them offline and
//! `--trace` exports the campaign as a Chrome/Perfetto trace.

use crate::args::Args;
use crate::commands::{emit_meta, load, telemetry_of, SWITCHES};
use harpo_coverage::{ace_overlay_of, TargetStructure};
use harpo_faultsim::{
    build_campaign_trail, heatmaps_of, measure_detection_forensic, CampaignConfig, CampaignResult,
    FaultAutopsy, Mechanism, StructureHeatmap,
};
use harpo_isa::program::Program;
use harpo_telemetry::{json, trace_from_journal, Metrics, Record, Value};
use harpo_uarch::OooCore;

/// The fixed mechanism order used by every breakdown (deterministic
/// tables regardless of input order).
pub const MECHANISMS: [Mechanism; 6] = [
    Mechanism::Overwrite,
    Mechanism::Logical,
    Mechanism::Reconverged,
    Mechanism::Corrected,
    Mechanism::Signature,
    Mechanism::Trap,
];

/// Runs the forensic campaign and renders its full journal record
/// stream: `campaign`, then one `autopsy` per fault, then one `heatmap`
/// per structure. Pure given the config (seeded sampling, fixed thread
/// assignment), so two invocations emit byte-identical JSONL.
pub fn forensic_records(
    prog: &Program,
    structure: TargetStructure,
    ccfg: &CampaignConfig,
) -> Result<(CampaignResult, Vec<FaultAutopsy>, Vec<Record>), String> {
    let mut ccfg = ccfg.clone();
    ccfg.forensics = true;
    let core = OooCore::default();
    let sim = core
        .simulate(prog, ccfg.cap)
        .map_err(|t| format!("golden run trapped: {t}"))?;
    let coverage = structure.coverage(&sim.trace, core.config());
    let trail = build_campaign_trail(prog, &ccfg);
    let (result, autopsies) = measure_detection_forensic(
        prog,
        structure,
        &core,
        &ccfg,
        &sim.output.signature,
        &sim.trace,
        trail.as_ref(),
    );
    let mut records = Vec::with_capacity(autopsies.len() + 2);
    let metrics = Metrics::new();
    result.publish(&metrics);
    records.push(
        Record::new("campaign")
            .field("program", prog.name.clone())
            .field("structure", structure.label())
            .field("coverage", coverage)
            .field("faults", result.injected)
            .field("detection", result.detection())
            .field("sdc", result.sdc)
            .field("crash", result.crash)
            .field("masked", result.masked)
            .field("masked_fast_path", result.masked_fast_path)
            .field("replays", result.replays)
            .field("replay_insts", result.replay_insts)
            .field("replay_insts_skipped", result.replay_insts_skipped)
            .field("checkpoint_hits", result.checkpoint_hits)
            .field("early_exits", result.early_exits)
            .field("counters", metrics.to_value()),
    );
    for a in &autopsies {
        records.push(a.to_record());
    }
    for map in heatmaps(structure, &autopsies, &sim.trace, &core) {
        records.push(map.to_record());
    }
    Ok((result, autopsies, records))
}

/// Aggregates the autopsies into per-structure heatmaps and attaches the
/// per-bit ACE residency overlay where the structure has one.
fn heatmaps(
    structure: TargetStructure,
    autopsies: &[FaultAutopsy],
    trace: &harpo_uarch::ExecutionTrace,
    core: &OooCore,
) -> Vec<StructureHeatmap> {
    let mut maps = heatmaps_of(autopsies);
    if let Some(overlay) = ace_overlay_of(structure, trace, core.config()) {
        for map in &mut maps {
            map.set_ace(overlay.clone());
        }
    }
    maps
}

/// Sorted detection latencies of the detected faults.
fn detection_latencies(autopsies: &[FaultAutopsy]) -> Vec<u64> {
    let mut lat: Vec<u64> = autopsies
        .iter()
        .filter(|a| a.outcome.detected())
        .map(|a| a.detection_latency)
        .collect();
    lat.sort_unstable();
    lat
}

/// Integer nearest-rank percentile over a sorted slice.
fn pct(sorted: &[u64], num: u64, den: u64) -> u64 {
    sorted[((sorted.len() - 1) as u64 * num / den) as usize]
}

/// `harpo autopsy` entry point.
pub fn autopsy(argv: &[String]) -> Result<(), String> {
    let args = Args::parse_with_switches(argv, SWITCHES)?;
    let structure = args.structure()?;
    let path = args
        .positional
        .first()
        .ok_or("autopsy needs a <test.hxpf> argument")?;
    let telemetry = telemetry_of(&args)?;
    let prog = load(path)?;
    let ccfg = CampaignConfig {
        n_faults: args.num("faults", 128)?,
        seed: args.num("seed", CampaignConfig::default().seed)?,
        threads: args.num("threads", 0)?,
        ..CampaignConfig::default()
    };
    emit_meta(
        &telemetry,
        ccfg.threads,
        &format!("autopsy {structure} {ccfg:?}"),
    );
    let (result, autopsies, records) = forensic_records(&prog, structure, &ccfg)?;
    for r in &records {
        telemetry.emit(|| r.clone());
    }
    telemetry.flush();

    if let Some(out) = args.get("heatmap") {
        let maps: Vec<Value> = records
            .iter()
            .filter(|r| r.kind == "heatmap")
            .map(|r| json::parse(&r.to_json()).expect("heatmap record is valid JSON"))
            .collect();
        std::fs::write(out, Value::Arr(maps).to_json()).map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }
    if let Some(out) = args.get("trace") {
        let values: Vec<Value> = records
            .iter()
            .map(|r| json::parse(&r.to_json()).expect("record is valid JSON"))
            .collect();
        std::fs::write(out, trace_from_journal(&values).to_json())
            .map_err(|e| format!("{out}: {e}"))?;
        println!("wrote {out}");
    }

    if !args.has("quiet") {
        println!("program `{}` vs {structure}: {result}", prog.name);
        println!("  masking mechanisms:");
        for m in MECHANISMS {
            let n = autopsies.iter().filter(|a| a.mechanism == m).count();
            if n > 0 {
                println!("    {:<12} {n:>6}", m.label());
            }
        }
        let lat = detection_latencies(&autopsies);
        if !lat.is_empty() {
            println!(
                "  detection latency: p50 {} / p90 {} / p99 {} insts ({} detected)",
                pct(&lat, 50, 100),
                pct(&lat, 90, 100),
                pct(&lat, 99, 100),
                lat.len()
            );
        }
        for map in heatmaps_of(&autopsies) {
            let blind = map.never_detected();
            if blind.is_empty() {
                continue;
            }
            println!("  never-detected bits ({}):", map.structure);
            for (bit, faults) in blind.iter().take(5) {
                println!("    bit {bit:<4} {faults} fault(s), 0 detected");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(pct(&sorted, 50, 100), 50);
        assert_eq!(pct(&sorted, 99, 100), 99);
        assert_eq!(pct(&[7], 90, 100), 7);
    }

    #[test]
    fn mechanism_order_is_total() {
        assert_eq!(MECHANISMS.len(), 6);
        let labels: Vec<&str> = MECHANISMS.iter().map(|m| m.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }
}
