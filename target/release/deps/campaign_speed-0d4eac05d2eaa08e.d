/root/repo/target/release/deps/campaign_speed-0d4eac05d2eaa08e.d: crates/bench/src/bin/campaign_speed.rs

/root/repo/target/release/deps/campaign_speed-0d4eac05d2eaa08e: crates/bench/src/bin/campaign_speed.rs

crates/bench/src/bin/campaign_speed.rs:
