//! The Input Bit Ratio (IBR) metric (paper §II-D, footnote 5).
//!
//! For functional units, ACE lifetime analysis does not apply; IBR is the
//! fast toggle-count-like proxy instead: the number of *effective* input
//! bits presented to a unit over the program, divided by the theoretical
//! maximum (`input width × total cycles`). Effective bits of an operand
//! are its significant bits (`64 − leading-zeros`); a unit used rarely or
//! fed narrow operands scores low. IBR correlates with (but does not
//! bound) permanent-fault detection capability.

use harpo_isa::form::FuKind;
use harpo_uarch::ExecutionTrace;
use serde::{Deserialize, Serialize};

/// Result of an IBR computation for one unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IbrReport {
    /// Effective input bits accumulated over the run.
    pub effective_bits: u64,
    /// `input width × cycles` budget.
    pub max_bits: u64,
    /// Number of unit passes observed.
    pub passes: u64,
}

impl IbrReport {
    /// IBR in [0, 1].
    pub fn ratio(&self) -> f64 {
        if self.max_bits == 0 {
            0.0
        } else {
            (self.effective_bits as f64 / self.max_bits as f64).min(1.0)
        }
    }
}

/// Per-pass input width of each graded unit.
///
/// # Panics
/// Panics for non-graded kinds (loads, branches, ...), which have no IBR.
pub fn input_width(kind: FuKind) -> u32 {
    match kind {
        // 64 + 64 + carry-in.
        FuKind::IntAdd => 129,
        // Two 32-bit operands.
        FuKind::IntMul => 64,
        // Two single-precision operands.
        FuKind::FpAdd | FuKind::FpMul => 64,
        other => panic!("no IBR for non-graded unit {:?}", other),
    }
}

#[inline]
fn sig_bits(v: u64) -> u64 {
    64 - v.leading_zeros() as u64
}

/// Computes the IBR of `kind` over a trace.
pub fn ibr(trace: &ExecutionTrace, kind: FuKind) -> IbrReport {
    let mut eff = 0u64;
    let mut passes = 0u64;
    for op in trace.fu_ops_of(kind) {
        passes += 1;
        eff += sig_bits(op.a) + sig_bits(op.b) + (kind == FuKind::IntAdd && op.cin) as u64;
    }
    IbrReport {
        effective_bits: eff,
        max_bits: input_width(kind) as u64 * trace.stats.cycles,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::asm::Asm;
    use harpo_isa::reg::Gpr::*;
    use harpo_isa::reg::Width::*;
    use harpo_uarch::OooCore;

    fn run(a: Asm) -> ExecutionTrace {
        let p = a.finish().unwrap();
        OooCore::default().simulate(&p, 10_000_000).unwrap().trace
    }

    #[test]
    fn mul_heavy_beats_mul_free() {
        let mut a = Asm::new("mulheavy");
        a.mov_ri64(Rax, 0xFFFF_FFFF_FFFF_FFFF);
        a.mov_ri64(Rbx, 0x1234_5678_9ABC_DEF0);
        for _ in 0..50 {
            a.imul_rr(B64, Rcx, Rax);
            a.imul_rr(B64, Rdx, Rbx);
        }
        a.halt();
        let heavy = ibr(&run(a), harpo_isa::form::FuKind::IntMul);

        let mut a = Asm::new("mulfree");
        for _ in 0..100 {
            a.add_ri(B64, Rax, 1);
        }
        a.halt();
        let free = ibr(&run(a), harpo_isa::form::FuKind::IntMul);
        assert!(heavy.ratio() > 0.0);
        assert_eq!(free.passes, 0);
        assert_eq!(free.ratio(), 0.0);
        assert!(heavy.ratio() > free.ratio());
    }

    #[test]
    fn wide_operands_beat_narrow() {
        let mut a = Asm::new("wide");
        a.mov_ri64(Rax, u64::MAX);
        for _ in 0..100 {
            a.add_rr(B64, Rbx, Rax);
        }
        a.halt();
        let wide = ibr(&run(a), harpo_isa::form::FuKind::IntAdd);

        let mut a = Asm::new("narrow");
        a.mov_ri(B64, Rax, 1);
        for _ in 0..100 {
            a.add_rr(B8, Rbx, Rax);
        }
        a.halt();
        let narrow = ibr(&run(a), harpo_isa::form::FuKind::IntAdd);
        assert!(
            wide.ratio() > narrow.ratio() * 2.0,
            "wide {:.4} vs narrow {:.4}",
            wide.ratio(),
            narrow.ratio()
        );
    }

    #[test]
    fn ratio_is_bounded() {
        let mut a = Asm::new("b");
        a.mov_ri64(Rax, u64::MAX);
        a.mov_ri64(Rbx, u64::MAX);
        for _ in 0..64 {
            a.add_rr(B64, Rcx, Rax);
            a.add_rr(B64, Rdx, Rbx);
        }
        a.halt();
        let r = ibr(&run(a), harpo_isa::form::FuKind::IntAdd);
        assert!((0.0..=1.0).contains(&r.ratio()));
        assert!(r.passes >= 128);
    }

    #[test]
    #[should_panic(expected = "no IBR")]
    fn non_graded_unit_panics() {
        input_width(harpo_isa::form::FuKind::Load);
    }
}
