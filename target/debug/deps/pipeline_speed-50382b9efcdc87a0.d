/root/repo/target/debug/deps/pipeline_speed-50382b9efcdc87a0.d: crates/bench/src/bin/pipeline_speed.rs

/root/repo/target/debug/deps/pipeline_speed-50382b9efcdc87a0: crates/bench/src/bin/pipeline_speed.rs

crates/bench/src/bin/pipeline_speed.rs:
