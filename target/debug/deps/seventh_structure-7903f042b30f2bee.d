/root/repo/target/debug/deps/seventh_structure-7903f042b30f2bee.d: crates/bench/src/bin/seventh_structure.rs

/root/repo/target/debug/deps/seventh_structure-7903f042b30f2bee: crates/bench/src/bin/seventh_structure.rs

crates/bench/src/bin/seventh_structure.rs:
