/root/repo/target/release/deps/fig04_arrays-93828b0a5b4ab74c.d: crates/bench/src/bin/fig04_arrays.rs

/root/repo/target/release/deps/fig04_arrays-93828b0a5b4ab74c: crates/bench/src/bin/fig04_arrays.rs

crates/bench/src/bin/fig04_arrays.rs:
