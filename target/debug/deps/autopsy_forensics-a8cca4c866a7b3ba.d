/root/repo/target/debug/deps/autopsy_forensics-a8cca4c866a7b3ba.d: crates/faultsim/tests/autopsy_forensics.rs

/root/repo/target/debug/deps/autopsy_forensics-a8cca4c866a7b3ba: crates/faultsim/tests/autopsy_forensics.rs

crates/faultsim/tests/autopsy_forensics.rs:
