/root/repo/target/debug/deps/report_snapshot-9bf13535ef051aff.d: crates/cli/tests/report_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libreport_snapshot-9bf13535ef051aff.rmeta: crates/cli/tests/report_snapshot.rs Cargo.toml

crates/cli/tests/report_snapshot.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
