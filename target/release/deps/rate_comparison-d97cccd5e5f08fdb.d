/root/repo/target/release/deps/rate_comparison-d97cccd5e5f08fdb.d: crates/bench/src/bin/rate_comparison.rs

/root/repo/target/release/deps/rate_comparison-d97cccd5e5f08fdb: crates/bench/src/bin/rate_comparison.rs

crates/bench/src/bin/rate_comparison.rs:
