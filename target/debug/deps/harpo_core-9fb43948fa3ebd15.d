/root/repo/target/debug/deps/harpo_core-9fb43948fa3ebd15.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/debug/deps/libharpo_core-9fb43948fa3ebd15.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/evaluator.rs:
crates/core/src/memo.rs:
crates/core/src/presets.rs:
