/root/repo/target/debug/examples/fleetscanner-568a87cbf58b9b02.d: examples/fleetscanner.rs Cargo.toml

/root/repo/target/debug/examples/libfleetscanner-568a87cbf58b9b02.rmeta: examples/fleetscanner.rs Cargo.toml

examples/fleetscanner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
