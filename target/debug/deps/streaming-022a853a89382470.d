/root/repo/target/debug/deps/streaming-022a853a89382470.d: crates/faultsim/tests/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming-022a853a89382470.rmeta: crates/faultsim/tests/streaming.rs Cargo.toml

crates/faultsim/tests/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
