#![warn(missing_docs)]

//! # harpo-gates — gate-level functional-unit models
//!
//! Gate-level netlists for the four *graded* functional units of the
//! Harpocrates evaluation (integer adder, integer multiplier, SSE FP adder
//! and multiplier), with stuck-at fault injection at gate outputs. This is
//! the substrate that replaces the paper's EDA-tool gate-level models and
//! GeFIN's gate-level extension (§II-C, §III-C).
//!
//! Highlights:
//!
//! * circuits are built from two-input gates in topological order
//!   ([`netlist`]);
//! * the [`eval::Evaluator`] is 64-lane bit-parallel: one pass through a
//!   netlist grades **64 distinct stuck-at faults**, the trick that makes
//!   statistical gate-fault campaigns tractable;
//! * the fault-free netlists are **bit-exact** against the native
//!   semantics in `harpo_isa` (`NativeFu` / `softfp`), so golden runs can
//!   use fast host arithmetic while faulty replays drop into the circuits
//!   only on the defective unit ([`provider::FaultyFu`]).
//!
//! ```
//! use harpo_gates::adder::int_adder;
//! use harpo_gates::eval::{Evaluator, FaultSet};
//!
//! let adder = int_adder();
//! let mut ev = Evaluator::new(adder.netlist());
//! let (sum, carry) = adder.eval(&mut ev, u64::MAX, 1, false, &FaultSet::none());
//! assert_eq!((sum, carry), (0, true));
//! ```

pub mod adder;
pub mod compiled;
pub mod components;
pub mod eval;
pub mod fp_common;
pub mod fpadd;
pub mod fpmul;
pub mod multiplier;
pub mod netlist;
pub mod provider;

pub use adder::{faulty_add_word, int_adder, AdderCircuit, AdderScreenWords, WORD_KERNEL_OPS};
pub use compiled::{CompiledExec, CompiledNet};
pub use eval::{Evaluator, FaultSet};
pub use fpadd::{fp_adder, FpAddCircuit};
pub use fpmul::{fp_multiplier, FpMulCircuit};
pub use multiplier::{int_multiplier, MulCircuit};
pub use netlist::{Gate, GateOp, Netlist, NetlistBuilder, WireId};
pub use provider::{
    screen_activation, screen_activation_masks, FaultyFu, FuStats, GateFault, GradedUnit,
    NetlistFu, UnitEvaluators,
};
