/root/repo/target/debug/deps/detection_speed-3d69b7a3f78f25bb.d: crates/bench/src/bin/detection_speed.rs

/root/repo/target/debug/deps/detection_speed-3d69b7a3f78f25bb: crates/bench/src/bin/detection_speed.rs

crates/bench/src/bin/detection_speed.rs:
