/root/repo/target/debug/deps/harpo_bench-9df841d3fa2ae7bc.d: crates/bench/src/lib.rs crates/bench/src/diff.rs

/root/repo/target/debug/deps/libharpo_bench-9df841d3fa2ae7bc.rmeta: crates/bench/src/lib.rs crates/bench/src/diff.rs

crates/bench/src/lib.rs:
crates/bench/src/diff.rs:
