//! End-to-end integration tests of the complete Harpocrates pipeline:
//! generation → microarchitectural evaluation → selection → mutation →
//! SFI grading, across crates.

use harpocrates::core::{Evaluator, Harpocrates, LoopConfig};
use harpocrates::coverage::TargetStructure;
use harpocrates::faultsim::{measure_detection, CampaignConfig};
use harpocrates::museqgen::{GenConstraints, Generator};
use harpocrates::uarch::OooCore;

fn small_loop(
    structure: TargetStructure,
    n_insts: usize,
    iters: usize,
) -> harpocrates::core::RunReport {
    let h = Harpocrates::new(
        Generator::new(GenConstraints {
            n_insts,
            ..GenConstraints::default()
        }),
        Evaluator::new(OooCore::default(), structure),
        LoopConfig {
            population: 10,
            top_k: 3,
            iterations: iters,
            sample_every: iters.max(1),
            seed: 0xE2E,
            threads: 0,
        },
    );
    h.run()
}

#[test]
fn loop_improves_every_structure() {
    for structure in TargetStructure::ALL {
        let report = small_loop(structure, 300, 10);
        let initial = report.samples.first().unwrap().top_coverages[0];
        assert!(
            report.champion_coverage >= initial,
            "{structure}: champion {:.4} below initial {:.4}",
            report.champion_coverage,
            initial
        );
        assert!(report.champion_coverage > 0.0, "{structure}: zero coverage");
    }
}

#[test]
fn coverage_gain_translates_to_detection_gain() {
    // The paper's crux claim (§VI-B): refining for coverage raises SFI
    // detection. Compare a random program with a refined champion.
    let structure = TargetStructure::IntMultiplier;
    let core = OooCore::default();
    let ccfg = CampaignConfig {
        n_faults: 96,
        threads: 0,
        ..CampaignConfig::default()
    };
    let gen = Generator::new(GenConstraints {
        n_insts: 400,
        ..GenConstraints::default()
    });
    let random = gen.generate(0xAB);
    let random_det = measure_detection(&random, structure, &core, &ccfg)
        .unwrap()
        .detection();

    let report = small_loop(structure, 400, 16);
    let champ_det = measure_detection(&report.champion, structure, &core, &ccfg)
        .unwrap()
        .detection();
    assert!(
        champ_det > random_det,
        "refined {champ_det:.3} must beat random {random_det:.3}"
    );
}

#[test]
fn champion_is_a_valid_deterministic_program() {
    use harpocrates::isa::exec::Machine;
    use harpocrates::isa::fu::NativeFu;
    let report = small_loop(TargetStructure::IntAdder, 500, 8);
    let p = &report.champion;
    let a = Machine::new(p, NativeFu).run(10_000_000).expect("runs");
    let b = Machine::new(p, NativeFu).run(10_000_000).expect("runs");
    assert_eq!(a.signature, b.signature, "champion must stay deterministic");
    // And its encoding round-trips (a deployable artefact).
    let bytes = p.encode();
    let decoded = harpocrates::isa::decode_stream(&bytes).expect("decodes");
    assert_eq!(decoded, p.insts);
}
