/root/repo/target/release/deps/fig06_fpfu-228d839c02fb3532.d: crates/bench/src/bin/fig06_fpfu.rs

/root/repo/target/release/deps/fig06_fpfu-228d839c02fb3532: crates/bench/src/bin/fig06_fpfu.rs

crates/bench/src/bin/fig06_fpfu.rs:
