/root/repo/target/debug/deps/harpo_coverage-fd36cc15db9c98f7.d: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/debug/deps/libharpo_coverage-fd36cc15db9c98f7.rlib: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/debug/deps/libharpo_coverage-fd36cc15db9c98f7.rmeta: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

crates/coverage/src/lib.rs:
crates/coverage/src/ace.rs:
crates/coverage/src/ibr.rs:
crates/coverage/src/liveness.rs:
crates/coverage/src/objective.rs:
