//! `harpo watch` — live follower for an actively-written run journal.
//!
//! Tails a JSONL journal (schema v4) while a campaign or refinement run
//! is writing it and renders a single-screen live view: phase, progress
//! bar, ETA, per-outcome fault counts, per-worker heartbeats, stall
//! alerts and the resume cursor. Std-only, like the rest of the CLI:
//! the follower keeps one open file handle, reads whatever bytes have
//! been appended since the last poll, and only ever consumes complete
//! lines — a torn final line (the writer mid-`write`) simply waits in
//! the buffer for the next poll.
//!
//! `--once` renders a single snapshot and exits (scriptable);
//! `--json` emits the snapshot as one JSON object per poll instead of
//! the ANSI screen, for piping into other tools.

use crate::args::Args;
use harpo_telemetry::json::{self, Value};
use harpo_telemetry::SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Read as _;

/// `harpo watch` entry point.
pub fn watch(argv: &[String]) -> Result<(), String> {
    let args = Args::parse_with_switches(argv, &["once", "json"])?;
    let path = args
        .positional
        .first()
        .ok_or("watch needs a <run.jsonl> argument")?;
    let interval_ms: u64 = args.num("interval-ms", 500)?;
    let once = args.has("once");
    let json_mode = args.has("json");

    let mut follower = Follower::new(path);
    let mut state = WatchState::default();
    loop {
        for line in follower.poll() {
            state.ingest(&line)?;
        }
        if json_mode {
            println!("{}", state.to_json().to_json());
        } else {
            // Redraw in place on live polls; plain print for --once.
            if !once {
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", state.render(path));
        }
        if once || state.finished {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

/// Incremental reader over a journal that another process is appending
/// to. Tolerates the file not existing yet (the writer may not have
/// created it), mid-record EOF and torn final lines: only complete
/// (newline-terminated) lines are ever handed out, and partial bytes
/// wait in the buffer for the writer's next flush. Truncation and
/// rotation are detected by size: if the file shrinks below the bytes
/// already consumed (a fresh run re-created the journal, or a rotator
/// swapped it), the follower resets to offset zero and re-syncs from
/// the new content instead of silently waiting at a stale offset.
pub struct Follower {
    path: String,
    file: Option<File>,
    tail: Vec<u8>,
    /// Bytes consumed from the current file, i.e. the open handle's
    /// offset. Compared against the on-disk size each poll to detect
    /// truncation.
    consumed: u64,
}

impl Follower {
    /// A follower positioned at the start of `path`.
    pub fn new(path: &str) -> Follower {
        Follower {
            path: path.to_string(),
            file: None,
            tail: Vec::new(),
            consumed: 0,
        }
    }

    /// Reads everything appended since the last poll and returns the
    /// complete lines. An absent or unreadable file yields nothing.
    pub fn poll(&mut self) -> Vec<String> {
        if self.file.is_some() {
            // Truncation / rotation check: the on-disk file shrinking
            // below our offset (or vanishing) means the writer started
            // over — drop the stale handle, half-line buffer and offset,
            // and re-sync from the top of the new file.
            let on_disk = std::fs::metadata(&self.path).map(|m| m.len());
            if !matches!(on_disk, Ok(len) if len >= self.consumed) {
                self.file = None;
                self.tail.clear();
                self.consumed = 0;
            }
        }
        if self.file.is_none() {
            self.file = File::open(&self.path).ok();
        }
        let Some(f) = self.file.as_mut() else {
            return Vec::new();
        };
        // The handle keeps its offset between polls, so this reads only
        // the newly appended bytes.
        let mut chunk = Vec::new();
        if f.read_to_end(&mut chunk).is_err() {
            return Vec::new();
        }
        self.consumed += chunk.len() as u64;
        self.tail.extend_from_slice(&chunk);
        let mut lines = Vec::new();
        while let Some(nl) = self.tail.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.tail.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if !line.trim().is_empty() {
                lines.push(line);
            }
        }
        lines
    }
}

/// The live view folded from the journal so far. Raw records are kept
/// for the interesting kinds so the JSON snapshot is faithful to what
/// the writer emitted.
#[derive(Default)]
pub struct WatchState {
    /// Records ingested so far.
    pub records: u64,
    /// Complete-but-unparsable lines skipped (interior corruption).
    pub skipped: u64,
    /// Latest `progress` record.
    pub progress: Option<Value>,
    /// Latest `heartbeat` per (source, worker).
    pub workers: BTreeMap<(String, u64), Value>,
    /// Every `stall` record seen, in order.
    pub stalls: Vec<Value>,
    /// The resume `cursor`, if the run was budget-stopped.
    pub cursor: Option<Value>,
    /// Latest `iteration` record (refinement runs).
    pub iteration: Option<Value>,
    /// Latest `profile` record per (source, thread) — cumulative
    /// snapshots, so the last one supersedes the rest (schema v6).
    pub profiles: BTreeMap<(String, u64), Value>,
    /// A terminal record (`summary` / `campaign`) has been seen.
    pub finished: bool,
}

fn u(v: Option<&Value>) -> u64 {
    v.and_then(Value::as_u64).unwrap_or(0)
}

fn f(v: Option<&Value>) -> f64 {
    v.and_then(Value::as_f64).unwrap_or(0.0)
}

fn s<'a>(v: Option<&'a Value>, default: &'a str) -> &'a str {
    v.and_then(Value::as_str).unwrap_or(default)
}

impl WatchState {
    /// Folds one complete journal line into the view. An unparsable
    /// line is counted and skipped (a crashed writer can leave interior
    /// corruption); a record from a *newer* schema than this build
    /// reads is a hard error, same contract as `harpo report`.
    pub fn ingest(&mut self, line: &str) -> Result<(), String> {
        let Ok(v) = json::parse(line) else {
            self.skipped += 1;
            return Ok(());
        };
        let ver = v.get("v").and_then(Value::as_u64).unwrap_or(1);
        if ver > SCHEMA_VERSION {
            return Err(format!(
                "journal schema v{ver} is newer than this build reads (v{SCHEMA_VERSION}); \
                 upgrade harpo to watch it"
            ));
        }
        self.records += 1;
        match v.get("kind").and_then(Value::as_str) {
            Some("progress") => self.progress = Some(v),
            Some("heartbeat") => {
                let key = (s(v.get("source"), "?").to_string(), u(v.get("worker")));
                self.workers.insert(key, v);
            }
            Some("stall") => self.stalls.push(v),
            Some("cursor") => self.cursor = Some(v),
            Some("iteration") => self.iteration = Some(v),
            Some("profile") => {
                let key = (s(v.get("source"), "?").to_string(), u(v.get("thread")));
                self.profiles.insert(key, v);
            }
            Some("summary") | Some("campaign") => self.finished = true,
            _ => {}
        }
        Ok(())
    }

    /// The snapshot as one JSON object (the `--json` output).
    pub fn to_json(&self) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("records".into(), Value::U64(self.records)),
            ("skipped".into(), Value::U64(self.skipped)),
            ("finished".into(), Value::Bool(self.finished)),
        ];
        if let Some(p) = &self.progress {
            fields.push(("progress".into(), p.clone()));
            if let Some(eta) = p.get("eta_ns") {
                fields.push(("eta_ns".into(), eta.clone()));
            }
            fields.push(("done".into(), Value::U64(u(p.get("done")))));
            fields.push(("total".into(), Value::U64(u(p.get("total")))));
        }
        fields.push((
            "workers".into(),
            Value::Arr(self.workers.values().cloned().collect()),
        ));
        fields.push(("stalls".into(), Value::Arr(self.stalls.clone())));
        if let Some(c) = &self.cursor {
            fields.push(("cursor".into(), c.clone()));
        }
        if let Some(i) = &self.iteration {
            fields.push(("iteration".into(), i.clone()));
        }
        if !self.profiles.is_empty() {
            let hottest: Vec<Value> = self
                .profiles
                .iter()
                .filter_map(|((source, thread), p)| {
                    let (stack, self_ns) = harpo_telemetry::hottest_frame(p)?;
                    Some(Value::Obj(vec![
                        ("source".into(), Value::Str(source.clone())),
                        ("thread".into(), Value::U64(*thread)),
                        ("stack".into(), Value::Str(stack)),
                        ("self_ns".into(), Value::U64(self_ns)),
                    ]))
                })
                .collect();
            fields.push(("hottest".into(), Value::Arr(hottest)));
        }
        Value::Obj(fields)
    }

    /// The single-screen human view.
    pub fn render(&self, path: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "harpo watch — {path} ({} records{})",
            self.records,
            if self.skipped > 0 {
                format!(", {} unreadable skipped", self.skipped)
            } else {
                String::new()
            }
        );
        if let Some(p) = &self.progress {
            let source = s(p.get("source"), "?");
            let structure = s(p.get("structure"), "");
            let program = s(p.get("program"), "");
            let mut phase = format!("phase: {source}");
            if !structure.is_empty() {
                let _ = write!(phase, " · {structure}");
            }
            if !program.is_empty() {
                let _ = write!(phase, " · `{program}`");
            }
            let _ = writeln!(out, "{phase}");
            let done = u(p.get("done"));
            let total = u(p.get("total"));
            let _ = writeln!(out, "{}", bar(done, total));
            let mut line = String::new();
            if p.get("units_per_sec").is_some() {
                let _ = write!(line, "rate {:.1}/s", f(p.get("units_per_sec")));
            }
            if let Some(eta) = p.get("eta_ns").and_then(Value::as_u64) {
                let _ = write!(line, "  ETA {}", fmt_secs(eta));
            }
            if !line.is_empty() {
                let _ = writeln!(out, "{line}");
            }
            if p.get("sdc").is_some() {
                let _ = writeln!(
                    out,
                    "outcomes: sdc {} · crash {} · masked {} · corrected {}",
                    u(p.get("sdc")),
                    u(p.get("crash")),
                    u(p.get("masked")),
                    u(p.get("corrected")),
                );
            }
        } else {
            let _ = writeln!(out, "waiting for progress records...");
        }
        if let Some(i) = &self.iteration {
            let _ = writeln!(
                out,
                "round {}: best {:.4} champion {:.4}",
                u(i.get("iter")),
                f(i.get("best")),
                f(i.get("champion")),
            );
        }
        for ((source, thread), p) in &self.profiles {
            if let Some((stack, self_ns)) = harpo_telemetry::hottest_frame(p) {
                let _ = writeln!(
                    out,
                    "hottest: {source}/t{thread} `{stack}` ({:.1} ms self)",
                    self_ns as f64 / 1e6,
                );
            }
        }
        if !self.workers.is_empty() {
            let _ = writeln!(out, "workers:");
            for ((source, w), b) in &self.workers {
                let _ = writeln!(
                    out,
                    "  {source} w{w}  unit {:>6}  done {:>6}  rss {}",
                    u(b.get("last_unit")),
                    u(b.get("units")),
                    fmt_bytes(u(b.get("rss_bytes"))),
                );
            }
        }
        for st in &self.stalls {
            let _ = writeln!(
                out,
                "STALL: worker {} silent {} ms at fault {} ({} · `{}`)",
                u(st.get("worker")),
                u(st.get("silent_ms")),
                u(st.get("fault")),
                s(st.get("structure"), "?"),
                s(st.get("program"), "?"),
            );
        }
        if let Some(c) = &self.cursor {
            let _ = writeln!(
                out,
                "cursor: budget-stopped at {}/{} — resumable",
                u(c.get("completed")),
                u(c.get("total")),
            );
        }
        if self.finished {
            let _ = writeln!(out, "run finished.");
        }
        out
    }
}

/// A fixed-width progress bar: `[#####....]  12/96 (12.5%)`.
fn bar(done: u64, total: u64) -> String {
    const WIDTH: u64 = 24;
    let filled = (done.min(total) * WIDTH).checked_div(total).unwrap_or(0);
    let pct = if total == 0 {
        0.0
    } else {
        done as f64 * 100.0 / total as f64
    };
    format!(
        "[{}{}]  {done}/{total} ({pct:.1}%)",
        "#".repeat(filled as usize),
        ".".repeat((WIDTH - filled) as usize),
    )
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.1}s", ns as f64 / 1e9)
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("harpo-watch-{}-{name}", std::process::id()))
    }

    #[test]
    fn follower_holds_back_torn_lines_until_complete() {
        let path = tmp("torn.jsonl");
        let mut w = std::fs::File::create(&path).unwrap();
        w.write_all(b"{\"kind\":\"progress\",\"v\":4,\"done\":1}\n{\"kind\":\"pro")
            .unwrap();
        w.flush().unwrap();

        let mut fo = Follower::new(path.to_str().unwrap());
        assert_eq!(fo.poll().len(), 1, "only the complete line");
        assert_eq!(fo.poll().len(), 0, "torn tail not re-delivered");

        // The writer finishes the record: the buffered half joins up.
        w.write_all(b"gress\",\"v\":4,\"done\":2}\n").unwrap();
        w.flush().unwrap();
        let lines = fo.poll();
        assert_eq!(lines.len(), 1);
        let v = json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("done").and_then(Value::as_u64), Some(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn follower_tolerates_a_missing_file_then_catches_up() {
        let path = tmp("late.jsonl");
        std::fs::remove_file(&path).ok();
        let mut fo = Follower::new(path.to_str().unwrap());
        assert!(fo.poll().is_empty(), "no file yet");
        std::fs::write(&path, "{\"kind\":\"progress\",\"v\":4}\n").unwrap();
        assert_eq!(fo.poll().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn follower_resets_when_the_journal_is_truncated_or_rotated() {
        let path = tmp("rotate.jsonl");
        // A writer fills the journal; the follower drains it.
        std::fs::write(
            &path,
            "{\"kind\":\"progress\",\"v\":4,\"done\":1}\n{\"kind\":\"progress\",\"v\":4,\"done\":2}\n",
        )
        .unwrap();
        let mut fo = Follower::new(path.to_str().unwrap());
        assert_eq!(fo.poll().len(), 2);

        // A fresh run re-creates the journal *smaller* than the bytes
        // already consumed. The follower must notice the shrink, reset
        // to offset zero and deliver the new run's records — not sit
        // forever waiting at the stale offset.
        std::fs::write(&path, "{\"kind\":\"progress\",\"v\":4,\"done\":9}\n").unwrap();
        let lines = fo.poll();
        assert_eq!(lines.len(), 1, "re-synced after truncation");
        let v = json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("done").and_then(Value::as_u64), Some(9));

        // Deletion mid-watch behaves the same: reset, then catch the
        // next incarnation of the file from its first byte.
        std::fs::remove_file(&path).unwrap();
        assert!(fo.poll().is_empty(), "gone file yields nothing");
        std::fs::write(&path, "{\"kind\":\"progress\",\"v\":4,\"done\":10}\n").unwrap();
        assert_eq!(fo.poll().len(), 1, "caught the recreated journal");

        // A half-line buffered *before* the rotation must not be glued
        // onto the new run's bytes: the reset clears the torn-tail
        // buffer along with the offset.
        let mut w = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        w.write_all(b"{\"kind\":\"progress\",\"v\":4,\"done\":10}\n{\"kind\":\"pro")
            .unwrap();
        drop(w);
        assert_eq!(fo.poll().len(), 1, "torn tail held back, full line through");
        std::fs::write(&path, "{\"kind\":\"pro").unwrap(); // shrunk: new run, also torn
        assert!(fo.poll().is_empty(), "reset, new torn tail buffered");
        let mut w = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        w.write_all(b"gress\",\"v\":4,\"done\":11}\n").unwrap();
        drop(w);
        let lines = fo.poll();
        assert_eq!(lines.len(), 1);
        let v = json::parse(&lines[0]).unwrap();
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some("progress"),
            "pre-rotation half-line did not contaminate the new run: {lines:?}"
        );
        assert_eq!(v.get("done").and_then(Value::as_u64), Some(11));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn state_folds_progress_beats_and_stalls() {
        let mut st = WatchState::default();
        st.ingest(r#"{"kind":"progress","v":4,"source":"campaign","structure":"IRF","program":"t0","done":3,"total":8,"sdc":1,"crash":0,"masked":2,"corrected":0,"eta_ns":5000000000,"units_per_sec":1.5}"#).unwrap();
        st.ingest(r#"{"kind":"heartbeat","v":4,"source":"campaign","worker":0,"last_unit":2,"units":2,"rss_bytes":2097152}"#).unwrap();
        st.ingest(r#"{"kind":"heartbeat","v":4,"source":"campaign","worker":1,"last_unit":3,"units":1,"rss_bytes":2097152}"#).unwrap();
        st.ingest(r#"{"kind":"heartbeat","v":4,"source":"campaign","worker":1,"last_unit":5,"units":2,"rss_bytes":2097152}"#).unwrap();
        st.ingest(r#"{"kind":"stall","v":4,"worker":1,"fault":5,"structure":"IRF","program":"t0","silent_ms":900}"#).unwrap();
        st.ingest("complete garbage line").unwrap();

        assert_eq!(st.records, 5);
        assert_eq!(st.skipped, 1);
        assert_eq!(st.workers.len(), 2, "latest beat per worker");
        assert!(!st.finished);

        let j = st.to_json();
        assert_eq!(j.get("done").and_then(Value::as_u64), Some(3));
        assert_eq!(j.get("total").and_then(Value::as_u64), Some(8));
        assert_eq!(j.get("eta_ns").and_then(Value::as_u64), Some(5_000_000_000));
        assert_eq!(j.get("workers").and_then(Value::as_arr).unwrap().len(), 2);
        assert_eq!(j.get("stalls").and_then(Value::as_arr).unwrap().len(), 1);

        let screen = st.render("run.jsonl");
        assert!(screen.contains("3/8 (37.5%)"), "{screen}");
        assert!(screen.contains("ETA 5.0s"), "{screen}");
        assert!(screen.contains("STALL: worker 1 silent 900 ms at fault 5"));
        assert!(screen.contains("campaign w1"));

        st.ingest(r#"{"kind":"campaign","v":4,"detection":0.5}"#)
            .unwrap();
        assert!(st.finished);
    }

    #[test]
    fn hottest_span_shows_when_profiling_is_on() {
        let mut st = WatchState::default();
        // An interim snapshot, then the cumulative one that supersedes it.
        st.ingest(r#"{"kind":"profile","v":6,"source":"refine","thread":0,"frames":[{"stack":"refine;mutation","count":1,"total_ns":5000000,"self_ns":5000000,"max_ns":5000000,"p99_ns":5000000}]}"#).unwrap();
        st.ingest(r#"{"kind":"profile","v":6,"source":"refine","thread":0,"frames":[{"stack":"refine;mutation","count":2,"total_ns":9000000,"self_ns":9000000,"max_ns":5000000,"p99_ns":5000000},{"stack":"refine;evaluation","count":2,"total_ns":80000000,"self_ns":80000000,"max_ns":41000000,"p99_ns":41000000}]}"#).unwrap();
        assert_eq!(st.profiles.len(), 1, "latest per (source, thread)");
        let screen = st.render("run.jsonl");
        assert!(
            screen.contains("hottest: refine/t0 `refine;evaluation` (80.0 ms self)"),
            "{screen}"
        );
        let j = st.to_json();
        let hottest = j.get("hottest").and_then(Value::as_arr).unwrap();
        assert_eq!(hottest.len(), 1);
        assert_eq!(
            hottest[0].get("stack").and_then(Value::as_str),
            Some("refine;evaluation")
        );
        assert_eq!(
            hottest[0].get("self_ns").and_then(Value::as_u64),
            Some(80_000_000)
        );
    }

    #[test]
    fn newer_schema_is_rejected() {
        let mut st = WatchState::default();
        let line = format!(r#"{{"kind":"progress","v":{}}}"#, SCHEMA_VERSION + 1);
        let err = st.ingest(&line).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn bar_renders_bounds() {
        assert_eq!(bar(0, 0), "[........................]  0/0 (0.0%)");
        assert!(bar(96, 96).starts_with("[########################]"));
        assert!(bar(48, 96).contains("48/96 (50.0%)"));
    }
}
