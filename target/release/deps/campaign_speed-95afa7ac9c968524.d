/root/repo/target/release/deps/campaign_speed-95afa7ac9c968524.d: crates/bench/src/bin/campaign_speed.rs

/root/repo/target/release/deps/campaign_speed-95afa7ac9c968524: crates/bench/src/bin/campaign_speed.rs

crates/bench/src/bin/campaign_speed.rs:
