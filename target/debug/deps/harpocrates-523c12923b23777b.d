/root/repo/target/debug/deps/harpocrates-523c12923b23777b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libharpocrates-523c12923b23777b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
