/root/repo/target/debug/deps/harpo_core-d430341c2d9a1bdd.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/debug/deps/libharpo_core-d430341c2d9a1bdd.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

/root/repo/target/debug/deps/libharpo_core-d430341c2d9a1bdd.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/evaluator.rs crates/core/src/memo.rs crates/core/src/presets.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/evaluator.rs:
crates/core/src/memo.rs:
crates/core/src/presets.rs:
