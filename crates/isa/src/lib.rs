#![warn(missing_docs)]

//! # harpo-isa — the HX86 instruction set architecture
//!
//! HX86 is a synthetic, x86-64-flavoured ISA built for the Harpocrates
//! reproduction. It is the substrate shared by every other crate in the
//! workspace: the program generator emits HX86, the microarchitectural
//! simulator times it, the fault injector replays it, and the baseline
//! frameworks (SiliFuzz-, OpenDCDiag-, MiBench-like) are expressed in it.
//!
//! The ISA deliberately reproduces the x86-64 complexities the paper calls
//! out in §V-B:
//!
//! * **implicit operands** — `MUL`/`DIV` clobber `RAX`/`RDX`, shifts-by-CL
//!   read `RCX`, so a generator that ignores implicit defs corrupts address
//!   base registers exactly as described in the paper;
//! * **multiple widths** — most integer forms exist at 8/16/32/64 bits;
//! * **addressing modes** — base+displacement and RIP-relative;
//! * **stack instructions** — `PUSH`/`POP` can underflow a misconfigured
//!   stack;
//! * **rotate-through-carry** — `RCL`/`RCR` including the rotate-amount ==
//!   register-width corner case that exposed a gem5 emulation bug (§VI-D);
//! * **non-deterministic instructions** — `RDTSC`/`CPUID` decode but are
//!   flagged so generators and fuzz filters can exclude them;
//! * **a dense variable-length byte encoding** with escape pages, so that
//!   byte-level fuzzing (the SiliFuzz baseline) produces a realistic mix of
//!   valid and illegal sequences.
//!
//! The crate also contains the *functional* execution engine
//! ([`exec::Machine`]): architectural state, a bounds-checked flat memory,
//! trap semantics, and pluggable functional-unit providers
//! ([`fu::FuProvider`]) so that gate-level netlists (crate `harpo-gates`)
//! can be substituted for native arithmetic during fault injection.
//!
//! ## Quick example
//!
//! ```
//! use harpo_isa::asm::Asm;
//! use harpo_isa::reg::{Gpr, Width};
//! use harpo_isa::exec::Machine;
//! use harpo_isa::fu::NativeFu;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new("sum-1-to-10");
//! a.mov_ri(Width::B64, Gpr::Rax, 0);
//! a.mov_ri(Width::B64, Gpr::Rcx, 10);
//! a.label("loop");
//! a.add_rr(Width::B64, Gpr::Rax, Gpr::Rcx);
//! a.sub_ri(Width::B64, Gpr::Rcx, 1);
//! a.jnz("loop");
//! a.halt();
//! let prog = a.finish()?;
//!
//! let mut m = Machine::new(&prog, NativeFu::default());
//! let out = m.run(100_000)?;
//! assert_eq!(out.state.gpr(Gpr::Rax), 55);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod container;
pub mod encode;
pub mod exec;
pub mod fingerprint;
pub mod flags;
pub mod form;
pub mod fu;
pub mod hash;
pub mod inst;
pub mod mem;
pub mod program;
pub mod reg;
pub mod semantics;
pub mod softfp;
pub mod state;
pub mod trail;

pub use asm::Asm;
pub use container::{from_container, to_container, ContainerError};
pub use encode::{decode_inst, decode_stream, encode_inst, DecodeError};
pub use exec::{ExecHooks, Machine, NoHooks, RunOutput, StepInfo, Trap};
pub use fingerprint::{fingerprint, Fnv128};
pub use flags::Flags;
pub use form::{Catalog, Cond, Form, FormId, FuKind, Mnemonic, OpMode};
pub use fu::{FuPass, FuProvider, NativeFu};
pub use inst::Inst;
pub use mem::{MemImage, Memory, DATA_BASE};
pub use program::{Program, Provenance, RegInit};
pub use reg::{Gpr, Width, Xmm};
pub use state::ArchState;
pub use trail::{Checkpoint, GoldenTrail, MemDelta};
