/root/repo/target/debug/deps/bench_diff-6b8ad1a1191682f8.d: crates/bench/src/bin/bench_diff.rs Cargo.toml

/root/repo/target/debug/deps/libbench_diff-6b8ad1a1191682f8.rmeta: crates/bench/src/bin/bench_diff.rs Cargo.toml

crates/bench/src/bin/bench_diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
