/root/repo/target/debug/deps/fig06_fpfu-02259b5e06bb8e6a.d: crates/bench/src/bin/fig06_fpfu.rs Cargo.toml

/root/repo/target/debug/deps/libfig06_fpfu-02259b5e06bb8e6a.rmeta: crates/bench/src/bin/fig06_fpfu.rs Cargo.toml

crates/bench/src/bin/fig06_fpfu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
