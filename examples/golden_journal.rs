//! Regenerates the golden journal behind the `harpo report` snapshot
//! test.
//!
//! ```text
//! cargo run --example golden_journal
//! harpo report tests/data/golden_run.jsonl > tests/data/golden_report.md
//! ```
//!
//! Runs a small deterministic refinement loop plus one fault-injection
//! campaign, journalling both into `tests/data/golden_run.jsonl`. The
//! snapshot test (`crates/cli/tests/report_snapshot.rs`) re-renders the
//! *committed* journal and compares byte-for-byte against the committed
//! report, so regenerate both files together — timing fields differ
//! between machines, but rendering is a pure function of the journal.

use harpocrates::core::{Evaluator, Harpocrates, LoopConfig};
use harpocrates::coverage::TargetStructure;
use harpocrates::faultsim::{build_campaign_trail, measure_detection_streamed, CampaignConfig};
use harpocrates::museqgen::{GenConstraints, Generator, MutationOp};
use harpocrates::telemetry::{JsonlSink, Metrics, Profiler, Record, Telemetry};
use harpocrates::uarch::OooCore;
use std::sync::Arc;

fn main() {
    let path = "tests/data/golden_run.jsonl";
    std::fs::create_dir_all("tests/data").expect("create tests/data");
    let sink = JsonlSink::create(path).expect("create journal");
    let telemetry = Telemetry::to(Arc::new(sink));

    let structure = TargetStructure::IntAdder;
    let report = Harpocrates::new(
        Generator::new(GenConstraints {
            n_insts: 300,
            ..GenConstraints::default()
        }),
        Evaluator::new(OooCore::default(), structure),
        LoopConfig {
            population: 8,
            top_k: 2,
            iterations: 8,
            sample_every: 2,
            seed: 0xA11CE,
            threads: 2,
        },
    )
    .with_operators(MutationOp::ALL.to_vec())
    .with_telemetry(telemetry.clone())
    .with_profiler(Profiler::new())
    .run();

    // One SFI campaign on the champion, journalled the same way
    // `harpo grade --profile` does it: the profile flag adds schema-v6
    // `cost` records (per-outcome replay attribution plus netlist
    // compile time) next to the summary record.
    let prog = report.champion;
    let ccfg = CampaignConfig {
        n_faults: 64,
        threads: 2,
        profile: true,
        ..CampaignConfig::default()
    };
    let core = OooCore::default();
    let sim = core.simulate(&prog, ccfg.cap).expect("golden run");
    let coverage = structure.coverage(&sim.trace, core.config());
    let trail = build_campaign_trail(&prog, &ccfg);
    let (result, _) = measure_detection_streamed(
        &prog,
        structure,
        &core,
        &ccfg,
        &sim.output.signature,
        &sim.trace,
        trail.as_ref(),
        &telemetry,
    );
    telemetry.emit(|| {
        let metrics = Metrics::new();
        result.publish(&metrics);
        Record::new("campaign")
            .field("program", prog.name.as_str())
            .field("structure", structure.label())
            .field("coverage", coverage)
            .field("faults", result.injected)
            .field("detection", result.detection())
            .field("sdc", result.sdc)
            .field("crash", result.crash)
            .field("masked", result.masked)
            .field("masked_fast_path", result.masked_fast_path)
            .field("replays", result.replays)
            .field("replay_insts", result.replay_insts)
            .field("replay_insts_skipped", result.replay_insts_skipped)
            .field("checkpoint_hits", result.checkpoint_hits)
            .field("early_exits", result.early_exits)
            .field("counters", metrics.to_value())
    });
    telemetry.flush();
    println!("wrote {path} (champion coverage {:.4})", coverage);
}
