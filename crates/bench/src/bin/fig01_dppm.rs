//! Fig. 1 — reported CPU defective parts per million by hyperscalers.
//!
//! Literature constants, as plotted in the paper's introduction: the
//! point of the figure is the gap between field DPPM and the automotive
//! acceptability threshold.

use harpo_bench::{write_csv, Cli, Harness};

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("fig01_dppm", &cli);
    // (source, DPPM, citation note)
    let rows = [
        (
            "Meta [Dixit et al. 2021]",
            1000.0,
            "hundreds of CPUs per hundreds of thousands of machines",
        ),
        (
            "Google [Hochschild et al. 2021]",
            1000.0,
            "a few mercurial cores per several thousand machines",
        ),
        ("Alibaba [Wang et al. 2023]", 361.0, "3.61 CPUs per 10,000"),
        (
            "automotive threshold [ISO 26262]",
            10.0,
            "safety-critical acceptability",
        ),
    ];
    println!("Fig. 1 — reported CPU DPPM by hyperscalers");
    println!("{:<36} {:>10}  note", "source", "DPPM");
    let mut csv = Vec::new();
    for (src, dppm, note) in rows {
        println!("{src:<36} {dppm:>10.0}  {note}");
        csv.push(format!("{src},{dppm},{note}"));
    }
    write_csv(&cli.out_dir, "fig01_dppm.csv", "source,dppm,note", &csv);
    harness.finish();
}
