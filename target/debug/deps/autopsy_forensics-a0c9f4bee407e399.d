/root/repo/target/debug/deps/autopsy_forensics-a0c9f4bee407e399.d: crates/cli/tests/autopsy_forensics.rs

/root/repo/target/debug/deps/autopsy_forensics-a0c9f4bee407e399: crates/cli/tests/autopsy_forensics.rs

crates/cli/tests/autopsy_forensics.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/cli
