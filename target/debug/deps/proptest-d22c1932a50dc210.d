/root/repo/target/debug/deps/proptest-d22c1932a50dc210.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d22c1932a50dc210.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
