/root/repo/target/debug/deps/fig05_intfu-73b4d77d7c650f04.d: crates/bench/src/bin/fig05_intfu.rs

/root/repo/target/debug/deps/fig05_intfu-73b4d77d7c650f04: crates/bench/src/bin/fig05_intfu.rs

crates/bench/src/bin/fig05_intfu.rs:
