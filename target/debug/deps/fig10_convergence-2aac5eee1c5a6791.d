/root/repo/target/debug/deps/fig10_convergence-2aac5eee1c5a6791.d: crates/bench/src/bin/fig10_convergence.rs

/root/repo/target/debug/deps/fig10_convergence-2aac5eee1c5a6791: crates/bench/src/bin/fig10_convergence.rs

crates/bench/src/bin/fig10_convergence.rs:
