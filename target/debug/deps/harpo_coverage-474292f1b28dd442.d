/root/repo/target/debug/deps/harpo_coverage-474292f1b28dd442.d: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/debug/deps/libharpo_coverage-474292f1b28dd442.rlib: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

/root/repo/target/debug/deps/libharpo_coverage-474292f1b28dd442.rmeta: crates/coverage/src/lib.rs crates/coverage/src/ace.rs crates/coverage/src/ibr.rs crates/coverage/src/liveness.rs crates/coverage/src/objective.rs

crates/coverage/src/lib.rs:
crates/coverage/src/ace.rs:
crates/coverage/src/ibr.rs:
crates/coverage/src/liveness.rs:
crates/coverage/src/objective.rs:
