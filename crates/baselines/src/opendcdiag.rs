//! The OpenDCDiag-like baseline: manually specified checking tests
//! (paper §III-A2).
//!
//! Like the open-source OpenDCDiag suite, these are hand-written
//! algorithms chosen for sensitivity to data corruption — compression,
//! cryptography, matrix multiplication, SVD-style linear algebra — whose
//! outputs fold every intermediate result into a stored checksum. Each
//! test is evaluated as a single execution of the full kernel.

use crate::kern::{byte_patch, f32_patch, fold_words, u64_patch};
use harpo_isa::asm::Asm;
use harpo_isa::form::{Cond, Mnemonic};
use harpo_isa::program::Program;
use harpo_isa::reg::Gpr::*;
use harpo_isa::reg::Width::*;
use harpo_isa::reg::Xmm;

/// All OpenDCDiag-like tests.
pub fn all() -> Vec<Program> {
    vec![
        mxm_int(),
        mxm_fp(),
        svd_like(),
        compress_rle(),
        crypto_xtea(),
        checksum_crc(),
        sort_insertion(),
        fp_dot_stress(),
        mem_check(),
    ]
}

const N: i16 = 16; // matrix dimension for the MxM tests

/// 8×8 64-bit integer matrix multiply with checksum (the "MxM" test).
pub fn mxm_int() -> Program {
    let mut a = Asm::new("odcd-mxm-int");
    a.mem.patches.push((0, u64_patch(0xA11CE, 512))); // A then B
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.zero(R8); // i
    a.label("i");
    a.zero(R9); // j
    a.label("j");
    a.zero(Rax); // acc
    a.zero(R10); // k
    a.label("k");
    // rbp = &A[i*8 + k] = rsi + i*64 + k*8
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 7);
    a.mov_rr(B64, Rbx, R10);
    a.op_shift_i(Mnemonic::Shl, B64, Rbx, 3);
    a.add_rr(B64, Rbp, Rbx);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rcx, Rbp, 0); // A[i][k]
                              // rbp = &B[k*8 + j] = rsi + 512 + k*64 + j*8
    a.mov_rr(B64, Rbp, R10);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 7);
    a.mov_rr(B64, Rbx, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbx, 3);
    a.add_rr(B64, Rbp, Rbx);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rdx, Rbp, 2048);
    a.imul_rr(B64, Rcx, Rdx);
    a.add_rr(B64, Rax, Rcx);
    a.add_ri(B64, R10, 1);
    a.cmp_ri(B64, R10, N as i32);
    a.jnz("k");
    // C[i*8+j] at 1024.
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 7);
    a.mov_rr(B64, Rbx, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbx, 3);
    a.add_rr(B64, Rbp, Rbx);
    a.add_rr(B64, Rbp, Rsi);
    a.store(B64, Rbp, 4096, Rax);
    a.add_ri(B64, R9, 1);
    a.cmp_ri(B64, R9, N as i32);
    a.jnz("j");
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, N as i32);
    a.jnz("i");
    fold_words(&mut a, Rsi, 4096, 256, R11, R12, 6400);
    a.halt();
    a.finish().expect("mxm_int assembles")
}

/// 8×8 single-precision matrix multiply.
pub fn mxm_fp() -> Program {
    let mut a = Asm::new("odcd-mxm-fp");
    a.mem.patches.push((0, f32_patch(0xF10A7, 512, 4))); // A then B (4B elems)
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.zero(R8);
    a.label("i");
    a.zero(R9);
    a.label("j");
    a.op_xx(Mnemonic::Xorps, true, Xmm::Xmm0, Xmm::Xmm0); // acc = 0
    a.zero(R10);
    a.label("k");
    // &A[i*8+k] (4-byte elems): rsi + i*32 + k*4
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 6);
    a.mov_rr(B64, Rbx, R10);
    a.op_shift_i(Mnemonic::Shl, B64, Rbx, 2);
    a.add_rr(B64, Rbp, Rbx);
    a.add_rr(B64, Rbp, Rsi);
    a.op_xm(Mnemonic::Movss, false, Xmm::Xmm1, Rbp, 0);
    // &B[k*8+j]: rsi + 256 + k*32 + j*4
    a.mov_rr(B64, Rbp, R10);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 6);
    a.mov_rr(B64, Rbx, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbx, 2);
    a.add_rr(B64, Rbp, Rbx);
    a.add_rr(B64, Rbp, Rsi);
    a.op_xm(Mnemonic::Mulss, false, Xmm::Xmm1, Rbp, 1024);
    a.op_xx(Mnemonic::Addss, false, Xmm::Xmm0, Xmm::Xmm1);
    a.add_ri(B64, R10, 1);
    a.cmp_ri(B64, R10, N as i32);
    a.jnz("k");
    // C[i*8+j] at 512.
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 6);
    a.mov_rr(B64, Rbx, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbx, 2);
    a.add_rr(B64, Rbp, Rbx);
    a.add_rr(B64, Rbp, Rsi);
    let f = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::Movss, harpo_isa::form::OpMode::Mx, B32, false)
        .expect("movss store");
    a.push(harpo_isa::inst::Inst::new(f, 0, Rbp.index() as u8, 2048));
    a.add_ri(B64, R9, 1);
    a.cmp_ri(B64, R9, N as i32);
    a.jnz("j");
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, N as i32);
    a.jnz("i");
    fold_words(&mut a, Rsi, 2048, 128, R11, R12, 3100);
    a.halt();
    a.finish().expect("mxm_fp assembles")
}

/// SVD-style column normalisation (one-sided Jacobi building block):
/// per column, norm = √(Σ a²), then a /= norm — exercises FP multiply,
/// add, square root and division.
pub fn svd_like() -> Program {
    let mut a = Asm::new("odcd-svd");
    let cols = 32i16;
    let rows = 64i16;
    a.mem
        .patches
        .push((0, f32_patch(0x57D, (cols * rows) as usize, 3)));
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.zero(R8); // column
    a.label("col");
    a.op_xx(Mnemonic::Xorps, true, Xmm::Xmm0, Xmm::Xmm0); // Σ a²
                                                          // rbp = column base = rsi + col*rows*4
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 8); // ×64 (= rows*4)
    a.add_rr(B64, Rbp, Rsi);
    a.zero(R10);
    a.label("sum");
    a.op_xm(Mnemonic::Movss, false, Xmm::Xmm1, Rbp, 0);
    a.op_xx(Mnemonic::Mulss, false, Xmm::Xmm1, Xmm::Xmm1);
    a.op_xx(Mnemonic::Addss, false, Xmm::Xmm0, Xmm::Xmm1);
    a.add_ri(B64, Rbp, 4);
    a.add_ri(B64, R10, 1);
    a.cmp_ri(B64, R10, rows as i32);
    a.jnz("sum");
    a.op_xx(Mnemonic::Sqrtss, false, Xmm::Xmm2, Xmm::Xmm0); // norm
                                                            // Normalise the column in a second pass.
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 8);
    a.add_rr(B64, Rbp, Rsi);
    a.zero(R10);
    a.label("norm");
    a.op_xm(Mnemonic::Movss, false, Xmm::Xmm1, Rbp, 0);
    a.op_xx(Mnemonic::Divss, false, Xmm::Xmm1, Xmm::Xmm2);
    let f = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::Movss, harpo_isa::form::OpMode::Mx, B32, false)
        .expect("movss store");
    a.push(harpo_isa::inst::Inst::new(f, 1, Rbp.index() as u8, 0));
    a.add_ri(B64, Rbp, 4);
    a.add_ri(B64, R10, 1);
    a.cmp_ri(B64, R10, rows as i32);
    a.jnz("norm");
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, cols as i32);
    a.jnz("col");
    fold_words(&mut a, Rsi, 0, 1024, R11, R12, 8200);
    a.halt();
    a.finish().expect("svd assembles")
}

/// Run-length compression of a 2 KiB buffer (the compression test).
pub fn compress_rle() -> Program {
    let mut a = Asm::new("odcd-compress");
    // Compressible input: low-entropy bytes.
    let raw = byte_patch(0xC0DE, 10240);
    let input: Vec<u8> = raw.iter().map(|b| b & 0x3).collect();
    a.mem.patches.push((0, input));
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.mov_rr(B64, Rdi, Rsi);
    a.add_ri(B64, Rdi, 10240); // output cursor
    a.zero(R8); // input index
    a.label("outer");
    // current byte → rax, run length → rcx.
    a.mov_rr(B64, Rbp, Rsi);
    a.add_rr(B64, Rbp, R8);
    a.op_rm(Mnemonic::Movzx, B8, Rax, Rbp, 0);
    a.mov_ri(B64, Rcx, 1);
    a.label("run");
    a.mov_rr(B64, Rbx, R8);
    a.add_rr(B64, Rbx, Rcx);
    a.cmp_ri(B64, Rbx, 10240);
    a.jz("emit");
    a.mov_rr(B64, Rbp, Rsi);
    a.add_rr(B64, Rbp, Rbx);
    a.op_rm(Mnemonic::Movzx, B8, Rdx, Rbp, 0);
    a.cmp_rr(B64, Rdx, Rax);
    a.jnz("emit");
    a.add_ri(B64, Rcx, 1);
    a.cmp_ri(B64, Rcx, 255);
    a.jnz("run");
    a.label("emit");
    a.store(B8, Rdi, 0, Rcx);
    a.store(B8, Rdi, 1, Rax);
    a.add_ri(B64, Rdi, 2);
    a.add_rr(B64, R8, Rcx);
    a.cmp_ri(B64, R8, 10240);
    a.jnz("outer");
    fold_words(&mut a, Rsi, 10240, 1024, R11, R12, 31000);
    a.halt();
    a.finish().expect("rle assembles")
}

/// XTEA-like Feistel cipher over 32 blocks (the crypto test).
pub fn crypto_xtea() -> Program {
    let mut a = Asm::new("odcd-crypto");
    a.mem.patches.push((0, u64_patch(0x7EA, 256)));
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.zero(R8); // block index
    a.label("block");
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B32, Rax, Rbp, 0); // v0
    a.load(B32, Rbx, Rbp, 4); // v1
    a.zero(Rdx); // sum
    a.mov_ri(B64, R9, 16); // rounds
    a.label("round");
    // v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + 0x9E3779B9)
    a.mov_rr(B64, Rcx, Rbx);
    a.op_shift_i(Mnemonic::Shl, B32, Rcx, 4);
    a.mov_rr(B64, R10, Rbx);
    a.op_shift_i(Mnemonic::Shr, B32, R10, 5);
    a.op_rr(Mnemonic::Xor, B32, Rcx, R10);
    a.add_rr(B32, Rcx, Rbx);
    a.mov_rr(B64, R10, Rdx);
    a.add_ri(B32, R10, 0x1E37_79B9);
    a.op_rr(Mnemonic::Xor, B32, Rcx, R10);
    a.add_rr(B32, Rax, Rcx);
    a.add_ri(B32, Rdx, 0x1E37_79B9);
    // v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ sum
    a.mov_rr(B64, Rcx, Rax);
    a.op_shift_i(Mnemonic::Shl, B32, Rcx, 4);
    a.mov_rr(B64, R10, Rax);
    a.op_shift_i(Mnemonic::Shr, B32, R10, 5);
    a.op_rr(Mnemonic::Xor, B32, Rcx, R10);
    a.add_rr(B32, Rcx, Rax);
    a.op_rr(Mnemonic::Xor, B32, Rcx, Rdx);
    a.add_rr(B32, Rbx, Rcx);
    a.sub_ri(B64, R9, 1);
    a.jnz("round");
    a.store(B32, Rbp, 2048, Rax);
    a.store(B32, Rbp, 2052, Rbx);
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 256);
    a.jnz("block");
    fold_words(&mut a, Rsi, 2048, 256, R11, R12, 4200);
    a.halt();
    a.finish().expect("xtea assembles")
}

/// Bitwise CRC-32 over 1 KiB (the checksum test).
pub fn checksum_crc() -> Program {
    let mut a = Asm::new("odcd-crc");
    a.mem.patches.push((0, byte_patch(0xCC32, 4096)));
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.mov_ri64(R10, 0xEDB8_8320); // polynomial (hoisted)
    a.mov_ri(B64, Rax, -1); // crc
    a.zero(R8);
    a.label("byte");
    a.mov_rr(B64, Rbp, Rsi);
    a.add_rr(B64, Rbp, R8);
    a.op_rm(Mnemonic::Movzx, B8, Rbx, Rbp, 0);
    a.op_rr(Mnemonic::Xor, B32, Rax, Rbx);
    a.mov_ri(B64, R9, 8);
    a.label("bit");
    // mask = -(crc & 1); crc = (crc >> 1) ^ (0xEDB88320 & mask)
    a.mov_rr(B64, Rcx, Rax);
    a.op_ri(Mnemonic::And, B32, Rcx, 1);
    a.op_r(Mnemonic::Neg, B32, Rcx);
    a.mov_rr(B64, Rdx, R10);
    a.op_rr(Mnemonic::And, B32, Rdx, Rcx);
    a.op_shift_i(Mnemonic::Shr, B32, Rax, 1);
    a.op_rr(Mnemonic::Xor, B32, Rax, Rdx);
    a.sub_ri(B64, R9, 1);
    a.jnz("bit");
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 4096);
    a.jnz("byte");
    a.store(B64, Rsi, 4096, Rax);
    a.halt();
    a.finish().expect("crc assembles")
}

/// Insertion sort of 64 words — pointer-heavy data movement.
pub fn sort_insertion() -> Program {
    let mut a = Asm::new("odcd-sort");
    a.mem.patches.push((0, u64_patch(0x5047, 192)));
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.mov_ri(B64, R8, 1); // i
    a.label("outer");
    // key = a[i]; j = i.
    a.mov_rr(B64, Rbp, R8);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rax, Rbp, 0);
    a.mov_rr(B64, R9, R8);
    a.label("inner");
    a.cmp_ri(B64, R9, 0);
    a.jz("place");
    // rbx = a[j-1]
    a.mov_rr(B64, Rbp, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rbx, Rbp, -8);
    // unsigned compare: if a[j-1] <= key, stop.
    a.cmp_rr(B64, Rbx, Rax);
    a.jcc(Cond::C, "place"); // rbx < rax → borrow → place
    a.cmp_rr(B64, Rbx, Rax);
    a.jz("place");
    a.store(B64, Rbp, 0, Rbx); // a[j] = a[j-1]
    a.sub_ri(B64, R9, 1);
    a.jmp("inner");
    a.label("place");
    a.mov_rr(B64, Rbp, R9);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.store(B64, Rbp, 0, Rax);
    a.add_ri(B64, R8, 1);
    a.cmp_ri(B64, R8, 192);
    a.jnz("outer");
    fold_words(&mut a, Rsi, 0, 192, R11, R12, 1600);
    a.halt();
    a.finish().expect("sort assembles")
}

/// Packed dot-product stress: MOVAPS + MULPS + ADDPS over two 1 KiB
/// arrays (four FP lanes per instruction).
pub fn fp_dot_stress() -> Program {
    let mut a = Asm::new("odcd-fpdot");
    a.mem.patches.push((0, f32_patch(0xD07, 4096, 4))); // x then y
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.op_xx(Mnemonic::Xorps, true, Xmm::Xmm0, Xmm::Xmm0);
    a.zero(R13); // repeat counter
    a.label("repeat");
    a.zero(R8);
    a.label("loop");
    a.mov_rr(B64, Rbp, R8);
    a.add_rr(B64, Rbp, Rsi);
    a.op_xm(Mnemonic::Movaps, true, Xmm::Xmm1, Rbp, 0);
    a.op_xm(Mnemonic::Mulps, true, Xmm::Xmm1, Rbp, 8192);
    a.op_xx(Mnemonic::Addps, true, Xmm::Xmm0, Xmm::Xmm1);
    a.add_ri(B64, R8, 16);
    a.cmp_ri(B64, R8, 8192);
    a.jnz("loop");
    a.add_ri(B64, R13, 1);
    a.cmp_ri(B64, R13, 4);
    a.jnz("repeat");
    // Store the 4-lane accumulator to the output area.
    let f = harpo_isa::form::Catalog::get()
        .lookup(Mnemonic::Movaps, harpo_isa::form::OpMode::Mx, B32, true)
        .expect("movaps store");
    a.push(harpo_isa::inst::Inst::new(f, 0, Rsi.index() as u8, 16384));
    fold_words(&mut a, Rsi, 16384, 2, R11, R12, 16448);
    a.halt();
    a.finish().expect("fpdot assembles")
}

/// Cache-covering memory check: fill 28 KiB with a pattern, then
/// repeatedly read-verify every word across several passes, folding all
/// data into the output. This is the cache-test character of OpenDCDiag's
/// memory suite — nearly the whole L1D stays resident and continuously
/// re-read, so almost every data-array bit is ACE for most of the run.
pub fn mem_check() -> Program {
    let mut a = Asm::new("odcd-memcheck");
    a.mem.patches.push((0, u64_patch(0x3E3C, 3584))); // 28 KiB
    a.reg_init.gprs[Rsi.index()] = harpo_isa::mem::DATA_BASE;
    a.zero(R13); // pass counter
    a.mov_ri(B64, Rax, 0x1505); // running fold
    a.label("pass");
    a.zero(R8);
    a.label("word");
    a.mov_rr(B64, Rbp, R8);
    a.add_rr(B64, Rbp, Rsi);
    a.load(B64, Rbx, Rbp, 0);
    a.op_rr(Mnemonic::Xor, B64, Rax, Rbx);
    a.op_shift_i(Mnemonic::Rol, B64, Rax, 5);
    a.add_ri(B64, R8, 8);
    a.cmp_ri(B64, R8, 28672);
    a.jnz("word");
    // Write the evolving fold back into the buffer so later passes
    // depend on earlier ones (faults cannot hide between passes).
    a.mov_rr(B64, Rbp, R13);
    a.op_shift_i(Mnemonic::Shl, B64, Rbp, 3);
    a.add_rr(B64, Rbp, Rsi);
    a.store(B64, Rbp, 0, Rax);
    a.add_ri(B64, R13, 1);
    a.cmp_ri(B64, R13, 6);
    a.jnz("pass");
    a.store(B64, Rsi, 28672, Rax);
    a.halt();
    a.finish().expect("memcheck assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use harpo_isa::exec::Machine;
    use harpo_isa::fu::NativeFu;

    #[test]
    fn all_kernels_run_cleanly_and_deterministically() {
        for p in all() {
            let o1 = Machine::new(&p, NativeFu)
                .run(5_000_000)
                .unwrap_or_else(|t| panic!("{} trapped: {t}", p.name));
            let o2 = Machine::new(&p, NativeFu).run(5_000_000).unwrap();
            assert_eq!(o1.signature, o2.signature, "{} nondeterministic", p.name);
            assert!(
                o1.dyn_count > 500,
                "{} too trivial: {}",
                p.name,
                o1.dyn_count
            );
        }
    }

    #[test]
    fn suite_has_nine_distinct_tests() {
        let names: std::collections::HashSet<_> = all().into_iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn sort_actually_sorts() {
        let p = sort_insertion();
        let mut m = Machine::new(&p, NativeFu);
        m.run(5_000_000).unwrap();
        let mem = m.mem();
        let mut prev = 0u64;
        for i in 0..64 {
            let v = mem.read(harpo_isa::mem::DATA_BASE + i * 8, 8).unwrap();
            assert!(v >= prev, "element {i} out of order");
            prev = v;
        }
    }

    #[test]
    fn fp_tests_exercise_fp_units() {
        use harpo_isa::form::FuKind;
        use harpo_uarch::OooCore;
        for p in [mxm_fp(), svd_like(), fp_dot_stress()] {
            let r = OooCore::default().simulate(&p, 5_000_000).unwrap();
            assert!(
                r.trace.fu_op_count(FuKind::FpMul) > 50,
                "{} has too few FP mults",
                p.name
            );
        }
    }

    #[test]
    fn int_mxm_exercises_multiplier() {
        use harpo_isa::form::FuKind;
        use harpo_uarch::OooCore;
        let r = OooCore::default().simulate(&mxm_int(), 5_000_000).unwrap();
        assert!(r.trace.fu_op_count(FuKind::IntMul) >= 512);
    }
}
