//! Structure explorer: how differently the six target structures react
//! to the same workload. Runs one generated program and one hand-written
//! kernel through the evaluation engine and prints the full coverage
//! profile plus execution statistics — a minimal tour of the
//! observability the hardware-in-the-loop approach is built on.
//!
//! ```sh
//! cargo run --release --example structure_explorer
//! ```

use harpocrates::baselines::opendcdiag;
use harpocrates::coverage::TargetStructure;
use harpocrates::museqgen::{GenConstraints, Generator};
use harpocrates::uarch::OooCore;

fn main() {
    let core = OooCore::default();
    let generated = Generator::new(GenConstraints {
        n_insts: 2_000,
        ..GenConstraints::default()
    })
    .generate(2024);
    let kernel = opendcdiag::mxm_int();

    for prog in [&generated, &kernel] {
        let sim = core.simulate(prog, 10_000_000).expect("clean run");
        let s = &sim.trace.stats;
        println!("program `{}`:", prog.name);
        println!(
            "  {} instructions in {} cycles (IPC {:.2}); L1D {} hits / {} misses; {} branch mispredicts",
            s.insts, s.cycles, s.ipc(), s.l1d_hits, s.l1d_misses, s.mispredicts
        );
        println!("  coverage profile:");
        for structure in TargetStructure::ALL {
            let c = structure.coverage(&sim.trace, core.config());
            let bar = "#".repeat((c * 120.0) as usize);
            println!("    {:<20} {:>7.3}%  {bar}", structure.label(), c * 100.0);
        }
        println!();
    }
    println!(
        "The generated program spreads activity across structures; the MxM kernel \
concentrates on the multiplier and the cache — which is why structure-targeted \
generation (the Harpocrates loop) beats fixed test suites."
    );
}
