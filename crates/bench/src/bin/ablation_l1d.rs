//! Ablation (§VI-B2) — the cache-aware generation constraints for the
//! L1D target.
//!
//! The paper attributes the L1D run's high *starting* coverage (≈77% in
//! generation zero) to constraining memory references to a sequential
//! 8-byte stride over a region exactly matching the 32 KiB cache. This
//! harness compares that plan against a sparse 64-byte stride and a
//! tiny 2 KiB region.

use harpo_bench::{pct, write_csv, Cli, Harness};
use harpo_core::{presets, Evaluator, Harpocrates};
use harpo_coverage::TargetStructure;
use harpo_museqgen::{Generator, MemPlan};
use harpo_uarch::OooCore;

fn main() {
    let cli = Cli::parse();
    let harness = Harness::start("ablation_l1d", &cli);
    let structure = TargetStructure::L1d;
    let plans = [
        (
            "cache-sweep 8B/32K (paper)",
            MemPlan {
                region: 32 * 1024,
                stride: 8,
            },
        ),
        (
            "sparse 64B/32K",
            MemPlan {
                region: 32 * 1024,
                stride: 64,
            },
        ),
        (
            "tiny region 8B/2K",
            MemPlan {
                region: 2 * 1024,
                stride: 8,
            },
        ),
    ];
    let mut csv = Vec::new();
    for (label, plan) in plans {
        let (mut constraints, mut loop_cfg) = presets::preset(structure, cli.scale);
        constraints.mem = plan;
        loop_cfg.threads = cli.threads;
        let h = Harpocrates::new(
            Generator::new(constraints),
            Evaluator::new(OooCore::default(), structure),
            loop_cfg,
        )
        .with_metrics(harness.metrics().clone());
        let r = h.run();
        let initial = r.samples.first().unwrap().top_coverages[0];
        let converged = r.champion_coverage;
        println!(
            "{label:<28} initial {}  converged {}",
            pct(initial),
            pct(converged)
        );
        csv.push(format!("{label},{initial:.6},{converged:.6}"));
    }
    write_csv(
        &cli.out_dir,
        "ablation_l1d.csv",
        "plan,initial_coverage,converged_coverage",
        &csv,
    );
    harness.finish();
}
