/root/repo/target/release/deps/detection_speed-4dcbaad7efea02e3.d: crates/bench/src/bin/detection_speed.rs

/root/repo/target/release/deps/detection_speed-4dcbaad7efea02e3: crates/bench/src/bin/detection_speed.rs

crates/bench/src/bin/detection_speed.rs:
