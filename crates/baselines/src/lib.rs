#![warn(missing_docs)]

//! # harpo-baselines — the comparison frameworks
//!
//! The three baselines of the paper's evaluation (§III), rebuilt against
//! the HX86 substrate:
//!
//! * [`silifuzz`] — byte-level fuzzing of a decoder proxy with software
//!   coverage feedback (hardware-agnostic, like Google's SiliFuzz);
//! * [`opendcdiag`] — eight hand-written checking tests (compression,
//!   crypto, MxM, SVD-style linear algebra, ...) in the spirit of
//!   Intel's OpenDCDiag;
//! * [`mibench`] — twelve general-purpose embedded kernels standing in
//!   for the MiBench suite, exactly four of which touch SSE FP.

pub mod kern;
pub mod mibench;
pub mod opendcdiag;
pub mod silifuzz;

pub use silifuzz::{FuzzStats, SiliFuzz, SiliFuzzConfig, Snapshot};
