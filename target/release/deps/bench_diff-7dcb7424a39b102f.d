/root/repo/target/release/deps/bench_diff-7dcb7424a39b102f.d: crates/bench/src/bin/bench_diff.rs

/root/repo/target/release/deps/bench_diff-7dcb7424a39b102f: crates/bench/src/bin/bench_diff.rs

crates/bench/src/bin/bench_diff.rs:
