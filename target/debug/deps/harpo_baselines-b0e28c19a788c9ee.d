/root/repo/target/debug/deps/harpo_baselines-b0e28c19a788c9ee.d: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/debug/deps/libharpo_baselines-b0e28c19a788c9ee.rlib: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/debug/deps/libharpo_baselines-b0e28c19a788c9ee.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kern.rs:
crates/baselines/src/mibench.rs:
crates/baselines/src/opendcdiag.rs:
crates/baselines/src/silifuzz.rs:
