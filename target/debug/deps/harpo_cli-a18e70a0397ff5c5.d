/root/repo/target/debug/deps/harpo_cli-a18e70a0397ff5c5.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/libharpo_cli-a18e70a0397ff5c5.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

/root/repo/target/debug/deps/libharpo_cli-a18e70a0397ff5c5.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/autopsy.rs crates/cli/src/commands.rs crates/cli/src/report.rs crates/cli/src/watch.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/autopsy.rs:
crates/cli/src/commands.rs:
crates/cli/src/report.rs:
crates/cli/src/watch.rs:
