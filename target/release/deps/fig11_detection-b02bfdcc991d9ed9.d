/root/repo/target/release/deps/fig11_detection-b02bfdcc991d9ed9.d: crates/bench/src/bin/fig11_detection.rs

/root/repo/target/release/deps/fig11_detection-b02bfdcc991d9ed9: crates/bench/src/bin/fig11_detection.rs

crates/bench/src/bin/fig11_detection.rs:
