/root/repo/target/debug/deps/harpo_museqgen-1b368d7fe38f381e.d: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs Cargo.toml

/root/repo/target/debug/deps/libharpo_museqgen-1b368d7fe38f381e.rmeta: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs Cargo.toml

crates/museqgen/src/lib.rs:
crates/museqgen/src/constraints.rs:
crates/museqgen/src/generator.rs:
crates/museqgen/src/mutate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
