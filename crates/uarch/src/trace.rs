//! The execution trace: everything downstream analyses consume.
//!
//! One golden out-of-order simulation produces a single
//! [`ExecutionTrace`], which feeds *both* consumers of the Harpocrates
//! loop (DESIGN.md §5):
//!
//! * **hardware coverage** — ACE lifetime analysis over
//!   [`RegInstance`]s / cache events, and the IBR metric over [`FuOp`]s
//!   (fast; computed every genetic iteration);
//! * **fault-injection planning** — the same records give the residency
//!   windows and read schedules needed to convert a random `(bit, cycle)`
//!   fault into a concrete corruption plan for functional replay
//!   (slower; sampled).

use crate::cache::{CacheAccess, LineEvent};
use harpo_isa::form::FuKind;
use harpo_isa::reg::{Gpr, Xmm};
use serde::{Deserialize, Serialize};

/// A read of a physical-register value instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegRead {
    /// Dynamic instruction index performing the read.
    pub dyn_idx: u64,
    /// Cycle the operand was read (issue time of the consumer).
    pub cycle: u64,
    /// Whether the consumer propagates data onward (writes a register,
    /// an XMM register or memory). Flag-only consumers (`CMP`, `TEST`)
    /// sensitise a fault without making it observable; the refined IRF
    /// coverage metric discounts them (paper §II-C: coverage must proxy
    /// both activation *and* propagation).
    pub propagates: bool,
    /// Observation mask over two 64-bit lanes: which bits of the value
    /// can influence the consumer's results (lane 1 is only meaningful
    /// for XMM reads). Flips outside the mask are invisible to this
    /// consumer — the exact per-bit ACE derating.
    pub obs: [u64; 2],
}

/// One value instance living in a physical integer register: from
/// allocation/write until the register is freed (its architectural
/// successor commits) or the program ends.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegInstance {
    /// Physical register index.
    pub preg: u16,
    /// Architectural register this instance renames.
    pub arch: Gpr,
    /// Dynamic index of the producing instruction (`u64::MAX` for initial
    /// architectural state).
    pub writer: u64,
    /// Cycle the value became resident (writeback of the producer; 0 for
    /// initial state).
    pub write_cycle: u64,
    /// Cycle the physical register was freed (end of program if never).
    pub free_cycle: u64,
    /// True if this instance is the current architectural mapping when
    /// the program ends — the output checker hashes these registers, so
    /// the value is consumed even without an explicit read.
    pub live_at_end: bool,
    /// Offset of this instance's reads in the trace's shared
    /// [`ExecutionTrace::reads`] arena.
    pub reads_start: u32,
    /// Number of reads of this instance in the arena (contiguous from
    /// `reads_start`, in program order).
    pub reads_len: u32,
}

impl RegInstance {
    /// This instance's reads, sliced out of the shared arena
    /// (`trace.reads`); in program order.
    #[inline]
    pub fn reads<'a>(&self, arena: &'a [RegRead]) -> &'a [RegRead] {
        &arena[self.reads_start as usize..(self.reads_start + self.reads_len) as usize]
    }

    /// The latest read cycle, if any. Reads are stored in program order,
    /// but out-of-order issue means the *cycle-wise* last read can be an
    /// earlier instruction — take the max.
    pub fn last_read_cycle(&self, arena: &[RegRead]) -> Option<u64> {
        self.reads(arena).iter().map(|r| r.cycle).max()
    }

    /// The latest read whose consumer propagates data onward.
    pub fn last_propagating_read_cycle(&self, arena: &[RegRead]) -> Option<u64> {
        self.reads(arena)
            .iter()
            .filter(|r| r.propagates)
            .map(|r| r.cycle)
            .max()
    }
}

/// One value instance living in a physical XMM register — the same
/// lifetime record as [`RegInstance`], for the 128-bit FP register file
/// (the "seventh structure" demonstrating §IV-B's any-structure claim).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XmmInstance {
    /// Physical XMM register index.
    pub preg: u16,
    /// Architectural XMM register this instance renames.
    pub arch: Xmm,
    /// Dynamic index of the producing instruction (`u64::MAX` = initial).
    pub writer: u64,
    /// Cycle the value became resident.
    pub write_cycle: u64,
    /// Cycle the physical register was freed.
    pub free_cycle: u64,
    /// Whether this instance holds the final architectural value.
    pub live_at_end: bool,
    /// Offset of this instance's reads in the trace's shared
    /// [`ExecutionTrace::reads`] arena.
    pub reads_start: u32,
    /// Number of reads of this instance in the arena (contiguous from
    /// `reads_start`, in program order).
    pub reads_len: u32,
}

impl XmmInstance {
    /// This instance's reads, sliced out of the shared arena
    /// (`trace.reads`); in program order.
    #[inline]
    pub fn reads<'a>(&self, arena: &'a [RegRead]) -> &'a [RegRead] {
        &arena[self.reads_start as usize..(self.reads_start + self.reads_len) as usize]
    }

    /// The latest read whose consumer propagates data onward.
    pub fn last_propagating_read_cycle(&self, arena: &[RegRead]) -> Option<u64> {
        self.reads(arena)
            .iter()
            .filter(|r| r.propagates)
            .map(|r| r.cycle)
            .max()
    }
}

/// Compact per-dynamic-instruction def/use record, the input to the
/// transitive dynamic-liveness analysis that true ACE requires
/// (Mukherjee et al.: transitively dynamically dead values are un-ACE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynRecord {
    /// GPRs read.
    pub reads_gpr: u16,
    /// GPRs written.
    pub writes_gpr: u16,
    /// XMM registers read.
    pub reads_xmm: u16,
    /// XMM registers written.
    pub writes_xmm: u16,
    /// Whether the flags were read.
    pub reads_flags: bool,
    /// Whether the flags were written.
    pub writes_flags: bool,
    /// Memory access address (meaningful when `mem_size > 0`).
    pub mem_addr: u64,
    /// Memory access size in bytes; 0 = no access.
    pub mem_size: u8,
    /// Whether the memory access is a store.
    pub is_store: bool,
    /// Branch kind: 0 = not a branch, 1 = trivial (taken and fall-through
    /// targets coincide, as in generated linear tests), 2 = real branch.
    pub branch: u8,
}

/// One operand pair through a graded functional unit, with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuOp {
    /// Dynamic instruction index.
    pub dyn_idx: u64,
    /// Issue cycle of this pass.
    pub cycle: u64,
    /// Unit kind.
    pub kind: FuKind,
    /// First operand.
    pub a: u64,
    /// Second operand (post-inversion for subtract-family adder passes).
    pub b: u64,
    /// Adder carry-in.
    pub cin: bool,
}

/// Headline statistics of a simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total cycles (cycle of the last commit).
    pub cycles: u64,
    /// Dynamic instructions retired.
    pub insts: u64,
    /// L1D hits.
    pub l1d_hits: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// Dirty-line writebacks.
    pub l1d_writebacks: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Dispatches delayed because the ROB was full.
    pub rob_stalls: u64,
    /// Dispatches delayed because the issue queue was full.
    pub iq_stalls: u64,
    /// Dispatches delayed waiting for a free physical register.
    pub prf_stalls: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }
}

/// The complete observable record of one golden run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Run statistics.
    pub stats: SimStats,
    /// Physical-register value instances (IRF ACE + transient planning).
    pub reg_instances: Vec<RegInstance>,
    /// Physical XMM value instances (XRF ACE + transient planning).
    pub xmm_instances: Vec<XmmInstance>,
    /// The shared register-read arena: every instance's reads live here
    /// contiguously, addressed by its `(reads_start, reads_len)` range —
    /// one large allocation per run instead of one small `Vec` per
    /// renamed instance (the SoA flattening of the performance
    /// architecture; see DESIGN.md).
    pub reads: Vec<RegRead>,
    /// Per-dynamic-instruction def/use records (for liveness analysis).
    pub dyn_records: Vec<DynRecord>,
    /// Cache accesses in program order.
    pub cache_accesses: Vec<CacheAccess>,
    /// Cache fill/evict events in time order.
    pub line_events: Vec<LineEvent>,
    /// Graded functional-unit passes in program order.
    pub fu_ops: Vec<FuOp>,
}

impl ExecutionTrace {
    /// The reads of one integer-register value instance, in program
    /// order.
    #[inline]
    pub fn reads_of(&self, inst: &RegInstance) -> &[RegRead] {
        inst.reads(&self.reads)
    }

    /// The reads of one XMM value instance, in program order.
    #[inline]
    pub fn xmm_reads_of(&self, inst: &XmmInstance) -> &[RegRead] {
        inst.reads(&self.reads)
    }

    /// Passes through a specific graded unit.
    pub fn fu_ops_of(&self, kind: FuKind) -> impl Iterator<Item = &FuOp> {
        self.fu_ops.iter().filter(move |o| o.kind == kind)
    }

    /// Count of passes through a specific unit.
    pub fn fu_op_count(&self, kind: FuKind) -> usize {
        self.fu_ops_of(kind).count()
    }

    /// The earliest recorded cycle at which dynamic instruction
    /// `dyn_idx` touched the datapath (an operand read or a graded-unit
    /// pass), or `None` when the instruction left no timed event. This
    /// is the forensic cycle stamp: it maps a corruption plan's dynamic
    /// index back onto the golden run's timeline for autopsy records.
    pub fn cycle_of_dyn(&self, dyn_idx: u64) -> Option<u64> {
        let reads = self
            .reads
            .iter()
            .filter(|r| r.dyn_idx == dyn_idx)
            .map(|r| r.cycle);
        let fu = self
            .fu_ops
            .iter()
            .filter(|o| o.dyn_idx == dyn_idx)
            .map(|o| o.cycle);
        reads.chain(fu).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_of_dyn_takes_the_earliest_timed_event() {
        let mut t = ExecutionTrace::default();
        t.reads.push(RegRead {
            dyn_idx: 4,
            cycle: 19,
            propagates: true,
            obs: [u64::MAX, 0],
        });
        t.reads.push(RegRead {
            dyn_idx: 4,
            cycle: 17,
            propagates: false,
            obs: [u64::MAX, 0],
        });
        t.fu_ops.push(FuOp {
            dyn_idx: 4,
            cycle: 21,
            kind: FuKind::IntAdd,
            a: 1,
            b: 2,
            cin: false,
        });
        t.fu_ops.push(FuOp {
            dyn_idx: 9,
            cycle: 30,
            kind: FuKind::IntAdd,
            a: 3,
            b: 4,
            cin: false,
        });
        // Out-of-order issue: the cycle-wise first event wins, whether
        // it is a read or a unit pass.
        assert_eq!(t.cycle_of_dyn(4), Some(17));
        assert_eq!(t.cycle_of_dyn(9), Some(30));
        assert_eq!(t.cycle_of_dyn(5), None);
    }
}
