//! Lineage flight-recorder integration tests: provenance stamping through
//! the loop, journalled `lineage`/`operator_efficacy` records, and the
//! memo-cache regression guarantee — a memo hit must preserve operator
//! attribution, so efficacy accounting is identical with the cache on or
//! off.

use harpo_core::{Evaluator, Harpocrates, LoopConfig};
use harpo_coverage::TargetStructure;
use harpo_museqgen::{GenConstraints, Generator, MutationOp};
use harpo_telemetry::{MemorySink, Record, Telemetry};
use harpo_uarch::OooCore;
use std::sync::Arc;

fn harpo(structure: TargetStructure, iters: usize) -> Harpocrates {
    let gen = Generator::new(GenConstraints {
        n_insts: 200,
        ..GenConstraints::default()
    });
    Harpocrates::new(
        gen,
        Evaluator::new(OooCore::default(), structure),
        LoopConfig {
            population: 8,
            top_k: 2,
            iterations: iters,
            sample_every: 2,
            seed: 3,
            threads: 2,
        },
    )
}

#[test]
fn offspring_carry_full_provenance_through_the_loop() {
    let r = harpo(TargetStructure::IntAdder, 4).run();
    let prov = &r.champion.provenance;
    if prov.operator.is_some() {
        // Champion is an offspring: parent fingerprint, operator and a
        // birth round within the run.
        assert!(prov.parent.is_some());
        assert_eq!(prov.operator.as_deref(), Some("replace-all"));
        assert!((1..=4).contains(&prov.birth_round));
    } else {
        // Champion survived from the bootstrap population.
        assert_eq!(prov.parent, None);
        assert_eq!(prov.birth_round, 0);
    }
}

#[test]
fn lineage_records_account_for_every_offspring() {
    let mem = Arc::new(MemorySink::new());
    harpo(TargetStructure::IntAdder, 5)
        .with_telemetry(Telemetry::to(mem.clone()))
        .run();

    let lineage = mem.records_of("lineage");
    assert!(!lineage.is_empty(), "mutation rounds must journal lineage");
    let mut total_offspring = 0;
    for rec in &lineage {
        let iter = rec.get("iter").unwrap().as_u64().unwrap();
        assert!(iter >= 1, "iteration 0 has no mutated offspring");
        assert_eq!(rec.get("operator").unwrap().as_str(), Some("replace-all"));
        let offspring = rec.get("offspring").unwrap().as_u64().unwrap();
        let survivors = rec.get("survivors").unwrap().as_u64().unwrap();
        assert!((1..=8).contains(&offspring));
        assert!(survivors <= 2, "bounded by top_k");
        let mean = rec.get("delta_mean").unwrap().as_f64().unwrap();
        let max = rec.get("delta_max").unwrap().as_f64().unwrap();
        assert!(max >= mean, "max delta below mean");
        assert!(rec.get("realized_gain").unwrap().as_f64().unwrap() >= 0.0);
        total_offspring += offspring;
    }
    // Iterations 1..=5 each evaluate 8 mutated offspring, every one of
    // which has a known parent score.
    assert_eq!(total_offspring, 5 * 8);

    let eff = mem.records_of("operator_efficacy");
    assert_eq!(eff.len(), 1);
    let ops = eff[0].get("operators").unwrap().as_arr().unwrap();
    assert_eq!(ops.len(), 1);
    assert_eq!(
        ops[0].get("operator").unwrap().as_str(),
        Some("replace-all")
    );
    assert_eq!(ops[0].get("offspring").unwrap().as_u64(), Some(40));
}

#[test]
fn multi_operator_runs_rank_every_operator() {
    let mem = Arc::new(MemorySink::new());
    let r = harpo(TargetStructure::IntMultiplier, 5)
        .with_operators(MutationOp::ALL.to_vec())
        .with_telemetry(Telemetry::to(mem.clone()))
        .run();

    assert_eq!(r.efficacy.len(), MutationOp::ALL.len());
    let labels: Vec<&str> = r.efficacy.iter().map(|e| e.operator.as_str()).collect();
    for op in MutationOp::ALL {
        assert!(labels.contains(&op.label()), "missing {}", op.label());
    }
    // Ranking is by realized gain, descending.
    for w in r.efficacy.windows(2) {
        assert!(w[0].realized_gain >= w[1].realized_gain);
    }
    let total: u64 = r.efficacy.iter().map(|e| e.offspring).sum();
    assert_eq!(total, 5 * 8, "every offspring attributed to an operator");
}

/// Strips non-deterministic (timing) fields so journals from two runs can
/// be compared structurally.
fn searchable(records: &[Record]) -> Vec<String> {
    records
        .iter()
        .filter(|r| matches!(r.kind, "lineage" | "operator_efficacy"))
        .map(|r| r.to_json())
        .collect()
}

#[test]
fn memo_cache_preserves_operator_attribution() {
    // The satellite regression test: lineage and efficacy records must be
    // byte-identical with the evaluation memo on and off. A memo hit
    // replays the cached score but never replaces the program object, so
    // the provenance tag (and the operator credited) is unchanged.
    let run = |memo: bool, ops: Vec<MutationOp>| {
        let mem = Arc::new(MemorySink::new());
        let r = harpo(TargetStructure::IntAdder, 6)
            .with_operators(ops)
            .with_memo(memo)
            .with_telemetry(Telemetry::to(mem.clone()))
            .run();
        (r, mem)
    };

    for ops in [vec![MutationOp::ReplaceAll], MutationOp::ALL.to_vec()] {
        let (r_on, mem_on) = run(true, ops.clone());
        let (r_off, mem_off) = run(false, ops);

        assert_eq!(r_on.champion_coverage, r_off.champion_coverage);
        assert_eq!(r_on.champion.insts, r_off.champion.insts);
        assert_eq!(r_on.efficacy, r_off.efficacy, "efficacy diverged");
        assert_eq!(
            searchable(&mem_on.records()),
            searchable(&mem_off.records()),
            "lineage journal diverged between cache on and off"
        );
        // The cache-off run must not touch the cache counters.
        let s_off = &mem_off.records_of("summary")[0];
        assert_eq!(s_off.get("cache_hits").unwrap().as_u64(), Some(0));
        assert_eq!(s_off.get("cache_misses").unwrap().as_u64(), Some(0));
    }
}
