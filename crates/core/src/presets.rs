//! Per-structure Harpocrates configurations (paper §VI-B).
//!
//! The paper's exact parameters are available at [`Scale::Paper`];
//! [`Scale::Reduced`] shrinks program sizes, populations and iteration
//! counts so the complete evaluation reproduces on a laptop in minutes
//! while preserving every qualitative trend (convergence shape, ordering
//! of frameworks, coverage→detection correlation).

use crate::engine::LoopConfig;
use harpo_coverage::TargetStructure;
use harpo_isa::form::Mnemonic;
use harpo_museqgen::{GenConstraints, MemPlan};
use serde::{Deserialize, Serialize};

/// The integer-register-file distribution (§V-D's "user-defined
/// distributions", the paper's "careful parameterization of our
/// generator"): read-modify-write arithmetic, rotates and moves — all
/// corruption-*preserving* operations. Bit-killing logic (AND, shifts),
/// multiplication (whose zero/even attractors absorb flips) and the
/// saturating FP pipe (flush-to-zero, canonical NaN) are excluded so a
/// corrupted accumulator carries its damage all the way to the output.
fn irf_distribution() -> Vec<Mnemonic> {
    use Mnemonic::*;
    vec![
        Add, Adc, Sub, Sbb, Xor, Mov, Rol, Ror, Bswap, Neg, Inc, Dec, Xchg, Paddq, Psubq, Pxor,
    ]
}

/// The XMM-register-file distribution: vector moves and the
/// corruption-preserving integer-SIMD lanes.
fn xrf_distribution() -> Vec<Mnemonic> {
    use Mnemonic::*;
    vec![
        Movaps, Movss, MovqXr, MovqRx, Paddq, Psubq, Paddd, Psubd, Pxor, Mov, Add, Sub, Xchg,
    ]
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's §VI-B parameters (hours of compute).
    Paper,
    /// Laptop-scale parameters with the same structure.
    Reduced,
}

impl Scale {
    /// Parses `"paper"`/`"reduced"` CLI arguments.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "paper" => Some(Scale::Paper),
            "reduced" => Some(Scale::Reduced),
            _ => None,
        }
    }

    /// The CLI spelling of this scale (inverse of [`Scale::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Reduced => "reduced",
        }
    }
}

/// The generator constraints and loop configuration for one target
/// structure at one scale.
pub fn preset(structure: TargetStructure, scale: Scale) -> (GenConstraints, LoopConfig) {
    let paper = scale == Scale::Paper;
    match structure {
        // §VI-B1: 10K instructions, population 96, top 16, ×6 mutations,
        // ACE(IRF) objective, ~5,000 iterations to converge.
        TargetStructure::Irf => (
            GenConstraints {
                n_insts: if paper { 10_000 } else { 6_000 },
                mem: MemPlan::cache_sized(),
                store_bias: 0.15,
                mnemonic_whitelist: irf_distribution(),
                ..GenConstraints::default()
            },
            LoopConfig {
                population: if paper { 96 } else { 24 },
                top_k: if paper { 16 } else { 6 },
                iterations: if paper { 10_000 } else { 200 },
                sample_every: if paper { 1_000 } else { 20 },
                seed: 0x19F,
                threads: 0,
            },
        ),
        // §VI-B2: 30K instructions, sequential 8-byte stride through a
        // cache-sized 32 KiB region, ~2,000 iterations.
        TargetStructure::L1d => (
            GenConstraints {
                n_insts: if paper { 30_000 } else { 16_000 },
                mem: MemPlan::l1d_sweep(),
                store_bias: 0.1,
                ..GenConstraints::default()
            },
            LoopConfig {
                population: if paper { 96 } else { 24 },
                top_k: if paper { 16 } else { 6 },
                iterations: if paper { 2_000 } else { 120 },
                sample_every: if paper { 100 } else { 12 },
                seed: 0x11D,
                threads: 0,
            },
        ),
        // Extension structure: the XMM register file uses the IRF recipe.
        TargetStructure::Xrf => (
            GenConstraints {
                n_insts: if paper { 10_000 } else { 4_000 },
                mem: MemPlan::cache_sized(),
                store_bias: 0.15,
                mnemonic_whitelist: xrf_distribution(),
                ..GenConstraints::default()
            },
            LoopConfig {
                population: if paper { 96 } else { 24 },
                top_k: if paper { 16 } else { 6 },
                iterations: if paper { 10_000 } else { 200 },
                sample_every: if paper { 1_000 } else { 20 },
                seed: 0x0F1,
                threads: 0,
            },
        ),
        // §VI-B3..6: 5K instructions, population 32, top 8, ×4 mutations,
        // IBR objective, ~1,000 iterations (FP units ~5,000).
        fu => {
            let fp = matches!(fu, TargetStructure::FpAdder | TargetStructure::FpMultiplier);
            (
                GenConstraints {
                    n_insts: if paper { 5_000 } else { 2_000 },
                    mem: MemPlan::cache_sized(),
                    ..GenConstraints::default()
                },
                LoopConfig {
                    population: if paper { 32 } else { 16 },
                    top_k: if paper { 8 } else { 4 },
                    iterations: if paper {
                        if fp {
                            5_000
                        } else {
                            1_200
                        }
                    } else {
                        100
                    },
                    sample_every: if paper { 100 } else { 10 },
                    seed: 0xF0 + fu as u64,
                    threads: 0,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_exist_for_all_structures() {
        for s in TargetStructure::ALL {
            for scale in [Scale::Paper, Scale::Reduced] {
                let (g, l) = preset(s, scale);
                assert!(g.n_insts > 0);
                assert!(l.population >= l.top_k);
                assert!(l.iterations > 0);
            }
        }
    }

    #[test]
    fn paper_scale_matches_section_vi_b() {
        let (g, l) = preset(TargetStructure::Irf, Scale::Paper);
        assert_eq!(g.n_insts, 10_000);
        assert_eq!(l.population, 96);
        assert_eq!(l.top_k, 16);
        assert_eq!(l.offspring_per_parent(), 6);
        let (g, l) = preset(TargetStructure::L1d, Scale::Paper);
        assert_eq!(g.n_insts, 30_000);
        assert_eq!(g.mem.stride, 8);
        assert_eq!(g.mem.region, 32 * 1024);
        let _ = l;
        let (g, l) = preset(TargetStructure::IntAdder, Scale::Paper);
        assert_eq!(g.n_insts, 5_000);
        assert_eq!(l.population, 32);
        assert_eq!(l.top_k, 8);
        assert_eq!(l.offspring_per_parent(), 4);
    }

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("reduced"), Some(Scale::Reduced));
        assert_eq!(Scale::parse("huge"), None);
    }
}
