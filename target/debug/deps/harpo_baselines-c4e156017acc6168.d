/root/repo/target/debug/deps/harpo_baselines-c4e156017acc6168.d: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

/root/repo/target/debug/deps/libharpo_baselines-c4e156017acc6168.rmeta: crates/baselines/src/lib.rs crates/baselines/src/kern.rs crates/baselines/src/mibench.rs crates/baselines/src/opendcdiag.rs crates/baselines/src/silifuzz.rs

crates/baselines/src/lib.rs:
crates/baselines/src/kern.rs:
crates/baselines/src/mibench.rs:
crates/baselines/src/opendcdiag.rs:
crates/baselines/src/silifuzz.rs:
