//! Target structures and the coverage objective (fitness) function.
//!
//! The paper's methodology (§II-C) pairs each target hardware structure
//! with a *hardware coverage* metric that is cheap enough to compute
//! every genetic iteration and correlates with the eventual fault
//! detection capability: ACE lifetime analysis for bit arrays, IBR for
//! functional units. [`TargetStructure`] enumerates the six structures of
//! the evaluation and [`TargetStructure::coverage`] is the objective the
//! Harpocrates engine maximises.

use crate::ace::{irf_ace, l1d_ace, xrf_ace};
use crate::ibr::ibr;
use harpo_isa::form::FuKind;
use harpo_uarch::{CoreConfig, ExecutionTrace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six CPU hardware structures evaluated in the paper (§III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetStructure {
    /// Physical integer register file (transient faults, ACE coverage).
    Irf,
    /// L1 data cache data array (transient faults, ACE coverage).
    L1d,
    /// Integer adder (permanent gate faults, IBR coverage).
    IntAdder,
    /// Integer multiplier (permanent gate faults, IBR coverage).
    IntMultiplier,
    /// SSE FP adder (permanent gate faults, IBR coverage).
    FpAdder,
    /// SSE FP multiplier (permanent gate faults, IBR coverage).
    FpMultiplier,
    /// The physical XMM register file (transient faults, ACE coverage) —
    /// an extension beyond the paper's six structures, demonstrating the
    /// any-structure claim of §IV-B. Not part of [`TargetStructure::ALL`].
    Xrf,
}

impl TargetStructure {
    /// All six structures, in the paper's presentation order.
    pub const ALL: [TargetStructure; 6] = [
        TargetStructure::Irf,
        TargetStructure::L1d,
        TargetStructure::IntAdder,
        TargetStructure::IntMultiplier,
        TargetStructure::FpAdder,
        TargetStructure::FpMultiplier,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TargetStructure::Xrf => "XMM Register File",
            TargetStructure::Irf => "IRF",
            TargetStructure::L1d => "L1D",
            TargetStructure::IntAdder => "Integer Adder",
            TargetStructure::IntMultiplier => "Integer Multiplier",
            TargetStructure::FpAdder => "SSE FP Adder",
            TargetStructure::FpMultiplier => "SSE FP Multiplier",
        }
    }

    /// Whether this is a bit-array structure (ACE/transient) rather than
    /// a functional unit (IBR/permanent).
    pub fn is_bit_array(self) -> bool {
        matches!(
            self,
            TargetStructure::Irf | TargetStructure::L1d | TargetStructure::Xrf
        )
    }

    /// The graded functional-unit kind, for FU structures.
    pub fn fu_kind(self) -> Option<FuKind> {
        match self {
            TargetStructure::IntAdder => Some(FuKind::IntAdd),
            TargetStructure::IntMultiplier => Some(FuKind::IntMul),
            TargetStructure::FpAdder => Some(FuKind::FpAdd),
            TargetStructure::FpMultiplier => Some(FuKind::FpMul),
            _ => None,
        }
    }

    /// The hardware coverage of a trace with respect to this structure —
    /// the Harpocrates fitness function.
    pub fn coverage(self, trace: &ExecutionTrace, cfg: &CoreConfig) -> f64 {
        match self {
            TargetStructure::Irf => irf_ace(trace, cfg).coverage(),
            TargetStructure::L1d => l1d_ace(trace, cfg).coverage(),
            TargetStructure::Xrf => xrf_ace(trace, cfg).coverage(),
            other => ibr(trace, other.fu_kind().expect("fu structure")).ratio(),
        }
    }
}

impl fmt::Display for TargetStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_structures_with_unique_labels() {
        let labels: std::collections::HashSet<_> =
            TargetStructure::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn classification() {
        assert!(TargetStructure::Irf.is_bit_array());
        assert!(TargetStructure::L1d.is_bit_array());
        for s in [
            TargetStructure::IntAdder,
            TargetStructure::IntMultiplier,
            TargetStructure::FpAdder,
            TargetStructure::FpMultiplier,
        ] {
            assert!(!s.is_bit_array());
            assert!(s.fu_kind().is_some());
        }
        assert!(TargetStructure::Irf.fu_kind().is_none());
    }

    #[test]
    fn coverage_on_empty_trace_is_zero() {
        let t = ExecutionTrace::default();
        let cfg = CoreConfig::default();
        for s in TargetStructure::ALL {
            assert_eq!(s.coverage(&t, &cfg), 0.0);
        }
    }
}
