/root/repo/target/debug/deps/harpo_isa-7f00b87d45baa82b.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/container.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/fingerprint.rs crates/isa/src/flags.rs crates/isa/src/form.rs crates/isa/src/fu.rs crates/isa/src/hash.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/semantics.rs crates/isa/src/softfp.rs crates/isa/src/state.rs crates/isa/src/trail.rs

/root/repo/target/debug/deps/libharpo_isa-7f00b87d45baa82b.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/container.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/fingerprint.rs crates/isa/src/flags.rs crates/isa/src/form.rs crates/isa/src/fu.rs crates/isa/src/hash.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/semantics.rs crates/isa/src/softfp.rs crates/isa/src/state.rs crates/isa/src/trail.rs

/root/repo/target/debug/deps/libharpo_isa-7f00b87d45baa82b.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/container.rs crates/isa/src/encode.rs crates/isa/src/exec.rs crates/isa/src/fingerprint.rs crates/isa/src/flags.rs crates/isa/src/form.rs crates/isa/src/fu.rs crates/isa/src/hash.rs crates/isa/src/inst.rs crates/isa/src/mem.rs crates/isa/src/program.rs crates/isa/src/reg.rs crates/isa/src/semantics.rs crates/isa/src/softfp.rs crates/isa/src/state.rs crates/isa/src/trail.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/container.rs:
crates/isa/src/encode.rs:
crates/isa/src/exec.rs:
crates/isa/src/fingerprint.rs:
crates/isa/src/flags.rs:
crates/isa/src/form.rs:
crates/isa/src/fu.rs:
crates/isa/src/hash.rs:
crates/isa/src/inst.rs:
crates/isa/src/mem.rs:
crates/isa/src/program.rs:
crates/isa/src/reg.rs:
crates/isa/src/semantics.rs:
crates/isa/src/softfp.rs:
crates/isa/src/state.rs:
crates/isa/src/trail.rs:
