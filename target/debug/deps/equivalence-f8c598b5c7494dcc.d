/root/repo/target/debug/deps/equivalence-f8c598b5c7494dcc.d: crates/faultsim/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-f8c598b5c7494dcc: crates/faultsim/tests/equivalence.rs

crates/faultsim/tests/equivalence.rs:
