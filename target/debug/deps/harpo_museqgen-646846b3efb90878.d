/root/repo/target/debug/deps/harpo_museqgen-646846b3efb90878.d: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

/root/repo/target/debug/deps/libharpo_museqgen-646846b3efb90878.rmeta: crates/museqgen/src/lib.rs crates/museqgen/src/constraints.rs crates/museqgen/src/generator.rs crates/museqgen/src/mutate.rs

crates/museqgen/src/lib.rs:
crates/museqgen/src/constraints.rs:
crates/museqgen/src/generator.rs:
crates/museqgen/src/mutate.rs:
