//! `harpo` — the Harpocrates command-line driver.
//!
//! ```text
//! harpo refine   --structure int-mul [--scale reduced|paper] [--out t.hxpf]
//!                [--journal run.jsonl] [--quiet] [--verbose]
//! harpo generate --insts 5000 --seed 7 [--out t.hxpf]
//! harpo grade    --structure int-mul --faults 128 [--journal run.jsonl] t.hxpf
//! harpo autopsy  --structure int-mul --faults 128 [--journal run.jsonl]
//!                [--heatmap heatmap.json] [--trace trace.json] t.hxpf
//! harpo simulate t.hxpf
//! harpo disasm   t.hxpf [--limit 40]
//! harpo report   run.jsonl [BENCH_pipeline.json ...] [--out REPORT.md] [--trace trace.json]
//! harpo profile  run.jsonl [--top N] [--out PROFILE.md] [--folded f.folded]
//!                [--speedscope s.json]
//! harpo diff     a.jsonl b.jsonl [--out DIFF.md]
//! harpo archive  run.jsonl [BENCH_*.json ...] [--index results/history.jsonl] [--id name]
//! harpo history  [--index results/history.jsonl] [--out HISTORY.md]
//! harpo watch    run.jsonl [--interval-ms 500] [--once] [--json]
//! harpo info
//! ```

mod archive;
mod args;
mod autopsy;
mod commands;
mod diff;
mod profile;
mod report;
mod watch;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        commands::usage();
        std::process::exit(2);
    }
    let cmd = argv.remove(0);
    let result = match cmd.as_str() {
        "refine" => commands::refine(&argv),
        "generate" => commands::generate(&argv),
        "grade" => commands::grade(&argv),
        "autopsy" => autopsy::autopsy(&argv),
        "simulate" => commands::simulate(&argv),
        "disasm" => commands::disasm(&argv),
        "report" => report::report(&argv),
        "profile" => profile::profile(&argv),
        "diff" => diff::diff_cmd(&argv),
        "archive" => archive::archive(&argv),
        "history" => archive::history(&argv),
        "watch" => watch::watch(&argv),
        "info" => commands::info(&argv),
        "help" | "--help" | "-h" => {
            commands::usage();
            Ok(())
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            commands::usage();
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
