/root/repo/target/release/deps/fig06_fpfu-07ac0c4fa22b3eb6.d: crates/bench/src/bin/fig06_fpfu.rs

/root/repo/target/release/deps/fig06_fpfu-07ac0c4fa22b3eb6: crates/bench/src/bin/fig06_fpfu.rs

crates/bench/src/bin/fig06_fpfu.rs:
